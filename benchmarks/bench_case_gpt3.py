"""Benchmark: regenerate the paper's Sec VI-B.

The GPT-3 2.7B retune case study: advisor proposals ranked by modelled
speedup at identical parameter count (paper: 1.18x).
"""


def bench_case_gpt3(regenerate):
    regenerate("case_gpt3")
