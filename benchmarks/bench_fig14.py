"""Benchmark: regenerate the paper's Fig 14 (appendix).

Dimension-ordering invariance: (2048,4,n), (4,2048,n) and (8192,n)
orderings of the same GEMM model identically.
"""


def bench_fig14(regenerate):
    regenerate("fig14")
