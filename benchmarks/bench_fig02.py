"""Benchmark: regenerate the paper's Fig 2.

Latency proportion of each transformer component for one layer of a
medium-sized model; the paper reports GEMM kernels at 68.3% here.
"""


def bench_fig02(regenerate):
    regenerate("fig2")
