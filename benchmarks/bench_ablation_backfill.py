"""Benchmark: ablation (internal).

Cross-validation of the two GPU backends: the discrete-event SM
simulator vs the closed-form wave model on every Table II GEMM; they
agree within 8%.
"""


def bench_ablation_backfill(regenerate):
    regenerate("ablation_backfill")
