"""Benchmark: regenerate the paper's Figs 15/16.

QKV transform GEMM throughput vs hidden size across tensor-parallel
degrees; smaller t gives larger per-GPU GEMMs and higher throughput.
"""


def bench_fig15(regenerate):
    regenerate("fig15")
