"""Benchmark: regenerate the paper's Sec VII-B.

The SwiGLU intermediate-size brute force near 8h/3 for h=4096;
Llama-2-7B's 11008 ranks top-decile while the naive 10923 is far slower.
"""


def bench_case_swiglu(regenerate):
    regenerate("case_swiglu")
