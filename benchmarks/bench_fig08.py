"""Benchmark: regenerate the paper's Fig 8.

Attention key-query score BMM throughput at fixed h/a=64 as h (and thus
a) sweeps; rising with a wave-quantization ripple whose period depends
on a.
"""


def bench_fig08(regenerate):
    regenerate("fig8")
