"""Benchmark: regenerate the paper's Fig 1.

Single-layer throughput of equal-parameter 2.7B-class shapes on A100:
the paper's headline bar chart (GPT-3 2.7B default vs its C1/C2 retunes
and the Sec VI-B a=20 fix).
"""


def bench_fig01(regenerate):
    regenerate("fig1")
