"""Benchmark: regenerate the paper's Fig 12.

FlashAttention-2 throughput sweep over hidden size at a=128: a clean
roofline with no pow-2(h/a) spikes, simplifying the attention takeaway
to 'h as large as possible'.
"""


def bench_fig12(regenerate):
    regenerate("fig12")
