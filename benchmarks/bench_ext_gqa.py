"""Benchmark: extension (Sec VI-C).

Grouped-query attention on the Llama-2-70B shape: KV-cache traffic and
decode latency vs KV head count (64 = MHA, 8 = Llama-2's GQA, 1 = MQA).
"""


def bench_ext_gqa(regenerate):
    regenerate("ext_gqa")
