"""Benchmark: regenerate the paper's Fig 9.

Attention-over-value BMM throughput at fixed h/a=64; same structure as
Fig 8 for the second attention BMM.
"""


def bench_fig09(regenerate):
    regenerate("fig9")
