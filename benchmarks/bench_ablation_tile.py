"""Benchmark: ablation (Sec V).

Design-choice ablation: the cuBLAS-like tile auto-selection vs pinning
the 128x256 kernel across the transformer GEMM set; selection matters
most for skinny decode GEMMs.
"""


def bench_ablation_tile(regenerate):
    regenerate("ablation_tile")
