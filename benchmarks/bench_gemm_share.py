"""Benchmark: regenerate the paper's Sec I.

GEMM kernels' share of layer latency for medium vs large models (paper:
68.3% and 94.9%) plus a hidden-size sweep.
"""


def bench_gemm_share(regenerate):
    regenerate("gemm_share")
