"""Micro-benchmarks of the library's computational primitives.

These time the building blocks a user pays for when sweeping shapes:
one analytic GEMM evaluation, one discrete-event simulation, a full
layer-latency composition, the rule engine, an advisor search, and the
real NumPy substrates (transformer forward, FlashAttention kernel).
"""

import numpy as np

from repro.core.advisor import ShapeAdvisor
from repro.core.config import get_model
from repro.core.latency import LayerLatencyModel
from repro.core.rules import RuleEngine
from repro.gpu.gemm_model import GemmModel
from repro.gpu.simulator import SMSimulator
from repro.transformer.flash import flash_attention
from repro.transformer.model import DecoderModel
from repro.transformer.trace import NullTrace


def bench_gemm_model_evaluate(benchmark):
    model = GemmModel("A100")
    perf = benchmark(model.evaluate, 8192, 10240, 2560)
    assert perf.latency_s > 0


def bench_gemm_model_bmm_evaluate(benchmark):
    model = GemmModel("A100")
    perf = benchmark(model.evaluate, 2048, 2048, 80, 128)
    assert perf.bound == "memory"


def bench_simulator_run(benchmark):
    sim = SMSimulator("A100")
    result = benchmark(sim.run, 4096, 4096, 1024)
    assert result.blocks > 0


def bench_layer_breakdown(benchmark):
    model = LayerLatencyModel("A100")
    cfg = get_model("gpt3-2.7b")
    bd = benchmark(model.layer_breakdown, cfg)
    assert bd.total_s > 0


def bench_rule_engine(benchmark):
    engine = RuleEngine("A100")
    cfg = get_model("gpt3-2.7b")
    diags = benchmark(engine.check, cfg)
    assert diags


def bench_advisor_propose(benchmark):
    advisor = ShapeAdvisor("A100")
    cfg = get_model("gpt3-2.7b")
    proposals = benchmark(advisor.propose, cfg)
    assert proposals


def bench_numpy_transformer_forward(benchmark):
    model = DecoderModel(
        vocab_size=512,
        max_seq=64,
        hidden_size=128,
        num_heads=8,
        num_layers=2,
        rng=np.random.default_rng(0),
    )
    ids = np.random.default_rng(1).integers(0, 512, size=(64, 2))
    trace = NullTrace()
    logits = benchmark(model.forward, ids, trace)
    assert logits.shape == (64, 2, 512)


def bench_flash_attention_numpy(benchmark):
    rng = np.random.default_rng(0)
    q, k, v = (rng.normal(size=(8, 256, 64)) for _ in range(3))
    out = benchmark(flash_attention, q, k, v)
    assert out.shape == q.shape
