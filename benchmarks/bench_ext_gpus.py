"""Benchmark: extension (Sec II-B / VIII).

The GPT-3 2.7B equal-parameter retune evaluated across V100, A100
(40/80GB), H100 and MI250X: the first-principles guidelines win on every
architecture, and H100:A100 throughput sits near the 3:1 MLPerf
correlation the paper cites.
"""


def bench_ext_gpus(regenerate):
    regenerate("ext_gpus")
