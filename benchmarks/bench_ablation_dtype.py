"""Benchmark: ablation (Sec III-B).

The 128-byte alignment rule expressed per dtype: FP32 saturates at 32
elements, FP16 at 64, INT8 at 128 — the element-count breakpoints shift
with element size exactly as Sec III-B's byte rule dictates.
"""


def bench_ablation_dtype(regenerate):
    regenerate("ablation_dtype")
