"""Benchmark: extension (Sec VII-C).

Weight-only INT8/INT4 quantization at decode time: latency falls nearly
with weight bytes until the fp16 KV cache and kernel-launch overheads
dominate at long context.
"""


def bench_ext_quant(regenerate):
    regenerate("ext_quant")
