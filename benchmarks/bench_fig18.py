"""Benchmark: regenerate the paper's Fig 18.

Attention score times values sweep at a=128 over hidden size.
"""


def bench_fig18(regenerate):
    regenerate("fig18")
