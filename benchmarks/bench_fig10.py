"""Benchmark: regenerate the paper's Fig 10a/10b.

MLP h->4h and 4h->h GEMM throughput vs hidden size at a=128; throughput
saturates at large h (the 'increase h to the saturation point'
recommendation).
"""


def bench_fig10(regenerate):
    regenerate("fig10")
