"""Benchmark: regenerate the paper's Fig 5.

Plain GEMM throughput vs matrix size on V100 and A100, with the 128x256
tile pinned (raw wave-quantization sawtooth) and with auto tile
selection (PyTorch-like softening).
"""


def bench_fig05(regenerate):
    regenerate("fig5")
