"""Benchmark: regenerate the paper's Table II.

The operator -> GEMM mapping: analytic shapes diffed against the matmul
shapes actually executed by the traced NumPy transformer.
"""


def bench_table2(regenerate):
    regenerate("table2")
