"""Benchmark: extension (Sec VI-C3).

End-to-end layer speedup from FlashAttention across hidden sizes;
largest for small models, supporting the paper's 'use FlashAttention v2
for small models' recommendation.
"""


def bench_ext_flash_e2e(regenerate):
    regenerate("ext_flash_e2e")
