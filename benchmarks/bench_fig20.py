"""Benchmark: regenerate the paper's Fig 20a/20b.

Logit (vocabulary) GEMM throughput: coarse sweep over v plus the zoom
around GPT-2's 50257, where multiples of 64 spike (the 50257 -> 50304
padding win).
"""


def bench_fig20(regenerate):
    regenerate("fig20")
