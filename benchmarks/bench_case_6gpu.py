"""Benchmark: regenerate the paper's Sec VII-A.

The Summit 6-GPU-node trilemma: t=6 infeasibility of 8-GPU shapes, the
6-divisible concession, and its pow-2 penalty when deployed on 8-GPU
nodes.
"""


def bench_case_6gpu(regenerate):
    regenerate("case_6gpu")
