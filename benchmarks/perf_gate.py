#!/usr/bin/env python
"""CI perf gate over ``repro bench`` records.

Compares a fresh benchmark record against the checked-in baseline
(``BENCH_engine.json``) and fails when the engine's caching regresses:

- the fresh record must pass (parity, checks, warm-regression gate),
- scalar/vectorized parity mismatches must be exactly zero,
- ``warm_speedup`` (cold wall / warm wall) must stay above a floor,
- no experiment may appear in the fresh record's ``warm_regressions``,
- any experiment whose warm run hit the cache in the baseline must
  still hit it now — losing cache hits is how vectorization quietly
  rots back into recomputation.

Usage::

    python benchmarks/perf_gate.py FRESH.json BASELINE.json \
        [--warm-speedup-floor 4.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

#: The committed record clears 6x comfortably; the floor leaves head
#: room for slow CI machines while still catching a cold-path collapse.
DEFAULT_WARM_SPEEDUP_FLOOR = 4.0


def _experiments(record: dict) -> Dict[str, dict]:
    return {e["id"]: e for e in record.get("experiments", [])}


def _warm_hits(entry: dict) -> int:
    return int(entry.get("warm_cache_hits", 0)) + int(
        entry.get("warm_engine_hits", 0)
    )


def gate_failures(fresh: dict, baseline: dict, floor: float) -> List[str]:
    """All gate violations in ``fresh`` relative to ``baseline``."""
    failures: List[str] = []
    if not fresh.get("passed"):
        failures.append("fresh benchmark record did not pass")
    mismatches = fresh.get("parity", {}).get("mismatches")
    if mismatches != 0:
        failures.append(f"scalar parity mismatches: {mismatches}")
    speedup = fresh.get("warm_speedup") or 0.0
    if speedup < floor:
        failures.append(
            f"warm_speedup {speedup}x below floor {floor}x"
        )
    regressions = fresh.get("warm_regressions", [])
    if regressions:
        failures.append("warm regressions: " + ", ".join(regressions))
    fresh_exp = _experiments(fresh)
    for exp_id, base in sorted(_experiments(baseline).items()):
        base_hits = _warm_hits(base)
        if base_hits <= 0:
            continue
        now = fresh_exp.get(exp_id)
        if now is None:
            failures.append(f"{exp_id}: in baseline but missing from fresh record")
        elif _warm_hits(now) <= 0:
            failures.append(
                f"{exp_id}: warm run lost all cache hits "
                f"(baseline had {base_hits})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="fresh `repro bench` JSON record")
    parser.add_argument("baseline", help="checked-in baseline record")
    parser.add_argument(
        "--warm-speedup-floor",
        type=float,
        default=DEFAULT_WARM_SPEEDUP_FLOOR,
        help="minimum cold/warm wall-time ratio (default %(default)s)",
    )
    args = parser.parse_args(argv)
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    failures = gate_failures(fresh, baseline, args.warm_speedup_floor)
    if failures:
        for failure in failures:
            print(f"perf gate: FAIL: {failure}")
        return 1
    print(
        f"perf gate: OK (warm_speedup {fresh.get('warm_speedup')}x, "
        f"{len(_experiments(fresh))} experiments, 0 regressions)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
