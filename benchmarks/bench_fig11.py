"""Benchmark: regenerate the paper's Fig 11.

Proportion of GEMM latency per transformer GEMM module across model
sizes; QKV+MLP dominate at large h and attention-over-value is smallest.
"""


def bench_fig11(regenerate):
    regenerate("fig11")
