"""Benchmark: extension (Sec III-C).

Sequence parallelism layered on tensor parallelism, the analysis the
paper defers: communication volume unchanged, pointwise regions sharded
s/t, norm-region activations shrunk by 1 - 1/t — plus the new sizing
rule s % t == 0.
"""


def bench_ext_seqpar(regenerate):
    regenerate("ext_seqpar")
