"""Shared machinery for the figure-regeneration benchmarks.

Every ``bench_figXX.py`` calls :func:`regenerate`, which

1. runs the registered experiment once up front and **prints the
   regenerated rows/series** (the same data the paper's figure plots),
2. asserts the qualitative paper-shape check passes, and
3. times the regeneration under pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.engine import cache as engine_cache
from repro.engine import default_engine
from repro.harness.runner import run_experiment


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run + verify + time one experiment; print its table.

    All regeneration flows through the shared shape-evaluation engine
    (``repro.engine.default_engine``): the first run populates its
    caches, so the timed loop measures the warm path a user iterating
    on shapes actually pays.  The engine/memo hit counts for the first
    run are printed alongside the table.
    """

    def _run(exp_id: str, max_rows: int = 20):
        engine_before = default_engine().memory_stats.snapshot()
        memo_before = engine_cache.scalar_memo_stats().snapshot()
        report = run_experiment(exp_id)
        engine_delta = default_engine().memory_stats.delta(engine_before)
        memo_delta = engine_cache.scalar_memo_stats().delta(memo_before)
        with capsys.disabled():
            print()
            print(report.render(max_rows=max_rows))
            print(
                f"[engine batches: {engine_delta.describe()}; "
                f"scalar memo: {memo_delta.describe()}]"
            )
        assert report.passed, f"{exp_id}: {report.check.details}"
        # Time the regeneration itself (table construction + cached
        # engine lookups), which is what a user iterating on shapes pays.
        benchmark(lambda: run_experiment(exp_id))
        return report

    return _run
