"""Shared machinery for the figure-regeneration benchmarks.

Every ``bench_figXX.py`` calls :func:`regenerate`, which

1. runs the registered experiment once up front and **prints the
   regenerated rows/series** (the same data the paper's figure plots),
2. asserts the qualitative paper-shape check passes, and
3. times the regeneration under pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_experiment


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run + verify + time one experiment; print its table."""

    def _run(exp_id: str, max_rows: int = 20):
        report = run_experiment(exp_id)
        with capsys.disabled():
            print()
            print(report.render(max_rows=max_rows))
        assert report.passed, f"{exp_id}: {report.check.details}"
        # Time the regeneration itself (table construction + model
        # evaluation), which is what a user iterating on shapes pays.
        benchmark(lambda: run_experiment(exp_id))
        return report

    return _run
