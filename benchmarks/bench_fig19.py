"""Benchmark: regenerate the paper's Fig 19.

Post-attention linear projection GEMM throughput vs hidden size.
"""


def bench_fig19(regenerate):
    regenerate("fig19")
