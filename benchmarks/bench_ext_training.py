"""Benchmark: extension (Sec I).

The Fig 1 shape comparison under a full training step (forward +
backward + optimizer): the retuned head counts speed up training end-to-
end, the paper's 'trained almost 20% faster' claim.
"""


def bench_ext_training(regenerate):
    regenerate("ext_training")
