"""Benchmark: extension (Sec VI-C).

Sliding-window attention on the Mistral-7B shape: the fused kernel's
FLOPs follow the attended-pair count (big wins once context exceeds the
window) and the decode-time KV cache plateaus at the window size.
"""


def bench_ext_window(regenerate):
    regenerate("ext_window")
