"""Benchmark: regenerate the paper's Fig 17.

Attention key-query score computation sweep at a=128 over hidden size.
"""


def bench_fig17(regenerate):
    regenerate("fig17")
