"""Benchmark: extension (shape rules for MoE).

The mixture-of-experts face of the paper's sizing rules: at a fixed
token budget, multiplying experts shrinks each expert GEMM's row count,
trading one large well-shaped GEMM for many small ones — tile
quantization and launch overhead replace arithmetic intensity (E=8 runs
the expert GEMMs 5.5x faster than E=512 on the Mixtral trunk).
"""


def bench_ext_moe(regenerate):
    regenerate("ext_moe")
