"""Benchmark: regenerate the paper's Fig 6.

Batched matrix multiplication throughput across batch counts and matrix
sizes; throughput rises with BMM size / arithmetic intensity.
"""


def bench_fig06(regenerate):
    regenerate("fig6")
