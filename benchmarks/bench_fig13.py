"""Benchmark: regenerate the paper's Fig 13.

Pythia-suite per-token inference latency with the scaling-trend fit;
Pythia-410M lands above trend and Pythia-1B below, reproducing the off-
trend pair.
"""


def bench_fig13(regenerate):
    regenerate("fig13")
