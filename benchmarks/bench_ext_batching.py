"""Benchmark: extension (Sec VII-C).

The decode batching curve: batching amortizes the per-token weight
stream (near-2x throughput per early doubling), then per-sequence
KV-cache traffic takes over and returns diminish — the trade-off every
serving engine navigates, derived from the paper's decode-GEMV view.
"""


def bench_ext_batching(regenerate):
    regenerate("ext_batching")
