"""Benchmark: extension (Sec VI-B rule 6).

Event-simulated GPipe and 1F1B pipeline schedules: uniform stages
reproduce the (p-1)/m bubble exactly, and 1F1B's in-flight activation
cap (p - stage) emerges from the dependency structure.
"""


def bench_ext_pipeline_sim(regenerate):
    regenerate("ext_pipeline_sim")
