"""Benchmark: regenerate the paper's Fig 7a/7b.

Attention score and attention-over-value BMM throughput at a=32, split
into series by the largest power of two dividing h/a; higher pow-2
series lie above.
"""


def bench_fig07(regenerate):
    regenerate("fig7")
