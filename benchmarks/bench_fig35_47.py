"""Benchmark: regenerate the paper's Figs 35-47.

Attention-over-value BMM throughput for every appendix head count
(8..512), each split by pow2(h/a).
"""


def bench_fig35_47(regenerate):
    regenerate("fig35_47")
