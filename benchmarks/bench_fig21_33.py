"""Benchmark: regenerate the paper's Figs 21-33.

Attention key-query score BMM throughput for every appendix head count
(8..512), each split by pow2(h/a); the pow-2 ordering holds per head
count.
"""


def bench_fig21_33(regenerate):
    regenerate("fig21_33")
