"""Benchmark: extension (Sec III-C).

The attention share of per-layer compute and latency as sequence length
grows: the s/6h term of the paper's 24bsh^2(1 + s/6h) formula made
visible.
"""


def bench_ext_seqlen(regenerate):
    regenerate("ext_seqlen")
