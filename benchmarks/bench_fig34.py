"""Benchmark: regenerate the paper's Fig 34.

Attention key-query score BMM at fixed h/a=64 over the full hidden-size
range (the appendix extension of Fig 8).
"""


def bench_fig34(regenerate):
    regenerate("fig34")
