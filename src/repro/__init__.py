"""repro — hardware-aware transformer shape analysis.

A from-scratch reproduction of *The Case for Co-Designing Model
Architectures with Hardware* (Anthony et al., ICPP 2024): a
first-principles GPU GEMM performance model (Tensor Core alignment,
tile/wave quantization, roofline), a traced NumPy transformer that
validates the paper's operator->GEMM mapping, the sizing-rule
diagnostics and shape advisor, parallelism and inference substrates,
and a harness that regenerates every figure and table in the paper.

Quick start::

    from repro import GemmModel, get_model, LayerLatencyModel

    gemm = GemmModel("A100")
    print(gemm.evaluate(8192, 10240, 2560).describe())

    model = LayerLatencyModel("A100")
    cfg = get_model("gpt3-2.7b")
    print(model.model_breakdown(cfg).summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every experiment.
"""

from repro.analysis import LintDiagnostic, LintReport, SelfLinter, ShapeLinter
from repro.core.advisor import Proposal, ShapeAdvisor
from repro.core.config import TransformerConfig, get_model, list_models, register_model
from repro.core.latency import LatencyBreakdown, LayerLatencyModel
from repro.core.memory import MemoryBudget, inference_bytes, training_bytes
from repro.core.profile import TraceProfiler
from repro.core.training import TrainingStepModel
from repro.core.whatif import WhatIfAnalyzer
from repro.core.rules import Diagnostic, RuleEngine, Severity
from repro.errors import (
    CalibrationError,
    ConfigError,
    ExperimentError,
    GPUModelError,
    ParallelismError,
    ReproError,
    ShapeError,
)
from repro.gpu.bmm_model import BmmModel, BmmShape
from repro.gpu.gemm_model import GemmModel, GemmPerf
from repro.gpu.simulator import SimResult, SMSimulator
from repro.gpu.specs import GPUSpec, get_gpu, list_gpus
from repro.inference.latency import InferenceModel
from repro.transformer.flash import FlashAttentionModel, flash_attention
from repro.transformer.generate import generate, perplexity
from repro.transformer.model import DecoderModel
from repro.transformer.trace import MatmulRecord, OpTrace
from repro.types import DType, TimeEstimate

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigError",
    "ShapeError",
    "GPUModelError",
    "ParallelismError",
    "ExperimentError",
    "CalibrationError",
    # gpu substrate
    "GPUSpec",
    "get_gpu",
    "list_gpus",
    "GemmModel",
    "GemmPerf",
    "BmmModel",
    "BmmShape",
    "SMSimulator",
    "SimResult",
    # transformer substrate
    "DecoderModel",
    "OpTrace",
    "MatmulRecord",
    "flash_attention",
    "FlashAttentionModel",
    "generate",
    "perplexity",
    # core
    "TransformerConfig",
    "get_model",
    "list_models",
    "register_model",
    "LayerLatencyModel",
    "LatencyBreakdown",
    "TrainingStepModel",
    "TraceProfiler",
    "WhatIfAnalyzer",
    "MemoryBudget",
    "training_bytes",
    "inference_bytes",
    "RuleEngine",
    "Diagnostic",
    "Severity",
    "ShapeAdvisor",
    "Proposal",
    # lint (repro.analysis)
    "ShapeLinter",
    "SelfLinter",
    "LintReport",
    "LintDiagnostic",
    # inference
    "InferenceModel",
    # common types
    "DType",
    "TimeEstimate",
]
