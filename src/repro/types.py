"""Common value types shared across the library.

The central type here is :class:`DType`, the numeric element type of a
GEMM.  The paper's alignment rules are stated in *bytes* ("multiples of
128 bytes on A100"), so converting between element counts and byte
counts correctly is load-bearing for the whole model: a dimension of 64
FP16 elements is 128 bytes, but 64 FP32 elements is 256 bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

Number = Union[int, float]


class DType(enum.Enum):
    """Numeric element types supported by the performance model.

    Values are (canonical name, bytes per element) — several types share
    a storage size (FP16/BF16, FP32/TF32), so the name keeps the enum
    members distinct.
    """

    FP64 = ("fp64", 8)
    FP32 = ("fp32", 4)
    # Stored as 32-bit, computed on tensor cores at reduced precision.
    TF32 = ("tf32", 4)
    FP16 = ("fp16", 2)
    BF16 = ("bf16", 2)
    INT8 = ("int8", 1)

    @property
    def bytes(self) -> int:
        """Size of one element in bytes."""
        return self.value[1]

    @property
    def bits(self) -> int:
        """Size of one element in bits."""
        return self.bytes * 8

    @property
    def is_half(self) -> bool:
        """True for 16-bit floating point types."""
        return self in (DType.FP16, DType.BF16)

    @classmethod
    def parse(cls, name: "str | DType") -> "DType":
        """Parse a dtype from a case-insensitive string like ``"fp16"``.

        Accepts an existing :class:`DType` unchanged, plus common aliases
        (``half`` for FP16, ``float`` / ``single`` for FP32, ``double``
        for FP64).
        """
        if isinstance(name, DType):
            return name
        key = str(name).strip().lower()
        aliases = {
            "half": "fp16",
            "float16": "fp16",
            "bfloat16": "bf16",
            "float": "fp32",
            "single": "fp32",
            "float32": "fp32",
            "double": "fp64",
            "float64": "fp64",
        }
        key = aliases.get(key, key)
        try:
            return cls[key.upper()]
        except KeyError:
            raise ValueError(f"unknown dtype {name!r}") from None


@dataclass(frozen=True)
class TimeEstimate:
    """A latency estimate decomposed into its contributing terms.

    Attributes
    ----------
    total_s:
        End-to-end latency in seconds (the max of compute and memory
        terms plus fixed overhead, per the roofline composition used by
        the GEMM model).
    compute_s:
        Time the math pipes would need at the achievable (efficiency-
        degraded) compute rate, including quantization padding.
    memory_s:
        Time the memory system needs to move the kernel's traffic.
    overhead_s:
        Fixed per-kernel overhead (launch latency, epilogue).
    """

    total_s: float
    compute_s: float
    memory_s: float
    overhead_s: float = 0.0

    @property
    def bound(self) -> str:
        """``"compute"`` or ``"memory"`` depending on the dominant term."""
        return "compute" if self.compute_s >= self.memory_s else "memory"

    def __add__(self, other: "TimeEstimate") -> "TimeEstimate":
        return TimeEstimate(
            total_s=self.total_s + other.total_s,
            compute_s=self.compute_s + other.compute_s,
            memory_s=self.memory_s + other.memory_s,
            overhead_s=self.overhead_s + other.overhead_s,
        )


def teraflops(flops: float, seconds: float) -> float:
    """Convert a FLOP count and duration into TFLOP/s throughput."""
    if seconds <= 0:
        raise ValueError(f"duration must be positive, got {seconds}")
    return flops / seconds / 1e12
