"""Vectorized (batched) shape evaluation.

:func:`evaluate_batch` computes the full analytic GEMM model —
cuBLAS-like tile selection, wave/tile quantization, Tensor Core
alignment efficiency, L2-adjusted DRAM traffic, and the roofline
latency composition — for an entire array of ``(batch, m, n, k)``
shapes in NumPy array operations.

Parity contract
---------------
Every arithmetic step below replicates the *exact* float operation
sequence of the scalar path (:meth:`repro.gpu.gemm_model.GemmModel.
evaluate` and the helpers it calls), so results are bit-for-bit equal,
not merely close: integer work is done in int64 exactly as Python ints,
float expressions keep the scalar's association order, ``np.rint``
mirrors Python's banker's ``round``, and first-occurrence ``argmin``
mirrors ``min(pool, key=...)`` tie-breaking.  The property tests in
``tests/engine/test_vectorized.py`` enforce exact equality over
randomized grids; if you change the scalar model, change this file in
lockstep (and bump :data:`repro.engine.cache.MODEL_VERSION`).

This module must not import :mod:`repro.gpu.gemm_model` at module scope
(that module imports :mod:`repro.engine.cache`; a top-level import here
would close an import cycle through the package ``__init__``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import GPUModelError, ShapeError
from repro.gpu import alignment
from repro.gpu.occupancy import blocks_per_sm
from repro.gpu.specs import GPUSpec, get_gpu
from repro.gpu.tiles import TileConfig, candidate_tiles
from repro.types import DType

# Parity constants, mirroring repro.gpu.gemm_model (which cannot be
# imported here, see module docstring).  Guarded by the parity tests.
_BW_EFFICIENCY = 0.82
_BW_ALIGN_EXPONENT = 0.8


def shape_array(
    m, n, k, batch=1
) -> np.ndarray:
    """Build an (N, 4) int64 shape array ``[batch, m, n, k]`` per row.

    Scalars broadcast against array arguments, so
    ``shape_array(sizes, sizes, sizes)`` builds a square-GEMM grid and
    ``shape_array(2048, 2048, 64, batches)`` sweeps the batch count.
    """
    cols = np.broadcast_arrays(
        np.asarray(batch, dtype=np.int64),
        np.asarray(m, dtype=np.int64),
        np.asarray(n, dtype=np.int64),
        np.asarray(k, dtype=np.int64),
    )
    return np.stack([c.ravel() for c in cols], axis=1)


@dataclass(frozen=True)
class BatchResult:
    """Column-oriented performance report for a batch of GEMM shapes.

    Row ``i`` of every array corresponds to row ``i`` of ``shapes``.
    ``tile_index[i]`` indexes into ``pool`` (the tile candidate tuple
    used for selection).
    """

    shapes: np.ndarray  # (N, 4) int64: batch, m, n, k
    gpu: str
    dtype: DType
    pool: Tuple[TileConfig, ...]
    tile_index: np.ndarray  # int64
    blocks: np.ndarray  # int64
    blocks_per_sm: np.ndarray  # int64
    waves: np.ndarray  # int64
    latency_s: np.ndarray  # float64
    compute_s: np.ndarray  # float64
    memory_s: np.ndarray  # float64
    overhead_s: float
    flops: np.ndarray  # int64
    dram_bytes: np.ndarray  # float64
    alignment_eff: np.ndarray  # float64
    wave_eff: np.ndarray  # float64
    tile_waste: np.ndarray  # float64
    used_matrix_engine: np.ndarray  # bool
    tflops: np.ndarray  # float64

    def __len__(self) -> int:
        return int(self.shapes.shape[0])

    @property
    def bound(self) -> np.ndarray:
        """Per-row ``"compute"`` / ``"memory"`` labels."""
        return np.where(self.compute_s >= self.memory_s, "compute", "memory")

    def tile(self, i: int) -> TileConfig:
        return self.pool[int(self.tile_index[i])]

    def perf(self, i: int):
        """Reconstruct the scalar :class:`GemmPerf` for one row."""
        from repro.gpu.gemm_model import GemmPerf  # deferred: import cycle
        from repro.types import TimeEstimate

        b, m, n, k = (int(v) for v in self.shapes[i])
        return GemmPerf(
            m=m,
            n=n,
            k=k,
            batch=b,
            dtype=self.dtype,
            gpu=self.gpu,
            tile=self.tile(i),
            blocks=int(self.blocks[i]),
            blocks_per_sm=int(self.blocks_per_sm[i]),
            waves=int(self.waves[i]),
            time=TimeEstimate(
                total_s=float(self.latency_s[i]),
                compute_s=float(self.compute_s[i]),
                memory_s=float(self.memory_s[i]),
                overhead_s=self.overhead_s,
            ),
            flops=int(self.flops[i]),
            dram_bytes=float(self.dram_bytes[i]),
            alignment_eff=float(self.alignment_eff[i]),
            wave_eff=float(self.wave_eff[i]),
            tile_waste=float(self.tile_waste[i]),
            used_matrix_engine=bool(self.used_matrix_engine[i]),
        )

    # -- (de)serialization for the disk cache ------------------------------

    _ARRAY_FIELDS = (
        "shapes",
        "tile_index",
        "blocks",
        "blocks_per_sm",
        "waves",
        "latency_s",
        "compute_s",
        "memory_s",
        "flops",
        "dram_bytes",
        "alignment_eff",
        "wave_eff",
        "tile_waste",
        "used_matrix_engine",
        "tflops",
    )

    def to_arrays(self) -> "dict[str, np.ndarray]":
        return {name: getattr(self, name) for name in self._ARRAY_FIELDS}

    def meta(self) -> dict:
        return {
            "gpu": self.gpu,
            "dtype": self.dtype.name,
            "overhead_s": self.overhead_s,
            "pool": [
                [t.m, t.n, t.k_stage, t.threads, t.peak_fraction]
                for t in self.pool
            ],
        }

    @classmethod
    def from_arrays(cls, arrays: "dict[str, np.ndarray]", meta: dict) -> "BatchResult":
        pool = tuple(
            TileConfig(int(m), int(n), int(ks), int(th), float(pf))
            for m, n, ks, th, pf in meta["pool"]
        )
        return cls(
            gpu=str(meta["gpu"]),
            dtype=DType[str(meta["dtype"])],
            pool=pool,
            overhead_s=float(meta["overhead_s"]),
            **{name: np.asarray(arrays[name]) for name in cls._ARRAY_FIELDS},
        )


def _ceil_div(a: np.ndarray, b) -> np.ndarray:
    """Exact integer ceil division (mirrors the scalar ``-(-a // b)``)."""
    return -(-a // b)


def _pow_exact(base: np.ndarray, exponent: float) -> np.ndarray:
    """Elementwise ``base ** exponent`` via libm, bit-equal to Python.

    NumPy's vectorized power kernel can differ from C ``pow`` by one ulp
    on some inputs, which would break the bit-for-bit parity contract;
    evaluating each *unique* base through ``math.pow`` keeps this exact
    and cheap (the bases here take few distinct values per batch).
    """
    u, inv = np.unique(base, return_inverse=True)
    table = np.array([math.pow(x, exponent) for x in u], dtype=np.float64)
    return table[inv].reshape(base.shape)


def _dim_efficiency(d: np.ndarray, dtype: DType, spec: GPUSpec) -> np.ndarray:
    """Vectorized :func:`repro.gpu.alignment.dim_efficiency`."""
    full = spec.tc_align_elems(dtype)
    min_elems = spec.tc_min_elems(dtype)
    eff_min = alignment._EFF_AT_MIN
    eff_odd = alignment._EFF_ODD
    p = np.minimum(d & -d, full)
    lp = np.log2(p.astype(np.float64))
    # Sub-granularity interpolation (p < min_elems).  log2 of a power of
    # two is exact, so these match the scalar math.log2 path bitwise.
    if min_elems > 1:
        frac_sub = np.where(p > 1, lp / math.log2(min_elems), 0.0)
        sub = eff_odd + (eff_min - eff_odd) * frac_sub
    else:  # pragma: no cover - p < min_elems is then impossible
        sub = np.ones_like(lp)
    if full > min_elems:
        denom = math.log2(full) - math.log2(min_elems)
        frac_mid = (lp - math.log2(min_elems)) / denom
        mid = eff_min + (1.0 - eff_min) * frac_mid
    else:  # p >= full whenever full <= min_elems; branch unreachable
        mid = np.ones_like(lp)
    return np.where(p >= full, 1.0, np.where(p < min_elems, sub, mid))


def _resolve_pool(
    spec: GPUSpec,
    dtype: DType,
    tile: Optional[TileConfig],
    candidates: Optional[Sequence[TileConfig]],
) -> Tuple[TileConfig, ...]:
    if tile is not None:
        return (tile,)
    if candidates is not None:
        pool = tuple(candidates)
        if not pool:
            raise GPUModelError("empty tile candidate pool")
        return pool
    return candidate_tiles(spec, dtype)


def evaluate_batch(
    shapes,
    gpu: "str | GPUSpec",
    dtype: "str | DType" = DType.FP16,
    tile: Optional[TileConfig] = None,
    candidates: Optional[Sequence[TileConfig]] = None,
    bw_efficiency: float = _BW_EFFICIENCY,
) -> BatchResult:
    """Evaluate an (N, 4) array of ``(batch, m, n, k)`` shapes at once.

    Semantics are identical to constructing ``GemmModel(gpu, dtype,
    tile=tile, candidates=candidates, bw_efficiency=bw_efficiency)`` and
    calling ``evaluate(m, n, k, batch)`` per row — including raised
    error types — but the whole batch is computed in array operations.
    """
    spec = get_gpu(gpu)
    dtype = DType.parse(dtype)
    if not (0.0 < bw_efficiency <= 1.0):
        raise ShapeError(f"bw_efficiency must be in (0,1]: {bw_efficiency}")
    arr = np.asarray(shapes, dtype=np.int64)
    if arr.ndim == 1 and arr.shape == (4,):
        arr = arr[None, :]
    if arr.ndim != 2 or arr.shape[1] != 4:
        raise ShapeError(
            f"shapes must be an (N, 4) array of (batch, m, n, k); got {arr.shape}"
        )
    if arr.size and int(arr.min()) <= 0:
        bad = arr[(arr <= 0).any(axis=1)][0]
        raise ShapeError(f"GEMM dims must be positive: {tuple(int(v) for v in bad)}")

    pool = _resolve_pool(spec, dtype, tile, candidates)
    # Per-tile occupancy; raises GPUModelError for tiles that do not fit,
    # exactly where the scalar path would (selection scoring or evaluate).
    occ = np.array(
        [
            blocks_per_sm(spec, t.m, t.n, t.k_stage, t.threads, dtype).blocks_per_sm
            for t in pool
        ],
        dtype=np.int64,
    )
    num_sms = spec.num_sms
    b, m, n, k = arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]
    N = arr.shape[0]

    tile_m = np.array([t.m for t in pool], dtype=np.int64)
    tile_n = np.array([t.n for t in pool], dtype=np.int64)
    tile_ks = np.array([t.k_stage for t in pool], dtype=np.int64)
    peak_fraction = np.array([t.peak_fraction for t in pool], dtype=np.float64)

    if len(pool) == 1 and tile is not None:
        # Pinned tile: no selection pass (mirrors GemmModel.fixed_tile).
        sel = np.zeros(N, dtype=np.int64)
    else:
        # cuBLAS-like selection: replicate tile_score for every
        # (tile, shape) pair and take the first argmin, matching
        # ``min(pool, key=...)``'s first-strict-minimum tie handling.
        gm_all = _ceil_div(m[None, :], tile_m[:, None])
        gn_all = _ceil_div(n[None, :], tile_n[:, None])
        blocks_all = b[None, :] * (gm_all * gn_all)
        waves_all = _ceil_div(blocks_all, num_sms)
        # tile_score: n_waves * 2.0 * tile.m * tile.n * k / peak_fraction
        score = (
            ((waves_all * 2.0) * tile_m[:, None]) * tile_n[:, None]
        ) * k[None, :] / peak_fraction[:, None]
        sel = np.argmin(score, axis=0)

    tm = tile_m[sel]
    tn = tile_n[sel]
    ks = tile_ks[sel]
    pf = peak_fraction[sel]
    occ_sel = occ[sel]

    gm = _ceil_div(m, tm)
    gn = _ceil_div(n, tn)
    blocks_one = gm * gn
    blocks = b * blocks_one
    n_waves = _ceil_div(blocks, num_sms)
    wave_eff = blocks / (n_waves * num_sms)
    covered = gm * tm * gn * tn
    tile_waste = 1.0 - (m * n) / covered

    # Alignment efficiency (contiguous dims k and n gate the pipeline).
    align_raw = np.minimum(
        _dim_efficiency(k, dtype, spec), _dim_efficiency(n, dtype, spec)
    )

    # Sustained math rate: faster of matrix path (alignment-degraded)
    # and vector fallback; matrix wins ties like the scalar max().
    matrix_ok = spec.supports_matrix(dtype)
    vector_ok = dtype in spec.vector_tflops
    if not matrix_ok and not vector_ok:
        raise GPUModelError(
            f"{spec.name} has neither a matrix nor a vector path for {dtype.name}"
        )
    if matrix_ok:
        matrix_rate = (spec.matrix_peak_tflops(dtype) * 1e12 * align_raw) * pf
    if vector_ok:
        vector_rate = (spec.vector_peak_tflops(dtype) * 1e12) * pf
    if matrix_ok and vector_ok:
        used_matrix = matrix_rate >= vector_rate
        rate = np.where(used_matrix, matrix_rate, vector_rate)
    elif matrix_ok:
        used_matrix = np.ones(N, dtype=bool)
        rate = matrix_rate
    else:
        used_matrix = np.zeros(N, dtype=bool)
        rate = vector_rate
    align_eff = np.where(used_matrix, align_raw, 1.0)

    # Compute time: waves of one full tile per SM.
    k_padded = _ceil_div(k, ks) * ks
    tile_flops = ((2.0 * tm) * tn) * k_padded
    sm_rate = rate / num_sms  # unit: flops/second
    compute_s = (n_waves * tile_flops) / sm_rate

    # DRAM traffic with L2 reuse (vectorized effective_dram_bytes).
    nbytes = dtype.bytes
    compulsory = b * (m * k + k * n + m * n) * nbytes
    wave_blocks = num_sms * occ_sel
    w = np.minimum(wave_blocks, gm * gn)
    # wave_super_tile: np.rint is round-half-even, same as round().
    wave_m = np.maximum(
        1, np.minimum(gm, np.rint(np.sqrt((w * gm) / gn)).astype(np.int64))
    )
    wave_n = np.maximum(1, np.minimum(gn, w // wave_m))
    reads_a = (m * k) * np.ceil(gn / wave_n).astype(np.int64)
    reads_b = (k * n) * np.ceil(gm / wave_m).astype(np.int64)
    cooperative = np.where(
        b * gm * gn <= wave_blocks,
        compulsory.astype(np.float64),
        (b * (reads_a + reads_b + m * n) * nbytes).astype(np.float64),
    )
    streamed = (
        b * (gm * gn * (tm + tn) * k * nbytes + m * n * nbytes)
    ).astype(np.float64)
    ws = np.maximum((wave_m * tm + wave_n * tn) * np.minimum(k, 512) * nbytes, 1)
    capacity = spec.l2_bytes * 0.75
    miss = np.where(ws <= capacity, 0.0, np.minimum(1.0, (ws - capacity) / ws))
    traffic = cooperative + (streamed - cooperative) * miss
    dram_bytes = np.minimum(
        np.maximum(traffic, compulsory.astype(np.float64)), streamed
    )

    # Achieved bandwidth: occupancy-driven memory-level parallelism.
    mlp_util = np.where(
        blocks >= num_sms, wave_eff, _pow_exact(blocks / num_sms, 0.35)
    )
    bw = (
        spec.mem_bw_bytes_per_s()
        * bw_efficiency
        * _pow_exact(align_raw, _BW_ALIGN_EXPONENT)
        * mlp_util
    )
    memory_s = dram_bytes / bw

    overhead = spec.kernel_overhead_s
    total = np.maximum(compute_s, memory_s) + overhead
    flops = 2 * b * m * n * k
    tflops = flops / total / 1e12

    return BatchResult(
        shapes=arr,
        gpu=spec.name,
        dtype=dtype,
        pool=pool,
        tile_index=sel,
        blocks=blocks,
        blocks_per_sm=occ_sel,
        waves=n_waves,
        latency_s=total,
        compute_s=compute_s,
        memory_s=memory_s,
        overhead_s=overhead,
        flops=flops,
        dram_bytes=dram_bytes,
        alignment_eff=align_eff,
        wave_eff=wave_eff,
        tile_waste=tile_waste,
        used_matrix_engine=used_matrix,
        tflops=tflops,
    )
