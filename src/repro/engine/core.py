"""The shape-evaluation engine: vectorized evaluation behind caches.

:class:`ShapeEngine` is the front door the hot callers (figure sweeps,
autotune searches, the planner) use: it evaluates whole arrays of
``(batch, m, n, k)`` shapes through
:func:`~repro.engine.vectorized.evaluate_batch`, memoizes each batch in
an in-memory LRU, and optionally persists results to an on-disk ``.soa``
store (mmap-shared across processes) so repeated figure regeneration
never recomputes.

Cache keys are ``(shapes-digest, gpu-spec fingerprint, dtype, tile
policy, bw-efficiency, model-version)``; the model version folds in the
calibration-mutable alignment constants (see
:func:`repro.engine.cache.model_version`), so bumping
:data:`~repro.engine.cache.MODEL_VERSION` or re-fitting constants
invalidates every entry.

:func:`verify_against_scalar` is the standing oracle check: it compares
the engine against the scalar :class:`~repro.gpu.gemm_model.GemmModel`
for exact equality over a randomized grid — CI runs it via
``repro bench --quick``.
"""

from __future__ import annotations

import logging
import os
import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import cache as _cache
from repro.engine.grid import GridResult, ShapeGrid
from repro.errors import CacheError
from repro.observability import metrics as _metrics
from repro.observability import span as _span
from repro.resilience.faults import fault_site
from repro.engine.vectorized import (
    _BW_EFFICIENCY,
    BatchResult,
    evaluate_batch,
    shape_array,
)
from repro.gpu.specs import get_gpu
from repro.gpu.tiles import TileConfig, candidate_tiles
from repro.types import DType

#: Environment variable naming a directory for the default engine's
#: on-disk cache.  Unset (the default) keeps the default engine
#: memory-only.
DISK_CACHE_ENV = "REPRO_ENGINE_CACHE_DIR"

log = logging.getLogger("repro.engine")


class ShapeEngine:
    """Vectorized, memoized evaluator for batches of GEMM shapes.

    Parameters
    ----------
    memory_entries:
        Max distinct batch results held in the in-memory LRU.
    disk_dir:
        Optional directory for the persistent second-level store.
    """

    def __init__(
        self,
        memory_entries: int = 256,
        disk_dir: "str | os.PathLike | None" = None,
    ) -> None:
        self._mem = _cache.LRUCache(maxsize=memory_entries)
        self._disk = _cache.DiskCache(disk_dir) if disk_dir is not None else None
        self._lock = threading.Lock()

    # -- cache plumbing -----------------------------------------------------

    def _key(self, shapes, gpu, dtype, tile, candidates, bw_efficiency):
        spec = get_gpu(gpu)
        dtype = DType.parse(dtype)
        if (
            tile is None
            and candidates is not None
            and tuple(candidates) == tuple(candidate_tiles(spec, dtype))
        ):
            # Spelling out the default pool is the same policy as "auto";
            # collapsing them keeps both callers on one cache entry.
            candidates = None
        return (
            _cache.shapes_digest(shapes),
            _cache.spec_key(spec),
            dtype.name,
            _cache.tile_policy_key(tile, candidates),
            bw_efficiency,
            _cache.model_version(),
        )

    # -- public API ---------------------------------------------------------

    def evaluate(
        self,
        shapes,
        gpu,
        dtype: "str | DType" = DType.FP16,
        tile: Optional[TileConfig] = None,
        candidates: Optional[Sequence[TileConfig]] = None,
        bw_efficiency: float = _BW_EFFICIENCY,
    ) -> BatchResult:
        """Evaluate a batch of shapes, consulting both cache levels."""
        key = self._key(shapes, gpu, dtype, tile, candidates, bw_efficiency)
        with _span("engine.evaluate", shapes=len(shapes), gpu=str(gpu)) as sp:
            reg = _metrics()
            hit = self._mem.get(key)
            if hit is not None:
                sp.set(source="memory")
                reg.counter("engine.evaluate.memory_hits").inc()
                return hit
            digest = _cache.digest_key(key)
            if self._disk is not None:
                stored = self._disk.get(digest, repr(key))
                if stored is not None:
                    meta = stored.pop("__meta__")
                    result = BatchResult.from_arrays(stored, meta)
                    self._mem.put(key, result)
                    sp.set(source="disk")
                    reg.counter("engine.evaluate.disk_hits").inc()
                    return result
            fault_site("engine.batch_eval", digest=digest, gpu=str(gpu))
            result = evaluate_batch(
                shapes,
                gpu,
                dtype,
                tile=tile,
                candidates=candidates,
                bw_efficiency=bw_efficiency,
            )
            sp.set(source="compute")
            reg.counter("engine.evaluate.computes").inc()
            reg.counter("engine.evaluate.shapes_computed").inc(len(shapes))
            self._mem.put(key, result)
            if self._disk is not None:
                try:
                    self._disk.put(
                        digest, repr(key), result.to_arrays(), result.meta()
                    )
                except CacheError as exc:
                    # Degrade to memory-only for this entry: a cache-write
                    # failure must never fail an evaluation.
                    log.warning("disk cache write failed, serving from memory: %s", exc)
            return result

    def latency(self, shapes, gpu, dtype: "str | DType" = DType.FP16, **kw) -> np.ndarray:
        """Latencies (seconds) for a batch of shapes."""
        return self.evaluate(shapes, gpu, dtype, **kw).latency_s

    def tflops(self, shapes, gpu, dtype: "str | DType" = DType.FP16, **kw) -> np.ndarray:
        """Useful-FLOPs throughput (TFLOP/s) for a batch of shapes."""
        return self.evaluate(shapes, gpu, dtype, **kw).tflops

    def evaluate_grid(
        self,
        grid: ShapeGrid,
        gpu,
        dtype: "str | DType" = DType.FP16,
        tile: Optional[TileConfig] = None,
        candidates: Optional[Sequence[TileConfig]] = None,
        bw_efficiency: float = _BW_EFFICIENCY,
    ) -> GridResult:
        """Evaluate a whole :class:`ShapeGrid` as one batch.

        The SoA front door for sweep callers: the grid's columnar
        ``batch/m/n/k`` fields are assembled into one ``(N, 4)`` array,
        evaluated through the same two-level cache as :meth:`evaluate`,
        and returned joined with the grid's annotation columns as a
        :class:`~repro.engine.grid.GridResult` for columnar
        materialization.
        """
        with _span("engine.evaluate_grid", shapes=len(grid), gpu=str(gpu)):
            batch = self.evaluate(
                grid.shapes,
                gpu,
                dtype,
                tile=tile,
                candidates=candidates,
                bw_efficiency=bw_efficiency,
            )
        return GridResult(grid, batch)

    def evaluate_tiles(
        self,
        grid: ShapeGrid,
        gpu,
        dtype: "str | DType" = DType.FP16,
        candidates: Optional[Sequence[TileConfig]] = None,
        bw_efficiency: float = _BW_EFFICIENCY,
    ) -> List[Tuple[TileConfig, GridResult]]:
        """Evaluate a whole grid once per pinned tile candidate.

        The batched primitive behind the kernel-parameter autotuner
        (:mod:`repro.kernels`): for each candidate the *entire* grid is
        evaluated as one vectorized call with the tile pinned, so the
        result is a dense (candidate x shape) latency surface without a
        single per-shape Python iteration.  The loop below is over tile
        candidates — the policy axis — never over shapes, and each
        (tile, grid) pair is independently two-level cached, so
        re-tuning against an unchanged model is pure cache hits.

        ``candidates`` defaults to every tile that fits ``gpu`` for
        ``dtype`` (:func:`~repro.gpu.tiles.candidate_tiles`); pass a
        subset to restrict the search space.  Candidate order is
        preserved in the returned pairs, which makes downstream argmin
        tie-breaks deterministic.
        """
        spec = get_gpu(gpu)
        parsed = DType.parse(dtype)
        pool = (
            tuple(candidates)
            if candidates is not None
            else candidate_tiles(spec, parsed)
        )
        with _span(
            "engine.evaluate_tiles", shapes=len(grid), tiles=len(pool),
            gpu=spec.name,
        ):
            return [
                (
                    tile,
                    self.evaluate_grid(
                        grid, spec, parsed, tile=tile,
                        bw_efficiency=bw_efficiency,
                    ),
                )
                for tile in pool
            ]

    def memo_columns(self, kind: str, key, compute) -> "dict[str, np.ndarray]":
        """Two-level cached columnar result of a pure computation.

        ``compute()`` must be a *pure, deterministic* function of
        ``(kind, key, model constants)`` returning a dict of 1-D
        array-likes (numeric or fixed-width string).  The result is
        memoized in the same in-memory LRU and mmap-shared disk store
        as :meth:`evaluate`, keyed on ``(kind, key, model_version)`` —
        callers version their own semantics through ``kind``/``key``.

        This is the warm path for deterministic non-GEMM grid work
        (traced transformer shapes, discrete-event sim sweeps) whose
        recomputation otherwise dominates warm experiment time.
        """
        full_key = ("columns", kind, key, _cache.model_version())
        with _span("engine.memo_columns", kind=kind) as sp:
            reg = _metrics()
            hit = self._mem.get(full_key)
            if hit is not None:
                sp.set(source="memory")
                reg.counter("engine.memo_columns.memory_hits").inc()
                return hit
            digest = _cache.digest_key(full_key)
            if self._disk is not None:
                stored = self._disk.get(digest, repr(full_key))
                if stored is not None:
                    stored.pop("__meta__", None)
                    self._mem.put(full_key, stored)
                    sp.set(source="disk")
                    reg.counter("engine.memo_columns.disk_hits").inc()
                    return stored
            fault_site("engine.batch_eval", digest=digest, gpu=kind)
            result = {
                name: np.ascontiguousarray(np.asarray(col))
                for name, col in compute().items()
            }
            for name, col in result.items():
                if col.dtype == object:
                    raise TypeError(
                        f"memo_columns({kind!r}): column {name!r} has object "
                        "dtype; return numeric or fixed-width string arrays"
                    )
            sp.set(source="compute")
            reg.counter("engine.memo_columns.computes").inc()
            self._mem.put(full_key, result)
            if self._disk is not None:
                try:
                    self._disk.put(digest, repr(full_key), result, {"kind": kind})
                except CacheError as exc:
                    log.warning(
                        "disk cache write failed, serving from memory: %s", exc
                    )
            return result

    # -- stats / maintenance ------------------------------------------------

    @property
    def memory_stats(self) -> _cache.CacheStats:
        return self._mem.stats

    @property
    def disk_stats(self) -> Optional[_cache.CacheStats]:
        return self._disk.stats if self._disk is not None else None

    def clear(self, disk: bool = False) -> None:
        self._mem.clear()
        if disk and self._disk is not None:
            self._disk.clear()

    def describe(self) -> str:
        parts = [f"memory: {self.memory_stats.describe()} ({len(self._mem)} entries)"]
        if self._disk is not None:
            parts.append(f"disk: {self._disk.stats.describe()} ({len(self._disk)} files)")
        return "; ".join(parts)


_DEFAULT_ENGINE: Optional[ShapeEngine] = None
_DEFAULT_LOCK = threading.Lock()


def default_engine() -> ShapeEngine:
    """Process-wide shared engine (hot callers pool their caches here).

    Honours ``REPRO_ENGINE_CACHE_DIR`` for an optional disk store.

    Double-checked locking: the fast path is one unsynchronized global
    read (safe under the GIL — the assignment below publishes a fully
    constructed engine), so concurrent serve workers hitting this on
    every request never serialize on the lock; the lock only guards
    construction, guaranteeing exactly one engine is ever built even
    when many threads race the first call.
    """
    global _DEFAULT_ENGINE
    engine = _DEFAULT_ENGINE
    if engine is not None:
        return engine
    with _DEFAULT_LOCK:
        if _DEFAULT_ENGINE is None:
            _DEFAULT_ENGINE = ShapeEngine(disk_dir=os.environ.get(DISK_CACHE_ENV))
        return _DEFAULT_ENGINE


def reset_default_engine() -> None:
    """Drop the shared engine (tests; env-var changes)."""
    global _DEFAULT_ENGINE
    with _DEFAULT_LOCK:
        _DEFAULT_ENGINE = None


# -- oracle verification ---------------------------------------------------------


@dataclass(frozen=True)
class ParityReport:
    """Outcome of a vectorized-vs-scalar verification sweep."""

    points: int
    mismatches: int
    combos: Tuple[Tuple[str, str], ...]

    @property
    def passed(self) -> bool:
        return self.mismatches == 0

    def describe(self) -> str:
        status = "OK" if self.passed else "MISMATCH"
        combos = ", ".join(f"{g}/{d}" for g, d in self.combos)
        return (
            f"parity {status}: {self.points} points, "
            f"{self.mismatches} mismatches ({combos})"
        )


def random_shapes(rng: np.random.Generator, n: int) -> np.ndarray:
    """A randomized (n, 4) grid spanning the model's interesting regimes.

    Mixes square compute-bound GEMMs, skinny decode-like GEMMs, and
    attention-style batched shapes, with dimensions that hit every
    power-of-two alignment bucket.
    """
    b = np.where(rng.random(n) < 0.5, 1, rng.integers(2, 257, n))
    m = rng.integers(1, 8193, n)
    k = rng.integers(1, 8193, n)
    nn = rng.integers(1, 8193, n)
    # Force a share of aligned / semi-aligned dims so both branches of
    # the efficiency curve are exercised.
    snap = rng.random(n) < 0.5
    step = 2 ** rng.integers(1, 8, n)
    m = np.where(snap, np.maximum(step, (m // step) * step), m)
    nn = np.where(snap, np.maximum(step, (nn // step) * step), nn)
    k = np.where(snap, np.maximum(step, (k // step) * step), k)
    return shape_array(m, nn, k, b)


def verify_against_scalar(
    points: int = 200,
    gpus: Sequence[str] = ("A100", "V100", "H100", "MI250X"),
    dtypes: Sequence[str] = ("fp16", "fp32"),
    seed: int = 0,
    pinned_tile: bool = True,
) -> ParityReport:
    """Exact-equality check of the engine against the scalar model.

    Compares latency, TFLOP/s, selected tile, and bound for ``points``
    random shapes on every (gpu, dtype) combo; any bitwise difference
    counts as a mismatch.
    """
    from repro.errors import GPUModelError
    from repro.gpu.gemm_model import GemmModel  # deferred: import cycle
    from repro.gpu.occupancy import blocks_per_sm
    from repro.gpu.tiles import default_tile

    rng = np.random.default_rng(seed)
    mismatches = 0
    total = 0
    combos: List[Tuple[str, str]] = []
    for gpu in gpus:
        for dtype in dtypes:
            combos.append((gpu, dtype))
            shapes = random_shapes(rng, points)
            configs = [(None, GemmModel(gpu, dtype))]
            if pinned_tile:
                tile = default_tile()
                spec = get_gpu(gpu)
                try:
                    blocks_per_sm(spec, tile.m, tile.n, tile.k_stage, tile.threads, DType.parse(dtype))
                except GPUModelError:
                    pass  # tile infeasible here; both paths raise identically
                else:
                    configs.append((tile, GemmModel(gpu, dtype, tile=tile)))
            for tile, scalar in configs:
                batch = evaluate_batch(shapes, gpu, dtype, tile=tile)
                for i, (bb, mm, nn, kk) in enumerate(shapes):
                    perf = scalar.evaluate(int(mm), int(nn), int(kk), int(bb))
                    total += 1
                    if (
                        perf.latency_s != float(batch.latency_s[i])
                        or perf.tflops != float(batch.tflops[i])
                        or perf.tile != batch.tile(i)
                        or perf.bound != str(batch.bound[i])
                    ):
                        mismatches += 1
    return ParityReport(points=total, mismatches=mismatches, combos=tuple(combos))
