"""Two-level memoization for shape evaluation.

The analytic GEMM model is a *pure* function of (shape, GPU spec, dtype,
tile policy, model constants), which makes every evaluation cacheable.
This module provides the two cache levels the engine composes:

- :class:`LRUCache` — a thread-safe in-memory LRU used both for whole
  :class:`~repro.engine.vectorized.BatchResult` objects and (via the
  module-global :func:`scalar_memo`) for individual
  :class:`~repro.gpu.gemm_model.GemmPerf` evaluations, so repeated
  figure regeneration and overlapping autotune grids never recompute.
- :class:`DiskCache` — an optional on-disk ``.soa`` store keyed by a
  SHA-256 digest of ``(shapes, gpu, dtype, model-version)``, surviving
  process restarts.  Entries are a flat mmap-friendly container (JSON
  header + 64-byte-aligned raw array bytes) read back as zero-copy
  :func:`numpy.frombuffer` views over a shared memory map, so every
  process on the machine — serve workers, ``repro run --parallel``
  workers, the bench harness — shares one warm page cache for the
  same store instead of N private deserialized copies.

Keys always embed :func:`model_version`, which folds in the calibration-
mutable alignment constants (``repro.gpu.alignment._EFF_AT_MIN`` /
``_EFF_ODD``): bumping :data:`MODEL_VERSION` or re-fitting the
efficiency floor invalidates every cached entry, so a stale model can
never serve old numbers.  This module deliberately imports nothing from
``repro.gpu`` at module scope (the GEMM model imports *us*).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import logging
import mmap
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.errors import CacheError
from repro.observability import event as _event
from repro.observability import metrics as _metrics
from repro.resilience.faults import fault_site

log = logging.getLogger("repro.engine.cache")

#: Version of the analytic model the caches key on.  Bump whenever the
#: latency/throughput math changes in a way that affects results.
MODEL_VERSION = "1"


def model_version() -> str:
    """Full cache-key version string: code version + live constants.

    Includes the alignment-efficiency constants because calibration
    (:mod:`repro.calibration.fit`) mutates them while searching — cached
    entries from one constant setting must not serve another.
    """
    from repro.gpu import alignment  # deferred: gpu imports this module

    return f"{MODEL_VERSION}:{alignment._EFF_AT_MIN!r}:{alignment._EFF_ODD!r}"


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level.

    ``quarantined`` counts corrupt disk entries renamed aside (each is
    also a miss, so ``lookups`` stays hits + misses).
    """

    hits: int = 0
    misses: int = 0
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits, misses=self.misses, quarantined=self.quarantined
        )

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            quarantined=self.quarantined - earlier.quarantined,
        )

    def describe(self) -> str:
        text = (
            f"{self.hits} hits / {self.misses} misses "
            f"({100 * self.hit_rate:.0f}% hit rate)"
        )
        if self.quarantined:
            text += f", {self.quarantined} quarantined"
        return text


class LRUCache:
    """Thread-safe least-recently-used mapping with bounded size."""

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Any) -> Optional[Any]:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


#: Per-process sequence for unique tmp-file names (combined with the
#: pid, so concurrent writers of the same digest never share a tmp).
_TMP_SEQ = itertools.count()

#: Suffix quarantined entries are renamed to.  Deliberately not
#: ``.soa``: ``clear()``/``__len__`` glob only live entries, and a
#: quarantined file can never be re-read as a cache hit.
QUARANTINE_SUFFIX = ".quarantined"

#: Live disk-cache entries end in this suffix.
ENTRY_SUFFIX = ".soa"

#: Magic bytes opening every ``.soa`` entry (version baked in).
SOA_MAGIC = b"REPRO-SOA1\x00"

#: Array payloads start on this alignment so mmap'ed views are
#: cacheline/SIMD friendly and pages fault in cleanly.
_SOA_ALIGN = 64


def _align_up(n: int, align: int = _SOA_ALIGN) -> int:
    return (n + align - 1) // align * align


class DiskCache:
    """On-disk structure-of-arrays store for batch-evaluation results.

    One flat ``.soa`` file per entry, named by the key digest::

        REPRO-SOA1\\0 | header-len (8B LE) | JSON header | pad | raw arrays

    The JSON header carries the full cache key (so digest collisions
    are detected rather than silently served), the entry metadata, a
    descriptor per array (name, dtype, shape, offset, nbytes) and a
    SHA-256 of the data section.  Array bytes are stored raw at
    64-byte-aligned offsets and read back as **zero-copy
    ``np.frombuffer`` views over a shared read-only memory map** —
    every process opening the same store shares one set of OS page
    cache pages, so N serve workers warm the cache once, not N times.
    The returned views are read-only; callers must copy before
    mutating (engine results are immutable, so none do).

    Robustness contract:

    - **Writes are atomic and crash-safe**: each writer serializes to a
      unique per-(pid, sequence) tmp file, fsyncs it, then
      ``os.replace``'s it into place — a crash mid-write can never
      leave a torn live entry, and two processes writing the same
      digest race only on which complete file wins.  Readers holding
      an mmap of the replaced file keep their (complete, old) mapping.
    - **Corrupt entries are quarantined**, not retried forever: a file
      with a bad magic, torn header, or data-section checksum mismatch
      is renamed aside (``*.quarantined``), counted in
      :attr:`CacheStats.quarantined`, and the lookup proceeds as a
      miss, so one bad file costs one recompute instead of poisoning
      every warm start.
    """

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}{ENTRY_SUFFIX}"

    def _quarantine(self, path: Path) -> None:
        """Rename a corrupt entry aside so it is never re-read."""
        target = path.with_name(
            f"{path.name}{QUARANTINE_SUFFIX}.{os.getpid()}-{next(_TMP_SEQ)}"
        )
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - racing quarantine/delete
            return
        self.stats.quarantined += 1
        _metrics().counter("engine.disk.quarantined").inc()
        _event("cache.quarantine", entry=path.name)
        log.warning("quarantined corrupt cache entry %s -> %s", path, target.name)

    def _decode(self, mm: mmap.mmap) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Parse one mapped entry into (header, zero-copy arrays).

        Raises ``ValueError``/``OSError`` on any structural problem —
        the caller quarantines.  Returned arrays are read-only views
        into ``mm``; numpy keeps the map alive via each view's base.
        """
        import numpy as np

        view = memoryview(mm)
        if len(view) < len(SOA_MAGIC) + 8:
            raise ValueError("entry shorter than magic + header length")
        if bytes(view[: len(SOA_MAGIC)]) != SOA_MAGIC:
            raise ValueError("bad magic")
        header_len = int.from_bytes(
            view[len(SOA_MAGIC) : len(SOA_MAGIC) + 8], "little"
        )
        header_start = len(SOA_MAGIC) + 8
        if header_len <= 0 or header_start + header_len > len(view):
            raise ValueError("torn header")
        header = json.loads(bytes(view[header_start : header_start + header_len]))
        if not isinstance(header, dict):
            raise ValueError(f"header is {type(header).__name__}, not dict")
        data_start = _align_up(header_start + header_len)
        data_len = int(header["data_len"])
        if data_start + data_len > len(view):
            raise ValueError("truncated data section")
        digest = hashlib.sha256(view[data_start : data_start + data_len])
        if digest.hexdigest() != header["sha256"]:
            raise ValueError("data checksum mismatch")
        arrays: Dict[str, Any] = {}
        for desc in header["arrays"]:
            dtype = np.dtype(desc["dtype"])
            shape = tuple(int(d) for d in desc["shape"])
            count = 1
            for d in shape:
                count *= d
            offset = data_start + int(desc["offset"])
            if int(desc["nbytes"]) != count * dtype.itemsize:
                raise ValueError(f"array {desc['name']!r} descriptor mismatch")
            if offset + count * dtype.itemsize > data_start + data_len:
                raise ValueError(f"array {desc['name']!r} out of bounds")
            arr = np.frombuffer(mm, dtype=dtype, count=count, offset=offset)
            arrays[desc["name"]] = arr.reshape(shape)
        return header, arrays

    def get(self, digest: str, key_repr: str) -> Optional[Dict[str, Any]]:
        """Map arrays + meta for a digest, or None on miss/mismatch.

        A corrupt file is quarantined (renamed aside) and reported as a
        miss; a key mismatch (digest collision or stale format) is a
        plain miss.  Hits return zero-copy read-only views over a
        shared memory map, not materialized copies.
        """
        fault_site("cache.disk_get", digest=digest, path=self._path(digest))
        path = self._path(digest)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with open(path, "rb") as fh:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            header, payload = self._decode(mm)
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.stats.misses += 1
            return None
        meta = header.get("meta")
        if not isinstance(meta, dict) or header.get("key") != key_repr:
            # Digest collision or stale format: treat as a miss.  The
            # map is released when the discarded views are collected.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        payload["__meta__"] = dict(meta, key=header["key"])
        return payload

    def put(self, digest: str, key_repr: str, arrays: Dict[str, Any], meta: Dict[str, Any]) -> None:
        """Atomically persist one entry (unique tmp + fsync + replace).

        Raises :class:`~repro.errors.CacheError` when the entry cannot
        be written (disk full, permissions); callers degrade to
        memory-only caching.
        """
        import numpy as np

        descs = []
        chunks = []
        offset = 0
        for name, value in arrays.items():
            arr = np.ascontiguousarray(np.asarray(value))
            offset = _align_up(offset)
            descs.append(
                {
                    "name": str(name),
                    "dtype": arr.dtype.str,
                    "shape": list(arr.shape),
                    "offset": offset,
                    "nbytes": arr.nbytes,
                }
            )
            chunks.append((offset, arr.tobytes()))
            offset += arr.nbytes
        data = bytearray(offset)
        for off, raw in chunks:
            data[off : off + len(raw)] = raw
        header = {
            "key": key_repr,
            "meta": {k: v for k, v in meta.items() if k != "key"},
            "arrays": descs,
            "data_len": len(data),
            "sha256": hashlib.sha256(bytes(data)).hexdigest(),
        }
        header_bytes = json.dumps(header, sort_keys=True).encode()
        header_start = len(SOA_MAGIC) + 8
        data_start = _align_up(header_start + len(header_bytes))
        path = self._path(digest)
        tmp = path.with_name(f"{digest}.{os.getpid()}-{next(_TMP_SEQ)}.tmp")
        try:
            with open(tmp, "wb") as fh:
                fh.write(SOA_MAGIC)
                fh.write(len(header_bytes).to_bytes(8, "little"))
                fh.write(header_bytes)
                fh.write(b"\x00" * (data_start - header_start - len(header_bytes)))
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise CacheError(f"cannot write cache entry {path}: {exc}") from exc
        # Chaos hook: a 'corrupt' fault here garbles the just-written
        # entry, exercising the quarantine path on the next get.
        fault_site("cache.disk_put", digest=digest, path=path)

    def clear(self) -> None:
        for path in self.directory.glob(f"*{ENTRY_SUFFIX}"):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing deletes
                pass

    def quarantined_files(self) -> "list[Path]":
        """Quarantined entries currently on disk (diagnostics/tests)."""
        return sorted(self.directory.glob(f"*{QUARANTINE_SUFFIX}.*"))

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob(f"*{ENTRY_SUFFIX}"))


# -- key construction -----------------------------------------------------------


def spec_key(spec: Any) -> Tuple[Any, ...]:
    """Hashable fingerprint of a GPUSpec (its dict fields flattened).

    ``GPUSpec`` is frozen but holds per-dtype throughput dicts, so it is
    not hashable itself; this flattens every field deterministically.
    """
    out = []
    for f in dataclasses.fields(spec):
        value = getattr(spec, f.name)
        if isinstance(value, dict):
            value = tuple(
                sorted((getattr(k, "name", k), v) for k, v in value.items())
            )
        out.append(value)
    return tuple(out)


def tile_policy_key(tile: Any, candidates: Any) -> Tuple[Any, ...]:
    """Hashable fingerprint of a (fixed-tile, candidate-pool) policy."""

    def one(t: Any) -> Tuple[Any, ...]:
        return (t.m, t.n, t.k_stage, t.threads, t.peak_fraction)

    if tile is not None:
        return ("tile", one(tile))
    if candidates is not None:
        return ("candidates", tuple(one(t) for t in candidates))
    return ("auto",)


def digest_key(key: Any) -> str:
    """Stable SHA-256 digest of an arbitrary (repr-able) cache key."""
    return hashlib.sha256(repr(key).encode()).hexdigest()


def shapes_digest(shapes: Any) -> str:
    """SHA-256 digest of a canonical int64 (N, 4) shape array."""
    import numpy as np

    arr = np.ascontiguousarray(np.asarray(shapes, dtype=np.int64))
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


# -- the global scalar memo ------------------------------------------------------

#: Shared LRU for scalar ``GemmModel.evaluate`` calls.  Sized to hold the
#: full figure registry's distinct shapes many times over; one entry is a
#: small frozen dataclass, so memory cost is a few hundred bytes each.
_SCALAR_MEMO = LRUCache(maxsize=262144)
_SCALAR_ENABLED = True


def scalar_memo() -> LRUCache:
    """The process-wide scalar evaluation cache."""
    return _SCALAR_MEMO


def scalar_memo_enabled() -> bool:
    return _SCALAR_ENABLED


def configure(enabled: Optional[bool] = None, maxsize: Optional[int] = None) -> None:
    """Adjust the global scalar memo (used by tests and benchmarks)."""
    global _SCALAR_ENABLED, _SCALAR_MEMO
    if enabled is not None:
        _SCALAR_ENABLED = bool(enabled)
    if maxsize is not None and maxsize != _SCALAR_MEMO.maxsize:
        fresh = LRUCache(maxsize=maxsize)
        fresh.stats = _SCALAR_MEMO.stats
        _SCALAR_MEMO = fresh


def clear_scalar_memo() -> None:
    _SCALAR_MEMO.clear()


def scalar_memo_stats() -> CacheStats:
    return _SCALAR_MEMO.stats
