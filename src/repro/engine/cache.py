"""Two-level memoization for shape evaluation.

The analytic GEMM model is a *pure* function of (shape, GPU spec, dtype,
tile policy, model constants), which makes every evaluation cacheable.
This module provides the two cache levels the engine composes:

- :class:`LRUCache` — a thread-safe in-memory LRU used both for whole
  :class:`~repro.engine.vectorized.BatchResult` objects and (via the
  module-global :func:`scalar_memo`) for individual
  :class:`~repro.gpu.gemm_model.GemmPerf` evaluations, so repeated
  figure regeneration and overlapping autotune grids never recompute.
- :class:`DiskCache` — an optional on-disk ``.npz`` store keyed by a
  SHA-256 digest of ``(shapes, gpu, dtype, model-version)``, surviving
  process restarts.

Keys always embed :func:`model_version`, which folds in the calibration-
mutable alignment constants (``repro.gpu.alignment._EFF_AT_MIN`` /
``_EFF_ODD``): bumping :data:`MODEL_VERSION` or re-fitting the
efficiency floor invalidates every cached entry, so a stale model can
never serve old numbers.  This module deliberately imports nothing from
``repro.gpu`` at module scope (the GEMM model imports *us*).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: Version of the analytic model the caches key on.  Bump whenever the
#: latency/throughput math changes in a way that affects results.
MODEL_VERSION = "1"


def model_version() -> str:
    """Full cache-key version string: code version + live constants.

    Includes the alignment-efficiency constants because calibration
    (:mod:`repro.calibration.fit`) mutates them while searching — cached
    entries from one constant setting must not serve another.
    """
    from repro.gpu import alignment  # deferred: gpu imports this module

    return f"{MODEL_VERSION}:{alignment._EFF_AT_MIN!r}:{alignment._EFF_ODD!r}"


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(hits=self.hits, misses=self.misses)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return CacheStats(
            hits=self.hits - earlier.hits, misses=self.misses - earlier.misses
        )

    def describe(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({100 * self.hit_rate:.0f}% hit rate)"
        )


class LRUCache:
    """Thread-safe least-recently-used mapping with bounded size."""

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Any) -> Optional[Any]:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


class DiskCache:
    """On-disk ``.npz`` store for batch-evaluation results.

    One file per entry, named by the key digest.  Each file holds the
    result arrays plus a JSON metadata blob (the full key, so collisions
    are detected rather than silently served).
    """

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.npz"

    def get(self, digest: str, key_repr: str) -> Optional[Dict[str, Any]]:
        """Load arrays + meta for a digest, or None on miss/mismatch."""
        import numpy as np

        path = self._path(digest)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as npz:
                payload = {name: npz[name] for name in npz.files}
            meta = json.loads(str(payload.pop("__meta__")))
        except (OSError, ValueError, KeyError):
            self.stats.misses += 1
            return None
        if meta.get("key") != key_repr:
            # Digest collision or stale format: treat as a miss.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        payload["__meta__"] = meta
        return payload

    def put(self, digest: str, key_repr: str, arrays: Dict[str, Any], meta: Dict[str, Any]) -> None:
        import numpy as np

        meta = dict(meta)
        meta["key"] = key_repr
        path = self._path(digest)
        tmp = path.with_suffix(".tmp.npz")
        np.savez(tmp, __meta__=np.array(json.dumps(meta)), **arrays)
        tmp.replace(path)

    def clear(self) -> None:
        for path in self.directory.glob("*.npz"):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing deletes
                pass

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.npz"))


# -- key construction -----------------------------------------------------------


def spec_key(spec: Any) -> Tuple[Any, ...]:
    """Hashable fingerprint of a GPUSpec (its dict fields flattened).

    ``GPUSpec`` is frozen but holds per-dtype throughput dicts, so it is
    not hashable itself; this flattens every field deterministically.
    """
    out = []
    for f in dataclasses.fields(spec):
        value = getattr(spec, f.name)
        if isinstance(value, dict):
            value = tuple(
                sorted((getattr(k, "name", k), v) for k, v in value.items())
            )
        out.append(value)
    return tuple(out)


def tile_policy_key(tile: Any, candidates: Any) -> Tuple[Any, ...]:
    """Hashable fingerprint of a (fixed-tile, candidate-pool) policy."""

    def one(t: Any) -> Tuple[Any, ...]:
        return (t.m, t.n, t.k_stage, t.threads, t.peak_fraction)

    if tile is not None:
        return ("tile", one(tile))
    if candidates is not None:
        return ("candidates", tuple(one(t) for t in candidates))
    return ("auto",)


def digest_key(key: Any) -> str:
    """Stable SHA-256 digest of an arbitrary (repr-able) cache key."""
    return hashlib.sha256(repr(key).encode()).hexdigest()


def shapes_digest(shapes: Any) -> str:
    """SHA-256 digest of a canonical int64 (N, 4) shape array."""
    import numpy as np

    arr = np.ascontiguousarray(np.asarray(shapes, dtype=np.int64))
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


# -- the global scalar memo ------------------------------------------------------

#: Shared LRU for scalar ``GemmModel.evaluate`` calls.  Sized to hold the
#: full figure registry's distinct shapes many times over; one entry is a
#: small frozen dataclass, so memory cost is a few hundred bytes each.
_SCALAR_MEMO = LRUCache(maxsize=262144)
_SCALAR_ENABLED = True


def scalar_memo() -> LRUCache:
    """The process-wide scalar evaluation cache."""
    return _SCALAR_MEMO


def scalar_memo_enabled() -> bool:
    return _SCALAR_ENABLED


def configure(enabled: Optional[bool] = None, maxsize: Optional[int] = None) -> None:
    """Adjust the global scalar memo (used by tests and benchmarks)."""
    global _SCALAR_ENABLED, _SCALAR_MEMO
    if enabled is not None:
        _SCALAR_ENABLED = bool(enabled)
    if maxsize is not None and maxsize != _SCALAR_MEMO.maxsize:
        fresh = LRUCache(maxsize=maxsize)
        fresh.stats = _SCALAR_MEMO.stats
        _SCALAR_MEMO = fresh


def clear_scalar_memo() -> None:
    _SCALAR_MEMO.clear()


def scalar_memo_stats() -> CacheStats:
    return _SCALAR_MEMO.stats
