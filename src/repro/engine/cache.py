"""Two-level memoization for shape evaluation.

The analytic GEMM model is a *pure* function of (shape, GPU spec, dtype,
tile policy, model constants), which makes every evaluation cacheable.
This module provides the two cache levels the engine composes:

- :class:`LRUCache` — a thread-safe in-memory LRU used both for whole
  :class:`~repro.engine.vectorized.BatchResult` objects and (via the
  module-global :func:`scalar_memo`) for individual
  :class:`~repro.gpu.gemm_model.GemmPerf` evaluations, so repeated
  figure regeneration and overlapping autotune grids never recompute.
- :class:`DiskCache` — an optional on-disk ``.npz`` store keyed by a
  SHA-256 digest of ``(shapes, gpu, dtype, model-version)``, surviving
  process restarts.

Keys always embed :func:`model_version`, which folds in the calibration-
mutable alignment constants (``repro.gpu.alignment._EFF_AT_MIN`` /
``_EFF_ODD``): bumping :data:`MODEL_VERSION` or re-fitting the
efficiency floor invalidates every cached entry, so a stale model can
never serve old numbers.  This module deliberately imports nothing from
``repro.gpu`` at module scope (the GEMM model imports *us*).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import logging
import os
import threading
import zipfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.errors import CacheError
from repro.observability import event as _event
from repro.observability import metrics as _metrics
from repro.resilience.faults import fault_site

log = logging.getLogger("repro.engine.cache")

#: Version of the analytic model the caches key on.  Bump whenever the
#: latency/throughput math changes in a way that affects results.
MODEL_VERSION = "1"


def model_version() -> str:
    """Full cache-key version string: code version + live constants.

    Includes the alignment-efficiency constants because calibration
    (:mod:`repro.calibration.fit`) mutates them while searching — cached
    entries from one constant setting must not serve another.
    """
    from repro.gpu import alignment  # deferred: gpu imports this module

    return f"{MODEL_VERSION}:{alignment._EFF_AT_MIN!r}:{alignment._EFF_ODD!r}"


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level.

    ``quarantined`` counts corrupt disk entries renamed aside (each is
    also a miss, so ``lookups`` stays hits + misses).
    """

    hits: int = 0
    misses: int = 0
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits, misses=self.misses, quarantined=self.quarantined
        )

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            quarantined=self.quarantined - earlier.quarantined,
        )

    def describe(self) -> str:
        text = (
            f"{self.hits} hits / {self.misses} misses "
            f"({100 * self.hit_rate:.0f}% hit rate)"
        )
        if self.quarantined:
            text += f", {self.quarantined} quarantined"
        return text


class LRUCache:
    """Thread-safe least-recently-used mapping with bounded size."""

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Any) -> Optional[Any]:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


#: Per-process sequence for unique tmp-file names (combined with the
#: pid, so concurrent writers of the same digest never share a tmp).
_TMP_SEQ = itertools.count()

#: Suffix quarantined entries are renamed to.  Deliberately not
#: ``.npz``: ``clear()``/``__len__`` glob only live entries, and a
#: quarantined file can never be re-read as a cache hit.
QUARANTINE_SUFFIX = ".quarantined"


class DiskCache:
    """On-disk ``.npz`` store for batch-evaluation results.

    One file per entry, named by the key digest.  Each file holds the
    result arrays plus a JSON metadata blob (the full key, so collisions
    are detected rather than silently served).

    Robustness contract:

    - **Writes are atomic and crash-safe**: each writer serializes to a
      unique per-(pid, sequence) tmp file, fsyncs it, then
      ``os.replace``'s it into place — a crash mid-write can never
      leave a torn live entry, and two processes writing the same
      digest race only on which complete file wins.
    - **Corrupt entries are quarantined**, not retried forever: an
      unreadable file is renamed aside (``*.quarantined``), counted in
      :attr:`CacheStats.quarantined`, and the lookup proceeds as a
      miss, so one bad file costs one recompute instead of poisoning
      every warm start.
    """

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.npz"

    def _quarantine(self, path: Path) -> None:
        """Rename a corrupt entry aside so it is never re-read."""
        target = path.with_name(
            f"{path.name}{QUARANTINE_SUFFIX}.{os.getpid()}-{next(_TMP_SEQ)}"
        )
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - racing quarantine/delete
            return
        self.stats.quarantined += 1
        _metrics().counter("engine.disk.quarantined").inc()
        _event("cache.quarantine", entry=path.name)
        log.warning("quarantined corrupt cache entry %s -> %s", path, target.name)

    def get(self, digest: str, key_repr: str) -> Optional[Dict[str, Any]]:
        """Load arrays + meta for a digest, or None on miss/mismatch.

        A corrupt file is quarantined (renamed aside) and reported as a
        miss; a key mismatch (digest collision or stale format) is a
        plain miss.
        """
        import numpy as np

        fault_site("cache.disk_get", digest=digest, path=self._path(digest))
        path = self._path(digest)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as npz:
                payload = {name: npz[name] for name in npz.files}
            meta = json.loads(str(payload.pop("__meta__")))
            if not isinstance(meta, dict):
                raise ValueError(f"metadata is {type(meta).__name__}, not dict")
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # BadZipFile: a torn/truncated archive is the classic
            # crash-during-legacy-write corruption.
            self._quarantine(path)
            self.stats.misses += 1
            return None
        if meta.get("key") != key_repr:
            # Digest collision or stale format: treat as a miss.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        payload["__meta__"] = meta
        return payload

    def put(self, digest: str, key_repr: str, arrays: Dict[str, Any], meta: Dict[str, Any]) -> None:
        """Atomically persist one entry (unique tmp + fsync + replace).

        Raises :class:`~repro.errors.CacheError` when the entry cannot
        be written (disk full, permissions); callers degrade to
        memory-only caching.
        """
        import numpy as np

        meta = dict(meta)
        meta["key"] = key_repr
        path = self._path(digest)
        tmp = path.with_name(
            f"{digest}.{os.getpid()}-{next(_TMP_SEQ)}.tmp.npz"
        )
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, __meta__=np.array(json.dumps(meta)), **arrays)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise CacheError(f"cannot write cache entry {path}: {exc}") from exc
        # Chaos hook: a 'corrupt' fault here garbles the just-written
        # entry, exercising the quarantine path on the next get.
        fault_site("cache.disk_put", digest=digest, path=path)

    def clear(self) -> None:
        for path in self.directory.glob("*.npz"):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing deletes
                pass

    def quarantined_files(self) -> "list[Path]":
        """Quarantined entries currently on disk (diagnostics/tests)."""
        return sorted(self.directory.glob(f"*{QUARANTINE_SUFFIX}.*"))

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.npz"))


# -- key construction -----------------------------------------------------------


def spec_key(spec: Any) -> Tuple[Any, ...]:
    """Hashable fingerprint of a GPUSpec (its dict fields flattened).

    ``GPUSpec`` is frozen but holds per-dtype throughput dicts, so it is
    not hashable itself; this flattens every field deterministically.
    """
    out = []
    for f in dataclasses.fields(spec):
        value = getattr(spec, f.name)
        if isinstance(value, dict):
            value = tuple(
                sorted((getattr(k, "name", k), v) for k, v in value.items())
            )
        out.append(value)
    return tuple(out)


def tile_policy_key(tile: Any, candidates: Any) -> Tuple[Any, ...]:
    """Hashable fingerprint of a (fixed-tile, candidate-pool) policy."""

    def one(t: Any) -> Tuple[Any, ...]:
        return (t.m, t.n, t.k_stage, t.threads, t.peak_fraction)

    if tile is not None:
        return ("tile", one(tile))
    if candidates is not None:
        return ("candidates", tuple(one(t) for t in candidates))
    return ("auto",)


def digest_key(key: Any) -> str:
    """Stable SHA-256 digest of an arbitrary (repr-able) cache key."""
    return hashlib.sha256(repr(key).encode()).hexdigest()


def shapes_digest(shapes: Any) -> str:
    """SHA-256 digest of a canonical int64 (N, 4) shape array."""
    import numpy as np

    arr = np.ascontiguousarray(np.asarray(shapes, dtype=np.int64))
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


# -- the global scalar memo ------------------------------------------------------

#: Shared LRU for scalar ``GemmModel.evaluate`` calls.  Sized to hold the
#: full figure registry's distinct shapes many times over; one entry is a
#: small frozen dataclass, so memory cost is a few hundred bytes each.
_SCALAR_MEMO = LRUCache(maxsize=262144)
_SCALAR_ENABLED = True


def scalar_memo() -> LRUCache:
    """The process-wide scalar evaluation cache."""
    return _SCALAR_MEMO


def scalar_memo_enabled() -> bool:
    return _SCALAR_ENABLED


def configure(enabled: Optional[bool] = None, maxsize: Optional[int] = None) -> None:
    """Adjust the global scalar memo (used by tests and benchmarks)."""
    global _SCALAR_ENABLED, _SCALAR_MEMO
    if enabled is not None:
        _SCALAR_ENABLED = bool(enabled)
    if maxsize is not None and maxsize != _SCALAR_MEMO.maxsize:
        fresh = LRUCache(maxsize=maxsize)
        fresh.stats = _SCALAR_MEMO.stats
        _SCALAR_MEMO = fresh


def clear_scalar_memo() -> None:
    _SCALAR_MEMO.clear()


def scalar_memo_stats() -> CacheStats:
    return _SCALAR_MEMO.stats
