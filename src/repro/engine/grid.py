"""Structure-of-arrays experiment grids.

The engine's hot callers all follow the same shape: expand a sweep
(hidden sizes x head counts, microbatches x stages, ...) into a grid of
GEMM shapes, evaluate every point, then tabulate a few derived columns.
Historically each caller expanded that grid into per-point Python
objects — dataclasses, tuples, list appends — and only the innermost
evaluation was vectorized.  That per-shape Python overhead is the exact
"GEMM sliver" anti-pattern the paper warns about, applied to our own
evaluator.

:class:`ShapeGrid` keeps the whole grid columnar from expansion to
materialization: every field (``batch/m/n/k`` plus any caller-defined
annotation column) is one NumPy array, grid construction is a chain of
ufuncs, and no per-shape Python object exists until
:meth:`GridResult.rows` materializes the final table — one ``.tolist()``
per *column*, not one object per *point*.

Layout contract:

- All columns share one length ``N`` (scalars broadcast at build time).
- ``batch``, ``m``, ``n``, ``k`` are mandatory ``int64`` columns;
  :attr:`ShapeGrid.shapes` assembles them into the canonical ``(N, 4)``
  array :func:`~repro.engine.vectorized.evaluate_batch` consumes.
- Annotation columns keep whatever dtype :func:`numpy.asarray` infers
  (floats, ints, fixed-width strings) and ride along untouched.

``ShapeGrid`` is immutable after construction; derived grids come from
:meth:`with_columns`, :meth:`select`, and :meth:`concat`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.engine.vectorized import BatchResult

#: The four mandatory shape columns, in canonical ``shape_array`` order.
SHAPE_COLUMNS = ("batch", "m", "n", "k")


def _as_column(name: str, value: Any) -> np.ndarray:
    arr = np.asarray(value)
    if name in SHAPE_COLUMNS:
        arr = arr.astype(np.int64, copy=False)
    if arr.dtype == object:
        raise TypeError(f"column {name!r} has object dtype; use numeric or str")
    if arr.ndim > 1:
        raise ValueError(f"column {name!r} must be scalar or 1-D, got {arr.ndim}-D")
    return arr


class ShapeGrid:
    """An immutable columnar grid of GEMM shapes plus annotations."""

    __slots__ = ("_columns", "_length")

    def __init__(self, columns: Mapping[str, Any]) -> None:
        cols = {name: _as_column(name, value) for name, value in columns.items()}
        for required in SHAPE_COLUMNS:
            cols.setdefault(required, np.asarray(1, dtype=np.int64))
        length = max((c.shape[0] for c in cols.values() if c.ndim == 1), default=1)
        self._columns: Dict[str, np.ndarray] = {}
        for name, col in cols.items():
            if col.ndim == 0:
                col = np.broadcast_to(col, (length,))
            elif col.shape[0] != length:
                raise ValueError(
                    f"column {name!r} has length {col.shape[0]}, grid has {length}"
                )
            self._columns[name] = np.ascontiguousarray(col)
        self._length = length

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_columns(cls, **columns: Any) -> "ShapeGrid":
        """Build a grid from keyword columns (scalars broadcast)."""
        return cls(columns)

    @classmethod
    def concat(cls, grids: Sequence["ShapeGrid"]) -> "ShapeGrid":
        """Stack grids that share a column set into one larger grid."""
        if not grids:
            raise ValueError("cannot concat zero grids")
        names = list(grids[0]._columns)
        for g in grids[1:]:
            if list(g._columns) != names:
                raise ValueError(
                    f"column mismatch: {names} vs {list(g._columns)}"
                )
        return cls(
            {
                name: np.concatenate([g._columns[name] for g in grids])
                for name in names
            }
        )

    # -- views --------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def names(self) -> List[str]:
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        return self._columns[name]

    @property
    def shapes(self) -> np.ndarray:
        """The canonical ``(N, 4)`` int64 ``[batch, m, n, k]`` array."""
        return np.ascontiguousarray(
            np.stack([self._columns[c] for c in SHAPE_COLUMNS], axis=1)
        )

    def with_columns(self, **columns: Any) -> "ShapeGrid":
        """A new grid with extra (or replaced) annotation columns."""
        merged: Dict[str, Any] = dict(self._columns)
        merged.update(columns)
        return ShapeGrid(merged)

    def select(self, mask: Any) -> "ShapeGrid":
        """A new grid keeping only rows where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        return ShapeGrid({n: c[mask] for n, c in self._columns.items()})


class GridResult:
    """A :class:`ShapeGrid` joined with its :class:`BatchResult`.

    Column resolution order: grid annotation columns first, then any
    array field of the batch result (``latency_s``, ``tflops``,
    ``waves``, ...).  Materialization is columnar — :meth:`rows` does
    one ``.tolist()`` per requested column and zips, which is the only
    point per-row Python objects come into existence.
    """

    __slots__ = ("grid", "batch")

    def __init__(self, grid: ShapeGrid, batch: BatchResult) -> None:
        if len(grid) != len(batch.shapes):
            raise ValueError(
                f"grid has {len(grid)} rows, batch has {len(batch.shapes)}"
            )
        self.grid = grid
        self.batch = batch

    def __len__(self) -> int:
        return len(self.grid)

    def column(self, name: str) -> np.ndarray:
        if name in self.grid.names:
            return self.grid.column(name)
        if name in BatchResult._ARRAY_FIELDS:
            return getattr(self.batch, name)
        if name == "bound":
            return self.batch.bound
        raise KeyError(f"unknown column {name!r}")

    def columns(self, names: Iterable[str]) -> Dict[str, list]:
        """Materialize the named columns as Python lists (one tolist each)."""
        out = {}
        for name in names:
            col = self.column(name)
            out[name] = col.tolist()
        return out

    def rows(self, names: Sequence[str]) -> List[tuple]:
        """Materialize rows ``[(col0, col1, ...), ...]`` for a table."""
        cols = self.columns(names)
        return list(zip(*(cols[n] for n in names)))
