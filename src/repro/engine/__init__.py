"""Vectorized + memoized shape-evaluation engine.

Public surface:

- :func:`evaluate_batch` / :func:`shape_array` / :class:`BatchResult` —
  batched evaluation of ``(batch, m, n, k)`` shape arrays, bit-for-bit
  equal to the scalar :class:`repro.gpu.gemm_model.GemmModel`.
- :class:`ShapeGrid` / :class:`GridResult` — structure-of-arrays grids:
  whole sweeps evaluated as one ufunc chain via
  :meth:`ShapeEngine.evaluate_grid`, columnar from expansion to
  materialization.
- :class:`ShapeEngine` / :func:`default_engine` — the cached front door
  (in-memory LRU + optional mmap-shared on-disk store).
- :func:`verify_against_scalar` — the standing parity oracle.
- :mod:`repro.engine.cache` — cache primitives and the global scalar
  memo that :class:`GemmModel` consults.

Import order below is cycle-sensitive: ``repro.gpu.gemm_model`` imports
:mod:`repro.engine.cache`, so ``cache`` must be importable before the
modules here that (lazily) reach back into ``repro.gpu``.
"""

from repro.engine import cache
from repro.engine.vectorized import BatchResult, evaluate_batch, shape_array
from repro.engine.grid import GridResult, ShapeGrid
from repro.engine.core import (
    DISK_CACHE_ENV,
    ParityReport,
    ShapeEngine,
    default_engine,
    random_shapes,
    reset_default_engine,
    verify_against_scalar,
)

__all__ = [
    "BatchResult",
    "DISK_CACHE_ENV",
    "GridResult",
    "ParityReport",
    "ShapeEngine",
    "ShapeGrid",
    "cache",
    "default_engine",
    "evaluate_batch",
    "random_shapes",
    "reset_default_engine",
    "shape_array",
    "verify_against_scalar",
]
