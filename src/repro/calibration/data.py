"""Paper-derived anchor values for reproduction scoring.

The paper reports a handful of concrete quantitative claims; we encode
them as :class:`Anchor` objects with tolerances reflecting that our
substrate is a model, not their silicon.  EXPERIMENTS.md reports each
anchor's measured value next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Anchor:
    """One quantitative claim from the paper.

    ``lo``/``hi`` bound the acceptable *reproduced* value;
    ``paper_value`` (same unit as the claim itself — a ratio, percent,
    or TFLOP/s) sits inside the band, but reproduction succeeds when
    the shape-level mechanism is right even if the absolute value
    differs.
    """

    key: str
    description: str
    paper_value: float
    lo: float
    hi: float
    source: str

    def check(self, measured: float) -> bool:
        return self.lo <= measured <= self.hi


PAPER_ANCHORS: Tuple[Anchor, ...] = (
    Anchor(
        key="gemm_share_medium",
        description="GEMM kernels' share of a medium model's layer latency",
        paper_value=0.683,
        lo=0.55,
        hi=0.80,
        source="Sec I / Fig 2",
    ),
    Anchor(
        key="gemm_share_large",
        description="GEMM kernels' share of a large model's layer latency",
        paper_value=0.949,
        lo=0.80,
        hi=0.99,
        source="Sec I",
    ),
    Anchor(
        key="gpt3_27b_retune_speedup",
        description="speedup of the retuned GPT-3 2.7B shape (fewer heads)",
        paper_value=1.18,
        lo=1.10,
        hi=1.45,
        source="Sec I / Sec VI-B",
    ),
    Anchor(
        key="max_shape_speedup",
        description="max single-layer throughput gain among equal-size shapes",
        paper_value=1.39,
        lo=1.20,
        hi=2.20,
        source="Abstract / Fig 1",
    ),
    Anchor(
        key="h100_a100_ratio",
        description="H100 : A100 large-GEMM throughput ratio",
        paper_value=3.0,
        lo=2.3,
        hi=3.6,
        source="Sec VIII (MLPerf BERT correlation)",
    ),
)


def get_anchor(key: str) -> Anchor:
    """Look up an anchor by key."""
    for anchor in PAPER_ANCHORS:
        if anchor.key == key:
            return anchor
    raise KeyError(f"unknown anchor {key!r}")
