"""Least-squares fitting of GPU-model constants to measurements.

When a user has real kernel timings (from nsight / torch profiler) for
their own GPU, these fitters adjust the model's two most influential
scalar knobs so modelled latencies track the measurements:

- :func:`fit_bw_efficiency` — the sustained fraction of datasheet DRAM
  bandwidth, identified from memory-bound samples;
- :func:`fit_efficiency_floor` — the alignment-efficiency value at the
  minimum MMA granularity (the spread between the pow2=8 and pow2=64
  series of Figs 7/21-47), identified from compute-bound samples with
  varying k alignment.

Both use :func:`scipy.optimize.minimize_scalar` over a bounded range,
minimizing mean squared relative latency error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np
from scipy import optimize

from repro.engine import default_engine, shape_array
from repro.errors import CalibrationError
from repro.gpu import alignment
from repro.gpu.specs import GPUSpec, get_gpu
from repro.observability import metrics as _metrics
from repro.observability import span as _span
from repro.resilience.faults import fault_site
from repro.types import DType

if TYPE_CHECKING:
    from repro.resilience.checkpoint import SweepJournal


@dataclass(frozen=True)
class MeasuredGemm:
    """One measured kernel: shape plus observed latency."""

    m: int
    n: int
    k: int
    latency_s: float
    batch: int = 1

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k, self.batch) <= 0 or self.latency_s <= 0:
            raise CalibrationError(f"invalid measurement {self}")


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted constant plus goodness of fit.

    ``value`` is the fitted constant itself (a dimensionless fraction
    for both knobs); ``rms_rel_error`` is the root-mean-square relative
    latency error at that value.
    """

    name: str
    value: float
    rms_rel_error: float
    samples: int


def _sample_shapes(samples: Sequence[MeasuredGemm]) -> np.ndarray:
    return shape_array(
        [s.m for s in samples],
        [s.n for s in samples],
        [s.k for s in samples],
        [s.batch for s in samples],
    )


def _rel_errors(
    samples: Sequence[MeasuredGemm],
    spec: GPUSpec,
    dtype: "str | DType",
    bw_efficiency: "float | None" = None,
) -> np.ndarray:
    """Relative latency error of the model on each measurement.

    Predictions go through the engine batch path: each candidate
    constant the optimizer probes is one cached batch evaluation (the
    cache key folds in ``bw_efficiency`` and the live alignment
    constants, so probes never collide).
    """
    kwargs = {} if bw_efficiency is None else {"bw_efficiency": float(bw_efficiency)}
    predicted = default_engine().latency(
        _sample_shapes(samples), spec, dtype, **kwargs
    )
    measured = np.array([s.latency_s for s in samples])
    return (predicted - measured) / measured


def fit_bw_efficiency(
    samples: Sequence[MeasuredGemm],
    gpu: "str | GPUSpec" = "A100",
    dtype: "str | DType" = DType.FP16,
    bounds: "tuple[float, float]" = (0.4, 1.0),
) -> CalibrationResult:
    """Fit the sustained-bandwidth fraction from measured latencies."""
    if len(samples) < 2:
        raise CalibrationError("need at least 2 samples to fit bw efficiency")
    spec = get_gpu(gpu)

    def loss(bw_eff: float) -> float:
        return float(
            np.mean(_rel_errors(samples, spec, dtype, bw_efficiency=bw_eff) ** 2)
        )

    res = optimize.minimize_scalar(loss, bounds=bounds, method="bounded")
    if not res.success:  # pragma: no cover - bounded method always succeeds
        raise CalibrationError(f"bw fit failed: {res.message}")
    return CalibrationResult(
        name="bw_efficiency",
        value=float(res.x),
        rms_rel_error=float(np.sqrt(res.fun)),
        samples=len(samples),
    )


def fit_efficiency_floor(
    samples: Sequence[MeasuredGemm],
    gpu: "str | GPUSpec" = "A100",
    dtype: "str | DType" = DType.FP16,
    bounds: "tuple[float, float]" = (0.2, 0.95),
) -> CalibrationResult:
    """Fit the alignment-efficiency floor (_EFF_AT_MIN) from samples.

    Temporarily overrides the module constant during the search and
    restores it afterwards; the returned value can then be applied by
    the caller if desired.
    """
    if len(samples) < 2:
        raise CalibrationError("need at least 2 samples to fit the floor")
    spec = get_gpu(gpu)
    original = alignment._EFF_AT_MIN

    def loss(floor: float) -> float:
        alignment._EFF_AT_MIN = float(floor)
        try:
            return float(np.mean(_rel_errors(samples, spec, dtype) ** 2))
        finally:
            alignment._EFF_AT_MIN = original

    try:
        res = optimize.minimize_scalar(loss, bounds=bounds, method="bounded")
    finally:
        alignment._EFF_AT_MIN = original
    return CalibrationResult(
        name="alignment_efficiency_floor",
        value=float(res.x),
        rms_rel_error=float(np.sqrt(res.fun)),
        samples=len(samples),
    )


#: The named fits run_calibration performs, in order.
_FITTERS = {
    "bw_efficiency": fit_bw_efficiency,
    "alignment_efficiency_floor": fit_efficiency_floor,
}


def run_calibration(
    samples: Sequence[MeasuredGemm],
    gpu: "str | GPUSpec" = "A100",
    dtype: "str | DType" = DType.FP16,
    journal: Optional["SweepJournal"] = None,
) -> List[CalibrationResult]:
    """Run every constant fit, checkpointing each completed fit.

    Each fitter is one unit of work in the ``journal``
    (:class:`repro.resilience.checkpoint.SweepJournal`): a calibration
    run killed between fits and re-invoked with the same journal skips
    the fits already recorded and reconstructs their
    :class:`CalibrationResult` from the checkpoint payload.
    """
    results: List[CalibrationResult] = []
    done: Dict[str, Dict] = {}
    if journal is not None:
        for entry in journal.entries():
            if entry.get("status") == "ok" and entry.get("id") in _FITTERS:
                done[entry["id"]] = entry.get("payload", {})
    for name, fitter in _FITTERS.items():
        if name in done:
            payload = done[name]
            results.append(
                CalibrationResult(
                    name=name,
                    value=float(payload["value"]),
                    rms_rel_error=float(payload["rms_rel_error"]),
                    samples=int(payload["samples"]),
                )
            )
            continue
        with _span("calibration.fit", fit=name, gpu=str(gpu)) as sp:
            fault_site("calibration.fit", fit=name, gpu=str(gpu))
            result = fitter(samples, gpu=gpu, dtype=dtype)
            sp.set(
                value=result.value,
                rms_rel_error=result.rms_rel_error,
                samples=result.samples,
            )
            _metrics().counter("calibration.fits").inc()
        if journal is not None:
            journal.record(
                name,
                "ok",
                payload={
                    "value": result.value,
                    "rms_rel_error": result.rms_rel_error,
                    "samples": result.samples,
                },
            )
        results.append(result)
    return results


def synthetic_samples(
    gpu: "str | GPUSpec" = "A100",
    dtype: "str | DType" = DType.FP16,
    noise: float = 0.0,
    seed: int = 0,
) -> List[MeasuredGemm]:
    """Generate self-consistent 'measurements' from the model itself.

    Used by tests (fitters must recover the generating constants) and
    by the quickstart example as a stand-in for profiler output.
    """
    rng = np.random.default_rng(seed)
    shapes = [
        (8192, 4096, 4096),
        (8192, 10240, 2560),
        (4096, 4096, 64),
        (2048, 2048, 80),
        (8192, 2560, 2560),
        (1024, 1024, 1024),
        (8192, 50304, 2560),
    ]
    latencies = default_engine().latency(
        shape_array([m for m, _, _ in shapes], [n for _, n, _ in shapes],
                    [k for _, _, k in shapes]),
        get_gpu(gpu),
        dtype,
    )
    out = []
    for (m, n, k), latency in zip(shapes, latencies):
        jitter = 1.0 + noise * float(rng.standard_normal())
        out.append(
            MeasuredGemm(m=m, n=n, k=k, latency_s=float(latency) * max(jitter, 0.1))
        )
    return out
