"""Least-squares fitting of GPU-model constants to measurements.

When a user has real kernel timings (from nsight / torch profiler) for
their own GPU, these fitters adjust the model's two most influential
scalar knobs so modelled latencies track the measurements:

- :func:`fit_bw_efficiency` — the sustained fraction of datasheet DRAM
  bandwidth, identified from memory-bound samples;
- :func:`fit_efficiency_floor` — the alignment-efficiency value at the
  minimum MMA granularity (the spread between the pow2=8 and pow2=64
  series of Figs 7/21-47), identified from compute-bound samples with
  varying k alignment.

Both use :func:`scipy.optimize.minimize_scalar` over a bounded range,
minimizing mean squared relative latency error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import optimize

from repro.errors import CalibrationError
from repro.gpu import alignment
from repro.gpu.gemm_model import GemmModel
from repro.gpu.specs import GPUSpec, get_gpu
from repro.types import DType


@dataclass(frozen=True)
class MeasuredGemm:
    """One measured kernel: shape plus observed latency."""

    m: int
    n: int
    k: int
    latency_s: float
    batch: int = 1

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k, self.batch) <= 0 or self.latency_s <= 0:
            raise CalibrationError(f"invalid measurement {self}")


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted constant plus goodness of fit."""

    name: str
    value: float
    rms_rel_error: float
    samples: int


def _rel_errors(model: GemmModel, samples: Sequence[MeasuredGemm]) -> np.ndarray:
    predicted = np.array(
        [model.latency(s.m, s.n, s.k, s.batch) for s in samples]
    )
    measured = np.array([s.latency_s for s in samples])
    return (predicted - measured) / measured


def fit_bw_efficiency(
    samples: Sequence[MeasuredGemm],
    gpu: "str | GPUSpec" = "A100",
    dtype: "str | DType" = DType.FP16,
    bounds: "tuple[float, float]" = (0.4, 1.0),
) -> CalibrationResult:
    """Fit the sustained-bandwidth fraction from measured latencies."""
    if len(samples) < 2:
        raise CalibrationError("need at least 2 samples to fit bw efficiency")
    spec = get_gpu(gpu)

    def loss(bw_eff: float) -> float:
        model = GemmModel(spec, dtype, bw_efficiency=float(bw_eff))
        return float(np.mean(_rel_errors(model, samples) ** 2))

    res = optimize.minimize_scalar(loss, bounds=bounds, method="bounded")
    if not res.success:  # pragma: no cover - bounded method always succeeds
        raise CalibrationError(f"bw fit failed: {res.message}")
    return CalibrationResult(
        name="bw_efficiency",
        value=float(res.x),
        rms_rel_error=float(np.sqrt(res.fun)),
        samples=len(samples),
    )


def fit_efficiency_floor(
    samples: Sequence[MeasuredGemm],
    gpu: "str | GPUSpec" = "A100",
    dtype: "str | DType" = DType.FP16,
    bounds: "tuple[float, float]" = (0.2, 0.95),
) -> CalibrationResult:
    """Fit the alignment-efficiency floor (_EFF_AT_MIN) from samples.

    Temporarily overrides the module constant during the search and
    restores it afterwards; the returned value can then be applied by
    the caller if desired.
    """
    if len(samples) < 2:
        raise CalibrationError("need at least 2 samples to fit the floor")
    spec = get_gpu(gpu)
    original = alignment._EFF_AT_MIN

    def loss(floor: float) -> float:
        alignment._EFF_AT_MIN = float(floor)
        try:
            model = GemmModel(spec, dtype)
            return float(np.mean(_rel_errors(model, samples) ** 2))
        finally:
            alignment._EFF_AT_MIN = original

    try:
        res = optimize.minimize_scalar(loss, bounds=bounds, method="bounded")
    finally:
        alignment._EFF_AT_MIN = original
    return CalibrationResult(
        name="alignment_efficiency_floor",
        value=float(res.x),
        rms_rel_error=float(np.sqrt(res.fun)),
        samples=len(samples),
    )


def synthetic_samples(
    gpu: "str | GPUSpec" = "A100",
    dtype: "str | DType" = DType.FP16,
    noise: float = 0.0,
    seed: int = 0,
) -> List[MeasuredGemm]:
    """Generate self-consistent 'measurements' from the model itself.

    Used by tests (fitters must recover the generating constants) and
    by the quickstart example as a stand-in for profiler output.
    """
    rng = np.random.default_rng(seed)
    model = GemmModel(gpu, dtype)
    shapes = [
        (8192, 4096, 4096),
        (8192, 10240, 2560),
        (4096, 4096, 64),
        (2048, 2048, 80),
        (8192, 2560, 2560),
        (1024, 1024, 1024),
        (8192, 50304, 2560),
    ]
    out = []
    for m, n, k in shapes:
        latency = model.latency(m, n, k)
        jitter = 1.0 + noise * float(rng.standard_normal())
        out.append(MeasuredGemm(m=m, n=n, k=k, latency_s=latency * max(jitter, 0.1)))
    return out
