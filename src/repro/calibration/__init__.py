"""Calibration of model constants against measurements.

The GPU model's free constants (alignment-efficiency floor, bandwidth
efficiency, tile peak fractions) set the absolute scale of its outputs.
:mod:`repro.calibration.fit` fits them to measurement samples by least
squares, and :mod:`repro.calibration.data` carries the paper-derived
anchor ratios used by EXPERIMENTS.md to judge reproduction quality.
"""

from repro.calibration.data import PAPER_ANCHORS, Anchor
from repro.calibration.fit import (
    CalibrationResult,
    MeasuredGemm,
    fit_bw_efficiency,
    fit_efficiency_floor,
)

__all__ = [
    "PAPER_ANCHORS",
    "Anchor",
    "CalibrationResult",
    "MeasuredGemm",
    "fit_bw_efficiency",
    "fit_efficiency_floor",
]
