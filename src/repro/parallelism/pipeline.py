"""Pipeline parallelism: stage assignment and bubble overhead.

The paper's rule: "in all cases it is optimal for the number of layers
to be divisible by the number of pipeline parallel stages" — an uneven
split makes every pipeline slot run at the slowest (largest) stage's
pace.  :func:`assign_stages` performs the balanced split, and
:func:`bubble_fraction` gives the classic 1F1B bubble overhead
``(p - 1) / m`` for ``m`` microbatches in flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ParallelismError


def assign_stages(num_layers: int, num_stages: int) -> List[int]:
    """Layers per stage, front-loading the remainder (Megatron style)."""
    if num_layers <= 0 or num_stages <= 0:
        raise ParallelismError(
            f"layers ({num_layers}) and stages ({num_stages}) must be positive"
        )
    if num_stages > num_layers:
        raise ParallelismError(
            f"cannot split {num_layers} layers into {num_stages} stages"
        )
    base, extra = divmod(num_layers, num_stages)
    return [base + (1 if i < extra else 0) for i in range(num_stages)]


def is_balanced(num_layers: int, num_stages: int) -> bool:
    """True when every stage carries the same number of layers."""
    return num_layers % num_stages == 0


def bubble_fraction(num_stages: int, num_microbatches: int) -> float:
    """1F1B pipeline bubble as a fraction of ideal time: (p-1)/m."""
    if num_stages <= 0 or num_microbatches <= 0:
        raise ParallelismError("stages and microbatches must be positive")
    return (num_stages - 1) / num_microbatches


@dataclass(frozen=True)
class PipelinePlan:
    """A pipeline split and its modelled efficiency."""

    num_layers: int
    num_stages: int
    num_microbatches: int
    layer_time_s: float
    stage_boundary_s: float = 0.0

    @property
    def stage_layers(self) -> List[int]:
        return assign_stages(self.num_layers, self.num_stages)

    @property
    def balanced(self) -> bool:
        return is_balanced(self.num_layers, self.num_stages)

    @property
    def max_stage_time_s(self) -> float:
        """Time of the slowest stage — the pipeline's clock period."""
        return max(self.stage_layers) * self.layer_time_s + self.stage_boundary_s

    @property
    def iteration_time_s(self) -> float:
        """Time for all microbatches through the pipeline (1F1B)."""
        m, p = self.num_microbatches, self.num_stages
        return (m + p - 1) * self.max_stage_time_s

    @property
    def efficiency(self) -> float:
        """Useful compute fraction: ideal work time / modelled time.

        Penalized by both the bubble and any imbalance (an uneven split
        clocks the pipeline at the largest stage).
        """
        ideal = self.num_layers * self.layer_time_s * self.num_microbatches
        actual = self.iteration_time_s * self.num_stages
        return ideal / actual if actual else 0.0
