"""3D-parallelism planner: choose (t, p, d) for a model on a cluster.

A small Narayanan-et-al.-style cost model: enumerate feasible
(tensor, pipeline, data) factorizations of the GPU count, require the
model's weights + activations to fit per-GPU memory, and score each plan
by modelled iteration time (TP layer cost x pipeline schedule + data-
parallel gradient all-reduce).  Used by the Sec VII-A case study to
show how Summit's 6-GPU nodes push designs toward t=6 and what that
costs when ``h/6`` loses its power-of-two factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import TransformerConfig
from repro.core.formulas import kv_cache_bytes  # noqa: F401  (re-exported convenience)
from repro.engine import cache as engine_cache
from repro.errors import ParallelismError
from repro.parallelism.pipeline import PipelinePlan
from repro.parallelism.tensor_parallel import TensorParallelLayer, validate_tp_feasible
from repro.parallelism.topology import NodeTopology, get_system
from repro.types import DType


@dataclass(frozen=True)
class ParallelPlan:
    """One (t, p, d) decomposition and its modelled iteration time."""

    tp: int
    pp: int
    dp: int
    iteration_time_s: float
    comm_fraction: float
    fits_memory: bool
    balanced_pipeline: bool

    @property
    def gpus(self) -> int:
        return self.tp * self.pp * self.dp

    def describe(self) -> str:
        return (
            f"t={self.tp} p={self.pp} d={self.dp}: "
            f"{self.iteration_time_s * 1e3:.1f} ms/iter, "
            f"comm {100 * self.comm_fraction:.1f}%"
            + ("" if self.balanced_pipeline else " (unbalanced pipeline)")
            + ("" if self.fits_memory else " (OUT OF MEMORY)")
        )


class ParallelPlanner:
    """Enumerates and scores (t, p, d) plans for a model on a system."""

    def __init__(
        self,
        system: "str | NodeTopology",
        dtype: "str | DType" = DType.FP16,
        num_microbatches: int = 8,
    ) -> None:
        self.topology = get_system(system)
        self.dtype = DType.parse(dtype)
        self.num_microbatches = num_microbatches
        self.tp_model = TensorParallelLayer(self.topology, self.dtype)
        # plan() re-evaluates the same (cfg, t) layer cost for every
        # pipeline/data split of the same tensor degree; memoize it.
        # TransformerConfig is frozen/hashable, and the model version
        # guards against calibration mutating the alignment constants.
        self._layer_cost_memo: dict = {}

    def _layer_cost(self, cfg: TransformerConfig, t: int):
        key = (cfg, t, engine_cache.model_version())
        cost = self._layer_cost_memo.get(key)
        if cost is None:
            cost = self.tp_model.layer_cost(cfg, t)
            self._layer_cost_memo[key] = cost
        return cost

    # -- memory ----------------------------------------------------------------

    def memory_per_gpu_bytes(self, cfg: TransformerConfig, t: int, p: int) -> float:
        """Training footprint per GPU (see :mod:`repro.core.memory`)."""
        from repro.core.memory import training_bytes

        sharded = cfg.with_overrides(tp_degree=t)
        return training_bytes(sharded, pipeline_stages=p).total

    def fits(self, cfg: TransformerConfig, t: int, p: int) -> bool:
        from repro.core.memory import MemoryBudget, training_bytes

        budget = MemoryBudget.for_gpu(self.topology.gpu)
        sharded = cfg.with_overrides(tp_degree=t)
        return budget.fits(training_bytes(sharded, pipeline_stages=p))

    # -- planning --------------------------------------------------------------

    def evaluate(self, cfg: TransformerConfig, t: int, p: int, d: int) -> ParallelPlan:
        """Score one decomposition (raises if TP is infeasible)."""
        validate_tp_feasible(cfg, t)
        if cfg.num_layers < p:
            raise ParallelismError(
                f"{p} pipeline stages exceed {cfg.num_layers} layers"
            )
        layer = self._layer_cost(cfg, t)
        boundary_bytes = (
            cfg.microbatch * cfg.seq_len * cfg.hidden_size * self.dtype.bytes
        )
        boundary = (
            self.topology.comm_for(t * p).send(boundary_bytes) if p > 1 else 0.0
        )
        plan = PipelinePlan(
            num_layers=cfg.num_layers,
            num_stages=p,
            num_microbatches=self.num_microbatches,
            layer_time_s=layer.total_s,
            stage_boundary_s=boundary,
        )
        iteration = plan.iteration_time_s
        # Data-parallel gradient all-reduce, overlapped poorly at small
        # scale: count half its ring time.
        if d > 1:
            grad_bytes = cfg.param_count() / (t * p) * self.dtype.bytes
            comm = self.topology.comm_for(d * t * p)
            iteration += 0.5 * comm.allreduce(grad_bytes, d)
        comm_s = layer.comm_s * cfg.num_layers / p * self.num_microbatches
        comm_frac = min(1.0, comm_s / iteration) if iteration else 0.0
        return ParallelPlan(
            tp=t,
            pp=p,
            dp=d,
            iteration_time_s=iteration,
            comm_fraction=comm_frac,
            fits_memory=self.fits(cfg, t, p),
            balanced_pipeline=plan.balanced,
        )

    def plan(
        self,
        cfg: TransformerConfig,
        num_gpus: int,
        require_fit: bool = True,
    ) -> List[ParallelPlan]:
        """All feasible plans for ``num_gpus``, fastest first."""
        if num_gpus <= 0:
            raise ParallelismError("num_gpus must be positive")
        plans = []
        for t in _divisors(num_gpus):
            if t > self.topology.gpus_per_node:
                continue  # TP across nodes is never competitive
            for p in _divisors(num_gpus // t):
                d = num_gpus // (t * p)
                try:
                    plan = self.evaluate(cfg, t, p, d)
                except ParallelismError:
                    continue
                if require_fit and not plan.fits_memory:
                    continue
                plans.append(plan)
        plans.sort(key=lambda pl: pl.iteration_time_s)
        return plans

    def best(self, cfg: TransformerConfig, num_gpus: int) -> Optional[ParallelPlan]:
        plans = self.plan(cfg, num_gpus)
        return plans[0] if plans else None


def _divisors(n: int) -> List[int]:
    return [i for i in range(1, n + 1) if n % i == 0]
