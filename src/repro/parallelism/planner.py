"""3D-parallelism planner: choose (t, p, d) for a model on a cluster.

A small Narayanan-et-al.-style cost model: enumerate feasible
(tensor, pipeline, data) factorizations of the GPU count, require the
model's training-step footprint to fit per-GPU memory, and score each
plan by modelled iteration time (TP layer cost x pipeline schedule +
data-parallel gradient all-reduce).  Used by the Sec VII-A case study to
show how Summit's 6-GPU nodes push designs toward t=6 and what that
costs when ``h/6`` loses its power-of-two factor.

Capacity comes from the training-step memory estimator
(:func:`repro.trainstep.memory.estimate_memory`): a per-phase timeline
of parameter, gradient, fp32 Adam-state, and activation bytes on the
heaviest pipeline stage.  Unlike the old parameter-heuristic
(:func:`repro.core.memory.training_bytes`), the estimator walks the
model per module — so tied embeddings are counted once, the embedding
stays resident on its stage rather than being diluted by ``p``, and the
planner can trade **full activation checkpointing** (boundary-only
activations) against its recompute cost (one extra forward pass per
layer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import TransformerConfig
from repro.core.formulas import kv_cache_bytes  # noqa: F401  (re-exported convenience)
from repro.core.memory import MemoryBudget
from repro.engine import cache as engine_cache
from repro.errors import CapacityError, ParallelismError
from repro.parallelism.pipeline import PipelinePlan
from repro.parallelism.tensor_parallel import TensorParallelLayer, validate_tp_feasible
from repro.parallelism.topology import NodeTopology, get_system
from repro.trainstep.memory import TrainStepMemory, estimate_memory
from repro.types import DType

#: Extra forward passes full activation checkpointing adds per layer:
#: every checkpointed layer re-runs its forward during backward, so the
#: modelled per-layer (forward) schedule time doubles.
_RECOMPUTE_FACTOR = 2.0


@dataclass(frozen=True)
class ParallelPlan:
    """One (t, p, d) decomposition and its modelled iteration time."""

    tp: int
    pp: int
    dp: int
    iteration_time_s: float
    comm_fraction: float
    fits_memory: bool
    balanced_pipeline: bool
    checkpointing: str = "none"
    peak_memory_bytes: float = 0.0
    peak_memory_phase: str = ""

    @property
    def gpus(self) -> int:
        return self.tp * self.pp * self.dp

    def describe(self) -> str:
        return (
            f"t={self.tp} p={self.pp} d={self.dp}: "
            f"{self.iteration_time_s * 1e3:.1f} ms/iter, "
            f"comm {100 * self.comm_fraction:.1f}%"
            + (
                f", peak {self.peak_memory_bytes / 1e9:.1f} GB"
                f" ({self.peak_memory_phase})"
                if self.peak_memory_bytes
                else ""
            )
            + ("" if self.checkpointing == "none" else f" [ckpt={self.checkpointing}]")
            + ("" if self.balanced_pipeline else " (unbalanced pipeline)")
            + ("" if self.fits_memory else " (OUT OF MEMORY)")
        )


class ParallelPlanner:
    """Enumerates and scores (t, p, d) plans for a model on a system."""

    def __init__(
        self,
        system: "str | NodeTopology",
        dtype: "str | DType" = DType.FP16,
        num_microbatches: int = 8,
    ) -> None:
        self.topology = get_system(system)
        self.dtype = DType.parse(dtype)
        self.num_microbatches = num_microbatches
        self.tp_model = TensorParallelLayer(self.topology, self.dtype)
        # plan() re-evaluates the same (cfg, t) layer cost for every
        # pipeline/data split of the same tensor degree; memoize it.
        # TransformerConfig is frozen/hashable, and the model version
        # guards against calibration mutating the alignment constants.
        self._layer_cost_memo: dict = {}

    def _layer_cost(self, cfg: TransformerConfig, t: int):
        key = (cfg, t, engine_cache.model_version())
        cost = self._layer_cost_memo.get(key)
        if cost is None:
            cost = self.tp_model.layer_cost(cfg, t)
            self._layer_cost_memo[key] = cost
        return cost

    # -- memory ----------------------------------------------------------------

    def budget(self) -> MemoryBudget:
        """This system's per-GPU budget (capacity minus headroom)."""
        return MemoryBudget.for_gpu(self.topology.gpu)

    def memory_report(
        self,
        cfg: TransformerConfig,
        t: int,
        p: int,
        checkpointing: str = "none",
    ) -> TrainStepMemory:
        """Per-phase memory timeline of the heaviest stage under (t, p)."""
        return estimate_memory(
            cfg, tp=t, pipeline_stages=p, checkpointing=checkpointing
        )

    def memory_per_gpu_bytes(
        self,
        cfg: TransformerConfig,
        t: int,
        p: int,
        checkpointing: str = "none",
    ) -> float:
        """Peak training footprint per GPU (estimator-backed)."""
        return self.memory_report(cfg, t, p, checkpointing).peak_bytes

    def fits(
        self,
        cfg: TransformerConfig,
        t: int,
        p: int,
        checkpointing: str = "none",
    ) -> bool:
        report = self.memory_report(cfg, t, p, checkpointing)
        return report.fits(self.budget())

    def check_capacity(
        self,
        cfg: TransformerConfig,
        t: int,
        p: int,
        checkpointing: str = "none",
    ) -> TrainStepMemory:
        """The memory report, or :class:`~repro.errors.CapacityError`
        naming the overflowing phase if the plan does not fit."""
        report = self.memory_report(cfg, t, p, checkpointing)
        report.require_fits(self.budget())
        return report

    # -- planning --------------------------------------------------------------

    def evaluate(
        self,
        cfg: TransformerConfig,
        t: int,
        p: int,
        d: int,
        checkpointing: str = "none",
    ) -> ParallelPlan:
        """Score one decomposition (raises if TP is infeasible)."""
        validate_tp_feasible(cfg, t)
        if cfg.num_layers < p:
            raise ParallelismError(
                f"{p} pipeline stages exceed {cfg.num_layers} layers"
            )
        layer = self._layer_cost(cfg, t)
        layer_time = layer.total_s
        if checkpointing == "full":
            layer_time *= _RECOMPUTE_FACTOR
        boundary_bytes = (
            cfg.microbatch * cfg.seq_len * cfg.hidden_size * self.dtype.bytes
        )
        boundary = (
            self.topology.comm_for(t * p).send(boundary_bytes) if p > 1 else 0.0
        )
        plan = PipelinePlan(
            num_layers=cfg.num_layers,
            num_stages=p,
            num_microbatches=self.num_microbatches,
            layer_time_s=layer_time,
            stage_boundary_s=boundary,
        )
        iteration = plan.iteration_time_s
        # Data-parallel gradient all-reduce, overlapped poorly at small
        # scale: count half its ring time.
        if d > 1:
            grad_bytes = cfg.param_count() / (t * p) * self.dtype.bytes
            comm = self.topology.comm_for(d * t * p)
            iteration += 0.5 * comm.allreduce(grad_bytes, d)
        comm_s = layer.comm_s * cfg.num_layers / p * self.num_microbatches
        comm_frac = min(1.0, comm_s / iteration) if iteration else 0.0
        memory = self.memory_report(cfg, t, p, checkpointing)
        return ParallelPlan(
            tp=t,
            pp=p,
            dp=d,
            iteration_time_s=iteration,
            comm_fraction=comm_frac,
            fits_memory=memory.fits(self.budget()),
            balanced_pipeline=plan.balanced,
            checkpointing=checkpointing,
            peak_memory_bytes=memory.peak_bytes,
            peak_memory_phase=memory.peak_phase,
        )

    def plan(
        self,
        cfg: TransformerConfig,
        num_gpus: int,
        require_fit: bool = True,
        checkpointing: str = "auto",
    ) -> List[ParallelPlan]:
        """All feasible plans for ``num_gpus``, fastest first.

        ``checkpointing="auto"`` (the default) prefers no checkpointing
        — it is always at least as fast — and falls back to full
        checkpointing only for (t, p) cells whose activations OOM
        without it, trading the recompute forward pass for the smaller
        boundary-only footprint.  Pass ``"none"`` or ``"full"`` to pin
        the policy for every cell.
        """
        if num_gpus <= 0:
            raise ParallelismError("num_gpus must be positive")
        policies = (
            ("none", "full") if checkpointing == "auto" else (checkpointing,)
        )
        plans = []
        for t in _divisors(num_gpus):
            if t > self.topology.gpus_per_node:
                continue  # TP across nodes is never competitive
            for p in _divisors(num_gpus // t):
                d = num_gpus // (t * p)
                for policy in policies:
                    try:
                        plan = self.evaluate(cfg, t, p, d, checkpointing=policy)
                    except ParallelismError:
                        break  # infeasible for reasons checkpointing can't fix
                    if plan.fits_memory or not require_fit:
                        plans.append(plan)
                        break  # first (cheapest) policy that fits wins
        plans.sort(key=lambda pl: pl.iteration_time_s)
        return plans

    def best(self, cfg: TransformerConfig, num_gpus: int) -> Optional[ParallelPlan]:
        plans = self.plan(cfg, num_gpus)
        return plans[0] if plans else None


def _divisors(n: int) -> List[int]:
    return [i for i in range(1, n + 1) if n % i == 0]


def capacity_matrix(
    planner: ParallelPlanner,
    cfg: TransformerConfig,
    tp_degrees: "tuple | list" = (1, 2, 4, 8),
    pipeline_stages: "tuple | list" = (1, 2, 4),
    checkpointing: str = "none",
) -> List[dict]:
    """Fits/rejects matrix over a (t, p) sweep, one row per cell.

    Each row carries the verdict and, for rejects, the typed
    :class:`~repro.errors.CapacityError`'s overflowing phase — the
    harness snapshots this as the OOM-wall golden.
    """
    rows: List[dict] = []
    budget = planner.budget()
    for t in tp_degrees:
        for p in pipeline_stages:
            try:
                validate_tp_feasible(cfg, t)
                if cfg.num_layers < p:
                    raise ParallelismError(
                        f"{p} pipeline stages exceed {cfg.num_layers} layers"
                    )
                report = planner.check_capacity(cfg, t, p, checkpointing)
            except CapacityError as exc:
                rows.append(
                    {
                        "tp": t,
                        "pp": p,
                        "fits": False,
                        "phase": exc.phase,
                        "peak_gb": exc.required_bytes / 1e9,
                        "budget_gb": budget.usable_bytes / 1e9,
                    }
                )
            except ParallelismError:
                rows.append(
                    {
                        "tp": t,
                        "pp": p,
                        "fits": False,
                        "phase": "infeasible",
                        "peak_gb": 0.0,
                        "budget_gb": budget.usable_bytes / 1e9,
                    }
                )
            else:
                rows.append(
                    {
                        "tp": t,
                        "pp": p,
                        "fits": True,
                        "phase": report.peak_phase,
                        "peak_gb": report.peak_bytes / 1e9,
                        "budget_gb": budget.usable_bytes / 1e9,
                    }
                )
    return rows
