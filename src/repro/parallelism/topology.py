"""Node topologies of the paper's Table III systems.

Captures GPUs per node, intra-node (NVLink) and inter-node (InfiniBand /
EFA) interconnects for AWS p4d, ORNL Summit, and SDSC Expanse — the
Sec VII-A case study contrasts Summit's 6-GPU nodes against the common
8-GPU layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ParallelismError
from repro.gpu.specs import GPUSpec, get_gpu
from repro.parallelism.comm import CommModel


@dataclass(frozen=True)
class NodeTopology:
    """One system's node shape and interconnect speeds (Table III)."""

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    #: Intra-node per-GPU link bandwidth, bytes/s (NVLink).
    intra_node_bw: float
    #: Inter-node per-node network bandwidth, bytes/s.
    inter_node_bw: float
    intra_alpha_s: float = 3.0e-6
    inter_alpha_s: float = 8.0e-6

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0:
            raise ParallelismError(f"{self.name}: gpus_per_node must be positive")

    def comm_for(self, ranks: int) -> CommModel:
        """Collective cost model for a group of ``ranks`` GPUs.

        Groups that fit in one node use NVLink; larger groups are
        bottlenecked by the inter-node network.
        """
        if ranks <= self.gpus_per_node:
            return CommModel(self.intra_node_bw, self.intra_alpha_s)
        return CommModel(self.inter_node_bw, self.inter_alpha_s)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.gpus_per_node}x {self.gpu.name}/node, "
            f"NVLink {self.intra_node_bw / 1e9:.0f} GB/s, "
            f"network {self.inter_node_bw / 1e9:.0f} GB/s"
        )


_SYSTEMS: Dict[str, NodeTopology] = {}


def register_system(topo: NodeTopology) -> None:
    _SYSTEMS[topo.name.lower()] = topo


# Table III.  Bandwidths are the per-direction aggregate figures quoted
# there (NVLink GBps; networks Gbps converted to bytes/s).
register_system(
    NodeTopology(
        name="aws-p4d",
        gpu=get_gpu("A100"),
        gpus_per_node=8,
        intra_node_bw=600e9,
        inter_node_bw=400e9 / 8,
    )
)
register_system(
    NodeTopology(
        name="ornl-summit",
        gpu=get_gpu("V100"),
        gpus_per_node=6,
        intra_node_bw=100e9,
        inter_node_bw=200e9 / 8,
    )
)
register_system(
    NodeTopology(
        name="sdsc-expanse",
        gpu=get_gpu("V100").with_overrides(name="V100-32GB", memory_gb=32.0),
        gpus_per_node=4,
        intra_node_bw=100e9,
        inter_node_bw=200e9 / 8,
    )
)


def get_system(name: "str | NodeTopology") -> NodeTopology:
    """Look up a Table III system by name."""
    if isinstance(name, NodeTopology):
        return name
    try:
        return _SYSTEMS[str(name).strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_SYSTEMS))
        raise ParallelismError(f"unknown system {name!r}; known: {known}") from None


def list_systems() -> Tuple[NodeTopology, ...]:
    return tuple(sorted(_SYSTEMS.values(), key=lambda t: t.name))
