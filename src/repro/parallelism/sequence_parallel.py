"""Sequence parallelism on top of tensor parallelism (Megatron-SP).

The paper leaves "an analysis of the implications of pipeline and
sequence parallelism on optimal model shapes to future work"
(Sec III-C).  This module supplies the cost model for the established
scheme (Korthikanti et al.): within a tensor-parallel group of size t,
the regions *outside* the GEMMs — layer norms, dropout, residual adds —
are sharded along the sequence dimension, and the two per-layer
all-reduces are replaced by an all-gather entering each GEMM region and
a reduce-scatter leaving it.

Consequences captured here:

- **communication volume is unchanged** (a ring all-reduce is exactly a
  reduce-scatter followed by an all-gather of the same bytes),
- **pointwise time divides by t** (each rank norms s/t of the tokens),
- **activation memory for the norm regions divides by t**, which is the
  scheme's main payoff,
- **shape rules gain a new divisibility constraint: s % t == 0** — a
  genuinely new sizing rule in the spirit of the paper's Sec VI-B list.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TransformerConfig
from repro.core.latency import GEMM_COMPONENTS
from repro.errors import ParallelismError
from repro.parallelism.tensor_parallel import TensorParallelLayer, TPLayerCost
from repro.parallelism.topology import NodeTopology


def validate_sp_feasible(cfg: TransformerConfig, t: int) -> None:
    """Sequence parallelism additionally needs s divisible by t."""
    if cfg.seq_len % t:
        raise ParallelismError(
            f"{cfg.name}: sequence length {cfg.seq_len} not divisible by "
            f"t={t}; sequence parallelism shards the token dimension"
        )


@dataclass(frozen=True)
class SPLayerCost(TPLayerCost):
    """TP cost plus the sequence-parallel pointwise saving."""

    pointwise_saved_s: float = 0.0


class SequenceParallelLayer(TensorParallelLayer):
    """Layer cost under combined tensor + sequence parallelism."""

    def layer_cost(self, cfg: TransformerConfig, t: int) -> SPLayerCost:
        """Per-rank cost with sequence-sharded pointwise regions.

        GEMM time is identical to plain TP (same per-rank shapes);
        pointwise kernels process s/t tokens each; the collectives move
        the same bytes as TP's all-reduces.
        """
        validate_sp_feasible(cfg, t)
        sharded = self.shard_config(cfg, t)
        bd = self.latency_model.layer_breakdown(sharded)
        gemm_s = bd.gemm_s
        pointwise_s = bd.total_s - gemm_s
        # Softmax lives inside the attention region (already sharded by
        # heads under TP), not in the sequence-sharded norm regions.
        softmax_s = bd.components.get("softmax", 0.0)
        shardable = pointwise_s - softmax_s
        sp_pointwise = shardable / t + softmax_s
        saved = shardable - shardable / t

        comm_model = self.topology.comm_for(t)
        activation_bytes = (
            cfg.microbatch * cfg.seq_len * cfg.hidden_size * self.dtype.bytes
        )
        # all-gather + reduce-scatter per GEMM region x 2 regions ==
        # 2 ring all-reduces' volume.
        comm = 2 * comm_model.allreduce(activation_bytes, t)
        return SPLayerCost(
            compute_s=gemm_s + sp_pointwise,
            comm_s=comm,
            tp_degree=t,
            pointwise_saved_s=saved,
        )

    def activation_savings_fraction(self, cfg: TransformerConfig, t: int) -> float:
        """Fraction of the norm-region activations SP removes: 1 - 1/t."""
        validate_sp_feasible(cfg, t)
        if t <= 0:
            raise ParallelismError("t must be positive")
        return 1.0 - 1.0 / t
