"""Megatron-style tensor parallelism over the Table II GEMMs.

Column-parallel QKV / MLP-up, row-parallel projection / MLP-down, one
all-reduce after the attention block and one after the MLP block (per
forward pass).  The per-rank GEMM shapes are the paper's Table II with
the ``/t`` divisions, so this module also encodes the feasibility rules
the Sec VII-A case study turns on: ``a % t == 0`` and ``d_ff % t == 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import TransformerConfig
from repro.core.gemms import TransformerGemm, layer_gemms
from repro.core.latency import LayerLatencyModel
from repro.errors import ParallelismError
from repro.parallelism.comm import CommModel
from repro.parallelism.topology import NodeTopology, get_system
from repro.types import DType


def validate_tp_feasible(cfg: TransformerConfig, t: int) -> None:
    """Raise :class:`ParallelismError` if ``t``-way TP cannot shard cfg."""
    if t <= 0:
        raise ParallelismError(f"tp degree must be positive, got {t}")
    problems = []
    if cfg.num_heads % t:
        problems.append(f"a={cfg.num_heads} not divisible by t={t}")
    if cfg.hidden_size % t:
        problems.append(f"h={cfg.hidden_size} not divisible by t={t}")
    if cfg.d_ff % t:
        problems.append(f"d_ff={cfg.d_ff} not divisible by t={t}")
    if (cfg.microbatch * cfg.num_heads) % t:
        problems.append(f"(b*a)={cfg.microbatch * cfg.num_heads} not divisible by t={t}")
    if problems:
        raise ParallelismError(f"{cfg.name}: infeasible TP: " + "; ".join(problems))


@dataclass(frozen=True)
class TPLayerCost:
    """Per-rank latency decomposition of one tensor-parallel layer."""

    compute_s: float
    comm_s: float
    tp_degree: int

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s

    @property
    def comm_fraction(self) -> float:
        return self.comm_s / self.total_s if self.total_s else 0.0


class TensorParallelLayer:
    """Latency of one transformer layer under t-way tensor parallelism.

    Combines the single-GPU latency model (evaluated on per-rank
    shapes) with the two per-layer all-reduces of the Megatron forward
    pass, costed over the group's interconnect.
    """

    def __init__(
        self,
        system: "str | NodeTopology",
        dtype: "str | DType" = DType.FP16,
        flash_attention: bool = False,
    ) -> None:
        self.topology = get_system(system)
        self.dtype = DType.parse(dtype)
        self.latency_model = LayerLatencyModel(
            self.topology.gpu, self.dtype, flash_attention=flash_attention
        )

    def shard_config(self, cfg: TransformerConfig, t: int) -> TransformerConfig:
        """The configuration as seen by one rank (tp_degree = t)."""
        validate_tp_feasible(cfg, t)
        return cfg.with_overrides(name=f"{cfg.name}@tp{t}", tp_degree=t)

    def rank_gemms(self, cfg: TransformerConfig, t: int) -> List[TransformerGemm]:
        """Per-rank Table II shapes under t-way sharding."""
        return layer_gemms(self.shard_config(cfg, t))

    def layer_cost(self, cfg: TransformerConfig, t: int) -> TPLayerCost:
        """Per-rank compute + collective time of one layer forward."""
        sharded = self.shard_config(cfg, t)
        compute = self.latency_model.layer_latency(sharded)
        comm_model = self.topology.comm_for(t)
        activation_bytes = (
            cfg.microbatch * cfg.seq_len * cfg.hidden_size * self.dtype.bytes
        )
        # Megatron forward: one all-reduce after attention, one after MLP.
        comm = 2 * comm_model.allreduce(activation_bytes, t)
        return TPLayerCost(compute_s=compute, comm_s=comm, tp_degree=t)

    def scaling_table(
        self, cfg: TransformerConfig, degrees: "List[int]"
    ) -> Dict[int, TPLayerCost]:
        """Layer cost per feasible TP degree (infeasible ones omitted)."""
        out: Dict[int, TPLayerCost] = {}
        for t in degrees:
            try:
                out[t] = self.layer_cost(cfg, t)
            except ParallelismError:
                continue
        return out
