"""Event-based pipeline schedule simulation (GPipe and 1F1B).

:class:`~repro.parallelism.pipeline.PipelinePlan` uses the closed-form
bubble expression ``(p-1)/m``; this module *derives* that behaviour by
actually scheduling forward/backward micro-operations onto stages under
dependency and capacity constraints:

- forward of microbatch j on stage i needs forward (i-1, j) done;
- backward of (i, j) needs backward (i+1, j) and forward (i, j) done;
- a stage executes one op at a time; 1F1B additionally caps the number
  of in-flight microbatches per stage at ``p - i`` (its defining memory
  property), while GPipe runs all forwards then all backwards.

The simulator returns the full op timeline, so tests can assert the
closed form *and* inspect peak activation-memory depth per stage —
the reason 1F1B exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Tuple

from repro.errors import ParallelismError

OpKind = Literal["fwd", "bwd"]


@dataclass(frozen=True)
class ScheduledOp:
    """One executed micro-operation on the timeline.

    ``start`` and ``end`` are in units of one forward-pass time slot
    (the simulator's clock), not seconds.
    """

    stage: int
    microbatch: int
    kind: OpKind
    start: float
    end: float


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of simulating one pipeline schedule.

    ``makespan``, ``fwd_time``, and ``bwd_time`` share the timeline's
    forward-slot unit (``fwd_time = 1`` by convention).
    """

    ops: List[ScheduledOp]
    makespan: float
    num_stages: int
    num_microbatches: int
    fwd_time: float
    bwd_time: float

    @property
    def ideal_time(self) -> float:
        """Work time with zero bubbles: m * (fwd + bwd) per stage."""
        return self.num_microbatches * (self.fwd_time + self.bwd_time)

    @property
    def bubble_fraction(self) -> float:
        """(makespan - ideal) / ideal — comparable to (p-1)/m."""
        ideal = self.ideal_time
        return (self.makespan - ideal) / ideal if ideal else 0.0

    def peak_activations(self, stage: int) -> int:
        """Max forwards outstanding (not yet backpropped) on a stage."""
        events: List[Tuple[float, int]] = []
        for op in self.ops:
            if op.stage != stage:
                continue
            events.append((op.end, 1 if op.kind == "fwd" else -1))
        events.sort()
        depth = peak = 0
        for _, delta in events:
            depth += delta
            peak = max(peak, depth)
        return peak


def interleaved_bubble_fraction(
    num_stages: int, num_microbatches: int, virtual_stages: int
) -> float:
    """Closed-form bubble of interleaved 1F1B: (p-1) / (v*m).

    Splitting each rank's layers into ``v`` virtual stages shrinks the
    warm-up/drain bubble by ``v`` at the cost of ``v``x the pipeline
    communication — Megatron's interleaved schedule.
    """
    if num_stages <= 0 or num_microbatches <= 0 or virtual_stages <= 0:
        raise ParallelismError("stages, microbatches and v must be positive")
    return (num_stages - 1) / (virtual_stages * num_microbatches)


def simulate_pipeline(
    num_stages: int,
    num_microbatches: int,
    fwd_time: float = 1.0,
    bwd_time: float = 2.0,
    schedule: str = "1f1b",
) -> ScheduleResult:
    """Simulate GPipe or 1F1B over uniform stages.

    Backward is conventionally ~2x forward.  Returns the op timeline and
    makespan.
    """
    if num_stages <= 0 or num_microbatches <= 0:
        raise ParallelismError("stages and microbatches must be positive")
    if fwd_time <= 0 or bwd_time <= 0:
        raise ParallelismError("op times must be positive")
    if schedule not in ("1f1b", "gpipe"):
        raise ParallelismError(f"unknown schedule {schedule!r} (1f1b|gpipe)")

    p, m = num_stages, num_microbatches
    fwd_done: Dict[Tuple[int, int], float] = {}
    bwd_done: Dict[Tuple[int, int], float] = {}
    stage_free = [0.0] * p
    ops: List[ScheduledOp] = []

    def run(stage: int, mb: int, kind: OpKind, ready: float) -> float:
        start = max(ready, stage_free[stage])
        dur = fwd_time if kind == "fwd" else bwd_time
        end = start + dur
        stage_free[stage] = end
        ops.append(ScheduledOp(stage, mb, kind, start, end))
        (fwd_done if kind == "fwd" else bwd_done)[(stage, mb)] = end
        return end

    if schedule == "gpipe":
        # All forwards flow through, then all backwards flow back.
        for mb in range(m):
            for stage in range(p):
                ready = fwd_done.get((stage - 1, mb), 0.0)
                run(stage, mb, "fwd", ready)
        for mb in range(m):
            for stage in reversed(range(p)):
                ready = max(
                    bwd_done.get((stage + 1, mb), 0.0), fwd_done[(stage, mb)]
                )
                run(stage, mb, "bwd", ready)
    else:
        # 1F1B: per stage, warm up with (p - stage) forwards, then
        # alternate one-backward-one-forward, then drain backwards.
        # Emulated via a per-stage next-op state machine driven in
        # dependency order.
        next_fwd = [0] * p
        next_bwd = [0] * p
        warmup = [min(p - stage, m) for stage in range(p)]
        # Iterate until every stage has issued all its ops; each pass
        # issues every op whose dependencies are met, in stage order.
        remaining = 2 * p * m
        guard = 0
        while remaining and guard < 4 * p * m + 16:
            guard += 1
            progressed = False
            for stage in range(p):
                # Issue a forward if in warmup, or if the 1F1B steady
                # state calls for one (a backward has been issued for
                # the slot being reused).
                want_fwd = next_fwd[stage] < m and (
                    next_fwd[stage] < warmup[stage]
                    or next_fwd[stage] - warmup[stage] < next_bwd[stage]
                )
                if want_fwd:
                    mb = next_fwd[stage]
                    dep = (stage - 1, mb)
                    if stage == 0 or dep in fwd_done:
                        ready = fwd_done.get(dep, 0.0)
                        run(stage, mb, "fwd", ready)
                        next_fwd[stage] += 1
                        remaining -= 1
                        progressed = True
                # Issue a backward when its dependencies are met.
                if next_bwd[stage] < next_fwd[stage]:
                    mb = next_bwd[stage]
                    dep_ok = stage == p - 1 or (stage + 1, mb) in bwd_done
                    if dep_ok and (stage, mb) in fwd_done:
                        ready = max(
                            bwd_done.get((stage + 1, mb), 0.0),
                            fwd_done[(stage, mb)],
                        )
                        run(stage, mb, "bwd", ready)
                        next_bwd[stage] += 1
                        remaining -= 1
                        progressed = True
            if not progressed and remaining:
                raise ParallelismError(
                    "1F1B schedule deadlocked (internal error)"
                )  # pragma: no cover

    return ScheduleResult(
        ops=ops,
        makespan=max(op.end for op in ops),
        num_stages=p,
        num_microbatches=m,
        fwd_time=fwd_time,
        bwd_time=bwd_time,
    )
