"""Multi-GPU parallelism substrate (paper Secs III-C, VI-B, VII-A).

The paper studies single-GPU kernels but its sizing rules are stated in
per-GPU terms (``h/t``, ``(b*a)/t``) and its Sec VII-A case study is
about node topology (Summit's 6-GPU nodes).  This package supplies the
machinery those results need:

- :mod:`repro.parallelism.comm` — alpha-beta cost model of ring
  collectives (all-reduce / all-gather),
- :mod:`repro.parallelism.topology` — the Table III systems and their
  interconnects,
- :mod:`repro.parallelism.tensor_parallel` — Megatron-style sharding of
  the Table II GEMMs, with per-rank latency + communication,
- :mod:`repro.parallelism.pipeline` — stage assignment and bubble
  overhead,
- :mod:`repro.parallelism.planner` — a (t, p, d) chooser over a cluster.
"""

from repro.parallelism.comm import CommModel, ring_allreduce_s, ring_allgather_s
from repro.parallelism.topology import NodeTopology, get_system, list_systems
from repro.parallelism.tensor_parallel import TensorParallelLayer
from repro.parallelism.sequence_parallel import SequenceParallelLayer
from repro.parallelism.schedule import simulate_pipeline, ScheduleResult
from repro.parallelism.pipeline import PipelinePlan, assign_stages, bubble_fraction
from repro.parallelism.planner import ParallelPlanner, ParallelPlan

__all__ = [
    "CommModel",
    "ring_allreduce_s",
    "ring_allgather_s",
    "NodeTopology",
    "get_system",
    "list_systems",
    "TensorParallelLayer",
    "SequenceParallelLayer",
    "simulate_pipeline",
    "ScheduleResult",
    "PipelinePlan",
    "assign_stages",
    "bubble_fraction",
    "ParallelPlanner",
    "ParallelPlan",
]
