"""Alpha-beta cost model for the collectives tensor parallelism needs.

Megatron-style tensor parallelism all-reduces the attention and MLP
outputs (two all-reduces per layer in forward).  We use the standard
ring-algorithm cost: for ``n`` ranks moving ``V`` bytes,

- all-reduce:  ``2 (n-1)/n * V / bw + 2 (n-1) * alpha``
- all-gather:  ``(n-1)/n * V / bw + (n-1) * alpha``

with ``alpha`` the per-hop latency and ``bw`` the per-link bandwidth of
the connecting interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParallelismError


def _check(nbytes: float, ranks: int) -> None:
    if nbytes < 0:
        raise ParallelismError(f"message size must be non-negative: {nbytes}")
    if ranks < 1:
        raise ParallelismError(f"ranks must be >= 1: {ranks}")


def ring_allreduce_s(nbytes: float, ranks: int, bw_bytes_s: float, alpha_s: float) -> float:
    """Ring all-reduce latency in seconds (0 for a single rank)."""
    _check(nbytes, ranks)
    if ranks == 1:
        return 0.0
    steps = 2 * (ranks - 1)
    return steps * alpha_s + 2 * (ranks - 1) / ranks * nbytes / bw_bytes_s


def ring_allgather_s(nbytes: float, ranks: int, bw_bytes_s: float, alpha_s: float) -> float:
    """Ring all-gather latency in seconds for ``nbytes`` total output."""
    _check(nbytes, ranks)
    if ranks == 1:
        return 0.0
    steps = ranks - 1
    return steps * alpha_s + (ranks - 1) / ranks * nbytes / bw_bytes_s


def point_to_point_s(nbytes: float, bw_bytes_s: float, alpha_s: float) -> float:
    """Single point-to-point transfer (pipeline stage boundary)."""
    _check(nbytes, 1)
    return alpha_s + nbytes / bw_bytes_s


@dataclass(frozen=True)
class CommModel:
    """Collective costs over one interconnect.

    Attributes
    ----------
    bw_bytes_s:
        Per-GPU effective link bandwidth (bytes/s).
    alpha_s:
        Per-message/hop latency in seconds.
    """

    bw_bytes_s: float
    alpha_s: float = 5.0e-6

    def allreduce(self, nbytes: float, ranks: int) -> float:
        return ring_allreduce_s(nbytes, ranks, self.bw_bytes_s, self.alpha_s)

    def allgather(self, nbytes: float, ranks: int) -> float:
        return ring_allgather_s(nbytes, ranks, self.bw_bytes_s, self.alpha_s)

    def send(self, nbytes: float) -> float:
        return point_to_point_s(nbytes, self.bw_bytes_s, self.alpha_s)
