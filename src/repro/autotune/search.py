"""Generic ranked brute-force search over one integer dimension.

The paper's Sec VII-B methodology is exactly this: "one can now search
for a good nearby number that still leads to high-performance GEMMs".
:func:`search_dimension` evaluates a user-supplied latency function over
an integer range (optionally restricted to a step grid) and returns the
candidates ranked best-first, with percentile annotations so "one of the
best performing sizes in its range" is a checkable statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigError


@dataclass(frozen=True)
class SearchResult:
    """One evaluated candidate value."""

    value: int
    latency_s: float
    rank: int
    total: int

    @property
    def percentile(self) -> float:
        """Fraction of candidates this value beats (1.0 = best)."""
        if self.total <= 1:
            return 1.0
        return 1.0 - self.rank / (self.total - 1)

    @property
    def is_top_decile(self) -> bool:
        return self.percentile >= 0.9


def search_dimension(
    latency_fn: Callable[[int], float],
    lo: int,
    hi: int,
    step: int = 1,
    must_include: Sequence[int] = (),
    constraint: Optional[Callable[[int], bool]] = None,
) -> List[SearchResult]:
    """Evaluate ``latency_fn`` over [lo, hi] and rank ascending latency.

    ``must_include`` values are evaluated even if off the step grid
    (e.g. a published model's actual choice).  ``constraint`` filters
    candidates (e.g. divisibility by the tensor-parallel degree).
    """
    if lo <= 0 or hi < lo:
        raise ConfigError(f"invalid range [{lo}, {hi}]")
    if step <= 0:
        raise ConfigError(f"step must be positive, got {step}")
    values = set(range(lo, hi + 1, step))
    values.update(v for v in must_include if lo <= v <= hi)
    if constraint is not None:
        values = {v for v in values if constraint(v)}
    if not values:
        raise ConfigError("no candidates satisfy the constraint")

    scored = sorted(
        ((latency_fn(v), v) for v in sorted(values)), key=lambda t: (t[0], t[1])
    )
    total = len(scored)
    return [
        SearchResult(value=v, latency_s=lat, rank=i, total=total)
        for i, (lat, v) in enumerate(scored)
    ]


def result_for(results: Sequence[SearchResult], value: int) -> SearchResult:
    """Find the entry for a specific candidate value."""
    for res in results:
        if res.value == value:
            return res
    raise ConfigError(f"value {value} was not part of the search")
