"""Generic ranked brute-force search over one integer dimension.

The paper's Sec VII-B methodology is exactly this: "one can now search
for a good nearby number that still leads to high-performance GEMMs".
:func:`search_dimension` evaluates a user-supplied latency function over
an integer range (optionally restricted to a step grid) and returns the
candidates ranked best-first, with percentile annotations so "one of the
best performing sizes in its range" is a checkable statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.observability import metrics as _metrics
from repro.observability import span as _span
from repro.resilience.faults import fault_site

if TYPE_CHECKING:
    from repro.resilience.checkpoint import SweepJournal


@dataclass(frozen=True)
class SearchResult:
    """One evaluated candidate value.

    ``rank`` uses competition ranking: equal-latency candidates share
    the rank of the first of them, so a tie for best is reported as
    rank 0 (and percentile 1.0) for *every* tied value rather than
    depending on the arbitrary sort position within the tie.
    """

    value: int
    latency_s: float
    rank: int
    total: int

    @property
    def percentile(self) -> float:
        """Fraction of candidates this value beats (1.0 = best)."""
        if self.total <= 1:
            return 1.0
        return 1.0 - self.rank / (self.total - 1)

    @property
    def is_top_decile(self) -> bool:
        return self.percentile >= 0.9


def search_dimension(
    latency_fn: Optional[Callable[[int], float]],
    lo: int,
    hi: int,
    step: int = 1,
    must_include: Sequence[int] = (),
    constraint: Optional[Callable[[int], bool]] = None,
    batch_latency_fn: Optional[Callable[[Sequence[int]], Sequence[float]]] = None,
    journal: Optional["SweepJournal"] = None,
) -> List[SearchResult]:
    """Evaluate candidates over [lo, hi] and rank ascending latency.

    ``must_include`` values are evaluated even if off the step grid
    (e.g. a published model's actual choice); duplicates of on-grid
    values are collapsed before evaluation so no candidate is scored
    (or ranked) twice.  ``constraint`` filters candidates (e.g.
    divisibility by the tensor-parallel degree).

    ``batch_latency_fn``, when given, is called with the candidate list
    and must return one latency per candidate — the hook the vectorized
    engine plugs into; ``latency_fn`` may then be None.

    ``journal``, when given, checkpoints each candidate's latency as it
    is evaluated (:class:`repro.resilience.checkpoint.SweepJournal`): a
    killed search resumed with the same journal re-evaluates only the
    candidates it has no record for (with ``batch_latency_fn`` the
    remaining candidates are scored in one batch call over the missing
    subset).
    """
    for name, bound in (("lo", lo), ("hi", hi), ("step", step)):
        if isinstance(bound, bool) or not isinstance(bound, int):
            raise ConfigError(
                f"{name} must be an int, got {type(bound).__name__}"
            )
    if lo <= 0 or hi < lo:
        raise ConfigError(f"invalid range [{lo}, {hi}]")
    if step <= 0:
        raise ConfigError(f"step must be positive, got {step}")
    if latency_fn is None and batch_latency_fn is None:
        raise ConfigError("need latency_fn or batch_latency_fn")
    if latency_fn is not None and not callable(latency_fn):
        raise ConfigError(
            f"latency_fn must be callable, got {type(latency_fn).__name__}"
        )
    if batch_latency_fn is not None and not callable(batch_latency_fn):
        raise ConfigError(
            "batch_latency_fn must be callable, got "
            f"{type(batch_latency_fn).__name__}"
        )
    if constraint is not None and not callable(constraint):
        raise ConfigError(
            f"constraint must be callable, got {type(constraint).__name__}"
        )
    for v in must_include:
        if isinstance(v, bool) or not isinstance(v, int):
            raise ConfigError(
                f"must_include values must be ints, got {v!r}"
            )
    # A set dedupes must_include values that already sit on the grid
    # (and duplicates within must_include itself).
    values = set(range(lo, hi + 1, step))
    values.update(int(v) for v in must_include if lo <= v <= hi)
    if constraint is not None:
        values = {v for v in values if constraint(v)}
    if not values:
        raise ConfigError("no candidates satisfy the constraint")
    candidates = sorted(values)
    with _span(
        "autotune.search", lo=lo, hi=hi, candidates=len(candidates)
    ) as sp:
        fault_site("autotune.search", lo=lo, hi=hi, candidates=len(candidates))

        known: Dict[int, float] = {}
        if journal is not None:
            for entry in journal.entries():
                if entry.get("status") != "ok":
                    continue
                try:
                    known[int(entry["id"])] = float(entry["payload"]["latency_s"])
                except (KeyError, TypeError, ValueError):
                    continue  # foreign/torn record; re-evaluate that value
        missing = [v for v in candidates if v not in known]
        sp.set(evaluated=len(missing), resumed=len(candidates) - len(missing))
        reg = _metrics()
        reg.counter("autotune.searches").inc()
        reg.counter("autotune.candidates_evaluated").inc(len(missing))
        reg.counter("autotune.candidates_resumed").inc(
            len(candidates) - len(missing)
        )

        if batch_latency_fn is not None:
            fresh = [float(lat) for lat in batch_latency_fn(missing)] if missing else []
            if len(fresh) != len(missing):
                raise ConfigError(
                    f"batch_latency_fn returned {len(fresh)} latencies "
                    f"for {len(missing)} candidates"
                )
            evaluated = dict(zip(missing, fresh))
        else:
            evaluated = {}
            for v in missing:
                evaluated[v] = float(latency_fn(v))
                if journal is not None:
                    journal.record(str(v), "ok", payload={"latency_s": evaluated[v]})
        if journal is not None and batch_latency_fn is not None:
            for v in missing:
                journal.record(str(v), "ok", payload={"latency_s": evaluated[v]})
        latencies = [known[v] if v in known else evaluated[v] for v in candidates]

    scored = sorted(zip(latencies, candidates), key=lambda t: (t[0], t[1]))
    total = len(scored)
    results = []
    rank = 0
    for i, (lat, v) in enumerate(scored):
        if lat != scored[rank][0]:
            rank = i  # new latency group starts; ties keep the old rank
        results.append(SearchResult(value=v, latency_s=lat, rank=rank, total=total))
    return results


def result_for(results: Sequence[SearchResult], value: int) -> SearchResult:
    """Find the entry for a specific candidate value."""
    for res in results:
        if res.value == value:
            return res
    raise ConfigError(f"value {value} was not part of the search")
