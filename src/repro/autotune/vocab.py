"""Vocabulary padding (paper Sec VI-B rule 1, Fig 20).

"The vocabulary size should be divisible by 64": padding GPT-2's 50257
tokens to 50304 famously bought nanoGPT a ~25% step-time improvement.
The logit GEMM ``(b*s, h) x (h, v)`` has v as the contiguous dimension
of its weight operand, so an odd v defeats vectorized fragment loads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import default_engine, shape_array
from repro.errors import ConfigError
from repro.gpu.specs import GPUSpec
from repro.types import DType


def pad_vocab(v: int, multiple: int = 64) -> int:
    """Round a vocabulary size up to the next multiple (identity if
    already aligned)."""
    if v <= 0 or multiple <= 0:
        raise ConfigError(f"v and multiple must be positive: {v}, {multiple}")
    return -(-v // multiple) * multiple


@dataclass(frozen=True)
class VocabPaddingGain:
    """Modelled effect of padding the vocabulary for the logit GEMM."""

    original_v: int
    padded_v: int
    original_s: float
    padded_s: float

    @property
    def speedup(self) -> float:
        """Latency ratio original/padded (>1 means padding helps).

        Note the padded GEMM does *more* useful-looking work (wider
        output); the win is that it does it so much more efficiently
        that it finishes sooner anyway.
        """
        return self.original_s / self.padded_s

    @property
    def extra_tokens(self) -> int:
        return self.padded_v - self.original_v


def vocab_padding_gain(
    v: int,
    h: int,
    tokens: int,
    gpu: "str | GPUSpec" = "A100",
    dtype: "str | DType" = DType.FP16,
    multiple: int = 64,
) -> VocabPaddingGain:
    """Model the logit-GEMM latency before/after padding ``v``."""
    padded = pad_vocab(v, multiple)
    latency = default_engine().latency(shape_array(tokens, [v, padded], h), gpu, dtype)
    return VocabPaddingGain(
        original_v=v,
        padded_v=padded,
        original_s=float(latency[0]),
        padded_s=float(latency[1]),
    )
