"""SwiGLU intermediate-size search (paper Sec VII-B).

SwiGLU's nominal ``d_ff = 8h/3`` destroys the alignment a well-chosen
``h`` bought: for h=4096 it suggests 10922.67, and rounding to 10923
leaves an odd dimension in every MLP GEMM.  The fix the paper walks
through is to treat 8/3 as a suggestion and brute-force nearby sizes;
Llama-2-7B's published 11008 (= 2^8 * 43) comes out "one of the best
performing sizes in its range".

:func:`swiglu_intermediate_search` scores each candidate by the full
SwiGLU MLP block latency (gate + up + down GEMMs) on the target GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.autotune.search import SearchResult, search_dimension
from repro.engine import default_engine, shape_array
from repro.errors import ConfigError
from repro.gpu.alignment import largest_pow2_divisor
from repro.gpu.gemm_model import GemmModel
from repro.gpu.specs import GPUSpec
from repro.types import DType

#: Llama-2 published intermediate sizes (h -> d_ff), for reference.
LLAMA2_CHOICES = {4096: 11008, 8192: 28672}


@dataclass(frozen=True)
class SwiGLUCandidate:
    """One intermediate size with its block latency and alignment.

    ``coefficient`` is d_ff expressed as a multiple of h (SwiGLU's
    nominal 8/3); ``percentile`` is the fraction of the candidate range
    this latency beats (0..1).
    """

    d_ff: int
    latency_s: float
    percentile: float
    pow2: int
    coefficient: float

    def describe(self) -> str:
        return (
            f"d_ff={self.d_ff} ({self.coefficient:.4f}h, pow2 {self.pow2}): "
            f"{self.latency_s * 1e6:.1f} us, beats {100 * self.percentile:.0f}% "
            "of range"
        )


def mlp_block_latency(
    h: int,
    d_ff: int,
    tokens: int,
    model: GemmModel,
    tp_degree: int = 1,
) -> float:
    """Latency of one SwiGLU MLP block: two up GEMMs + one down GEMM."""
    if d_ff % tp_degree:
        raise ConfigError(f"d_ff {d_ff} not divisible by t={tp_degree}")
    shard = d_ff // tp_degree
    up = model.latency(tokens, shard, h)
    down = model.latency(tokens, h, shard)
    return 2 * up + down


def swiglu_intermediate_search(
    h: int,
    gpu: "str | GPUSpec" = "A100",
    dtype: "str | DType" = DType.FP16,
    tokens: int = 8192,
    window: float = 0.08,
    step: int = 1,
    tp_degree: int = 1,
    must_include: "Optional[List[int]]" = None,
) -> List[SwiGLUCandidate]:
    """Rank intermediate sizes within ``±window`` of the nominal 8h/3.

    Returns candidates best-first.  ``step=1`` performs the paper's
    full brute force; coarser steps (e.g. 64) prescreen.
    """
    if not (0 < window < 1):
        raise ConfigError(f"window must be in (0,1), got {window}")
    nominal = 8 * h / 3
    lo = max(tp_degree, int(nominal * (1 - window)))
    # Snap the grid origin to the step so a coarse prescreen samples
    # alignment classes (an odd origin would make every point odd).
    lo -= lo % step
    hi = int(nominal * (1 + window))
    include = list(must_include or [])
    if h in LLAMA2_CHOICES and lo <= LLAMA2_CHOICES[h] <= hi:
        include.append(LLAMA2_CHOICES[h])

    # Rank by per-FLOP latency (inverse throughput): candidates differ
    # in width and therefore in useful work, so raw latency would bias
    # the ranking toward the narrowest sizes rather than the
    # "high-performance GEMMs" the paper asks for.  The whole candidate
    # range is evaluated in two engine batches (up and down GEMMs);
    # per-candidate block latencies are kept for the result records.
    block_latency: dict = {}

    def batch_per_flop(values: "List[int]") -> "np.ndarray":
        engine = default_engine()
        vals = np.asarray(values, dtype=np.int64)
        shards = vals // tp_degree
        up = engine.latency(shape_array(tokens, shards, h), gpu, dtype)
        down = engine.latency(shape_array(tokens, h, shards), gpu, dtype)
        lat = 2 * up + down
        block_latency.update(zip(values, lat.tolist()))
        flops = 2 * (3 * tokens * h * vals)
        return lat / flops

    results = search_dimension(
        None,
        lo,
        hi,
        step=step,
        must_include=include,
        constraint=lambda d: d % tp_degree == 0,
        batch_latency_fn=batch_per_flop,
    )
    return [_to_candidate(res, h, block_latency[res.value]) for res in results]


def mlp_matrices_flops(h: int, d_ff: int, tokens: int) -> int:
    """Multiply-adds of the three SwiGLU matmuls: 3 * tokens * h * d."""
    return 3 * tokens * h * d_ff


def _to_candidate(res: SearchResult, h: int, latency_s: float) -> SwiGLUCandidate:
    return SwiGLUCandidate(
        d_ff=res.value,
        latency_s=latency_s,
        percentile=res.percentile,
        pow2=largest_pow2_divisor(res.value),
        coefficient=res.value / h,
    )


def candidate_for(
    candidates: List[SwiGLUCandidate], d_ff: int
) -> SwiGLUCandidate:
    """Find a specific intermediate size in the ranked results."""
    for cand in candidates:
        if cand.d_ff == d_ff:
            return cand
    raise ConfigError(f"d_ff {d_ff} was not in the searched range")
