"""Brute-force shape tuners for the paper's case studies.

- :mod:`repro.autotune.search` — generic ranked search over one integer
  shape dimension,
- :mod:`repro.autotune.swiglu` — the Sec VII-B intermediate-size search
  near 8h/3 (Llama-2),
- :mod:`repro.autotune.vocab` — vocabulary padding to multiples of 64
  (Fig 20, the nanoGPT 50257 -> 50304 trick).
"""

from repro.autotune.search import SearchResult, search_dimension
from repro.autotune.swiglu import swiglu_intermediate_search, SwiGLUCandidate
from repro.autotune.vocab import pad_vocab, vocab_padding_gain

__all__ = [
    "SearchResult",
    "search_dimension",
    "swiglu_intermediate_search",
    "SwiGLUCandidate",
    "pad_vocab",
    "vocab_padding_gain",
]
