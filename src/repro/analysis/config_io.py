"""Resolving ``repro lint`` targets to configurations.

A lint target is either a registered model preset name
(``repro lint gpt3-2.7b``) or a path to a JSON file whose keys are
:class:`~repro.core.config.TransformerConfig` field names
(``repro lint examples/configs/gpt3-2.7b-t4.json``).  A JSON file may
hold one config object or a list of them (an experiment grid).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List

from repro.core.config import TransformerConfig, get_model
from repro.errors import ConfigError

_FIELDS = {f.name for f in dataclasses.fields(TransformerConfig)}


def config_from_dict(data: Dict[str, Any]) -> TransformerConfig:
    """Build a config from a JSON object, rejecting unknown keys."""
    if not isinstance(data, dict):
        raise ConfigError(f"config entry must be an object, got {type(data).__name__}")
    unknown = sorted(set(data) - _FIELDS)
    if unknown:
        raise ConfigError(
            f"unknown config field(s): {', '.join(unknown)} "
            f"(valid: {', '.join(sorted(_FIELDS))})"
        )
    if "base" in data:
        raise ConfigError("'base' is not a config field")
    base = dict(data)
    base.setdefault("name", "from-json")
    try:
        return TransformerConfig(**base)
    except TypeError as exc:
        raise ConfigError(f"invalid config: {exc}") from exc


def load_targets(target: str) -> List[TransformerConfig]:
    """Resolve a CLI lint target to one or more configurations.

    Tries a registered preset name first; otherwise reads the path as a
    JSON config file (single object or list).
    """
    path = Path(target)
    if not target.endswith(".json") and not path.exists():
        # get_model raises ConfigError with the known-model list.
        return [get_model(target)]
    if not path.exists():
        raise ConfigError(f"config file not found: {target}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"malformed JSON in {target}: {exc}") from exc
    entries = data if isinstance(data, list) else [data]
    if not entries:
        raise ConfigError(f"{target} holds an empty config list")
    return [config_from_dict(e) for e in entries]
