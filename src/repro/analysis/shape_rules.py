"""The co-design shape linter (prong 1).

Statically checks a :class:`~repro.core.config.TransformerConfig`
against the paper's sizing rules *under its tensor-parallel degree*:
every per-GPU GEMM dimension the config induces — ``h/t``, ``h/a``,
``d_ff/t``, ``v/t`` — should be divisible by 64 for full Tensor Core
utilization (Sec VI-B, VII-A/B), and the microbatch should not sit
just past a tile/wave-quantization cliff (Sec III-B).

Unlike :class:`repro.core.rules.RuleEngine` (which reports the paper's
recommendations qualitatively), every fix-it here is *quantified*: the
rule proposes the nearest compliant value and batch-evaluates the whole
candidate neighborhood through the memoized engine
(:mod:`repro.analysis.fixit`), so suggestions carry modeled
before/after latencies and the neighborhood ranking is by modeled
latency, not divisibility alone.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import (
    FixIt,
    LintDiagnostic,
    LintReport,
    Location,
    Severity,
)
from repro.analysis.fixit import (
    GemmShape,
    modeled_latency,
    neighborhood_multiples,
    rank_candidates,
    strictly_better,
)
from repro.core.config import TransformerConfig
from repro.core.rules import POW2_TARGET
from repro.engine import default_engine, shape_array
from repro.gpu.alignment import largest_pow2_divisor
from repro.gpu.specs import GPUSpec, get_gpu

#: Head dims worth proposing: small enough for attention kernels, large
#: enough that per-head GEMMs are not overhead-dominated.
_HEAD_DIM_RANGE = (8, 256)

#: Wave efficiency below which the microbatch rule flags cliff proximity.
_WAVE_EFF_THRESHOLD = 0.90

#: Minimum modeled gain before a microbatch fix-it is worth suggesting.
_MICROBATCH_MIN_GAIN = 0.02

ShapeRuleFn = Callable[["ShapeLinter", TransformerConfig], List[LintDiagnostic]]


def _loc(cfg: TransformerConfig, field: str) -> Location:
    return Location(config_path=f"{cfg.name}.{field}")


class ShapeLinter:
    """Applies the quantified co-design rules on one target GPU."""

    def __init__(self, gpu: "str | GPUSpec" = "A100", dtype: str = "fp16") -> None:
        self.spec = get_gpu(gpu)
        self.dtype = dtype

    # -- entry points -------------------------------------------------------

    def lint(
        self, cfg: TransformerConfig, pipeline_stages: int = 1
    ) -> LintReport:
        """Run every shape rule against one configuration."""
        report = LintReport(target=f"{cfg.describe()} on {self.spec.name}")
        report.extend(self.diagnose(cfg, pipeline_stages))
        return report

    def diagnose(
        self, cfg: TransformerConfig, pipeline_stages: int = 1
    ) -> List[LintDiagnostic]:
        out: List[LintDiagnostic] = []
        out += self.rule_vocab(cfg)
        out += self.rule_head_alignment(cfg)
        out += self.rule_hidden_tp(cfg)
        out += self.rule_dff_alignment(cfg)
        out += self.rule_heads_tp(cfg)
        out += self.rule_microbatch_wave(cfg)
        out += self.rule_layers_pipeline(cfg, pipeline_stages)
        out += self.rule_memory_capacity(cfg, pipeline_stages)
        return out

    def lint_grid(
        self, configs: Sequence[TransformerConfig], pipeline_stages: int = 1
    ) -> LintReport:
        """Lint an experiment grid; diagnostics keep per-config paths."""
        report = LintReport(
            target=f"grid of {len(configs)} configs on {self.spec.name}"
        )
        for cfg in configs:
            report.extend(self.diagnose(cfg, pipeline_stages))
        return report

    # -- rules --------------------------------------------------------------

    def rule_vocab(self, cfg: TransformerConfig) -> List[LintDiagnostic]:
        """``v`` must be divisible by 64*t so each rank's logit shard is
        64-aligned (Sec VI-B rule 1, Fig 20; vocab-parallel sharding
        additionally needs ``t | v``)."""
        v, t, h = cfg.vocab_size, cfg.tp_degree, cfg.hidden_size
        tokens = cfg.tokens_per_microbatch
        align = POW2_TARGET * t
        if v % align == 0:
            return [
                LintDiagnostic(
                    "shape/vocab-divisible",
                    Severity.OK,
                    f"v = {v} is a multiple of {align} (64*t); the logit "
                    "shard is fully Tensor-Core aligned",
                    _loc(cfg, "vocab_size"),
                    paper_ref="Sec VI-B",
                )
            ]

        # Modeled per-rank logit GEMM: (b*s, h) x (h, ceil(v/t)).
        shard_before = -(-v // t)
        before_s = modeled_latency(
            [(tokens, shard_before, h, 1)], self.spec.name, self.dtype
        )
        candidates = neighborhood_multiples(v, align, span=4, up_only=True)
        ranked = rank_candidates(
            candidates,
            lambda vc: [(tokens, vc // t, h, 1)],
            self.spec.name,
            self.dtype,
        )
        best = ranked[0]
        ragged = f" and not divisible by t={t} (ragged shard)" if v % t else ""
        message = (
            f"v = {v} is not a multiple of {align} (64*t){ragged}; the "
            f"logit GEMM ({tokens}, {h}) x ({h}, ~{shard_before}) per rank "
            "loses Tensor Core efficiency"
        )
        fixit: Optional[FixIt] = None
        speedup = strictly_better(before_s, best.latency_s)
        if speedup is not None:
            waste = best.value - v
            fixit = FixIt(
                field="vocab_size",
                current=v,
                suggested=best.value,
                latency_before_s=before_s,
                latency_after_s=best.latency_s,
                note=(
                    f"padding waste: {waste} unused tokens "
                    f"(~{waste * h / 1e6:.1f}M embedding params)"
                ),
            )
        return [
            LintDiagnostic(
                "shape/vocab-divisible",
                Severity.WARNING,
                message,
                _loc(cfg, "vocab_size"),
                fixit=fixit,
                paper_ref="Sec VI-B",
            )
        ]

    def _attention_shapes(
        self, cfg: TransformerConfig, a: int
    ) -> List[GemmShape]:
        """The two BMMs whose shapes depend on the head count."""
        d = cfg.hidden_size // a
        s = cfg.seq_len
        heads = cfg.microbatch * a // cfg.tp_degree
        return [(s, s, d, heads), (s, d, s, heads)]

    def _compliant_head_counts(
        self, cfg: TransformerConfig, align: int
    ) -> List[int]:
        h, t, b = cfg.hidden_size, cfg.tp_degree, cfg.microbatch
        lo, hi = _HEAD_DIM_RANGE
        out = []
        for a in range(max(1, t), h + 1):
            if h % a or a % t or (b * a) % t:
                continue
            d = h // a
            if d < lo or d > hi or d % align:
                continue
            out.append(a)
        return out

    def rule_head_alignment(self, cfg: TransformerConfig) -> List[LintDiagnostic]:
        """``h/a`` should be divisible by a power of two, ideally 64
        (Sec VI-B rule 3, Figs 7/21-47)."""
        d = cfg.head_dim
        p = largest_pow2_divisor(d)
        if p >= POW2_TARGET:
            return [
                LintDiagnostic(
                    "shape/head-alignment",
                    Severity.OK,
                    f"h/a = {d} is a multiple of {POW2_TARGET}",
                    _loc(cfg, "num_heads"),
                    paper_ref="Sec VI-B",
                )
            ]
        severity = Severity.ERROR if p < 8 else Severity.WARNING
        detail = (
            "below the 8-element MMA fragment granularity"
            if p < 8
            else f"Tensor Core efficiency improves up to divisibility by {POW2_TARGET}"
        )
        message = f"h/a = {d} is divisible only by {p}; {detail}"

        # Nearest compliant head count, with the whole neighborhood
        # batch-ranked by modeled attention-BMM latency.
        candidates = self._compliant_head_counts(cfg, POW2_TARGET)
        if not candidates:
            candidates = self._compliant_head_counts(cfg, 8)
        fixit: Optional[FixIt] = None
        if candidates:
            ranked = rank_candidates(
                candidates,
                lambda a: self._attention_shapes(cfg, a),
                self.spec.name,
                self.dtype,
            )
            latency_of = {c.value: c.latency_s for c in ranked}
            # Propose the *nearest* compliant head count (the smallest
            # change to the published architecture); break distance ties
            # by modeled latency.
            suggested = min(
                candidates,
                key=lambda a: (abs(a - cfg.num_heads), latency_of[a]),
            )
            before_s = modeled_latency(
                self._attention_shapes(cfg, cfg.num_heads),
                self.spec.name,
                self.dtype,
            )
            speedup = strictly_better(before_s, latency_of[suggested])
            if speedup is not None:
                note = f"h/a becomes {cfg.hidden_size // suggested}; params unchanged"
                fastest = ranked[0]
                if fastest.value != suggested:
                    note += (
                        f"; a={fastest.value} models even faster "
                        f"({fastest.latency_s * 1e6:.0f} us) but is a "
                        "larger change in attention parallelism"
                    )
                fixit = FixIt(
                    field="num_heads",
                    current=cfg.num_heads,
                    suggested=suggested,
                    latency_before_s=before_s,
                    latency_after_s=latency_of[suggested],
                    note=note,
                )
        return [
            LintDiagnostic(
                "shape/head-alignment",
                severity,
                message,
                _loc(cfg, "num_heads"),
                fixit=fixit,
                paper_ref="Sec VI-B",
            )
        ]

    def _hidden_shapes(self, cfg: TransformerConfig, h: int) -> List[GemmShape]:
        """The dense layer GEMMs whose shapes scale with ``h`` (d_ff held)."""
        tokens = cfg.tokens_per_microbatch
        t = cfg.tp_degree
        d_ff = cfg.d_ff
        return [
            (tokens, 3 * h // t, h, 1),
            (tokens, h, h // t, 1),
            (tokens, d_ff // t, h, 1),
            (tokens, h, d_ff // t, 1),
        ]

    def rule_hidden_tp(self, cfg: TransformerConfig) -> List[LintDiagnostic]:
        """``h/t`` should be divisible by 64 (Sec VII-A: Summit's t=6
        costs h=2560 its power-of-two factor)."""
        h, t = cfg.hidden_size, cfg.tp_degree
        loc = _loc(cfg, "hidden_size")
        if h % t:
            return [
                LintDiagnostic(
                    "shape/hidden-tp-alignment",
                    Severity.ERROR,
                    f"h = {h} is not divisible by t = {t}; tensor-parallel "
                    "sharding of the hidden dimension is infeasible",
                    loc,
                    fixit=FixIt(
                        field="tp_degree",
                        current=t,
                        suggested=max(
                            (x for x in range(1, t + 1) if h % x == 0)
                        ),
                        note="largest feasible t <= current; or choose h divisible by t",
                    ),
                    paper_ref="Sec VII-A",
                )
            ]
        shard = h // t
        p = largest_pow2_divisor(shard)
        if p >= POW2_TARGET:
            return [
                LintDiagnostic(
                    "shape/hidden-tp-alignment",
                    Severity.OK,
                    f"h/t = {shard} is a multiple of {POW2_TARGET}",
                    loc,
                    paper_ref="Sec VII-A",
                )
            ]
        severity = Severity.ERROR if p < 8 else Severity.WARNING
        align = POW2_TARGET * t
        candidates = [
            hc
            for hc in neighborhood_multiples(h, align, span=2)
            if hc % cfg.num_heads == 0
        ] or neighborhood_multiples(h, align, span=2)
        ranked = rank_candidates(
            candidates,
            lambda hc: self._hidden_shapes(cfg, hc),
            self.spec.name,
            self.dtype,
        )
        latency_of = {c.value: c.latency_s for c in ranked}
        suggested = min(candidates, key=lambda hc: (abs(hc - h), latency_of[hc]))
        before_s = modeled_latency(
            self._hidden_shapes(cfg, h), self.spec.name, self.dtype
        )
        speedup = strictly_better(before_s, latency_of[suggested])
        fixit = None
        if speedup is not None:
            fixit = FixIt(
                field="hidden_size",
                current=h,
                suggested=suggested,
                latency_before_s=before_s,
                latency_after_s=latency_of[suggested],
                note="changes the parameter count; retune L or d_ff to compensate",
            )
        return [
            LintDiagnostic(
                "shape/hidden-tp-alignment",
                severity,
                f"h/t = {shard} is divisible only by {p}; per-rank GEMMs "
                f"lose Tensor Core efficiency (target {POW2_TARGET})",
                loc,
                fixit=fixit,
                paper_ref="Sec VII-A",
            )
        ]

    def _mlp_shapes(self, cfg: TransformerConfig, d_ff: int) -> List[GemmShape]:
        tokens = cfg.tokens_per_microbatch
        h, t = cfg.hidden_size, cfg.tp_degree
        shard = d_ff // t
        up_count = cfg.mlp_matrices - 1
        return [(tokens, shard, h, 1)] * up_count + [(tokens, h, shard, 1)]

    def rule_dff_alignment(self, cfg: TransformerConfig) -> List[LintDiagnostic]:
        """``d_ff/t`` should be divisible by 64 (Sec VII-B: SwiGLU's
        8h/3 rounding; Llama-2's 11008 = 2^8 * 43 is the model fix)."""
        d_ff, t = cfg.d_ff, cfg.tp_degree
        loc = _loc(cfg, "intermediate_size")
        if d_ff % t:
            return [
                LintDiagnostic(
                    "shape/dff-alignment",
                    Severity.ERROR,
                    f"d_ff = {d_ff} is not divisible by t = {t}; MLP "
                    "sharding is infeasible",
                    loc,
                    paper_ref="Sec VII-B",
                )
            ]
        shard = d_ff // t
        p = largest_pow2_divisor(shard)
        if p >= POW2_TARGET:
            return [
                LintDiagnostic(
                    "shape/dff-alignment",
                    Severity.OK,
                    f"d_ff/t = {shard} is a multiple of {POW2_TARGET}",
                    loc,
                    paper_ref="Sec VII-B",
                )
            ]
        severity = Severity.WARNING if p < 8 else Severity.INFO
        candidates = neighborhood_multiples(d_ff, POW2_TARGET * t, span=4)
        ranked = rank_candidates(
            candidates,
            lambda dc: self._mlp_shapes(cfg, dc),
            self.spec.name,
            self.dtype,
        )
        # Candidates differ in width and therefore useful work; rank by
        # latency per unit width so narrow sizes get no free win.
        per_width = sorted(ranked, key=lambda c: (c.latency_s / c.value, c.value))
        latency_of = {c.value: c.latency_s for c in ranked}
        suggested = min(
            candidates, key=lambda dc: (abs(dc - d_ff), latency_of[dc])
        )
        before_s = modeled_latency(
            self._mlp_shapes(cfg, d_ff), self.spec.name, self.dtype
        )
        speedup = strictly_better(before_s, latency_of[suggested])
        fixit = None
        if speedup is not None:
            note = f"MLP width changes by {suggested - d_ff:+d} columns"
            if per_width[0].value != suggested:
                note += f"; best latency/width in range: {per_width[0].value}"
            fixit = FixIt(
                field="intermediate_size",
                current=d_ff,
                suggested=suggested,
                latency_before_s=before_s,
                latency_after_s=latency_of[suggested],
                note=note,
            )
        return [
            LintDiagnostic(
                "shape/dff-alignment",
                severity,
                f"d_ff/t = {shard} is divisible only by {p}; MLP GEMMs "
                f"lose Tensor Core efficiency (target {POW2_TARGET})",
                loc,
                fixit=fixit,
                paper_ref="Sec VII-B",
            )
        ]

    def rule_heads_tp(self, cfg: TransformerConfig) -> List[LintDiagnostic]:
        """``a`` (and hence ``(b*a)/t``) must shard evenly over ``t``
        (Sec VI-B rule 4)."""
        a, b, t = cfg.num_heads, cfg.microbatch, cfg.tp_degree
        if a % t == 0 and (b * a) % t == 0:
            return [
                LintDiagnostic(
                    "shape/heads-tp-divisible",
                    Severity.OK,
                    f"a = {a} shards evenly over t = {t} "
                    f"((b*a)/t = {b * a // t})",
                    _loc(cfg, "num_heads"),
                    paper_ref="Sec VI-B",
                )
            ]
        nearest = None
        for delta in range(1, cfg.hidden_size):
            for cand in (a - delta, a + delta):
                if (
                    0 < cand
                    and cfg.hidden_size % cand == 0
                    and cand % t == 0
                ):
                    nearest = cand
                    break
            if nearest is not None:
                break
        fixit = None
        if nearest is not None:
            fixit = FixIt(
                field="num_heads",
                current=a,
                suggested=nearest,
                note=f"nearest head count dividing h with t | a",
            )
        return [
            LintDiagnostic(
                "shape/heads-tp-divisible",
                Severity.ERROR,
                f"a = {a} does not shard over t = {t}: the attention BMM "
                f"batch (b*a = {b * a}) cannot split evenly across ranks",
                _loc(cfg, "num_heads"),
                fixit=fixit,
                paper_ref="Sec VI-B",
            )
        ]

    def _dense_layer_shapes(
        self, cfg: TransformerConfig, b: int
    ) -> List[GemmShape]:
        tokens = b * cfg.seq_len
        h, t, d_ff = cfg.hidden_size, cfg.tp_degree, cfg.d_ff
        qkv_cols = h + 2 * cfg.kv_dim
        shapes = [
            (tokens, qkv_cols // t, h, 1),
            (tokens, h, h // t, 1),
            (tokens, d_ff // t, h, 1),
            (tokens, h, d_ff // t, 1),
        ]
        if cfg.mlp_kind == "swiglu":
            shapes.insert(3, (tokens, d_ff // t, h, 1))
        return shapes

    def rule_microbatch_wave(self, cfg: TransformerConfig) -> List[LintDiagnostic]:
        """Flag microbatches sitting just past a wave-quantization cliff
        on the widest layer GEMM (Sec III-B; the Figs 8/9 sawtooth)."""
        tokens = cfg.tokens_per_microbatch
        h, t = cfg.hidden_size, cfg.tp_degree
        widest = shape_array(tokens, cfg.d_ff // t, h, 1)
        result = default_engine().evaluate(widest, self.spec.name, self.dtype)
        wave_eff = float(result.wave_eff[0])
        loc = _loc(cfg, "microbatch")
        if wave_eff >= _WAVE_EFF_THRESHOLD:
            return [
                LintDiagnostic(
                    "shape/microbatch-wave",
                    Severity.OK,
                    f"b = {cfg.microbatch}: the widest layer GEMM runs at "
                    f"{100 * wave_eff:.0f}% wave efficiency "
                    f"({int(result.waves[0])} waves on {self.spec.num_sms} SMs)",
                    loc,
                    paper_ref="Sec III-B",
                )
            ]
        b = cfg.microbatch
        candidates = sorted({bc for bc in range(max(1, b - 2), b + 3)})
        ranked = rank_candidates(
            candidates,
            lambda bc: self._dense_layer_shapes(cfg, bc),
            self.spec.name,
            self.dtype,
        )
        per_token = {c.value: c.latency_s / c.value for c in ranked}
        suggested = min(candidates, key=lambda bc: (per_token[bc], abs(bc - b)))
        fixit = None
        speedup = strictly_better(
            per_token[b], per_token[suggested], _MICROBATCH_MIN_GAIN
        )
        if suggested != b and speedup is not None:
            fixit = FixIt(
                field="microbatch",
                current=b,
                suggested=suggested,
                latency_before_s=per_token[b],
                latency_after_s=per_token[suggested],
                note="latencies are per microbatch row (per-token comparison)",
            )
        tile = result.tile(0)
        return [
            LintDiagnostic(
                "shape/microbatch-wave",
                Severity.INFO,
                f"b = {b}: the widest layer GEMM ({tokens} x {cfg.d_ff // t}) "
                f"has a partial tail wave ({100 * wave_eff:.0f}% wave "
                f"efficiency, tile {tile.name}, {self.spec.num_sms} SMs); "
                "nearby microbatches may cost the same time",
                loc,
                fixit=fixit,
                paper_ref="Sec III-B",
            )
        ]

    def rule_layers_pipeline(
        self, cfg: TransformerConfig, pipeline_stages: int = 1
    ) -> List[LintDiagnostic]:
        """``L`` should divide evenly into pipeline stages (Sec VI-B rule 6)."""
        if pipeline_stages <= 1:
            return []
        L = cfg.num_layers
        loc = _loc(cfg, "num_layers")
        if L % pipeline_stages == 0:
            return [
                LintDiagnostic(
                    "shape/layers-pipeline",
                    Severity.OK,
                    f"L = {L} divides evenly into {pipeline_stages} stages",
                    loc,
                    paper_ref="Sec VI-B",
                )
            ]
        up = -(-L // pipeline_stages) * pipeline_stages
        down = (L // pipeline_stages) * pipeline_stages
        suggested = up if (L - down) > (up - L) or down == 0 else down
        return [
            LintDiagnostic(
                "shape/layers-pipeline",
                Severity.WARNING,
                f"L = {L} is not divisible by {pipeline_stages} pipeline "
                "stages; the pipeline runs at the slowest (deepest) "
                "stage's rate",
                loc,
                fixit=FixIt(
                    field="num_layers",
                    current=L,
                    suggested=suggested,
                    note="changes depth and parameter count",
                ),
                paper_ref="Sec VI-B",
            )
        ]

    def rule_memory_capacity(
        self, cfg: TransformerConfig, pipeline_stages: int = 1
    ) -> List[LintDiagnostic]:
        """The training step must fit the target GPU's HBM under the
        config's own (t, p) — a shape rule like any other, since the
        fix is the same levers: t, p, b, or checkpointing.

        Severity policy: every outcome is an OK-level advisory —
        fits, fits-with-checkpointing, or the minimum tensor degree
        that would fit (surface them with ``--min-severity ok``).
        Capacity is *enforced* by the planner's typed
        :class:`~repro.errors.CapacityError` wall and ``repro estimate
        --enforce`` — the linter judges shapes, and a 13B preset at
        its default t=1 is a fine shape that simply needs sharding,
        not a lint finding.
        """
        from repro.core.memory import MemoryBudget
        from repro.trainstep.memory import estimate_memory

        budget = MemoryBudget.for_gpu(self.spec)
        loc = _loc(cfg, "tp_degree")
        plain = estimate_memory(
            cfg, pipeline_stages=pipeline_stages, checkpointing="none"
        )
        if plain.fits(budget):
            return [
                LintDiagnostic(
                    "shape/memory-capacity",
                    Severity.OK,
                    f"training step fits: peak "
                    f"{plain.peak_bytes / 1e9:.1f} GB "
                    f"({plain.peak_phase}) of "
                    f"{budget.usable_bytes / 1e9:.1f} GB usable on "
                    f"{self.spec.name}",
                    loc,
                    paper_ref="Sec VII-A",
                )
            ]
        ckpt = estimate_memory(
            cfg, pipeline_stages=pipeline_stages, checkpointing="full"
        )
        if ckpt.fits(budget):
            return [
                LintDiagnostic(
                    "shape/memory-capacity",
                    Severity.OK,
                    f"training step fits only with full activation "
                    f"checkpointing: peak {plain.peak_bytes / 1e9:.1f} GB "
                    f"({plain.peak_phase}) without vs "
                    f"{ckpt.peak_bytes / 1e9:.1f} GB with, against "
                    f"{budget.usable_bytes / 1e9:.1f} GB usable on "
                    f"{self.spec.name}; checkpointing costs one extra "
                    "forward pass per layer",
                    loc,
                    paper_ref="Sec VII-A",
                )
            ]
        peak = ckpt.phase(ckpt.peak_phase)
        suggested = cfg.tp_degree
        while suggested < 64:
            suggested *= 2
            if cfg.hidden_size % suggested:
                continue
            trial = estimate_memory(
                cfg,
                tp=suggested,
                pipeline_stages=pipeline_stages,
                checkpointing="full",
            )
            if trial.fits(budget):
                break
        return [
            LintDiagnostic(
                "shape/memory-capacity",
                Severity.OK,
                f"training step cannot fit {self.spec.name} at "
                f"t={cfg.tp_degree} even with full checkpointing: "
                f"{peak.phase} phase needs {peak.total_bytes / 1e9:.1f} GB "
                f"against {budget.usable_bytes / 1e9:.1f} GB usable "
                "(weights + Adam state alone overflow); shard with "
                "tensor/pipeline parallelism",
                loc,
                fixit=FixIt(
                    field="tp_degree",
                    current=cfg.tp_degree,
                    suggested=suggested,
                    note="smallest power-of-two degree whose full-"
                    "checkpointing step fits (each doubling halves "
                    "per-rank parameter and optimizer bytes)",
                ),
                paper_ref="Sec VII-A",
            )
        ]
