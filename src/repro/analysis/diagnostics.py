"""Shared diagnostics framework for both lint prongs.

The co-design shape linter (:mod:`repro.analysis.shape_rules`) and the
AST self-lint pass (:mod:`repro.analysis.selflint`) emit the same
currency: a :class:`LintDiagnostic` carrying a stable rule id, a
severity (reusing :class:`repro.core.rules.Severity` so lint output
sorts/filters exactly like the Sec VI-B rule engine), a message, a
:class:`Location` (source file/line for AST findings, config path for
shape findings), and an optional quantified :class:`FixIt`.

A :class:`LintReport` aggregates diagnostics for one target and owns
the exit-code contract of ``repro lint``:

====  ==========================================================
code  meaning
====  ==========================================================
0     clean — nothing above ``INFO``
1     ``WARNING`` findings present (throughput left on the table)
2     ``ERROR`` findings present (infeasible or correctness risk)
====  ==========================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.rules import Severity

__all__ = [
    "FixIt",
    "LintDiagnostic",
    "LintReport",
    "Location",
    "Severity",
]


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points: a source position or a config path.

    Exactly one of the two addressing modes is normally populated:
    ``file``/``line``/``column`` for AST findings, ``config_path``
    (e.g. ``"gpt3-2.7b.vocab_size"``) for shape findings.
    """

    file: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None
    config_path: Optional[str] = None

    def describe(self) -> str:
        if self.file is not None:
            pos = self.file
            if self.line is not None:
                pos += f":{self.line}"
                if self.column is not None:
                    pos += f":{self.column}"
            return pos
        return self.config_path or "<unknown>"

    def to_dict(self) -> Dict[str, Any]:
        return {
            k: v
            for k, v in (
                ("file", self.file),
                ("line", self.line),
                ("column", self.column),
                ("config_path", self.config_path),
            )
            if v is not None
        }


@dataclass(frozen=True)
class FixIt:
    """A concrete, quantified remediation for one diagnostic.

    ``latency_before_s``/``latency_after_s`` are engine-modeled
    latencies (seconds) of the affected GEMM set before and after
    applying the suggestion, so the estimated throughput recovered is a
    checkable number rather than folklore.  They are ``None`` for
    purely structural fix-its (e.g. "choose t dividing h").
    """

    field: str
    current: Any
    suggested: Any
    latency_before_s: Optional[float] = None
    latency_after_s: Optional[float] = None
    note: str = ""

    @property
    def speedup(self) -> Optional[float]:
        """Modeled before/after latency ratio (> 1 means the fix helps)."""
        if self.latency_before_s is None or not self.latency_after_s:
            return None
        return self.latency_before_s / self.latency_after_s

    def describe(self) -> str:
        text = f"set {self.field} = {self.suggested} (from {self.current})"
        if self.speedup is not None:
            text += (
                f"; modeled {self.latency_before_s * 1e6:.0f} -> "
                f"{self.latency_after_s * 1e6:.0f} us "
                f"({self.speedup:.2f}x on the affected GEMMs)"
            )
        if self.note:
            text += f" [{self.note}]"
        return text

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "field": self.field,
            "current": self.current,
            "suggested": self.suggested,
        }
        if self.latency_before_s is not None:
            out["latency_before_s"] = self.latency_before_s
        if self.latency_after_s is not None:
            out["latency_after_s"] = self.latency_after_s
        if self.speedup is not None:
            out["speedup"] = self.speedup
        if self.note:
            out["note"] = self.note
        return out


@dataclass(frozen=True)
class LintDiagnostic:
    """One finding from one lint rule.

    ``rule_id`` is stable and namespaced: ``shape/...`` for config
    findings, ``self/...`` for AST findings.  ``paper_ref`` cites the
    paper section grounding the rule (empty for self-lint rules).
    """

    rule_id: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    fixit: Optional[FixIt] = None
    paper_ref: str = ""

    def __str__(self) -> str:
        head = f"[{self.severity.name}] {self.rule_id}"
        if self.paper_ref:
            head += f" ({self.paper_ref})"
        text = f"{head} at {self.location.describe()}: {self.message}"
        if self.fixit is not None:
            text += f"\n    fix: {self.fixit.describe()}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "rule_id": self.rule_id,
            "severity": self.severity.name,
            "message": self.message,
            "location": self.location.to_dict(),
        }
        if self.paper_ref:
            out["paper_ref"] = self.paper_ref
        if self.fixit is not None:
            out["fixit"] = self.fixit.to_dict()
        return out


@dataclass
class LintReport:
    """All diagnostics for one lint target plus the exit-code contract."""

    target: str
    diagnostics: List[LintDiagnostic] = field(default_factory=list)

    def extend(self, diags: Sequence[LintDiagnostic]) -> None:
        self.diagnostics.extend(diags)

    @property
    def worst(self) -> Severity:
        return max((d.severity for d in self.diagnostics), default=Severity.OK)

    @property
    def exit_code(self) -> int:
        """0 clean/INFO, 1 WARNING present, 2 ERROR present."""
        worst = self.worst
        if worst >= Severity.ERROR:
            return 2
        if worst >= Severity.WARNING:
            return 1
        return 0

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def findings(self, min_severity: Severity = Severity.INFO) -> List[LintDiagnostic]:
        """Diagnostics at or above a severity, worst first.

        The order is fully deterministic regardless of rule-family
        registration or dict iteration order: severity (worst first),
        then path, line, column, rule id, and finally message text as
        the tiebreak for co-located findings.
        """
        kept = [d for d in self.diagnostics if d.severity >= min_severity]

        def key(d: LintDiagnostic) -> Any:
            loc = d.location
            return (
                -d.severity,
                loc.file or loc.config_path or "",
                loc.line or 0,
                loc.column or 0,
                d.rule_id,
                d.message,
            )

        return sorted(kept, key=key)

    def render_text(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [f"lint: {self.target}"]
        shown = self.findings(min_severity)
        for diag in shown:
            lines.append(str(diag))
        counts = ", ".join(
            f"{self.count(sev)} {sev.name.lower()}"
            for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
            if self.count(sev)
        )
        if not counts:
            counts = "clean"
        lines.append(f"result: {counts} (exit {self.exit_code})")
        return "\n".join(lines)

    def to_json(self, min_severity: Severity = Severity.INFO) -> str:
        payload = {
            "target": self.target,
            "worst": self.worst.name,
            "exit_code": self.exit_code,
            "counts": {
                sev.name: self.count(sev)
                for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO, Severity.OK)
            },
            "diagnostics": [d.to_dict() for d in self.findings(min_severity)],
        }
        return json.dumps(payload, indent=2)

    #: SARIF severity levels by :class:`Severity`.
    _SARIF_LEVELS = {
        Severity.ERROR: "error",
        Severity.WARNING: "warning",
        Severity.INFO: "note",
        Severity.OK: "none",
    }

    def to_sarif(self, min_severity: Severity = Severity.INFO) -> str:
        """Minimal SARIF 2.1.0 log for CI inline annotations.

        One run, one driver (``repro-lint``), one result per finding.
        Source findings carry a ``physicalLocation``; config-path
        findings (shape lint) carry a ``logicalLocation`` instead.
        """
        shown = self.findings(min_severity)
        rules: List[Dict[str, Any]] = []
        rule_index: Dict[str, int] = {}
        for diag in shown:
            if diag.rule_id not in rule_index:
                rule_index[diag.rule_id] = len(rules)
                rule: Dict[str, Any] = {
                    "id": diag.rule_id,
                    "shortDescription": {"text": diag.rule_id},
                }
                if diag.paper_ref:
                    rule["properties"] = {"paper_ref": diag.paper_ref}
                rules.append(rule)

        results: List[Dict[str, Any]] = []
        for diag in shown:
            message = diag.message
            if diag.fixit is not None:
                message += f" | fix: {diag.fixit.describe()}"
            result: Dict[str, Any] = {
                "ruleId": diag.rule_id,
                "ruleIndex": rule_index[diag.rule_id],
                "level": self._SARIF_LEVELS[diag.severity],
                "message": {"text": message},
            }
            loc = diag.location
            if loc.file is not None:
                region: Dict[str, Any] = {}
                if loc.line is not None:
                    region["startLine"] = loc.line
                if loc.column is not None:
                    # SARIF columns are 1-based; ast columns are 0-based.
                    region["startColumn"] = loc.column + 1
                physical: Dict[str, Any] = {
                    "artifactLocation": {"uri": loc.file.replace("\\", "/")}
                }
                if region:
                    physical["region"] = region
                result["locations"] = [{"physicalLocation": physical}]
            elif loc.config_path is not None:
                result["locations"] = [
                    {
                        "logicalLocations": [
                            {"fullyQualifiedName": loc.config_path}
                        ]
                    }
                ]
            results.append(result)

        payload = {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri": (
                                "https://github.com/repro/repro"
                            ),
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(payload, indent=2)
