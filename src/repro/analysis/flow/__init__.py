"""Flow-sensitive static analysis: ``repro lint --flow``.

This package is the dataflow counterpart to the flat AST walker in
:mod:`repro.analysis.selflint`: it lowers every function to a CFG
(:mod:`~repro.analysis.flow.cfg`), solves a forward join-lattice
fixpoint over it (:mod:`~repro.analysis.flow.fixpoint`), and runs
three rule families on the result —

- units (:mod:`~repro.analysis.flow.unit_rules`): the perf model's
  flops/bytes/seconds/elements arithmetic must be dimensionally
  consistent;
- concurrency (:mod:`~repro.analysis.flow.concurrency`): shared
  attributes keep one lock discipline, threading locks never span
  ``await``, coroutine bodies never block;
- observability (:mod:`~repro.analysis.flow.obs_rules`): spans are
  entered, metric/span names use known phases, instruments go through
  the registry.

All findings flow through :class:`~repro.analysis.diagnostics.
LintReport` and honor the same ``# lint: allow(rule-id)`` pragma as
the self-lint pass.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.diagnostics import LintReport
from repro.analysis.flow.cfg import CFG, BasicBlock, Instr, build_cfg
from repro.analysis.flow.concurrency import ConcurrencyChecker
from repro.analysis.flow.fixpoint import (
    DataflowAnalysis,
    FixpointLimitError,
    run_fixpoint,
)
from repro.analysis.flow.obs_rules import ObservabilityChecker
from repro.analysis.flow.unit_rules import UnitChecker
from repro.analysis.selflint import _suppressed
from repro.errors import ConfigError

__all__ = [
    "BasicBlock",
    "CFG",
    "DataflowAnalysis",
    "FixpointLimitError",
    "FlowLinter",
    "Instr",
    "build_cfg",
    "run_fixpoint",
]


class FlowLinter:
    """Runs the flow rule families over a Python source tree."""

    def __init__(self, root: "str | Path | None" = None) -> None:
        if root is None:
            import repro

            root = Path(repro.__file__).parent
        self.root = Path(root)
        if not self.root.exists():
            raise ConfigError(f"flow-lint root does not exist: {self.root}")

    def _files(self, paths: Optional[Sequence["str | Path"]]) -> List[Path]:
        if paths:
            out: List[Path] = []
            for p in paths:
                p = Path(p)
                if p.is_dir():
                    out.extend(sorted(p.rglob("*.py")))
                elif p.suffix == ".py":
                    out.append(p)
                else:
                    raise ConfigError(f"not a Python file or directory: {p}")
            return out
        if self.root.is_file():
            return [self.root]
        return sorted(self.root.rglob("*.py"))

    def _rel(self, path: Path) -> str:
        try:
            return str(path.relative_to(self.root.parent))
        except ValueError:
            return str(path)

    def lint(self, paths: Optional[Sequence["str | Path"]] = None) -> LintReport:
        files = self._files(paths)
        report = LintReport(
            target="flow-lint of "
            + (str(self.root) if not paths else ", ".join(map(str, paths)))
        )
        for path in files:
            source = path.read_text()
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                raise ConfigError(f"cannot parse {path}: {exc}") from exc
            lines = source.splitlines()
            rel = self._rel(path)
            report.extend(UnitChecker(rel, lines, _suppressed).check_module(tree))
            report.extend(
                ConcurrencyChecker(rel, lines, _suppressed).check_module(tree)
            )
            report.extend(
                ObservabilityChecker(rel, lines, _suppressed).check_module(tree)
            )
        return report
