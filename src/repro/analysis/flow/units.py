"""The dimension lattice and the registry of known physical quantities.

The perf model is arithmetic over four base dimensions — ``flops``,
``bytes``, ``seconds``, ``elements`` — and their ratios
(``bytes/second`` bandwidth, ``flops/byte`` arithmetic intensity,
``flops/second`` throughput).  A :class:`Dim` is an exponent vector
over those bases; ``dimensionless`` is the empty vector (efficiencies,
fractions, ratios of like quantities).

The abstract value of an expression is ``Optional[Dim]``: ``None``
means *unknown*, the lattice top.  Unknown is deliberately treated as
a pure scalar under ``*`` and ``/`` (loop counts, tile counts and
literal constants multiply quantities without changing their
dimension) and as the identity under ``+``/``-`` joins — the checker
is tuned for precision over recall so it can gate CI.

Seeding comes from three places, in priority order:

1. ``# unit:`` pragmas in the source (``x = ...  # unit: bytes/second``
   or ``a, b = f()  # unit: a=flops/second``) — the escape hatch for
   values whose dimension the inference cannot see (tuple returns,
   opaque helpers).
2. :data:`FUNCTION_UNITS` — return dimensions of the model's named
   formula/level functions (``gemm_flops``, ``kv_cache_bytes``, …).
3. Name conventions — exact names (:data:`NAME_UNITS`) and unit
   suffixes (:data:`SUFFIX_UNITS`, e.g. ``_s``, ``_bytes``,
   ``_tflops``) applied to variables, attributes, parameters and
   function names.  Scale prefixes (``_ms``, ``_gb``, ``_tflops``) map
   to the same dimension as the base unit: the checker tracks
   dimensions, not magnitudes, so a missing ``/ 1e9`` is out of scope
   but a bytes-for-flops swap is not.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError

__all__ = [
    "Dim",
    "DIMENSIONLESS",
    "FLOPS",
    "BYTES",
    "SECONDS",
    "ELEMENTS",
    "FUNCTION_UNITS",
    "NAME_UNITS",
    "SUFFIX_UNITS",
    "UNINFERRED_CALLS",
    "UNIT_PRAGMA",
    "infer_name",
    "parse_dim",
    "parse_unit_pragma",
]

_BASES = ("flops", "bytes", "seconds", "elements")

#: Aliases accepted by :func:`parse_dim`, singular and plural.
_BASE_ALIASES = {
    "flop": "flops",
    "flops": "flops",
    "byte": "bytes",
    "bytes": "bytes",
    "second": "seconds",
    "seconds": "seconds",
    "s": "seconds",
    "element": "elements",
    "elements": "elements",
    "elem": "elements",
    "elems": "elements",
}


@dataclass(frozen=True)
class Dim:
    """An exponent vector over the base dimensions.

    ``powers`` holds only non-zero exponents, sorted by base name, so
    equal dimensions compare equal structurally.
    """

    powers: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def of(**exponents: int) -> "Dim":
        return Dim(
            tuple(
                sorted((base, exp) for base, exp in exponents.items() if exp)
            )
        )

    def mul(self, other: "Dim") -> "Dim":
        merged = dict(self.powers)
        for base, exp in other.powers:
            merged[base] = merged.get(base, 0) + exp
        return Dim(tuple(sorted((b, e) for b, e in merged.items() if e)))

    def div(self, other: "Dim") -> "Dim":
        return self.mul(other.pow(-1))

    def pow(self, k: int) -> "Dim":
        return Dim(tuple((base, exp * k) for base, exp in self.powers))

    @property
    def dimensionless(self) -> bool:
        return not self.powers

    def __str__(self) -> str:
        if not self.powers:
            return "dimensionless"
        num = [
            base if exp == 1 else f"{base}^{exp}"
            for base, exp in self.powers
            if exp > 0
        ]
        den = [
            base if exp == -1 else f"{base}^{-exp}"
            for base, exp in self.powers
            if exp < 0
        ]
        if not num:
            num = ["1"]
        text = "*".join(num)
        if den:
            text += "/" + "/".join(den)
        return text


DIMENSIONLESS = Dim()
FLOPS = Dim.of(flops=1)
BYTES = Dim.of(bytes=1)
SECONDS = Dim.of(seconds=1)
ELEMENTS = Dim.of(elements=1)

_THROUGHPUT = FLOPS.div(SECONDS)
_BANDWIDTH = BYTES.div(SECONDS)
_INTENSITY = FLOPS.div(BYTES)
_PER_SECOND = DIMENSIONLESS.div(SECONDS)

#: Method names that must never be unit-inferred from their suffix:
#: ``int.from_bytes`` returns an integer, not a byte count.
UNINFERRED_CALLS = frozenset({"from_bytes", "to_bytes"})


def parse_dim(text: str) -> Dim:
    """Parse ``"bytes/second"``, ``"flops"``, ``"dimensionless"``, …

    Grammar: ``term {*term} {/term}`` where a term is a base-dimension
    alias with an optional ``^k`` integer exponent.
    """
    cleaned = text.strip().lower()
    if cleaned in ("dimensionless", "1", "none", "scalar", "ratio"):
        return DIMENSIONLESS
    exponents: Dict[str, int] = {}
    sign = 1
    for piece in re.split(r"([*/])", cleaned):
        piece = piece.strip()
        if piece == "*" or piece == "":
            continue
        if piece == "/":
            sign = -1
            continue
        match = re.fullmatch(r"([a-z]+)(?:\^(-?\d+))?", piece)
        if not match:
            raise ConfigError(f"cannot parse dimension term {piece!r} in {text!r}")
        base = _BASE_ALIASES.get(match.group(1))
        if base is None:
            raise ConfigError(
                f"unknown base dimension {match.group(1)!r} in {text!r} "
                f"(expected one of {', '.join(_BASES)})"
            )
        exp = int(match.group(2) or 1) * sign
        exponents[base] = exponents.get(base, 0) + exp
        # '/' binds every following term, matching "flops/byte/second".
    return Dim.of(**exponents)


#: ``# unit: <dim>`` or ``# unit: name=<dim>[, name=<dim>...]``.
UNIT_PRAGMA = re.compile(r"#\s*unit:\s*([^#]+)")


def parse_unit_pragma(line: str) -> "Optional[Dict[Optional[str], Dim]]":
    """Extract unit annotations from one source line.

    Returns ``{None: dim}`` for the bare form (annotates the single
    assignment target or the function return) or ``{name: dim, ...}``
    for the named form.  ``None`` when the line has no pragma.
    """
    match = UNIT_PRAGMA.search(line)
    if not match:
        return None
    body = match.group(1).strip()
    out: Dict[Optional[str], Dim] = {}
    for clause in body.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if "=" in clause:
            name, _, dim_text = clause.partition("=")
            out[name.strip()] = parse_dim(dim_text)
        else:
            out[None] = parse_dim(clause)
    return out or None


# -- the quantity registry ---------------------------------------------------

#: Return dimensions of known functions/methods, by bare (unqualified)
#: name.  These seed the interprocedural boundary: calls are otherwise
#: opaque.  Names are specific enough that a bare-name match is safe
#: across the codebase.
FUNCTION_UNITS: Dict[str, Dim] = {
    # FLOP counts (repro.core.formulas, repro.gpu.roofline, gemms).
    "gemm_flops": FLOPS,
    "forward_flops_per_layer": FLOPS,
    "forward_flops_per_layer_general": FLOPS,
    "forward_flops_model": FLOPS,
    "training_flops_per_token": FLOPS,
    # Byte counts (traffic, footprints).
    "gemm_min_bytes": BYTES,
    "effective_dram_bytes": BYTES,
    "kv_cache_bytes": BYTES,
    "weight_memory_bytes": BYTES,
    "activation_memory_bytes": BYTES,
    "activation_bytes_per_layer": BYTES,
    # Rates.
    "mem_bw_bytes_per_s": _BANDWIDTH,
    "matrix_peak_tflops": _THROUGHPUT,
    "vector_peak_tflops": _THROUGHPUT,
    "teraflops": _THROUGHPUT,
    "attainable_tflops": _THROUGHPUT,
    # Arithmetic intensity.
    "arithmetic_intensity": _INTENSITY,
    "ridge_intensity": _INTENSITY,
    # Times.
    "model_latency": SECONDS,
    "layer_latency": SECONDS,
    "generate_latency": SECONDS,
    "modeled_latency": SECONDS,
    "monotonic": SECONDS,
    "perf_counter": SECONDS,
    # Dimensionless efficiencies/fractions.
    "wave_efficiency": DIMENSIONLESS,
    "gemm_alignment_efficiency": DIMENSIONLESS,
    "dim_efficiency": DIMENSIONLESS,
    "tile_quantization_waste": DIMENSIONLESS,
}

#: Dimensions by exact variable/attribute/parameter name.
NAME_UNITS: Dict[str, Dim] = {
    "tflops": _THROUGHPUT,
    "gflops": _THROUGHPUT,
    "flops": FLOPS,
    "bytes": BYTES,
    "nbytes": BYTES,
    "bw": _BANDWIDTH,
    "bandwidth": _BANDWIDTH,
    "hbm_bw": _BANDWIDTH,
    "intensity": _INTENSITY,
    "seconds": SECONDS,
    "latency": SECONDS,
    "dram_bytes": BYTES,
    "traffic": BYTES,
}

#: Dimensions by name suffix, longest match wins.  Scale variants
#: (``_ms``, ``_gb``, ``_tflops``) share the base unit's dimension.
SUFFIX_UNITS: Tuple[Tuple[str, Dim], ...] = (
    ("_bytes_per_s", _BANDWIDTH),
    ("_bytes_s", _BANDWIDTH),
    ("_gbps", _BANDWIDTH),
    # Generic rates: the numerator's dimension is untracked (token and
    # element counts are deliberately unseeded), so "per second" alone.
    ("_per_s", _PER_SECOND),
    ("_tflops", _THROUGHPUT),
    ("_gflops", _THROUGHPUT),
    ("_flops", FLOPS),
    ("_intensity", _INTENSITY),
    ("_bytes", BYTES),
    ("_gb", BYTES),
    ("_mb", BYTES),
    ("_kb", BYTES),
    ("_seconds", SECONDS),
    ("_sec", SECONDS),
    ("_ms", SECONDS),
    ("_us", SECONDS),
    ("_ns", SECONDS),
    ("_s", SECONDS),
    ("_eff", DIMENSIONLESS),
    ("_efficiency", DIMENSIONLESS),
    ("_frac", DIMENSIONLESS),
    ("_fraction", DIMENSIONLESS),
    ("_waste", DIMENSIONLESS),
    ("_util", DIMENSIONLESS),
    ("_share", DIMENSIONLESS),
)


def infer_name(name: str) -> Optional[Dim]:
    """Dimension implied by a bare name, or ``None`` for no signal."""
    exact = NAME_UNITS.get(name)
    if exact is not None:
        return exact
    for suffix, dim in SUFFIX_UNITS:
        if name.endswith(suffix) and len(name) > len(suffix):
            return dim
    return None
