"""Forward abstract interpretation: join-lattice fixpoint over a CFG.

A :class:`DataflowAnalysis` supplies the lattice (``initial`` /
``bottom`` / ``join``) and the per-instruction ``transfer`` function;
:func:`run_fixpoint` iterates a worklist in reverse post-order until the
block-entry states stabilize.

Termination is guaranteed for monotone transfer functions over
finite-height lattices (both analyses built here qualify: the unit
environment joins conflicting bindings toward *unknown*, and the
must-hold lock set only shrinks under intersection).  A buggy or
non-monotone analysis must still fail loudly rather than hang ``repro
lint``, so the iteration count is hard-bounded; exceeding the bound
raises :class:`FixpointLimitError` (tested with a deliberately
divergent analysis).
"""

from __future__ import annotations

from typing import Dict, Generic, List, TypeVar

from repro.analysis.flow.cfg import CFG, BasicBlock, Instr
from repro.errors import ReproError

__all__ = ["DataflowAnalysis", "FixpointLimitError", "run_fixpoint"]

S = TypeVar("S")

#: Block re-processings allowed per CFG block before declaring
#: divergence.  Both shipped lattices stabilize in a handful of passes;
#: the generous multiplier keeps pathological-but-terminating CFGs
#: (deep loop nests over wide join chains) inside the bound.
MAX_VISITS_PER_BLOCK = 64


class FixpointLimitError(ReproError):
    """The fixpoint iteration exceeded its bounded-visit guard."""


class DataflowAnalysis(Generic[S]):
    """Base class for a forward dataflow analysis over one CFG."""

    def initial(self) -> S:
        """State at the function entry."""
        raise NotImplementedError

    def bottom(self) -> S:
        """State for not-yet-reached blocks (identity of ``join``)."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        """Least upper bound of two path states."""
        raise NotImplementedError

    def transfer(self, instr: Instr, state: S) -> S:
        """Abstract effect of one instruction."""
        raise NotImplementedError

    def transfer_block(self, block: BasicBlock, state: S) -> S:
        out = state
        for instr in block.instrs:
            out = self.transfer(instr, out)
        return out


def run_fixpoint(
    cfg: CFG,
    analysis: "DataflowAnalysis[S]",
    max_visits_per_block: int = MAX_VISITS_PER_BLOCK,
) -> Dict[int, S]:
    """Solve the analysis to fixpoint; returns block-entry states.

    Raises :class:`FixpointLimitError` when any block is re-processed
    more than ``max_visits_per_block`` times — the bounded-iteration
    guard that keeps a non-monotone transfer function from hanging the
    linter.
    """
    entry_state: Dict[int, S] = {bid: analysis.bottom() for bid in cfg.blocks}
    entry_state[cfg.entry] = analysis.initial()
    order = cfg.rpo()
    position = {bid: i for i, bid in enumerate(order)}
    worklist: List[int] = list(order)
    queued = set(worklist)
    visits: Dict[int, int] = {bid: 0 for bid in cfg.blocks}

    while worklist:
        # Pop in RPO order so acyclic regions converge in one pass.
        worklist.sort(key=lambda bid: position[bid])
        bid = worklist.pop(0)
        queued.discard(bid)
        visits[bid] += 1
        if visits[bid] > max_visits_per_block:
            func = getattr(cfg.func, "name", "<function>")
            raise FixpointLimitError(
                f"dataflow fixpoint did not converge in {func} "
                f"(block {bid} visited more than {max_visits_per_block} "
                "times); the transfer function is not monotone"
            )
        out = analysis.transfer_block(cfg.blocks[bid], entry_state[bid])
        for succ in cfg.blocks[bid].succs:
            joined = analysis.join(entry_state[succ], out)
            if joined != entry_state[succ]:
                entry_state[succ] = joined
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return entry_state
