"""Observability-discipline rules: spans and metrics must stay legible.

``repro report`` aggregates trace spans by *phase* — the first dotted
segment of the span name — and the metrics registry is the single
source of truth for counters.  Three rules keep that contract:

- ``flow/span-discarded`` — a ``span(...)`` call used as a bare
  expression statement: the context manager is created and immediately
  dropped without ``with``, so the span never records a duration.
- ``flow/unknown-span-phase`` — a literal span/metric name whose phase
  prefix is not in :data:`KNOWN_PHASES`; the trace report would bucket
  it into an orphan phase nobody reads.
- ``flow/metric-direct`` — instantiating ``Counter``/``Gauge``/
  ``Histogram`` imported from ``repro.observability`` directly instead
  of going through the ``metrics()`` registry helpers; direct instances
  are invisible to ``render_metrics`` and trace reports.

The observability package itself is exempt (it defines the helpers).
"""

from __future__ import annotations

import ast
from typing import Callable, List, Optional, Sequence, Set

from repro.analysis.diagnostics import LintDiagnostic, Location, Severity

__all__ = [
    "KNOWN_PHASES",
    "RULE_METRIC_DIRECT",
    "RULE_SPAN_DISCARDED",
    "RULE_UNKNOWN_PHASE",
    "ObservabilityChecker",
]

RULE_SPAN_DISCARDED = "flow/span-discarded"
RULE_UNKNOWN_PHASE = "flow/unknown-span-phase"
RULE_METRIC_DIRECT = "flow/metric-direct"

#: Phase prefixes ``repro report`` knows how to aggregate (singular and
#: plural forms both appear in the tree: ``tasks.retries``,
#: ``fault.fired``).
KNOWN_PHASES = frozenset(
    {
        "cluster",
        "engine",
        "runner",
        "serve",
        "task",
        "tasks",
        "calibration",
        "autotune",
        "profile",
        "fault",
        "faults",
        "journal",
        "cache",
        "kernels",
        "trainstep",
    }
)

#: Registry method calls whose first argument is a metric name.
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})

#: Span-creating callables (module helper or recorder method).
_SPAN_NAMES = frozenset({"span", "_span"})
_EVENT_NAMES = frozenset({"event", "_event"})

#: Metric classes that must be built via the registry.
_METRIC_CLASSES = frozenset({"Counter", "Gauge", "Histogram"})


def _literal_name(node: ast.expr) -> Optional[str]:
    """The literal (or literal-prefixed f-string) name argument."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if (
        isinstance(node, ast.JoinedStr)
        and node.values
        and isinstance(node.values[0], ast.Constant)
        and isinstance(node.values[0].value, str)
        and "." in node.values[0].value
    ):
        return node.values[0].value
    return None


def _callee_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class ObservabilityChecker:
    """Runs the observability rule family over one parsed module."""

    def __init__(
        self,
        rel_path: str,
        lines: Sequence[str],
        suppressed: Callable[[Sequence[str], int, str], bool],
    ) -> None:
        self.rel_path = rel_path
        self.lines = lines
        self.suppressed = suppressed

    def _diag(
        self, rule: str, severity: Severity, message: str, lineno: int, col: int
    ) -> Optional[LintDiagnostic]:
        if self.suppressed(self.lines, lineno, rule):
            return None
        return LintDiagnostic(
            rule,
            severity,
            message,
            Location(file=self.rel_path, line=lineno, column=col),
        )

    def _metric_class_aliases(self, tree: ast.Module) -> Set[str]:
        """Local names bound to observability metric classes by import."""
        out: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and (
                node.module == "repro.observability"
                or node.module.startswith("repro.observability.")
            ):
                for alias in node.names:
                    if alias.name in _METRIC_CLASSES:
                        out.add(alias.asname or alias.name)
        return out

    def check_module(self, tree: ast.Module) -> List[LintDiagnostic]:
        if "observability" in self.rel_path.replace("\\", "/").split("/"):
            return []
        metric_classes = self._metric_class_aliases(tree)
        out: List[LintDiagnostic] = []

        for node in ast.walk(tree):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                callee = _callee_name(node.value)
                if callee in _SPAN_NAMES:
                    diag = self._diag(
                        RULE_SPAN_DISCARDED,
                        Severity.ERROR,
                        f"{callee}(...) creates a span context manager and "
                        "discards it — the span never records; enter it "
                        "with `with ... as sp:`",
                        node.lineno,
                        node.col_offset,
                    )
                    if diag is not None:
                        out.append(diag)

            if isinstance(node, ast.Call):
                callee = _callee_name(node)
                is_named_sink = callee in _SPAN_NAMES or callee in _EVENT_NAMES
                is_metric_method = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _METRIC_METHODS
                )
                if (is_named_sink or is_metric_method) and node.args:
                    name = _literal_name(node.args[0])
                    if name is not None and "." in name:
                        phase = name.split(".", 1)[0]
                        if phase not in KNOWN_PHASES:
                            diag = self._diag(
                                RULE_UNKNOWN_PHASE,
                                Severity.WARNING,
                                f"span/metric name {name!r} has phase "
                                f"{phase!r}, unknown to the trace report "
                                "(known: "
                                f"{', '.join(sorted(KNOWN_PHASES))}); "
                                "pick a known phase or extend "
                                "KNOWN_PHASES deliberately",
                                node.args[0].lineno,
                                node.args[0].col_offset,
                            )
                            if diag is not None:
                                out.append(diag)
                if callee in metric_classes and isinstance(node.func, ast.Name):
                    diag = self._diag(
                        RULE_METRIC_DIRECT,
                        Severity.WARNING,
                        f"direct {callee}(...) instantiation bypasses the "
                        "metrics registry; use "
                        f"metrics().{callee.lower()}(name) so the "
                        "instrument shows up in render_metrics",
                        node.lineno,
                        node.col_offset,
                    )
                    if diag is not None:
                        out.append(diag)
        return out
