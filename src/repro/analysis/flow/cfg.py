"""Intraprocedural control-flow graphs over Python ``ast``.

:func:`build_cfg` lowers one function body into basic blocks of
*instructions* — plain statements plus a few pseudo-instructions the
dataflow analyses need (``with``-enter/exit carrying the context
expression, loop-iteration bindings, branch tests).  Edges cover the
full statement grammar the satellite tests exercise: ``if``/``elif``,
``while``/``for`` with ``else``, ``break``/``continue``, early
``return``/``raise``, ``try``/``except``/``else``/``finally``,
``with``, and ``match``.

Exception edges are conservative: every block created inside a ``try``
body gets an edge to every handler entry (any statement may raise), and
``finally`` blocks sit on both the normal and the exceptional route.
Conservative extra edges are safe for the analyses built on top — the
must-hold lock analysis joins by intersection and the unit environment
joins toward unknown, so a spurious path can only *suppress* a
diagnostic, never invent one.

Comprehensions are expressions, not statements: they stay inside the
instruction that contains them (the unit analysis descends into them
as opaque sub-expressions).  The CFG is deliberately statement-grained.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["BasicBlock", "CFG", "Instr", "build_cfg"]

#: Instruction kinds (``Instr.kind``).
KIND_STMT = "stmt"
KIND_BRANCH = "branch"  # node is the test expression
KIND_LOOP_ITER = "loop_iter"  # node is the For/AsyncFor statement
KIND_WITH_ENTER = "with_enter"  # node is the withitem
KIND_WITH_EXIT = "with_exit"  # node is the withitem
KIND_MATCH = "match"  # node is the Match statement's subject


@dataclass(frozen=True)
class Instr:
    """One atomic unit of a basic block.

    ``node`` is the underlying AST node; ``kind`` distinguishes plain
    statements from the pseudo-instructions (:data:`KIND_WITH_ENTER`
    etc.) that carry structure the flat statement list would lose.
    """

    node: ast.AST
    kind: str = KIND_STMT

    @property
    def lineno(self) -> int:
        return int(getattr(self.node, "lineno", 0))

    @property
    def col(self) -> int:
        return int(getattr(self.node, "col_offset", 0))


@dataclass
class BasicBlock:
    """A straight-line run of instructions with its CFG edges."""

    bid: int
    instrs: List[Instr] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


@dataclass
class CFG:
    """One function's control-flow graph.

    ``entry`` and ``exit`` are synthetic empty blocks; every
    ``return``/``raise``/fall-off-the-end path reaches ``exit``.
    """

    func: "ast.FunctionDef | ast.AsyncFunctionDef"
    blocks: Dict[int, BasicBlock]
    entry: int
    exit: int

    @property
    def node_count(self) -> int:
        return len(self.blocks)

    @property
    def edge_count(self) -> int:
        return sum(len(b.succs) for b in self.blocks.values())

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    def rpo(self) -> List[int]:
        """Reverse post-order from the entry (unreachable blocks last)."""
        seen = set()
        order: List[int] = []

        def visit(bid: int) -> None:
            stack = [(bid, iter(self.blocks[bid].succs))]
            seen.add(bid)
            while stack:
                cur, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, iter(self.blocks[nxt].succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(cur)
                    stack.pop()

        visit(self.entry)
        for bid in self.blocks:
            if bid not in seen:
                seen.add(bid)
                order.append(bid)
        return list(reversed(order))


class _Builder:
    """Stateful lowering of one function body into a :class:`CFG`."""

    def __init__(self, func: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self.func = func
        self.blocks: Dict[int, BasicBlock] = {}
        self._next = 0
        self.entry = self._new()
        self.exit = self._new()
        #: (continue_target, break_target) stack for loop bodies.
        self._loops: List[Tuple[int, int]] = []
        #: handler-entry block ids for enclosing try statements.
        self._handlers: List[List[int]] = []

    # -- graph primitives ---------------------------------------------------

    def _new(self) -> int:
        bid = self._next
        self._next += 1
        self.blocks[bid] = BasicBlock(bid)
        return bid

    def _edge(self, a: int, b: int) -> None:
        if b not in self.blocks[a].succs:
            self.blocks[a].succs.append(b)
            self.blocks[b].preds.append(a)

    def _emit(self, bid: int, node: ast.AST, kind: str = KIND_STMT) -> None:
        self.blocks[bid].instrs.append(Instr(node, kind))
        # Any instruction inside a try body may transfer to any handler.
        for handlers in self._handlers:
            for h in handlers:
                self._edge(bid, h)

    # -- statement lowering -------------------------------------------------

    def build(self) -> CFG:
        end = self._stmts(self.func.body, self.entry)
        if end is not None:
            self._edge(end, self.exit)
        return CFG(self.func, self.blocks, self.entry, self.exit)

    def _stmts(self, stmts: List[ast.stmt], cur: Optional[int]) -> Optional[int]:
        """Lower a statement list; returns the live tail block (or None)."""
        for stmt in stmts:
            if cur is None:
                # Unreachable code still gets blocks so diagnostics can
                # point into it, but nothing flows in.
                cur = self._new()
            cur = self._stmt(stmt, cur)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, cur)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, cur)
        match_type = getattr(ast, "Match", None)
        if match_type is not None and isinstance(stmt, match_type):
            return self._match(stmt, cur)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._emit(cur, stmt)
            self._edge(cur, self.exit)
            return None
        if isinstance(stmt, ast.Break):
            self._emit(cur, stmt)
            if self._loops:
                self._edge(cur, self._loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            self._emit(cur, stmt)
            if self._loops:
                self._edge(cur, self._loops[-1][0])
            return None
        # Everything else (including nested def/class, which are opaque
        # at this level) is a straight-line instruction.
        self._emit(cur, stmt)
        return cur

    def _if(self, stmt: ast.If, cur: int) -> Optional[int]:
        self._emit(cur, stmt.test, KIND_BRANCH)
        after = self._new()
        then_entry = self._new()
        self._edge(cur, then_entry)
        then_end = self._stmts(stmt.body, then_entry)
        if then_end is not None:
            self._edge(then_end, after)
        if stmt.orelse:
            else_entry = self._new()
            self._edge(cur, else_entry)
            else_end = self._stmts(stmt.orelse, else_entry)
            if else_end is not None:
                self._edge(else_end, after)
        else:
            self._edge(cur, after)
        return after if self.blocks[after].preds else None

    def _while(self, stmt: ast.While, cur: int) -> Optional[int]:
        header = self._new()
        after = self._new()
        self._edge(cur, header)
        self._emit(header, stmt.test, KIND_BRANCH)
        body_entry = self._new()
        self._edge(header, body_entry)
        self._loops.append((header, after))
        try:
            body_end = self._stmts(stmt.body, body_entry)
        finally:
            self._loops.pop()
        if body_end is not None:
            self._edge(body_end, header)
        if stmt.orelse:
            else_entry = self._new()
            self._edge(header, else_entry)
            else_end = self._stmts(stmt.orelse, else_entry)
            if else_end is not None:
                self._edge(else_end, after)
        else:
            self._edge(header, after)
        return after if self.blocks[after].preds else None

    def _for(self, stmt: "ast.For | ast.AsyncFor", cur: int) -> Optional[int]:
        header = self._new()
        after = self._new()
        self._edge(cur, header)
        self._emit(header, stmt, KIND_LOOP_ITER)
        body_entry = self._new()
        self._edge(header, body_entry)
        self._loops.append((header, after))
        try:
            body_end = self._stmts(stmt.body, body_entry)
        finally:
            self._loops.pop()
        if body_end is not None:
            self._edge(body_end, header)
        if stmt.orelse:
            else_entry = self._new()
            self._edge(header, else_entry)
            else_end = self._stmts(stmt.orelse, else_entry)
            if else_end is not None:
                self._edge(else_end, after)
        else:
            self._edge(header, after)
        return after if self.blocks[after].preds else None

    def _try(self, stmt: ast.Try, cur: int) -> Optional[int]:
        handler_entries = [self._new() for _ in stmt.handlers]
        # Entering the try may already raise at the first statement.
        for h in handler_entries:
            self._edge(cur, h)
        self._handlers.append(handler_entries)
        try:
            body_end = self._stmts(stmt.body, cur)
        finally:
            self._handlers.pop()

        if stmt.orelse and body_end is not None:
            body_end = self._stmts(stmt.orelse, body_end)

        tails: List[int] = []
        if body_end is not None:
            tails.append(body_end)
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_end = self._stmts(handler.body, entry)
            if handler_end is not None:
                tails.append(handler_end)

        if stmt.finalbody:
            final_entry = self._new()
            for tail in tails:
                self._edge(tail, final_entry)
            # The exceptional route also runs finally before unwinding.
            for h in handler_entries:
                self._edge(h, final_entry)
            if not tails and not handler_entries:
                self._edge(cur, final_entry)
            final_end = self._stmts(stmt.finalbody, final_entry)
            if final_end is None:
                return None
            self._edge(final_end, self.exit)  # unwinding continues
            after = self._new()
            self._edge(final_end, after)
            return after
        if not tails:
            return None
        after = self._new()
        for tail in tails:
            self._edge(tail, after)
        return after

    def _with(self, stmt: "ast.With | ast.AsyncWith", cur: int) -> Optional[int]:
        for item in stmt.items:
            self._emit(cur, item, KIND_WITH_ENTER)
        end = self._stmts(stmt.body, cur)
        if end is None:
            return None
        for item in reversed(stmt.items):
            self._emit(end, item, KIND_WITH_EXIT)
        return end

    def _match(self, stmt: ast.AST, cur: int) -> Optional[int]:
        self._emit(cur, stmt.subject, KIND_MATCH)  # type: ignore[attr-defined]
        after = self._new()
        fell_through = True
        for case in stmt.cases:  # type: ignore[attr-defined]
            case_entry = self._new()
            self._edge(cur, case_entry)
            case_end = self._stmts(case.body, case_entry)
            if case_end is not None:
                self._edge(case_end, after)
            # A bare wildcard case with no guard is exhaustive.
            if self._is_wildcard(case):
                fell_through = False
        if fell_through:
            self._edge(cur, after)
        return after if self.blocks[after].preds else None

    @staticmethod
    def _is_wildcard(case: ast.AST) -> bool:
        pattern = case.pattern  # type: ignore[attr-defined]
        match_as = getattr(ast, "MatchAs", None)
        return (
            match_as is not None
            and isinstance(pattern, match_as)
            and pattern.pattern is None
            and getattr(case, "guard", None) is None
        )


def build_cfg(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> CFG:
    """Build the intraprocedural CFG of one function definition."""
    return _Builder(func).build()
