"""Flow-sensitive unit/dimension checking of the perf-model arithmetic.

Every function in the linted tree is lowered to a CFG and abstractly
interpreted over the dimension lattice of
:mod:`repro.analysis.flow.units`: assignments propagate the inferred
dimension of their right-hand side, joins at control-flow merges keep a
binding only when every incoming path agrees, and three rule families
fire on the way:

- ``flow/unit-mismatch`` — ``+``/``-`` (or ``min``/``max``) over
  operands with *different known* dimensions, and a keyword argument
  whose name implies a dimension (``latency_s=...``) receiving a value
  of a different known dimension.
- ``flow/unit-compare`` — an ordering/equality comparison between
  different known dimensions (seconds compared against bytes).
- ``flow/unit-return`` — a function whose declared dimension (units
  registry, name suffix, or ``# unit:`` pragma on the ``def`` line)
  returns a value of a different known dimension.

Unknown dimensions never fire anything: the checker is precise rather
than complete so it can block CI.  Multiplication and division compose
exponents; an unknown factor is treated as a scalar (loop counts and
literals scale quantities without re-dimensioning them).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import LintDiagnostic, Location, Severity
from repro.analysis.flow.cfg import (
    KIND_BRANCH,
    KIND_LOOP_ITER,
    KIND_MATCH,
    KIND_WITH_ENTER,
    KIND_WITH_EXIT,
    CFG,
    Instr,
    build_cfg,
)
from repro.analysis.flow.fixpoint import DataflowAnalysis, run_fixpoint
from repro.analysis.flow.units import (
    FUNCTION_UNITS,
    UNINFERRED_CALLS,
    Dim,
    infer_name,
    parse_unit_pragma,
)

__all__ = [
    "RULE_UNIT_COMPARE",
    "RULE_UNIT_MISMATCH",
    "RULE_UNIT_RETURN",
    "UnitChecker",
]

RULE_UNIT_MISMATCH = "flow/unit-mismatch"
RULE_UNIT_COMPARE = "flow/unit-compare"
RULE_UNIT_RETURN = "flow/unit-return"

#: Calls transparent to dimension (value in == value out).
_PASSTHROUGH_CALLS = frozenset(
    {"float", "int", "abs", "round", "asarray", "ascontiguousarray", "full_like"}
)

#: min/max-style joins: operands must share a dimension.
_JOIN_CALLS = frozenset({"max", "min", "maximum", "minimum"})

#: Zero-argument reductions transparent to the receiver's dimension.
_AGG_METHODS = frozenset({"sum", "min", "max", "mean", "item", "copy"})

#: Methods transparent to dimension regardless of arguments (dtype
#: casts, reshapes): the receiver's dimension passes through.
_PASSTHROUGH_METHODS = frozenset(
    {"astype", "reshape", "ravel", "flatten", "clip", "squeeze"}
)

#: Comparison ops that require commensurable operands.
_ORDERED_CMP = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

#: Environment: dotted name -> known dimension (absent = unknown).
Env = Dict[str, Dim]
#: Sink receives (rule_id, message, lineno, col).
Sink = Callable[[str, str, int, int], None]


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string, or None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _null_sink(rule: str, message: str, lineno: int, col: int) -> None:
    return None


class _Interp:
    """Shared expression/statement interpreter over one function."""

    def __init__(
        self,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        lines: Sequence[str],
    ) -> None:
        self.func = func
        self.lines = lines
        self.declared_return = self._declared_return()
        self.is_generator = any(
            isinstance(n, (ast.Yield, ast.YieldFrom))
            for n in ast.walk(func)
            if not isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            or n is func
        )

    # -- seeding -------------------------------------------------------------

    def _pragma_at(self, lineno: int) -> Optional[Dict[Optional[str], Dim]]:
        if 1 <= lineno <= len(self.lines):
            return parse_unit_pragma(self.lines[lineno - 1])
        return None

    def _declared_return(self) -> Optional[Dim]:
        pragma = self._pragma_at(self.func.lineno)
        if pragma and None in pragma:
            return pragma[None]
        registered = FUNCTION_UNITS.get(self.func.name)
        if registered is not None:
            return registered
        return infer_name(self.func.name)

    def initial_env(self) -> Env:
        env: Env = {}
        args = self.func.args
        params = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        pragma = self._pragma_at(self.func.lineno) or {}
        for param in params:
            dim = pragma.get(param.arg)
            if dim is None:
                dim = infer_name(param.arg)
            if dim is not None:
                env[param.arg] = dim
        return env

    # -- expression evaluation -----------------------------------------------

    def eval(self, node: Optional[ast.expr], env: Env, sink: Sink) -> Optional[Dim]:
        if node is None:
            return None
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node, env, sink)
        # Unhandled expression kinds: walk children for nested
        # mismatches, contribute no dimension themselves.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child, env, sink)
        return None

    def _eval_Constant(self, node: ast.Constant, env: Env, sink: Sink) -> Optional[Dim]:
        return None

    def _eval_Name(self, node: ast.Name, env: Env, sink: Sink) -> Optional[Dim]:
        known = env.get(node.id)
        if known is not None:
            return known
        return infer_name(node.id)

    def _eval_Attribute(self, node: ast.Attribute, env: Env, sink: Sink) -> Optional[Dim]:
        path = _dotted(node)
        if path is not None:
            known = env.get(path)
            if known is not None:
                return known
        else:
            self.eval(node.value, env, sink)
        return infer_name(node.attr)

    def _eval_UnaryOp(self, node: ast.UnaryOp, env: Env, sink: Sink) -> Optional[Dim]:
        operand = self.eval(node.operand, env, sink)
        if isinstance(node.op, (ast.USub, ast.UAdd)):
            return operand
        return None

    def _eval_BinOp(self, node: ast.BinOp, env: Env, sink: Sink) -> Optional[Dim]:
        left = self.eval(node.left, env, sink)
        right = self.eval(node.right, env, sink)
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            if left is not None and right is not None and left != right:
                sink(
                    RULE_UNIT_MISMATCH,
                    f"mixed-unit arithmetic: ({left}) "
                    f"{'+' if isinstance(op, ast.Add) else '-'} ({right})",
                    node.lineno,
                    node.col_offset,
                )
                return None
            return left if left is not None else right
        if isinstance(op, ast.Mult):
            if left is not None and right is not None:
                return left.mul(right)
            return left if left is not None else right
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left is not None and right is not None:
                return left.div(right)
            if left is not None:
                return left
            # unknown / known stays unknown: an unknown numerator is
            # usually a dimensioned quantity, not a scalar (tokens /
            # latency_s), so guessing known^-1 invents false mismatches.
            return None
        if isinstance(op, ast.Mod):
            return left
        if isinstance(op, ast.Pow):
            if (
                left is not None
                and isinstance(node.right, ast.Constant)
                and isinstance(node.right.value, int)
            ):
                return left.pow(node.right.value)
            return None
        return None

    def _eval_BoolOp(self, node: ast.BoolOp, env: Env, sink: Sink) -> Optional[Dim]:
        dims = [self.eval(v, env, sink) for v in node.values]
        known = [d for d in dims if d is not None]
        if known and all(d == known[0] for d in known):
            return known[0]
        return None

    def _eval_IfExp(self, node: ast.IfExp, env: Env, sink: Sink) -> Optional[Dim]:
        self.eval(node.test, env, sink)
        body = self.eval(node.body, env, sink)
        orelse = self.eval(node.orelse, env, sink)
        if body is not None and orelse is not None:
            return body if body == orelse else None
        return body if body is not None else orelse

    def _eval_Compare(self, node: ast.Compare, env: Env, sink: Sink) -> Optional[Dim]:
        left_dim = self.eval(node.left, env, sink)
        for op, comparator in zip(node.ops, node.comparators):
            right_dim = self.eval(comparator, env, sink)
            if (
                isinstance(op, _ORDERED_CMP)
                and left_dim is not None
                and right_dim is not None
                and left_dim != right_dim
            ):
                sink(
                    RULE_UNIT_COMPARE,
                    f"comparison across units: ({left_dim}) vs ({right_dim})",
                    node.lineno,
                    node.col_offset,
                )
            left_dim = right_dim
        return None

    def _eval_Subscript(self, node: ast.Subscript, env: Env, sink: Sink) -> Optional[Dim]:
        # Indexing/slicing an array of seconds yields seconds.
        if isinstance(node.slice, ast.expr):
            self.eval(node.slice, env, sink)
        return self.eval(node.value, env, sink)

    def _eval_Await(self, node: ast.Await, env: Env, sink: Sink) -> Optional[Dim]:
        return self.eval(node.value, env, sink)

    def _eval_Starred(self, node: ast.Starred, env: Env, sink: Sink) -> Optional[Dim]:
        return self.eval(node.value, env, sink)

    def _eval_Call(self, node: ast.Call, env: Env, sink: Sink) -> Optional[Dim]:
        fname: Optional[str] = None
        receiver_dim: Optional[Dim] = None
        if isinstance(node.func, ast.Name):
            fname = node.func.id
        elif isinstance(node.func, ast.Attribute):
            fname = node.func.attr
            receiver_dim = self._eval_Attribute(node.func, env, sink)
            # The attribute's own name inference applies to values, not
            # methods; only the registry speaks for call results below.
            receiver_dim = self.eval(node.func.value, env, sink)
        else:
            self.eval(node.func, env, sink)

        arg_dims = [self.eval(arg, env, sink) for arg in node.args]
        for kw in node.keywords:
            value_dim = self.eval(kw.value, env, sink)
            if kw.arg is None:
                continue
            implied = infer_name(kw.arg)
            if (
                implied is not None
                and value_dim is not None
                and implied != value_dim
            ):
                sink(
                    RULE_UNIT_MISMATCH,
                    f"keyword argument {kw.arg}= implies ({implied}) but "
                    f"receives ({value_dim})",
                    kw.value.lineno,
                    kw.value.col_offset,
                )

        if fname is None:
            return None
        if fname in UNINFERRED_CALLS:
            return None
        if fname == "where" and len(arg_dims) == 3:
            # np.where(cond, a, b): the branches must agree to keep a
            # known dimension (an optimistic join, like IfExp).
            known = [d for d in arg_dims[1:] if d is not None]
            if known and all(d == known[0] for d in known):
                return known[0]
            return None
        if (
            fname in _AGG_METHODS
            and isinstance(node.func, ast.Attribute)
            and not node.args
        ):
            return receiver_dim
        if fname in _PASSTHROUGH_METHODS and isinstance(node.func, ast.Attribute):
            return receiver_dim
        if fname in _JOIN_CALLS and len(arg_dims) >= 2:
            known = [d for d in arg_dims if d is not None]
            if len(known) >= 2 and any(d != known[0] for d in known[1:]):
                sink(
                    RULE_UNIT_MISMATCH,
                    f"{fname}() over mixed units: "
                    + " vs ".join(f"({d})" for d in known),
                    node.lineno,
                    node.col_offset,
                )
                return None
            return known[0] if known else None
        if fname in _PASSTHROUGH_CALLS and arg_dims:
            return arg_dims[0]
        registered = FUNCTION_UNITS.get(fname)
        if registered is not None:
            return registered
        return infer_name(fname)

    def _eval_JoinedStr(self, node: ast.JoinedStr, env: Env, sink: Sink) -> Optional[Dim]:
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                self.eval(value.value, env, sink)
        return None

    # -- statement transfer --------------------------------------------------

    def exec_instr(self, instr: Instr, env: Env, sink: Sink) -> Env:
        node = instr.node
        if instr.kind in (KIND_BRANCH, KIND_MATCH):
            self.eval(node, env, sink)  # type: ignore[arg-type]
            return env
        if instr.kind == KIND_LOOP_ITER:
            return self._exec_loop_iter(node, env, sink)  # type: ignore[arg-type]
        if instr.kind in (KIND_WITH_ENTER, KIND_WITH_EXIT):
            item = node
            if instr.kind == KIND_WITH_ENTER and isinstance(item, ast.withitem):
                self.eval(item.context_expr, env, sink)
                if item.optional_vars is not None:
                    env = self._bind(env, item.optional_vars, None, sink)
            return env
        if isinstance(node, ast.Assign):
            return self._exec_assign(node, env, sink)
        if isinstance(node, ast.AnnAssign):
            return self._exec_ann_assign(node, env, sink)
        if isinstance(node, ast.AugAssign):
            return self._exec_aug_assign(node, env, sink)
        if isinstance(node, ast.Return):
            self._exec_return(node, env, sink)
            return env
        if isinstance(node, ast.Expr):
            self.eval(node.value, env, sink)
            return env
        if isinstance(node, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child, env, sink)
            return env
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    env = dict(env)
                    env.pop(target.id, None)
            return env
        return env

    def _target_path(self, target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return _dotted(target)
        return None

    def _bind(
        self, env: Env, target: ast.expr, dim: Optional[Dim], sink: Sink
    ) -> Env:
        path = self._target_path(target)
        if path is None:
            return env
        leaf = path.rsplit(".", 1)[-1]
        implied = infer_name(leaf)
        if dim is not None and implied is not None and dim != implied:
            sink(
                RULE_UNIT_MISMATCH,
                f"assignment to {path} (named as {implied}) receives "
                f"({dim})",
                target.lineno,
                target.col_offset,
            )
        env = dict(env)
        if dim is not None:
            env[path] = dim
        elif implied is not None:
            env[path] = implied
        else:
            env.pop(path, None)
        return env

    def _exec_assign(self, node: ast.Assign, env: Env, sink: Sink) -> Env:
        value_dim = self.eval(node.value, env, sink)
        pragma = self._pragma_at(node.lineno) or {}
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    path = self._target_path(element)
                    dim = pragma.get(path) if path is not None else None
                    env = self._bind(env, element, dim, sink)
                continue
            path = self._target_path(target)
            dim = value_dim
            if None in pragma:
                dim = pragma[None]
            elif path is not None and path in pragma:
                dim = pragma[path]
            env = self._bind(env, target, dim, sink)
        return env

    def _exec_ann_assign(self, node: ast.AnnAssign, env: Env, sink: Sink) -> Env:
        if node.value is None:
            return env
        value_dim = self.eval(node.value, env, sink)
        pragma = self._pragma_at(node.lineno) or {}
        if None in pragma:
            value_dim = pragma[None]
        return self._bind(env, node.target, value_dim, sink)

    def _exec_aug_assign(self, node: ast.AugAssign, env: Env, sink: Sink) -> Env:
        value_dim = self.eval(node.value, env, sink)
        path = self._target_path(node.target)
        target_dim: Optional[Dim] = None
        if path is not None:
            target_dim = env.get(path)
            if target_dim is None:
                target_dim = infer_name(path.rsplit(".", 1)[-1])
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if (
                target_dim is not None
                and value_dim is not None
                and target_dim != value_dim
            ):
                sink(
                    RULE_UNIT_MISMATCH,
                    f"augmented assignment mixes units: {path} "
                    f"({target_dim}) "
                    f"{'+=' if isinstance(node.op, ast.Add) else '-='} "
                    f"({value_dim})",
                    node.lineno,
                    node.col_offset,
                )
            return env
        if isinstance(node.op, ast.Mult) and path is not None:
            if target_dim is not None and value_dim is not None:
                env = dict(env)
                env[path] = target_dim.mul(value_dim)
            return env
        if isinstance(node.op, (ast.Div, ast.FloorDiv)) and path is not None:
            if target_dim is not None and value_dim is not None:
                env = dict(env)
                env[path] = target_dim.div(value_dim)
            return env
        return env

    def _exec_loop_iter(
        self, node: "ast.For | ast.AsyncFor", env: Env, sink: Sink
    ) -> Env:
        iter_dim = self.eval(node.iter, env, sink)
        if isinstance(node.target, ast.Name):
            return self._bind(env, node.target, iter_dim, sink)
        if isinstance(node.target, (ast.Tuple, ast.List)):
            for element in node.target.elts:
                env = self._bind(env, element, None, sink)
        return env

    def _exec_return(self, node: ast.Return, env: Env, sink: Sink) -> None:
        value_dim = self.eval(node.value, env, sink)
        if (
            value_dim is not None
            and self.declared_return is not None
            and value_dim != self.declared_return
            and not self.is_generator
        ):
            sink(
                RULE_UNIT_RETURN,
                f"{self.func.name} is declared/named to return "
                f"({self.declared_return}) but this return has "
                f"({value_dim})",
                node.lineno,
                node.col_offset,
            )


class _UnitAnalysis(DataflowAnalysis[Optional[Env]]):
    """The silent (diagnostic-free) fixpoint wrapper over :class:`_Interp`."""

    def __init__(self, interp: _Interp) -> None:
        self.interp = interp

    def initial(self) -> Optional[Env]:
        return self.interp.initial_env()

    def bottom(self) -> Optional[Env]:
        return None

    def join(self, a: Optional[Env], b: Optional[Env]) -> Optional[Env]:
        if a is None:
            return b
        if b is None:
            return a
        return {
            name: dim
            for name, dim in a.items()
            if b.get(name) == dim
        }

    def transfer(self, instr: Instr, state: Optional[Env]) -> Optional[Env]:
        env = state if state is not None else {}
        return self.interp.exec_instr(instr, env, _null_sink)


class UnitChecker:
    """Runs the unit rule family over one parsed module."""

    def __init__(
        self,
        rel_path: str,
        lines: Sequence[str],
        suppressed: Callable[[Sequence[str], int, str], bool],
    ) -> None:
        self.rel_path = rel_path
        self.lines = lines
        self.suppressed = suppressed

    def check_module(self, tree: ast.Module) -> List[LintDiagnostic]:
        out: List[LintDiagnostic] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.extend(self.check_function(node))
        return out

    def check_function(
        self, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> List[LintDiagnostic]:
        interp = _Interp(func, self.lines)
        cfg: CFG = build_cfg(func)
        states = run_fixpoint(cfg, _UnitAnalysis(interp))
        findings: List[Tuple[str, str, int, int]] = []

        def sink(rule: str, message: str, lineno: int, col: int) -> None:
            findings.append((rule, message, lineno, col))

        # Replay each block exactly once from its fixpoint entry state,
        # this time with the diagnostic sink attached.
        for bid in sorted(cfg.blocks):
            env = states.get(bid) or {}
            for instr in cfg.blocks[bid].instrs:
                env = interp.exec_instr(instr, env, sink)

        out: List[LintDiagnostic] = []
        seen = set()
        for rule, message, lineno, col in findings:
            key = (rule, lineno, col, message)
            if key in seen:
                continue
            seen.add(key)
            if self.suppressed(self.lines, lineno, rule):
                continue
            out.append(
                LintDiagnostic(
                    rule,
                    Severity.ERROR,
                    message + " — annotate with `# unit: ...` if intended",
                    Location(file=self.rel_path, line=lineno, column=col),
                    paper_ref="Sec III-C/V",
                )
            )
        return out
