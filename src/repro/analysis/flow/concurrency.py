"""Lock-discipline and async-hygiene rules over the CFG fixpoint.

The lattice is the *must-hold* lock set: the canonical dotted names of
the locks provably held on **every** path into an instruction
(``with self._lock:`` / ``.acquire()`` add, block exit / ``.release()``
remove, joins intersect).  Three rules consume it:

- ``flow/unguarded-shared-write`` — inside a class that owns
  ``threading`` locks, an attribute written *both* with and without a
  lock held.  Consistently-unlocked attributes (single-threaded state,
  flags set before threads start) do not fire; the bug signature is the
  mixed discipline.
- ``flow/lock-across-await`` — a ``threading`` lock (sync ``with`` /
  ``acquire``) held across an ``await``: the coroutine parks while
  every other task contending for that lock deadlocks the event-loop
  thread.
- ``flow/blocking-in-async`` — ``time.sleep``, file I/O, subprocess
  calls, or a synchronous ``Engine.evaluate*`` in a coroutine body;
  these stall the event loop (dispatch to an executor instead).
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.diagnostics import LintDiagnostic, Location, Severity
from repro.analysis.flow.cfg import (
    KIND_LOOP_ITER,
    KIND_WITH_ENTER,
    KIND_WITH_EXIT,
    Instr,
    build_cfg,
)
from repro.analysis.flow.fixpoint import DataflowAnalysis, run_fixpoint

__all__ = [
    "RULE_BLOCKING_ASYNC",
    "RULE_LOCK_AWAIT",
    "RULE_UNGUARDED_WRITE",
    "ConcurrencyChecker",
]

RULE_UNGUARDED_WRITE = "flow/unguarded-shared-write"
RULE_LOCK_AWAIT = "flow/lock-across-await"
RULE_BLOCKING_ASYNC = "flow/blocking-in-async"

#: Constructors that make an attribute a known lock.
_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Name fragments that mark a dotted expression as lock-like even when
#: its constructor is out of view (module globals, parameters).
_LOCKISH = ("lock", "cond", "mutex", "semaphore")

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popleft",
        "appendleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "rotate",
        "sort",
        "reverse",
    }
)

#: Blocking calls by dotted name.
_BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
    }
)

#: Blocking calls by method name (receiver-independent).
_BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: Synchronous engine entry points that must not run on the event loop.
_ENGINE_METHODS = frozenset({"evaluate", "evaluate_grid", "latency", "tflops"})

#: Must-hold state: dotted lock names held on every path (None=bottom).
LockState = Optional[FrozenSet[str]]


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_lockish(path: str) -> bool:
    leaf = path.rsplit(".", 1)[-1].lower()
    return any(fragment in leaf for fragment in _LOCKISH)


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function bodies."""
    stack: List[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def _instr_nodes(instr: Instr) -> Tuple[ast.AST, ...]:
    """The AST actually evaluated at this instruction.

    A loop-header instruction carries the whole ``For``/``AsyncFor``
    statement so the fixpoint can model iteration, but only the target
    binding and the iterable are evaluated there — the body statements
    are lowered into their own CFG blocks.  Walking the full statement
    at the header would replay every body effect (writes, awaits,
    acquire/release) with the *pre-loop* lock state, flagging
    correctly-locked writes inside the loop.
    """
    node = instr.node
    if instr.kind == KIND_LOOP_ITER and isinstance(
        node, (ast.For, ast.AsyncFor)
    ):
        # Model the header as the assignment it performs each
        # iteration (``target <- next(iter)``) so a write-through
        # target like ``for self.x in ...`` is still seen; the
        # synthetic node's children are the real ones, so diagnostic
        # locations stay accurate.
        return (ast.Assign(targets=[node.target], value=node.iter),)
    return (node,)


class _LockAnalysis(DataflowAnalysis[LockState]):
    """Must-hold analysis for synchronous (threading) locks.

    ``async with`` entries are excluded: asyncio primitives are safe to
    hold across ``await`` and are not threading locks.
    """

    def __init__(self, async_with_items: FrozenSet[int]) -> None:
        self._async_items = async_with_items

    def initial(self) -> LockState:
        return frozenset()

    def bottom(self) -> LockState:
        return None

    def join(self, a: LockState, b: LockState) -> LockState:
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    def transfer(self, instr: Instr, state: LockState) -> LockState:
        held = state if state is not None else frozenset()
        node = instr.node
        if instr.kind in (KIND_WITH_ENTER, KIND_WITH_EXIT):
            if not isinstance(node, ast.withitem) or id(node) in self._async_items:
                return held
            path = _dotted(node.context_expr)
            if path is None or not _is_lockish(path):
                return held
            if instr.kind == KIND_WITH_ENTER:
                return held | {path}
            return held - {path}
        for root in _instr_nodes(instr):
            for sub in _walk_shallow(root):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("acquire", "release")
                ):
                    receiver = _dotted(sub.func.value)
                    if receiver is not None and _is_lockish(receiver):
                        if sub.func.attr == "acquire":
                            held = held | {receiver}
                        else:
                            held = held - {receiver}
        return held


def _async_with_items(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> FrozenSet[int]:
    out: Set[int] = set()
    for node in _walk_shallow(func):
        if isinstance(node, ast.AsyncWith):
            out.update(id(item) for item in node.items)
    return frozenset(out)


def _held_at_instrs(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> List[Tuple[Instr, FrozenSet[str]]]:
    """(instruction, must-hold set *before* it) for every instruction."""
    cfg = build_cfg(func)
    analysis = _LockAnalysis(_async_with_items(func))
    states = run_fixpoint(cfg, analysis)
    out: List[Tuple[Instr, FrozenSet[str]]] = []
    for bid in sorted(cfg.blocks):
        state = states.get(bid)
        held: LockState = state if state is not None else frozenset()
        for instr in cfg.blocks[bid].instrs:
            assert held is not None
            out.append((instr, held))
            held = analysis.transfer(instr, held)
    return out


#: One attribute write: (attr, lineno, col, locks held, description).
_Write = Tuple[str, int, int, FrozenSet[str], str]


def _self_attr_root(node: ast.AST) -> Optional[str]:
    """``self.X...`` → ``X`` for attribute/subscript chains off self."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        node = node.value
    return None


def _writes_in(node: ast.AST, held: FrozenSet[str]) -> List[_Write]:
    out: List[_Write] = []

    def record(attr: Optional[str], at: ast.AST, what: str) -> None:
        if attr is None:
            return
        out.append(
            (
                attr,
                int(getattr(at, "lineno", 0)),
                int(getattr(at, "col_offset", 0)),
                held,
                what,
            )
        )

    for sub in _walk_shallow(node):
        if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        record(
                            _self_attr_root(element), element, "assignment"
                        )
                else:
                    record(_self_attr_root(target), target, "assignment")
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                record(_self_attr_root(target), target, "deletion")
        elif isinstance(sub, ast.Call):
            if (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATOR_METHODS
            ):
                record(
                    _self_attr_root(sub.func.value),
                    sub,
                    f".{sub.func.attr}() mutation",
                )
            elif (
                isinstance(sub.func, ast.Name)
                and sub.func.id == "setattr"
                and sub.args
            ):
                record(_self_attr_root(sub.args[0]), sub, "setattr")
    return out


def _lock_attrs_of_class(cls: ast.ClassDef) -> Set[str]:
    """Attributes assigned a ``threading`` lock in ``__init__``."""
    out: Set[str] = set()
    for stmt in cls.body:
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "__init__"
        ):
            for sub in _walk_shallow(stmt):
                if not isinstance(sub, ast.Assign):
                    continue
                value = sub.value
                if not isinstance(value, ast.Call):
                    continue
                fn = value.func
                ctor = (
                    fn.id
                    if isinstance(fn, ast.Name)
                    else fn.attr if isinstance(fn, ast.Attribute) else None
                )
                if ctor not in _LOCK_CTORS:
                    continue
                for target in sub.targets:
                    attr = _self_attr_root(target)
                    if attr is not None:
                        out.add(attr)
    return out


def _is_blocking_call(node: ast.Call) -> Optional[str]:
    """A human-readable description when the call blocks, else None."""
    fn = node.func
    dotted = _dotted(fn)
    if dotted in _BLOCKING_DOTTED:
        return f"{dotted}()"
    if isinstance(fn, ast.Name) and fn.id == "open":
        return "open()"
    if isinstance(fn, ast.Attribute):
        if fn.attr in _BLOCKING_METHODS:
            return f".{fn.attr}()"
        if fn.attr in _ENGINE_METHODS:
            receiver = (_dotted(fn.value) or "").lower()
            if "engine" in receiver:
                return f"{_dotted(fn.value)}.{fn.attr}()"
    return None


class ConcurrencyChecker:
    """Runs the concurrency rule family over one parsed module."""

    def __init__(
        self,
        rel_path: str,
        lines: Sequence[str],
        suppressed: Callable[[Sequence[str], int, str], bool],
    ) -> None:
        self.rel_path = rel_path
        self.lines = lines
        self.suppressed = suppressed

    def _diag(
        self, rule: str, message: str, lineno: int, col: int
    ) -> Optional[LintDiagnostic]:
        if self.suppressed(self.lines, lineno, rule):
            return None
        return LintDiagnostic(
            rule,
            Severity.ERROR,
            message,
            Location(file=self.rel_path, line=lineno, column=col),
            paper_ref="Sec VI (serving)",
        )

    def check_module(self, tree: ast.Module) -> List[LintDiagnostic]:
        out: List[LintDiagnostic] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                out.extend(self._check_class_writes(node))
            elif isinstance(node, ast.AsyncFunctionDef):
                out.extend(self._check_async_body(node))
        return [d for d in out if d is not None]

    # -- rule: mixed locked/unlocked shared-attribute writes ------------------

    def _check_class_writes(self, cls: ast.ClassDef) -> List[LintDiagnostic]:
        lock_attrs = _lock_attrs_of_class(cls)
        if not lock_attrs:
            return []
        writes: Dict[str, List[_Write]] = {}
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__":
                continue
            for instr, held in _held_at_instrs(stmt):
                for root in _instr_nodes(instr):
                    for write in _writes_in(root, held):
                        attr = write[0]
                        if attr in lock_attrs:
                            continue
                        writes.setdefault(attr, []).append(write)

        out: List[LintDiagnostic] = []
        for attr in sorted(writes):
            sites = writes[attr]
            locked = [w for w in sites if w[3]]
            unlocked = [w for w in sites if not w[3]]
            if not locked or not unlocked:
                continue  # consistent discipline either way
            guard = sorted({name for w in locked for name in w[3]})
            guarded_lines = sorted({w[1] for w in locked})
            for _, lineno, col, _, what in unlocked:
                diag = self._diag(
                    RULE_UNGUARDED_WRITE,
                    f"{cls.name}.{attr} {what} without holding "
                    f"{'/'.join(guard)} — the same attribute is written "
                    f"under the lock at line "
                    f"{', '.join(map(str, guarded_lines))}",
                    lineno,
                    col,
                )
                if diag is not None:
                    out.append(diag)
        return out

    # -- rules: async-body hygiene --------------------------------------------

    def _check_async_body(
        self, func: ast.AsyncFunctionDef
    ) -> List[LintDiagnostic]:
        out: List[LintDiagnostic] = []
        for instr, held in _held_at_instrs(func):
            if held:
                for root in _instr_nodes(instr):
                    for sub in _walk_shallow(root):
                        if not isinstance(sub, ast.Await):
                            continue
                        diag = self._diag(
                            RULE_LOCK_AWAIT,
                            f"await while holding threading lock "
                            f"{'/'.join(sorted(held))} in {func.name} — "
                            "the event-loop thread deadlocks any other "
                            "task contending for it; release before "
                            "awaiting or use asyncio primitives",
                            int(getattr(sub, "lineno", instr.lineno)),
                            int(getattr(sub, "col_offset", instr.col)),
                        )
                        if diag is not None:
                            out.append(diag)
        for sub in _walk_shallow(func):
            if isinstance(sub, ast.Call):
                blocking = _is_blocking_call(sub)
                if blocking is not None:
                    diag = self._diag(
                        RULE_BLOCKING_ASYNC,
                        f"blocking call {blocking} inside async "
                        f"{func.name} stalls the event loop; use "
                        "asyncio.sleep / run_in_executor instead",
                        sub.lineno,
                        sub.col_offset,
                    )
                    if diag is not None:
                        out.append(diag)
        return out
