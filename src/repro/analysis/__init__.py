"""Static analysis: the co-design shape linter and the self-lint pass.

Two prongs over one diagnostics currency (see
:mod:`repro.analysis.diagnostics`):

- :class:`ShapeLinter` checks a :class:`~repro.core.config.
  TransformerConfig` against the paper's sizing rules, with fix-its
  quantified through the memoized engine (``repro lint <config>``).
- :class:`SelfLinter` checks the ``repro`` source tree itself for
  engine-misuse and cache-correctness hazards (``repro lint --self``).

A third, flow-sensitive prong lives in :mod:`repro.analysis.flow`
(:class:`FlowLinter`): CFG + abstract-interpretation rules for
unit/dimension consistency, lock/async discipline, and observability
hygiene (``repro lint --flow``; also folded into ``--self``).
"""

from repro.analysis.diagnostics import (
    FixIt,
    LintDiagnostic,
    LintReport,
    Location,
    Severity,
)
from repro.analysis.config_io import config_from_dict, load_targets
from repro.analysis.fixit import (
    GemmShape,
    RankedCandidate,
    best_candidate,
    modeled_latency,
    nearest_multiple,
    neighborhood_multiples,
    rank_candidates,
    strictly_better,
)
from repro.analysis.flow import FlowLinter
from repro.analysis.selflint import SelfLinter
from repro.analysis.shape_rules import ShapeLinter

__all__ = [
    "FixIt",
    "FlowLinter",
    "GemmShape",
    "LintDiagnostic",
    "LintReport",
    "Location",
    "RankedCandidate",
    "SelfLinter",
    "Severity",
    "ShapeLinter",
    "best_candidate",
    "config_from_dict",
    "load_targets",
    "modeled_latency",
    "nearest_multiple",
    "neighborhood_multiples",
    "rank_candidates",
    "strictly_better",
]
