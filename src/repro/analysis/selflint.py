"""The AST self-lint pass (prong 2): ``repro lint --self``.

Guards the invariants PR 1's engine made load-bearing, by reading the
source rather than running it:

- ``self/scalar-eval-in-loop`` — a scalar :class:`GemmModel` method
  (``evaluate`` / ``latency`` / ``tflops``) called inside a loop or
  comprehension.  Hot paths must use the engine batch path
  (:func:`repro.engine.default_engine`), which is memoized and
  vectorized; a scalar call per iteration silently forfeits both.
- ``self/engine-eval-in-loop`` — an engine batch method (``evaluate``
  / ``latency`` / ``tflops`` / ``evaluate_grid`` / ``evaluate_tiles``)
  called on a :class:`ShapeEngine` (or a ``default_engine()`` result)
  inside a loop or comprehension.  A grid loop that calls the engine
  once per iteration forfeits the SoA whole-grid path: build one
  :class:`~repro.engine.ShapeGrid` covering the sweep and call
  ``evaluate_grid`` once — and a per-candidate Python loop around
  ``evaluate_grid`` itself is the same mistake one level up
  (``evaluate_tiles`` owns that loop).
- ``self/calibration-constant-guard`` — a calibration-mutable constant
  (module-level ``_EFF_*`` in ``repro.gpu``) that the cache-key module
  does not fold into :func:`repro.engine.cache.model_version`.  Such a
  constant could be re-fit without invalidating cached results.
- ``self/nondeterministic-cache-key`` — ``time`` / ``random`` /
  ``os.environ`` / ``uuid`` / ``datetime`` reads inside a function that
  builds cache keys (name contains ``key``, ``version`` or ``digest``).
  Cache keys must be pure functions of model state.
- ``self/dataclass-docstring`` — a public dataclass with no docstring,
  or with ``float`` fields carrying no unit documentation (not named in
  the class docstring, no unit suffix like ``_s``/``_bytes``, no
  adjacent comment).  Floats are where a missing unit bites (seconds
  vs microseconds); int counts and str names document themselves.

A finding can be suppressed for one line with ``# lint:
allow(rule-id)`` on the flagged line — every suppression is visible in
the diff, unlike an ever-growing global ignore list.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import LintDiagnostic, LintReport, Location, Severity
from repro.errors import ConfigError

RULE_SCALAR_LOOP = "self/scalar-eval-in-loop"
RULE_ENGINE_LOOP = "self/engine-eval-in-loop"
RULE_CONSTANT_GUARD = "self/calibration-constant-guard"
RULE_NONDET_KEY = "self/nondeterministic-cache-key"
RULE_DATACLASS_DOC = "self/dataclass-docstring"

#: Scalar GemmModel methods with an engine batch equivalent.
_SCALAR_METHODS = frozenset({"evaluate", "latency", "tflops"})

#: Module-level constants in repro.gpu that calibration may re-fit.
_CALIBRATION_CONSTANT = re.compile(r"^_EFF[A-Z0-9_]*$")

#: Function names that indicate cache-key construction.
_KEYISH_NAME = re.compile(r"key|version|digest", re.IGNORECASE)

#: Modules whose reads make a value time/process dependent.
_NONDET_MODULES = frozenset({"time", "random", "uuid", "secrets", "datetime"})

#: Field-name suffixes that self-document the unit.
_UNIT_SUFFIXES = (
    "_s", "_ms", "_us", "_ns", "_b", "_kb", "_mb", "_gb", "_bytes",
    "_gbps", "_flops", "_tflops", "_hz", "_ghz", "_pct", "_frac",
    "_fraction", "_rate", "_eff", "_efficiency", "_count", "_idx",
    "_index", "_len", "_size", "_dim", "_degree", "_elems", "_sm",
    "_sms", "_tokens", "_heads", "_layers",
)

_PRAGMA = re.compile(r"#\s*lint:\s*allow\(([a-z0-9/_-]+)\)")


def _suppressed(lines: Sequence[str], lineno: int, rule_id: str) -> bool:
    """True when the 1-indexed source line carries an allow pragma.

    The pragma may name the rule with or without its ``self/``
    namespace: ``# lint: allow(scalar-eval-in-loop)``.
    """
    if not 1 <= lineno <= len(lines):
        return False
    match = _PRAGMA.search(lines[lineno - 1])
    if not match:
        return False
    allowed = match.group(1)
    return allowed == rule_id or allowed == rule_id.rsplit("/", 1)[-1]


class _ScalarLoopVisitor(ast.NodeVisitor):
    """Finds scalar GemmModel method calls under a loop.

    Tracks three binding forms: ``x = GemmModel(...)``,
    ``self.x = GemmModel(...)``, and parameters annotated ``GemmModel``.
    Name bindings are scoped per function (an ``x = GemmModel(...)`` in
    one function must not taint ``x`` in another), and rebinding a
    tracked name to anything else untracks it.  Receivers bound any
    other way (tuple unpacking, factories) are out of scope — precision
    over recall, so the rule can block CI.
    """

    #: Method names that count as a hit on a tracked receiver;
    #: subclasses widen this set.
    _METHODS = _SCALAR_METHODS

    def __init__(self) -> None:
        self._scopes: List[Set[str]] = [set()]
        self.self_attrs: Set[str] = set()
        self.hits: List[Tuple[int, int, str]] = []  # line, col, receiver
        self._loop_depth = 0

    def _track(self, name: str) -> None:
        self._scopes[-1].add(name)

    def _untrack(self, name: str) -> None:
        for scope in self._scopes:
            scope.discard(name)

    def _tracked(self, name: str) -> bool:
        return any(name in scope for scope in self._scopes)

    @staticmethod
    def _is_gemm_model_ctor(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        fn = value.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        return name == "GemmModel"

    @staticmethod
    def _annotation_is_gemm_model(node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id == "GemmModel"
        if isinstance(node, ast.Attribute):
            return node.attr == "GemmModel"
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return "GemmModel" in node.value
        return False

    # -- binding collection --------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        is_ctor = self._is_gemm_model_ctor(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._track(target.id) if is_ctor else self._untrack(target.id)
            elif isinstance(target, ast.Attribute) and self._is_self(target.value):
                if is_ctor:
                    self.self_attrs.add(target.attr)
                else:
                    self.self_attrs.discard(target.attr)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            is_ctor = self._is_gemm_model_ctor(node.value)
            if isinstance(node.target, ast.Name):
                self._track(node.target.id) if is_ctor else self._untrack(
                    node.target.id
                )
            elif isinstance(node.target, ast.Attribute) and self._is_self(
                node.target.value
            ):
                if is_ctor:
                    self.self_attrs.add(node.target.attr)
                else:
                    self.self_attrs.discard(node.target.attr)
        self.generic_visit(node)

    def _visit_function(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self._scopes.append(set())
        args = list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        )
        for arg in args:
            if self._annotation_is_gemm_model(arg.annotation):
                self._track(arg.arg)
        try:
            self.generic_visit(node)
        finally:
            self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- loop context --------------------------------------------------------

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._loop_depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop
    visit_ListComp = _visit_loop
    visit_SetComp = _visit_loop
    visit_DictComp = _visit_loop
    visit_GeneratorExp = _visit_loop

    # -- the check -----------------------------------------------------------

    @staticmethod
    def _is_self(node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id == "self"

    def _receiver(self, node: ast.Attribute) -> Optional[str]:
        obj = node.value
        if isinstance(obj, ast.Name) and self._tracked(obj.id):
            return obj.id
        if (
            isinstance(obj, ast.Attribute)
            and self._is_self(obj.value)
            and obj.attr in self.self_attrs
        ):
            return f"self.{obj.attr}"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self._loop_depth > 0
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._METHODS
        ):
            receiver = self._receiver(node.func)
            if receiver is not None:
                self.hits.append(
                    (node.lineno, node.col_offset, f"{receiver}.{node.func.attr}")
                )
        self.generic_visit(node)


class _EngineLoopVisitor(_ScalarLoopVisitor):
    """Finds engine batch calls under a loop (per-shape scalar use).

    Same binding machinery as :class:`_ScalarLoopVisitor`, retargeted
    at :class:`ShapeEngine` receivers — including the inline
    ``default_engine().evaluate(...)`` form, which binds no name.
    Additionally flags ``evaluate_grid`` / ``evaluate_tiles`` inside a
    loop: one whole-grid call per loop iteration (e.g. per candidate
    tile) is the scalar-in-loop mistake at grid granularity — the
    engine's own batched sweep (``evaluate_tiles``) owns that loop.
    """

    _CTOR_NAMES = frozenset({"ShapeEngine", "default_engine"})
    _METHODS = _SCALAR_METHODS | frozenset({"evaluate_grid", "evaluate_tiles"})

    @staticmethod
    def _is_gemm_model_ctor(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        fn = value.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        return name in _EngineLoopVisitor._CTOR_NAMES

    @staticmethod
    def _annotation_is_gemm_model(node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id == "ShapeEngine"
        if isinstance(node, ast.Attribute):
            return node.attr == "ShapeEngine"
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return "ShapeEngine" in node.value
        return False

    def _receiver(self, node: ast.Attribute) -> Optional[str]:
        found = super()._receiver(node)
        if found is not None:
            return found
        obj = node.value
        if self._is_gemm_model_ctor(obj):
            fn = obj.func  # type: ignore[union-attr]
            name = fn.id if isinstance(fn, ast.Name) else fn.attr
            return f"{name}()"
        return None


class SelfLinter:
    """Runs the self-lint rules over a Python source tree."""

    def __init__(self, root: "str | Path | None" = None) -> None:
        if root is None:
            import repro

            root = Path(repro.__file__).parent
        self.root = Path(root)
        if not self.root.exists():
            raise ConfigError(f"self-lint root does not exist: {self.root}")

    # -- file discovery ------------------------------------------------------

    def _files(self, paths: Optional[Sequence["str | Path"]]) -> List[Path]:
        if paths:
            out: List[Path] = []
            for p in paths:
                p = Path(p)
                if p.is_dir():
                    out.extend(sorted(p.rglob("*.py")))
                elif p.suffix == ".py":
                    out.append(p)
                else:
                    raise ConfigError(f"not a Python file or directory: {p}")
            return out
        if self.root.is_file():
            return [self.root]
        return sorted(self.root.rglob("*.py"))

    def _rel(self, path: Path) -> str:
        try:
            return str(path.relative_to(self.root.parent))
        except ValueError:
            return str(path)

    # -- entry point ---------------------------------------------------------

    def lint(self, paths: Optional[Sequence["str | Path"]] = None) -> LintReport:
        files = self._files(paths)
        report = LintReport(
            target=f"self-lint of {self.root if not paths else ', '.join(map(str, paths))}"
        )
        parsed: Dict[Path, Tuple[ast.Module, List[str]]] = {}
        for path in files:
            source = path.read_text()
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                raise ConfigError(f"cannot parse {path}: {exc}") from exc
            parsed[path] = (tree, source.splitlines())

        for path, (tree, lines) in parsed.items():
            report.extend(self._check_scalar_loops(path, tree, lines))
            report.extend(self._check_engine_loops(path, tree, lines))
            report.extend(self._check_nondet_keys(path, tree, lines))
            report.extend(self._check_dataclass_docs(path, tree, lines))
        report.extend(self._check_constant_guard(parsed))
        return report

    # -- rule: scalar eval in loop -------------------------------------------

    def _check_scalar_loops(
        self, path: Path, tree: ast.Module, lines: Sequence[str]
    ) -> List[LintDiagnostic]:
        visitor = _ScalarLoopVisitor()
        visitor.visit(tree)
        out = []
        for lineno, col, call in visitor.hits:
            if _suppressed(lines, lineno, RULE_SCALAR_LOOP):
                continue
            out.append(
                LintDiagnostic(
                    RULE_SCALAR_LOOP,
                    Severity.WARNING,
                    f"scalar GemmModel call `{call}(...)` inside a loop; "
                    "batch the shapes and use the engine "
                    "(repro.engine.default_engine) instead",
                    Location(file=self._rel(path), line=lineno, column=col),
                )
            )
        return out

    # -- rule: engine eval in loop ---------------------------------------------

    def _check_engine_loops(
        self, path: Path, tree: ast.Module, lines: Sequence[str]
    ) -> List[LintDiagnostic]:
        visitor = _EngineLoopVisitor()
        visitor.visit(tree)
        out = []
        for lineno, col, call in visitor.hits:
            if _suppressed(lines, lineno, RULE_ENGINE_LOOP):
                continue
            out.append(
                LintDiagnostic(
                    RULE_ENGINE_LOOP,
                    Severity.WARNING,
                    f"engine call `{call}(...)` inside a loop; build one "
                    "ShapeGrid covering the whole sweep and call "
                    "engine.evaluate_grid once instead (for per-candidate "
                    "tile sweeps, engine.evaluate_tiles owns the loop)",
                    Location(file=self._rel(path), line=lineno, column=col),
                )
            )
        return out

    # -- rule: calibration constants must reach the cache key -----------------

    def _check_constant_guard(
        self, parsed: Dict[Path, Tuple[ast.Module, List[str]]]
    ) -> List[LintDiagnostic]:
        constants: List[Tuple[Path, int, str]] = []
        for path, (tree, _) in parsed.items():
            if "gpu" not in path.parts:
                continue
            for node in tree.body:
                targets: Iterable[ast.expr] = ()
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) and _CALIBRATION_CONSTANT.match(
                        target.id
                    ):
                        constants.append((path, node.lineno, target.id))
        if not constants:
            return []

        key_module = self.root / "engine" / "cache.py"
        referenced: Set[str] = set()
        if key_module.exists():
            key_tree = ast.parse(key_module.read_text(), filename=str(key_module))
            for node in ast.walk(key_tree):
                if isinstance(node, ast.Attribute):
                    referenced.add(node.attr)
                elif isinstance(node, ast.Name):
                    referenced.add(node.id)

        out = []
        for path, lineno, name in constants:
            if name in referenced:
                continue
            lines = parsed[path][1]
            if _suppressed(lines, lineno, RULE_CONSTANT_GUARD):
                continue
            out.append(
                LintDiagnostic(
                    RULE_CONSTANT_GUARD,
                    Severity.ERROR,
                    f"calibration constant {name} is not folded into the "
                    "engine cache key (repro.engine.cache.model_version); "
                    "re-fitting it would serve stale cached results",
                    Location(file=self._rel(path), line=lineno),
                )
            )
        return out

    # -- rule: cache keys must be deterministic --------------------------------

    @staticmethod
    def _nondet_reason(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            base = node.value.id
            if base in _NONDET_MODULES:
                return f"{base}.{node.attr}"
            if base == "os" and node.attr in ("environ", "getenv"):
                return f"os.{node.attr}"
        if isinstance(node, ast.Name) and node.id == "getenv":
            return "getenv"
        return None

    def _check_nondet_keys(
        self, path: Path, tree: ast.Module, lines: Sequence[str]
    ) -> List[LintDiagnostic]:
        out = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _KEYISH_NAME.search(node.name):
                continue
            for sub in ast.walk(node):
                reason = self._nondet_reason(sub)
                if reason is None:
                    continue
                lineno = getattr(sub, "lineno", node.lineno)
                if _suppressed(lines, lineno, RULE_NONDET_KEY):
                    continue
                out.append(
                    LintDiagnostic(
                        RULE_NONDET_KEY,
                        Severity.ERROR,
                        f"`{reason}` inside cache-key function "
                        f"`{node.name}`: keys must be pure functions of "
                        "model state, never of time/process/environment",
                        Location(file=self._rel(path), line=lineno),
                    )
                )
        return out

    # -- rule: public dataclass field documentation ----------------------------

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = target.id if isinstance(target, ast.Name) else (
                target.attr if isinstance(target, ast.Attribute) else None
            )
            if name == "dataclass":
                return True
        return False

    @staticmethod
    def _is_float_annotation(node: Optional[ast.expr]) -> bool:
        """True for ``float`` / ``Optional[float]`` / ``"float"`` fields.

        Only float fields need unit docs — an undocumented float is
        ambiguous between seconds/us, bytes/GB, fraction/percent.
        """
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id == "float"
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value.strip() == "float"
        if isinstance(node, ast.Subscript):
            base = node.value
            name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else None
            )
            if name == "Optional":
                return SelfLinter._is_float_annotation(node.slice)
        return False

    @staticmethod
    def _field_documented(
        name: str, docstring: str, lines: Sequence[str], lineno: int
    ) -> bool:
        if re.search(rf"\b{re.escape(name)}\b", docstring):
            return True
        if name.endswith(_UNIT_SUFFIXES):
            return True
        # An adjacent comment (same line or the line above) counts.
        for ln in (lineno, lineno - 1):
            if 1 <= ln <= len(lines) and "#" in lines[ln - 1]:
                return True
        return False

    def _check_dataclass_docs(
        self, path: Path, tree: ast.Module, lines: Sequence[str]
    ) -> List[LintDiagnostic]:
        out = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name.startswith("_") or not self._is_dataclass(node):
                continue
            if _suppressed(lines, node.lineno, RULE_DATACLASS_DOC):
                continue
            docstring = ast.get_docstring(node) or ""
            if not docstring.strip():
                out.append(
                    LintDiagnostic(
                        RULE_DATACLASS_DOC,
                        Severity.WARNING,
                        f"public dataclass {node.name} has no docstring; "
                        "document its fields' shapes/units",
                        Location(file=self._rel(path), line=node.lineno),
                    )
                )
                continue
            missing = []
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if not isinstance(stmt.target, ast.Name):
                    continue
                field = stmt.target.id
                if field.startswith("_") or not self._is_float_annotation(
                    stmt.annotation
                ):
                    continue
                if _suppressed(lines, stmt.lineno, RULE_DATACLASS_DOC):
                    continue
                if not self._field_documented(field, docstring, lines, stmt.lineno):
                    missing.append(field)
            if missing:
                out.append(
                    LintDiagnostic(
                        RULE_DATACLASS_DOC,
                        Severity.WARNING,
                        f"public dataclass {node.name} fields missing "
                        f"shape/unit documentation: {', '.join(missing)} "
                        "(name them in the docstring, use a unit suffix, "
                        "or add an adjacent comment)",
                        Location(file=self._rel(path), line=node.lineno),
                    )
                )
        return out
