"""Engine-backed quantification of fix-it candidates.

Every shape-rule fix-it follows the same recipe (the paper's Sec VII-B
methodology, same spirit as tritonBLAS's analytical selection): build
the small set of GEMMs a config field influences, batch-evaluate the
whole candidate neighborhood through the memoized
:func:`repro.engine.default_engine` in ONE engine call, and rank
candidates by modeled latency rather than by divisibility alone.  This
module owns that recipe so each rule only describes its neighborhood.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import default_engine, shape_array
from repro.errors import ConfigError

#: A GEMM as ``(m, n, k, batch)`` — the column order of
#: :func:`repro.engine.shape_array`.
GemmShape = Tuple[int, int, int, int]

#: Maps a candidate value to the GEMM set it induces.
ShapesFor = Callable[[int], Sequence[GemmShape]]


@dataclass(frozen=True)
class RankedCandidate:
    """One candidate value with its summed modeled latency (seconds)."""

    value: int
    latency_s: float


def modeled_latency(
    shapes: Sequence[GemmShape], gpu: str, dtype: str = "fp16"
) -> float:
    """Summed engine-modeled latency (seconds) of a GEMM set."""
    if not shapes:
        raise ConfigError("modeled_latency needs at least one GEMM shape")
    arr = shape_array(
        [s[0] for s in shapes],
        [s[1] for s in shapes],
        [s[2] for s in shapes],
        [s[3] for s in shapes],
    )
    return float(default_engine().latency(arr, gpu, dtype).sum())


def rank_candidates(
    candidates: Sequence[int],
    shapes_for: ShapesFor,
    gpu: str,
    dtype: str = "fp16",
) -> List[RankedCandidate]:
    """Batch-evaluate every candidate's GEMM set in one engine call.

    Returns candidates sorted best-first by summed modeled latency,
    ties broken by candidate value (smaller wins: less padding waste).
    All candidates' shapes are concatenated into a single array so the
    engine's batch path and its caches see one lookup, not N.
    """
    if not candidates:
        raise ConfigError("rank_candidates needs at least one candidate")
    per_candidate: List[Sequence[GemmShape]] = [shapes_for(v) for v in candidates]
    flat: List[GemmShape] = [s for group in per_candidate for s in group]
    arr = shape_array(
        [s[0] for s in flat],
        [s[1] for s in flat],
        [s[2] for s in flat],
        [s[3] for s in flat],
    )
    latency = default_engine().latency(arr, gpu, dtype)
    ranked: List[RankedCandidate] = []
    offset = 0
    for value, group in zip(candidates, per_candidate):
        span = len(group)
        total = float(np.sum(latency[offset : offset + span]))
        ranked.append(RankedCandidate(value=value, latency_s=total))
        offset += span
    return sorted(ranked, key=lambda c: (c.latency_s, c.value))


def best_candidate(
    candidates: Sequence[int],
    shapes_for: ShapesFor,
    gpu: str,
    dtype: str = "fp16",
) -> RankedCandidate:
    """The modeled-fastest candidate of a neighborhood."""
    return rank_candidates(candidates, shapes_for, gpu, dtype)[0]


def nearest_multiple(value: int, multiple: int, *, up_only: bool = False) -> int:
    """The multiple of ``multiple`` nearest to ``value`` (ties round up).

    ``up_only`` restricts to multiples >= value (vocabulary padding can
    only grow: shrinking would drop real tokens).
    """
    if multiple <= 0:
        raise ConfigError(f"multiple must be positive, got {multiple}")
    up = -(-value // multiple) * multiple
    if up_only:
        return up
    down = (value // multiple) * multiple
    if down <= 0:
        return up
    return down if value - down < up - value else up


def neighborhood_multiples(
    value: int, multiple: int, span: int = 4, *, up_only: bool = False
) -> List[int]:
    """Multiples of ``multiple`` bracketing ``value`` (``span`` each way).

    The engine ranks this neighborhood; :func:`nearest_multiple` is what
    a divisibility-only linter would suggest — comparing the two is
    exactly the "ranked by modeled latency, not just divisibility"
    contract.
    """
    center = nearest_multiple(value, multiple, up_only=up_only)
    lo = center - (0 if up_only else span * multiple)
    out = [
        v
        for v in range(max(multiple, lo), center + span * multiple + 1, multiple)
        if v > 0 and (not up_only or v >= value)
    ]
    if not out:
        out = [center]
    return out


def strictly_better(
    before_s: float, after_s: float, min_gain: float = 0.0
) -> Optional[float]:
    """Speedup if ``after`` beats ``before`` by more than ``min_gain``.

    Returns ``None`` when the candidate does not actually help — the
    caller then emits the diagnostic without a quantified fix-it rather
    than suggesting a change the model says is a wash.
    """
    if after_s <= 0 or before_s <= after_s * (1.0 + min_gain):
        return None
    return before_s / after_s
