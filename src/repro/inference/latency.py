"""Prefill + decode latency model.

The paper's inference argument (Sec VII-C): models trained efficiently
on a GPU also infer efficiently on it, because the forward-pass GEMMs
are identical.  Prefill here literally reuses
:class:`~repro.core.latency.LayerLatencyModel`.  Decode is modelled as
what it is on hardware: a sweep of skinny GEMMs (m = batch) that stream
every weight matrix and the KV cache from DRAM once per token, plus a
fixed launch overhead per kernel — which is why *layer count* hurts
small models (Pythia-410M) and *large hidden sizes* help (Pythia-1B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TransformerConfig
from repro.core.formulas import kv_cache_bytes
from repro.core.gemms import layer_gemms, logit_gemm
from repro.core.latency import LayerLatencyModel
from repro.engine import default_engine, shape_array
from repro.errors import ConfigError
from repro.gpu.gemm_model import GemmModel
from repro.gpu.specs import GPUSpec, get_gpu
from repro.types import DType

# Distinct kernel launches per decoded token per layer: QKV, two
# attention BMMs, softmax, projection, 2 norms, 2 residuals, MLP pair,
# activation (GPT-NeoX-style unfused decode path).
_KERNELS_PER_LAYER_DECODE = 12
_BW_EFFICIENCY = 0.82


@dataclass(frozen=True)
class PrefillPerf:
    """Latency of processing the prompt (one forward pass)."""

    latency_s: float
    tokens: int

    @property
    def tokens_per_s(self) -> float:
        return self.tokens / self.latency_s if self.latency_s else 0.0


@dataclass(frozen=True)
class DecodePerf:
    """Per-token decode latency decomposition."""

    weight_s: float
    kv_cache_s: float
    overhead_s: float
    gemm_s: float

    @property
    def latency_s(self) -> float:
        """Seconds per generated token."""
        return max(self.weight_s + self.kv_cache_s, self.gemm_s) + self.overhead_s

    @property
    def tokens_per_s(self) -> float:
        return 1.0 / self.latency_s if self.latency_s else 0.0


class InferenceModel:
    """Latency model for autoregressive inference on one GPU."""

    def __init__(
        self,
        gpu: "str | GPUSpec" = "A100",
        dtype: "str | DType" = DType.FP16,
        flash_attention: bool = False,
    ) -> None:
        self.spec = get_gpu(gpu)
        self.dtype = DType.parse(dtype)
        self.layer_model = LayerLatencyModel(
            self.spec, self.dtype, flash_attention=flash_attention
        )
        self.gemm_model = GemmModel(self.spec, self.dtype)

    # -- prefill -----------------------------------------------------------------

    def prefill(self, cfg: TransformerConfig, prompt_len: "int | None" = None) -> PrefillPerf:
        """Prompt processing: a full forward at the prompt length."""
        s = cfg.seq_len if prompt_len is None else prompt_len
        if s <= 0:
            raise ConfigError(f"prompt length must be positive, got {s}")
        run_cfg = cfg.with_overrides(seq_len=s) if s != cfg.seq_len else cfg
        latency = self.layer_model.model_latency(run_cfg)
        return PrefillPerf(latency_s=latency, tokens=run_cfg.tokens_per_microbatch)

    # -- decode ------------------------------------------------------------------

    def decode_step(
        self,
        cfg: TransformerConfig,
        context_len: int,
        batch: int = 1,
    ) -> DecodePerf:
        """One autoregressive step with ``context_len`` cached tokens.

        Composes (a) the weight-streaming floor — every parameter read
        once, (b) KV-cache traffic for the attention over the context,
        (c) per-kernel launch overhead, and (d) the skinny GEMM
        estimates themselves, taking the max of the GEMM-model and
        streaming views (they converge for large h).
        """
        if context_len <= 0 or batch <= 0:
            raise ConfigError("context_len and batch must be positive")
        bw = self.spec.mem_bw_bytes_per_s() * _BW_EFFICIENCY

        weight_bytes = float(cfg.param_count()) * self.dtype.bytes
        weight_s = weight_bytes / bw

        # Sliding-window attention bounds the attended (and cached)
        # context; grouped-query attention shrinks the cached width
        # from h to kv_heads * head_dim (cfg.kv_dim).
        if cfg.attention_window is not None:
            context_len = min(context_len, cfg.attention_window)
        kv_bytes = kv_cache_bytes(
            batch, context_len, cfg.kv_dim, cfg.num_layers, self.dtype.bytes
        )
        kv_s = kv_bytes / bw

        kernels = cfg.num_layers * _KERNELS_PER_LAYER_DECODE + 2
        overhead_s = kernels * self.spec.kernel_overhead_s

        # Skinny per-token GEMMs: reuse the Table II mapping with b*s
        # replaced by the decode row count (batch x 1 token), evaluated
        # as one engine batch per decode step.
        decode_cfg = cfg.with_overrides(microbatch=batch, seq_len=1)
        shapes = []
        for op in layer_gemms(decode_cfg):
            if op.module == "attention_score":
                # Context-length attention: (1, d) x (d, ctx) per head.
                shapes.append((1, context_len, op.k, op.batch))
            elif op.module == "attention_over_value":
                shapes.append((1, cfg.head_dim, context_len, op.batch))
            else:
                shapes.append((op.m, op.n, op.k, 1))
        logit = logit_gemm(decode_cfg)
        shapes.append((logit.m, logit.n, logit.k, 1))
        latencies = default_engine().latency(
            shape_array(
                [s[0] for s in shapes],
                [s[1] for s in shapes],
                [s[2] for s in shapes],
                [s[3] for s in shapes],
            ),
            self.spec,
            self.dtype,
        )
        gemm_s = float(latencies[:-1].sum()) * cfg.num_layers + float(latencies[-1])

        return DecodePerf(
            weight_s=weight_s,
            kv_cache_s=kv_s,
            overhead_s=overhead_s,
            gemm_s=gemm_s,
        )

    def generate_latency(
        self,
        cfg: TransformerConfig,
        prompt_len: int = 128,
        new_tokens: int = 128,
        batch: int = 1,
    ) -> float:
        """End-to-end seconds to generate ``new_tokens`` after a prompt.

        Decode steps are costed at the mean context length, which is
        exact for the linear KV term.
        """
        if new_tokens <= 0:
            raise ConfigError("new_tokens must be positive")
        pre = self.prefill(
            cfg.with_overrides(microbatch=batch), prompt_len=prompt_len
        )
        mean_ctx = prompt_len + (new_tokens + 1) // 2
        step = self.decode_step(cfg, context_len=mean_ctx, batch=batch)
        return pre.latency_s + new_tokens * step.latency_s

    def per_token_ms(self, cfg: TransformerConfig, context_len: int = 512) -> float:
        """Milliseconds per decoded token — Fig 13's y-axis."""
        return self.decode_step(cfg, context_len=context_len).latency_s * 1e3
