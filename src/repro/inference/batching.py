"""Decode batching: the serving throughput/latency trade-off.

A single decode stream leaves the GPU weight-streaming-bound: every
parameter is read once per generated token regardless of batch size.
Batching B concurrent sequences amortizes that weight traffic over B
tokens — throughput climbs steeply — while per-token latency rises only
through the (per-sequence) KV-cache traffic and the widening GEMMs.
This is why serving engines batch aggressively, and it falls directly
out of the paper's decode-GEMV analysis.

:class:`BatchingAnalyzer` sweeps the batch size and reports the curve,
the memory-feasible maximum batch, and the knee where marginal
throughput gains drop off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import TransformerConfig
from repro.core.memory import MemoryBudget, inference_bytes
from repro.errors import ConfigError
from repro.gpu.specs import GPUSpec, get_gpu
from repro.inference.latency import InferenceModel


@dataclass(frozen=True)
class BatchPoint:
    """Decode behaviour at one batch size."""

    batch: int
    per_token_ms: float
    tokens_per_s: float
    fits_memory: bool

    @property
    def throughput_per_stream(self) -> float:
        return self.tokens_per_s / self.batch if self.batch else 0.0


class BatchingAnalyzer:
    """Sweeps decode batch sizes for one model on one GPU."""

    def __init__(self, gpu: "str | GPUSpec" = "A100-80GB") -> None:
        self.spec = get_gpu(gpu)
        self.model = InferenceModel(self.spec)
        self.budget = MemoryBudget.for_gpu(self.spec)

    def point(
        self, cfg: TransformerConfig, batch: int, context_len: int = 1024
    ) -> BatchPoint:
        """Evaluate one batch size."""
        if batch <= 0:
            raise ConfigError("batch must be positive")
        step = self.model.decode_step(cfg, context_len=context_len, batch=batch)
        latency = step.latency_s
        usage = inference_bytes(cfg, context_len=context_len, batch=batch)
        return BatchPoint(
            batch=batch,
            per_token_ms=latency * 1e3,
            tokens_per_s=batch / latency,
            fits_memory=self.budget.fits(usage),
        )

    def sweep(
        self,
        cfg: TransformerConfig,
        context_len: int = 1024,
        max_batch: int = 256,
    ) -> List[BatchPoint]:
        """Power-of-two batch sweep up to ``max_batch``."""
        if max_batch <= 0:
            raise ConfigError("max_batch must be positive")
        points = []
        b = 1
        while b <= max_batch:
            points.append(self.point(cfg, b, context_len))
            b *= 2
        return points

    def max_feasible_batch(
        self, cfg: TransformerConfig, context_len: int = 1024, max_batch: int = 4096
    ) -> int:
        """Largest power-of-two batch whose KV cache + weights fit."""
        best = 0
        b = 1
        while b <= max_batch:
            if not self.point(cfg, b, context_len).fits_memory:
                break
            best = b
            b *= 2
        return best

    def knee(
        self, cfg: TransformerConfig, context_len: int = 1024, threshold: float = 1.5
    ) -> int:
        """Batch size where doubling stops paying ``threshold``x throughput.

        Below the knee, doubling the batch nearly doubles tokens/s (the
        weight stream is shared); past it, the per-sequence KV traffic
        dominates and doubling buys little.
        """
        if not (1.0 < threshold < 2.0):
            raise ConfigError("threshold must be in (1, 2)")
        points = self.sweep(cfg, context_len)
        for prev, nxt in zip(points, points[1:]):
            if nxt.tokens_per_s < threshold * prev.tokens_per_s:
                return prev.batch
        return points[-1].batch
