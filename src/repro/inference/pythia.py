"""The Pythia suite and the Fig 13 trend analysis.

Pythia (Biderman et al. 2023) is a controlled scaling suite; the paper
uses it to show that *shape* — not just size — sets inference latency:
Pythia-1B (fewer heads and layers, larger hidden dim) is markedly
faster per parameter than Pythia-410M.  :func:`trend_analysis` fits the
suite's log(latency) against log(params) and reports each model's
residual, flagging the off-trend pair the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.config import TransformerConfig, get_model
from repro.errors import ExperimentError
from repro.inference.latency import InferenceModel

#: Suite order by parameter count (the 2.8B+ members are included for
#: the trend; the paper's figure spans the same range).
PYTHIA_SUITE: Tuple[str, ...] = (
    "pythia-70m",
    "pythia-160m",
    "pythia-410m",
    "pythia-1b",
    "pythia-1.4b",
    "pythia-2.8b",
    "pythia-6.9b",
    "pythia-12b",
)

#: The two models the paper calls out as off-trend, with the expected
#: sign of their residual (positive = slower than the suite trend).
OFF_TREND_EXPECTED: Dict[str, int] = {"pythia-410m": +1, "pythia-1b": -1}


def pythia_configs() -> List[TransformerConfig]:
    """The suite's configurations in size order."""
    return [get_model(name) for name in PYTHIA_SUITE]


@dataclass(frozen=True)
class TrendPoint:
    """One model's position relative to the suite scaling trend."""

    name: str
    params: int
    latency_ms: float
    predicted_ms: float

    @property
    def residual(self) -> float:
        """log-space residual: positive = slower than trend."""
        return float(np.log(self.latency_ms) - np.log(self.predicted_ms))

    @property
    def off_trend(self) -> bool:
        """Flag residuals beyond ~8% of predicted latency."""
        return abs(self.residual) > 0.08


def trend_analysis(
    latencies_ms: "Sequence[Tuple[str, int, float]]",
    fit_exclude: "Sequence[str]" = (),
) -> List[TrendPoint]:
    """Fit log(latency) ~ a + b*log(params); return per-model residuals.

    ``latencies_ms`` is (name, params, latency_ms) per model.  Requires
    at least 3 fitted points.  Models named in ``fit_exclude`` still get
    a :class:`TrendPoint` but do not influence the fitted line —
    matching how Fig 13's trend is drawn through the *on-trend* suite
    members before judging the outliers against it.
    """
    names = [row[0] for row in latencies_ms]
    params = np.array([row[1] for row in latencies_ms], dtype=float)
    lat = np.array([row[2] for row in latencies_ms], dtype=float)
    if np.any(params <= 0) or np.any(lat <= 0):
        raise ExperimentError("params and latencies must be positive")
    excluded = {name.lower() for name in fit_exclude}
    keep = np.array([name.lower() not in excluded for name in names])
    if keep.sum() < 3:
        raise ExperimentError("trend analysis needs at least 3 fitted models")
    x = np.log(params)
    y = np.log(lat)
    slope, intercept = np.polyfit(x[keep], y[keep], 1)
    predicted = np.exp(intercept + slope * x)
    return [
        TrendPoint(
            name=names[i],
            params=int(params[i]),
            latency_ms=float(lat[i]),
            predicted_ms=float(predicted[i]),
        )
        for i in range(len(names))
    ]


def run_suite(gpu: str = "A100", context_len: int = 512) -> List[TrendPoint]:
    """Model the whole suite's decode latency and fit the trend.

    The trend line is fitted through the on-trend members only, then
    every model (including the known off-trend pair) is judged against
    it, mirroring the paper's Fig 13 reading.
    """
    model = InferenceModel(gpu)
    rows = []
    for cfg in pythia_configs():
        rows.append(
            (cfg.name, cfg.param_count(), model.per_token_ms(cfg, context_len))
        )
    return trend_analysis(rows, fit_exclude=tuple(OFF_TREND_EXPECTED))
