"""Inference latency substrate (paper Sec VII-C, Fig 13).

Replaces the DeepSpeed-MII measurements with a first-principles model:
prefill reuses the training-forward GEMMs; autoregressive decode is a
stream of skinny, memory-bound GEMMs (weights + KV cache traffic) plus
per-kernel launch overheads.  The Pythia suite's published shapes are
evaluated through it to reproduce the off-trend 410M / 1B pair.
"""

from repro.inference.latency import InferenceModel, DecodePerf, PrefillPerf
from repro.inference.pythia import (
    PYTHIA_SUITE,
    pythia_configs,
    trend_analysis,
    TrendPoint,
)

__all__ = [
    "InferenceModel",
    "DecodePerf",
    "PrefillPerf",
    "PYTHIA_SUITE",
    "pythia_configs",
    "trend_analysis",
    "TrendPoint",
]
