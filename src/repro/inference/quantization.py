"""Weight-quantized inference (W8A16 / W4A16) latency modeling.

Decode is weight-streaming-bound (Sec VII-C territory), so shrinking
the stored weights shrinks latency almost proportionally — the reason
weight-only quantization is the standard serving optimization.  The
model here:

- weights stream at ``bits/8`` bytes per parameter,
- activations and the KV cache stay fp16 (W*A16 schemes),
- each GEMM pays a dequantization overhead proportional to the weight
  bytes it touches (the fused dequant adds pipeline work),
- the paper's alignment rules apply *more* strictly: INT8's 128-byte
  rule is 128 elements on A100 (:mod:`repro.gpu.alignment` handles
  this via the dtype-aware grain).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TransformerConfig
from repro.errors import ConfigError
from repro.gpu.specs import GPUSpec, get_gpu
from repro.inference.latency import InferenceModel, _KERNELS_PER_LAYER_DECODE
from repro.types import DType

#: Supported weight-only schemes: name -> bits per weight.
SCHEMES = {"fp16": 16, "int8": 8, "int4": 4}
# Fraction of extra streaming time spent in fused dequantization per
# quantized byte (measured fused kernels lose ~10-20% of bandwidth).
_DEQUANT_OVERHEAD = 0.15
_BW_EFFICIENCY = 0.82


@dataclass(frozen=True)
class QuantizedDecodePerf:
    """Per-token decode latency under weight-only quantization."""

    scheme: str
    weight_s: float
    dequant_s: float
    kv_cache_s: float
    overhead_s: float

    @property
    def latency_s(self) -> float:
        return self.weight_s + self.dequant_s + self.kv_cache_s + self.overhead_s

    @property
    def tokens_per_s(self) -> float:
        return 1.0 / self.latency_s if self.latency_s else 0.0


class QuantizedInferenceModel:
    """Decode latency under weight-only quantization schemes."""

    def __init__(self, gpu: "str | GPUSpec" = "A100") -> None:
        self.spec = get_gpu(gpu)
        self._fp16 = InferenceModel(self.spec, DType.FP16)

    def decode_step(
        self,
        cfg: TransformerConfig,
        context_len: int,
        scheme: str = "int8",
        batch: int = 1,
    ) -> QuantizedDecodePerf:
        """One autoregressive step with quantized weights."""
        if scheme not in SCHEMES:
            raise ConfigError(
                f"unknown scheme {scheme!r}; choose from {sorted(SCHEMES)}"
            )
        if context_len <= 0 or batch <= 0:
            raise ConfigError("context_len and batch must be positive")
        bits = SCHEMES[scheme]
        bw = self.spec.mem_bw_bytes_per_s() * _BW_EFFICIENCY

        weight_bytes = float(cfg.param_count()) * bits / 8.0
        weight_s = weight_bytes / bw
        dequant_s = 0.0 if scheme == "fp16" else weight_s * _DEQUANT_OVERHEAD

        base = self._fp16.decode_step(cfg, context_len, batch)
        return QuantizedDecodePerf(
            scheme=scheme,
            weight_s=weight_s,
            dequant_s=dequant_s,
            kv_cache_s=base.kv_cache_s,
            overhead_s=base.overhead_s,
        )

    def speedup_vs_fp16(
        self, cfg: TransformerConfig, context_len: int, scheme: str = "int8"
    ) -> float:
        """Decode-latency ratio fp16 / quantized (>1 = faster)."""
        fp16 = self.decode_step(cfg, context_len, "fp16")
        quant = self.decode_step(cfg, context_len, scheme)
        return fp16.latency_s / quant.latency_s

    def max_context_fitting(
        self, cfg: TransformerConfig, scheme: str = "int8", batch: int = 1
    ) -> int:
        """Longest context whose weights + KV cache fit GPU memory.

        Quantization's second benefit: the freed weight bytes become KV
        cache headroom.
        """
        bits = SCHEMES[scheme] if scheme in SCHEMES else None
        if bits is None:
            raise ConfigError(f"unknown scheme {scheme!r}")
        capacity = self.spec.memory_gb * 1e9 * 0.92
        weights = cfg.param_count() * bits / 8.0
        budget = capacity - weights
        if budget <= 0:
            return 0
        per_token = 2 * batch * cfg.kv_dim * cfg.num_layers * 2  # fp16 K+V
        return int(budget // per_token)
