"""Transformer shape configurations and named presets.

:class:`TransformerConfig` carries exactly the paper's Table I variables
(h, a, L, s, b, v, t) plus the Sec VI-C architectural options, validated
on construction.  The registry holds the real published shapes the paper
references — the GPT-3 family (Brown et al.), the Pythia suite
(Biderman et al.), Llama-2, OPT/GPT-Neo/RedPajama clones of GPT-3 2.7B,
and the paper's own Fig 1 retunes C1/C2 — so experiments and examples
can refer to them by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.core import formulas
from repro.errors import ConfigError
from repro.gpu.alignment import largest_pow2_divisor


@dataclass(frozen=True)
class TransformerConfig:
    """Shape of a decoder-only transformer (paper Table I variables).

    Attributes
    ----------
    hidden_size, num_heads, num_layers, vocab_size, seq_len:
        h, a, L, v, s.
    microbatch:
        b — the per-GPU microbatch used for throughput evaluation.
    tp_degree:
        t — tensor-parallel degree; per-GPU GEMM shapes divide by it.
    mlp_kind / intermediate_size:
        ``"classic"`` (default d_ff = 4h) or ``"swiglu"`` (default
        d_ff = round(8h/3), Sec VI-C4).
    """

    name: str
    hidden_size: int
    num_heads: int
    num_layers: int
    vocab_size: int = 50304
    seq_len: int = 2048
    microbatch: int = 4
    tp_degree: int = 1
    mlp_kind: str = "classic"
    intermediate_size: Optional[int] = None
    positional: str = "learned"
    parallel_layers: bool = False
    #: Grouped-query attention: number of key/value heads.  ``None``
    #: means classic multi-head attention (= num_heads); 1 is MQA.
    #: Llama-2-70B uses 8.  Query-head count and head dim — the
    #: quantities the paper's h/a rules govern — are unchanged by GQA;
    #: what shrinks is the KV projection width and the KV cache.
    num_kv_heads: Optional[int] = None
    #: Sliding-window attention span (Mistral-style): each token attends
    #: to at most this many predecessors.  ``None`` = full causal.  The
    #: paper's GEMM shapes are unchanged on the naive path (the mask is
    #: applied post-GEMM); the wins are in fused kernels and the
    #: bounded decode-time KV cache.
    attention_window: Optional[int] = None
    #: Mixture-of-experts: number of expert MLPs (``None`` = dense).
    #: Mixtral-8x7B uses 8 experts with top-2 routing.  Each expert has
    #: the configured MLP kind/width; tokens visit ``moe_top_k`` of them.
    num_experts: Optional[int] = None
    moe_top_k: int = 2

    def __post_init__(self) -> None:
        dims = {
            "hidden_size": self.hidden_size,
            "num_heads": self.num_heads,
            "num_layers": self.num_layers,
            "vocab_size": self.vocab_size,
            "seq_len": self.seq_len,
            "microbatch": self.microbatch,
            "tp_degree": self.tp_degree,
        }
        for key, value in dims.items():
            if not isinstance(value, int) or value <= 0:
                raise ConfigError(f"{key} must be a positive int, got {value!r}")
        if self.hidden_size % self.num_heads:
            raise ConfigError(
                f"hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )
        if self.mlp_kind not in ("classic", "swiglu"):
            raise ConfigError(f"unknown mlp_kind {self.mlp_kind!r}")
        if self.intermediate_size is not None and self.intermediate_size <= 0:
            raise ConfigError("intermediate_size must be positive")
        if self.num_kv_heads is not None:
            if self.num_kv_heads <= 0:
                raise ConfigError("num_kv_heads must be positive")
            if self.num_heads % self.num_kv_heads:
                raise ConfigError(
                    f"num_heads {self.num_heads} not divisible by "
                    f"num_kv_heads {self.num_kv_heads}"
                )
        if self.attention_window is not None and self.attention_window <= 0:
            raise ConfigError("attention_window must be positive")
        if self.num_experts is not None:
            if self.num_experts < 2:
                raise ConfigError("num_experts must be >= 2")
            if not (1 <= self.moe_top_k <= self.num_experts):
                raise ConfigError(
                    f"moe_top_k must be in [1, num_experts], got "
                    f"{self.moe_top_k}/{self.num_experts}"
                )

    # -- derived quantities ------------------------------------------------

    @property
    def head_dim(self) -> int:
        """h/a, the dimension whose pow-2 divisibility drives Figs 7/21-47."""
        return self.hidden_size // self.num_heads

    @property
    def head_dim_pow2(self) -> int:
        """Largest power of two dividing h/a."""
        return largest_pow2_divisor(self.head_dim)

    @property
    def kv_heads(self) -> int:
        """Resolved key/value head count (= num_heads for classic MHA)."""
        return self.num_kv_heads if self.num_kv_heads is not None else self.num_heads

    @property
    def kv_dim(self) -> int:
        """Width of each of the K and V projections: kv_heads * (h/a)."""
        return self.kv_heads * self.head_dim

    @property
    def d_ff(self) -> int:
        """MLP intermediate width (resolved default per mlp_kind)."""
        if self.intermediate_size is not None:
            return self.intermediate_size
        if self.mlp_kind == "swiglu":
            return int(round(8 * self.hidden_size / 3))
        return 4 * self.hidden_size

    @property
    def mlp_matrices(self) -> int:
        """2 for the classic MLP, 3 for SwiGLU (Sec VII-B)."""
        return 3 if self.mlp_kind == "swiglu" else 2

    @property
    def tokens_per_expert(self) -> int:
        """Balanced per-expert row count: ceil(b*s*k / E) (dense: b*s).

        The analytic MoE mapping assumes balanced, capacity-padded
        routing; the NumPy substrate routes exactly, so traced expert
        GEMMs vary around this value while conserving the total.
        """
        if self.num_experts is None:
            return self.tokens_per_microbatch
        total = self.tokens_per_microbatch * self.moe_top_k
        return -(-total // self.num_experts)

    @property
    def tokens_per_microbatch(self) -> int:
        """b*s, the row count of the big activation GEMMs."""
        return self.microbatch * self.seq_len

    def param_count(self) -> int:
        """Learned parameters (exact sum over the actual weight shapes)."""
        return formulas.param_count_config(
            h=self.hidden_size,
            L=self.num_layers,
            v=self.vocab_size,
            s=self.seq_len if self.positional == "learned" else 0,
            d_ff=self.d_ff,
            mlp_matrices=self.mlp_matrices,
            kv_dim=self.kv_dim,
            num_experts=self.num_experts,
        )

    def forward_flops(self) -> int:
        """Forward-pass FLOPs of the whole model for one microbatch."""
        return formulas.forward_flops_model(
            b=self.microbatch,
            s=self.seq_len,
            h=self.hidden_size,
            L=self.num_layers,
            v=self.vocab_size,
            d_ff=self.d_ff,
            mlp_matrices=self.mlp_matrices,
        )

    def with_overrides(self, **kwargs) -> "TransformerConfig":
        """Copy with fields replaced (name defaults to a '*' suffix)."""
        if "name" not in kwargs:
            kwargs["name"] = self.name + "*"
        return replace(self, **kwargs)

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"{self.name}: h={self.hidden_size} a={self.num_heads} "
            f"L={self.num_layers} v={self.vocab_size} s={self.seq_len} "
            f"b={self.microbatch} t={self.tp_degree} h/a={self.head_dim} "
            f"({self.param_count() / 1e9:.2f}B params)"
        )


_MODELS: Dict[str, TransformerConfig] = {}


def register_model(cfg: TransformerConfig, *, aliases: Tuple[str, ...] = ()) -> None:
    """Register a named preset (and optional aliases)."""
    _MODELS[cfg.name.lower()] = cfg
    for alias in aliases:
        _MODELS[alias.lower()] = cfg


def get_model(name: "str | TransformerConfig", **overrides) -> TransformerConfig:
    """Look up a preset by name, optionally overriding fields."""
    if isinstance(name, TransformerConfig):
        cfg = name
    else:
        try:
            cfg = _MODELS[str(name).strip().lower()]
        except KeyError:
            known = ", ".join(sorted({c.name for c in _MODELS.values()}))
            raise ConfigError(f"unknown model {name!r}; known: {known}") from None
    if overrides:
        overrides.setdefault("name", cfg.name)
        cfg = replace(cfg, **overrides)
    return cfg


def list_models() -> Tuple[TransformerConfig, ...]:
    """All distinct registered presets sorted by parameter count."""
    seen = {cfg.name: cfg for cfg in _MODELS.values()}
    return tuple(sorted(seen.values(), key=lambda c: c.param_count()))


def _gpt3(name: str, h: int, a: int, L: int, **kw) -> TransformerConfig:
    kw.setdefault("vocab_size", 50304)
    kw.setdefault("seq_len", 2048)
    return TransformerConfig(
        name=name, hidden_size=h, num_heads=a, num_layers=L, **kw
    )


# GPT-3 family (Brown et al. 2020, Table 2.1).
register_model(_gpt3("gpt3-125m", 768, 12, 12))
register_model(_gpt3("gpt3-350m", 1024, 16, 24))
register_model(_gpt3("gpt3-760m", 1536, 16, 24))
# Brown et al. list 24 heads with d_head=128 for 1.3B, which is
# internally inconsistent (24*128 != 2048); replications (GPT-Neo 1.3B,
# Pythia-1.4B) use 16 heads, which we follow.
register_model(_gpt3("gpt3-1.3b", 2048, 16, 24))
register_model(_gpt3("gpt3-2.7b", 2560, 32, 32), aliases=("gpt3-2.7b-default",))
register_model(_gpt3("gpt3-6.7b", 4096, 32, 32))
# Brown et al. print d_model=5140 for 13B (40 heads, d_head=128: an
# apparent typo for 5120, which every replication uses — itself a small
# example of the paper's point about copied hyperparameters).
register_model(_gpt3("gpt3-13b", 5120, 40, 40))
register_model(_gpt3("gpt3-175b", 12288, 96, 96))

# The paper's Fig 1 retunes of GPT-3 2.7B (same h -> same params).
register_model(_gpt3("c1", 2560, 64, 32), aliases=("gpt3-2.7b-c1",))
register_model(_gpt3("c2", 2560, 40, 32), aliases=("gpt3-2.7b-c2",))
# The alternative fix the paper mentions: h -> 4096 doubles params.
register_model(_gpt3("gpt3-2.7b-wide", 4096, 32, 32))

# Clones of the GPT-3 2.7B shape the paper lists (Sec VI-B).
register_model(_gpt3("gpt-neo-2.7b", 2560, 32, 32, vocab_size=50257))
register_model(_gpt3("opt-2.7b", 2560, 32, 32, vocab_size=50272))
register_model(_gpt3("redpajama-3b", 2560, 32, 32, positional="rotary"))
register_model(_gpt3("pythia-2.8b", 2560, 32, 32, positional="rotary"))

# Pythia suite (Biderman et al. 2023) — used for the Fig 13 inference
# trend study; 410M and 1B are the off-trend pair.
register_model(_gpt3("pythia-70m", 512, 8, 6, positional="rotary"))
register_model(_gpt3("pythia-160m", 768, 12, 12, positional="rotary"))
register_model(_gpt3("pythia-410m", 1024, 16, 24, positional="rotary"))
register_model(_gpt3("pythia-1b", 2048, 8, 16, positional="rotary"))
register_model(_gpt3("pythia-1.4b", 2048, 16, 24, positional="rotary"))
register_model(_gpt3("pythia-6.9b", 4096, 32, 32, positional="rotary"))
register_model(_gpt3("pythia-12b", 5120, 40, 36, positional="rotary"))

# Llama-2 (Sec VII-B SwiGLU case study).
register_model(
    TransformerConfig(
        name="llama2-7b",
        hidden_size=4096,
        num_heads=32,
        num_layers=32,
        vocab_size=32000,
        seq_len=4096,
        mlp_kind="swiglu",
        intermediate_size=11008,
        positional="rotary",
    )
)
# Mixtral-8x7B: 8 SwiGLU experts with top-2 routing over the Mistral
# trunk (GQA kv=8); ~46.5B parameters, ~13B active per token.
register_model(
    TransformerConfig(
        name="mixtral-8x7b",
        hidden_size=4096,
        num_heads=32,
        num_layers=32,
        vocab_size=32000,
        seq_len=8192,
        mlp_kind="swiglu",
        intermediate_size=14336,
        positional="rotary",
        num_kv_heads=8,
        num_experts=8,
        moe_top_k=2,
    )
)

# Mistral-7B: SwiGLU + GQA + sliding-window attention — every Sec VI-C
# style architectural modification at once, and d_ff = 14336 = 2^11 * 7
# (heavily aligned, like Llama's choices).
register_model(
    TransformerConfig(
        name="mistral-7b",
        hidden_size=4096,
        num_heads=32,
        num_layers=32,
        vocab_size=32000,
        seq_len=8192,
        mlp_kind="swiglu",
        intermediate_size=14336,
        positional="rotary",
        num_kv_heads=8,
        attention_window=4096,
    )
)

register_model(
    TransformerConfig(
        name="llama2-70b",
        hidden_size=8192,
        num_heads=64,
        num_layers=80,
        vocab_size=32000,
        seq_len=4096,
        mlp_kind="swiglu",
        intermediate_size=28672,
        positional="rotary",
        num_kv_heads=8,  # grouped-query attention
    )
)
