"""Per-GPU memory accounting for training and inference.

The paper's parallelism rules exist because memory forces sharding:
"the microbatch size b should be as large as possible" *until activation
memory binds*, and "t should be as small as possible" *subject to the
model fitting*.  This module makes those constraints computable:

- :func:`training_bytes` — mixed-precision Adam training footprint
  (weights, gradients, optimizer states, activations) under (t, p)
  sharding, with optional activation recomputation,
- :func:`inference_bytes` — weights + KV cache at a context length,
- :func:`max_microbatch` — the largest b that fits a memory budget,
- :class:`MemoryBudget` — a per-GPU budget with headroom.

Activation accounting follows the standard per-layer coefficient for
the unfused transformer (Korthikanti et al.): ``s*b*h*(34 + 5*a*s/h)``
bytes at fp16 without recomputation, divided by t for the tensor-
parallel shards, with the attention term dropped under FlashAttention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TransformerConfig
from repro.core.formulas import kv_cache_bytes
from repro.errors import ConfigError
from repro.gpu.specs import GPUSpec, get_gpu

# Mixed-precision Adam: fp16 weight + fp16 grad + fp32 master + fp32 m
# + fp32 v = 2 + 2 + 4 + 4 + 4 bytes per parameter.
ADAM_STATE_BYTES_PER_PARAM = 16
_FP16 = 2


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-GPU memory decomposition.

    ``weights_and_optimizer``, ``activations``, and ``kv_cache`` are
    all bytes.
    """

    weights_and_optimizer: float
    activations: float
    kv_cache: float = 0.0

    @property
    def total(self) -> float:
        return self.weights_and_optimizer + self.activations + self.kv_cache

    def gb(self) -> float:
        return self.total / 1e9


def activation_bytes_per_layer(
    cfg: TransformerConfig, flash_attention: bool = False
) -> float:
    """Stored activations of one layer for one microbatch (fp16, no
    recomputation), per tensor-parallel rank."""
    s, b, h, a, t = (
        cfg.seq_len,
        cfg.microbatch,
        cfg.hidden_size,
        cfg.num_heads,
        cfg.tp_degree,
    )
    dense = 34.0 * s * b * h
    attention = 0.0 if flash_attention else 5.0 * a * s * s * b
    return (dense + attention) / t


def training_bytes(
    cfg: TransformerConfig,
    pipeline_stages: int = 1,
    recompute_activations: bool = False,
    flash_attention: bool = False,
) -> MemoryBreakdown:
    """Training footprint per GPU under (cfg.tp_degree, p) sharding."""
    if pipeline_stages <= 0:
        raise ConfigError("pipeline_stages must be positive")
    params_per_gpu = cfg.param_count() / (cfg.tp_degree * pipeline_stages)
    states = params_per_gpu * ADAM_STATE_BYTES_PER_PARAM

    layers_per_stage = max(1, -(-cfg.num_layers // pipeline_stages))
    per_layer = activation_bytes_per_layer(cfg, flash_attention)
    if recompute_activations:
        # Keep only the layer-boundary activations; recompute the rest.
        per_layer = 2.0 * cfg.seq_len * cfg.microbatch * cfg.hidden_size / cfg.tp_degree
    acts = per_layer * layers_per_stage
    return MemoryBreakdown(weights_and_optimizer=states, activations=acts)


def inference_bytes(
    cfg: TransformerConfig, context_len: int, batch: int = 1
) -> MemoryBreakdown:
    """Inference footprint: fp16 weights + KV cache, per GPU.

    Sliding-window attention bounds the cached context at the window.
    """
    if context_len <= 0 or batch <= 0:
        raise ConfigError("context_len and batch must be positive")
    weights = cfg.param_count() / cfg.tp_degree * _FP16
    if cfg.attention_window is not None:
        context_len = min(context_len, cfg.attention_window)
    kv = kv_cache_bytes(batch, context_len, cfg.kv_dim, cfg.num_layers) / cfg.tp_degree
    return MemoryBreakdown(
        weights_and_optimizer=weights, activations=0.0, kv_cache=kv
    )


@dataclass(frozen=True)
class MemoryBudget:
    """A per-GPU memory budget with a reserved headroom fraction."""

    capacity_bytes: float
    headroom: float = 0.08

    @classmethod
    def for_gpu(cls, gpu: "str | GPUSpec", headroom: float = 0.08) -> "MemoryBudget":
        spec = get_gpu(gpu)
        return cls(capacity_bytes=spec.memory_gb * 1e9, headroom=headroom)

    @property
    def usable_bytes(self) -> float:
        return self.capacity_bytes * (1.0 - self.headroom)

    def fits(self, breakdown: MemoryBreakdown) -> bool:
        return breakdown.total <= self.usable_bytes


def max_microbatch(
    cfg: TransformerConfig,
    budget: MemoryBudget,
    pipeline_stages: int = 1,
    recompute_activations: bool = False,
    flash_attention: bool = False,
    limit: int = 512,
) -> int:
    """Largest microbatch b fitting the budget (0 if even b=1 doesn't).

    This operationalizes the paper's "b should be as large as possible"
    rule: the answer is a memory bound, not a performance one.
    """
    best = 0
    for b in range(1, limit + 1):
        candidate = cfg.with_overrides(microbatch=b)
        usage = training_bytes(
            candidate,
            pipeline_stages=pipeline_stages,
            recompute_activations=recompute_activations,
            flash_attention=flash_attention,
        )
        if not budget.fits(usage):
            break
        best = b
    return best
