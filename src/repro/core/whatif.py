"""Sensitivity analysis: which shape knob matters most?

The paper's rules say *what* to fix; this module ranks *where to look
first* for a given model on a given GPU, by perturbing each shape
hyperparameter within its feasible neighbourhood and measuring the
modelled end-to-end effect:

- heads: every divisor of h within 2x of the current a,
- vocabulary: padding to the next 64-multiple,
- microbatch: doubling (if memory allows it, per the budget),
- hidden size: +/- one 64-step with layer compensation,
- SwiGLU width: +/- 256 (when applicable).

The output is a ranked :class:`Sensitivity` list — the largest
achievable |effect| per knob — which is what a practitioner actually
wants from the paper: a to-do list sorted by payoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.config import TransformerConfig
from repro.core.latency import LayerLatencyModel
from repro.core.memory import MemoryBudget, training_bytes
from repro.errors import ConfigError
from repro.gpu.specs import GPUSpec
from repro.types import DType


@dataclass(frozen=True)
class Sensitivity:
    """Best achievable effect of one knob, with the move that gets it.

    ``speedup`` is the model-latency ratio baseline/best (> 1 means the
    move helps).
    """

    knob: str
    best_move: str
    speedup: float
    config: Optional[TransformerConfig]

    @property
    def worthwhile(self) -> bool:
        return self.speedup > 1.005

    def describe(self) -> str:
        flag = "" if self.worthwhile else " (not worthwhile)"
        return f"{self.knob:<12} {self.speedup:6.3f}x  {self.best_move}{flag}"


class WhatIfAnalyzer:
    """Ranks shape knobs by their best modelled payoff."""

    def __init__(
        self,
        gpu: "str | GPUSpec" = "A100",
        dtype: "str | DType" = DType.FP16,
        flash_attention: bool = False,
        memory_budget: Optional[MemoryBudget] = None,
    ) -> None:
        self.model = LayerLatencyModel(gpu, dtype, flash_attention=flash_attention)
        self.budget = memory_budget or MemoryBudget.for_gpu(self.model.spec)

    # -- knob explorations ---------------------------------------------------------

    def _latency(self, cfg: TransformerConfig) -> float:
        return self.model.model_latency(cfg)

    def _explore(
        self,
        base_latency: float,
        candidates: "List[Tuple[str, TransformerConfig]]",
        knob: str,
    ) -> Sensitivity:
        best_speedup, best_move, best_cfg = 1.0, "keep as is", None
        for move, cand in candidates:
            try:
                speedup = base_latency / self._latency(cand)
            except ConfigError:
                continue
            if speedup > best_speedup:
                best_speedup, best_move, best_cfg = speedup, move, cand
        return Sensitivity(
            knob=knob, best_move=best_move, speedup=best_speedup, config=best_cfg
        )

    def heads(self, cfg: TransformerConfig, base: float) -> Sensitivity:
        candidates = []
        for a in range(max(1, cfg.num_heads // 2), 2 * cfg.num_heads + 1):
            if a != cfg.num_heads and cfg.hidden_size % a == 0:
                candidates.append(
                    (f"a: {cfg.num_heads} -> {a}", cfg.with_overrides(num_heads=a))
                )
        return self._explore(base, candidates, "heads")

    def vocabulary(self, cfg: TransformerConfig, base: float) -> Sensitivity:
        padded = -(-cfg.vocab_size // 64) * 64
        candidates = []
        if padded != cfg.vocab_size:
            candidates.append(
                (
                    f"v: {cfg.vocab_size} -> {padded}",
                    cfg.with_overrides(vocab_size=padded),
                )
            )
        return self._explore(base, candidates, "vocabulary")

    def microbatch(self, cfg: TransformerConfig, base: float) -> Sensitivity:
        """Doubling b, gated by the training-memory budget.

        Measured per token: latency/token, since doubling b doubles the
        work.
        """
        doubled = cfg.with_overrides(microbatch=2 * cfg.microbatch)
        if not self.budget.fits(training_bytes(doubled)):
            return Sensitivity(
                knob="microbatch",
                best_move=f"b={2 * cfg.microbatch} exceeds the memory budget",
                speedup=1.0,
                config=None,
            )
        per_token_base = base / cfg.tokens_per_microbatch
        per_token_new = self._latency(doubled) / doubled.tokens_per_microbatch
        return Sensitivity(
            knob="microbatch",
            best_move=f"b: {cfg.microbatch} -> {2 * cfg.microbatch}",
            speedup=per_token_base / per_token_new,
            config=doubled,
        )

    def hidden(self, cfg: TransformerConfig, base: float) -> Sensitivity:
        candidates = []
        for h in (cfg.hidden_size - 64, cfg.hidden_size + 64):
            if h <= 0 or h % cfg.num_heads:
                continue
            L = max(
                1,
                round(
                    12 * cfg.hidden_size**2 * cfg.num_layers / (12 * h * h)
                ),
            )
            candidates.append(
                (
                    f"h: {cfg.hidden_size} -> {h} (L -> {L})",
                    cfg.with_overrides(hidden_size=h, num_layers=L),
                )
            )
        return self._explore(base, candidates, "hidden")

    def swiglu_width(self, cfg: TransformerConfig, base: float) -> Sensitivity:
        if cfg.mlp_kind != "swiglu":
            return Sensitivity(
                knob="swiglu_width",
                best_move="not a SwiGLU model",
                speedup=1.0,
                config=None,
            )
        candidates = []
        for d in (cfg.d_ff - 256, cfg.d_ff + 256):
            if d > 0:
                candidates.append(
                    (f"d_ff: {cfg.d_ff} -> {d}", cfg.with_overrides(intermediate_size=d))
                )
        return self._explore(base, candidates, "swiglu_width")

    # -- public API -------------------------------------------------------------------

    def rank(self, cfg: TransformerConfig) -> List[Sensitivity]:
        """All knobs, largest payoff first."""
        base = self._latency(cfg)
        results = [
            self.heads(cfg, base),
            self.vocabulary(cfg, base),
            self.microbatch(cfg, base),
            self.hidden(cfg, base),
            self.swiglu_width(cfg, base),
        ]
        return sorted(results, key=lambda s: -s.speedup)

    def report(self, cfg: TransformerConfig) -> str:
        lines = [cfg.describe(), f"target: {self.model.spec.name}", ""]
        lines += [s.describe() for s in self.rank(cfg)]
        return "\n".join(lines)
