"""Per-layer / per-model latency composition (paper Sec VI-A).

Composes the GPU substrate's kernel estimates into transformer-level
latency: every Table II GEMM/BMM is evaluated by the analytic models,
and the non-GEMM remainder (layer norms, softmax, activations, residual
adds, rotary rotations) is costed as memory-bound pointwise kernels —
bytes moved over effective bandwidth plus launch overhead.  This
breakdown is exactly what the paper's Figs 1, 2 and 11 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import TransformerConfig
from repro.core.gemms import TransformerGemm, layer_gemms, logit_gemm
from repro.errors import ConfigError
from repro.gpu.gemm_model import GemmModel, GemmPerf
from repro.gpu.specs import GPUSpec, get_gpu
from repro.transformer.flash import FlashAttentionModel
from repro.types import DType, teraflops

# Sustained fraction of datasheet bandwidth for pointwise kernels.
_POINTWISE_BW_EFFICIENCY = 0.75

#: Trace/gemms module labels that are GEMM components (vs pointwise).
GEMM_COMPONENTS = (
    "qkv_transform",
    "attention_score",
    "attention_over_value",
    "attention_projection",
    "mlp_h_to_4h",
    "mlp_4h_to_h",
    "mlp_gate",
    "mlp_up",
    "mlp_down",
    "moe_router",
    "moe_mlp_h_to_4h",
    "moe_mlp_4h_to_h",
    "moe_mlp_gate",
    "moe_mlp_up",
    "moe_mlp_down",
    "logit",
    "flash_attention",
)


@dataclass
class LatencyBreakdown:
    """Ordered component -> seconds map with aggregate views."""

    components: Dict[str, float] = field(default_factory=dict)
    flops: int = 0

    def add(self, name: str, seconds: float) -> None:
        self.components[name] = self.components.get(name, 0.0) + seconds

    def merge(self, other: "LatencyBreakdown", times: int = 1) -> None:
        for name, seconds in other.components.items():
            self.add(name, seconds * times)
        self.flops += other.flops * times

    @property
    def total_s(self) -> float:
        return sum(self.components.values())

    @property
    def gemm_s(self) -> float:
        return sum(
            s for name, s in self.components.items() if name in GEMM_COMPONENTS
        )

    @property
    def gemm_fraction(self) -> float:
        """Fraction of latency spent in GEMM kernels (Fig 2's headline)."""
        total = self.total_s
        return self.gemm_s / total if total else 0.0

    def proportions(self) -> Dict[str, float]:
        """Component -> fraction of total latency (Figs 2 and 11)."""
        total = self.total_s or 1.0
        return {name: s / total for name, s in self.components.items()}

    @property
    def tflops(self) -> float:
        """Achieved throughput over the accounted FLOPs."""
        return teraflops(self.flops, self.total_s) if self.total_s else 0.0

    def summary(self) -> str:
        lines = []
        for name, seconds in sorted(
            self.components.items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"{name:<24} {seconds * 1e3:9.3f} ms  ({100 * seconds / self.total_s:5.1f}%)"
            )
        lines.append(
            f"{'total':<24} {self.total_s * 1e3:9.3f} ms  "
            f"(GEMM share {100 * self.gemm_fraction:.1f}%, {self.tflops:.1f} TFLOP/s)"
        )
        return "\n".join(lines)


class LayerLatencyModel:
    """Latency of transformer layers/models on one GPU.

    Parameters
    ----------
    gpu, dtype:
        Target architecture and GEMM element type.
    flash_attention:
        Replace the unfused score/softmax/attention-over-value path with
        the fused FlashAttention kernel model (Sec VI-C3).
    """

    def __init__(
        self,
        gpu: "str | GPUSpec" = "A100",
        dtype: "str | DType" = DType.FP16,
        flash_attention: bool = False,
    ) -> None:
        self.spec = get_gpu(gpu)
        self.dtype = DType.parse(dtype)
        self.flash = flash_attention
        self.gemm_model = GemmModel(self.spec, self.dtype)
        self.flash_model = FlashAttentionModel(self.spec, self.dtype)

    # -- pointwise kernels ------------------------------------------------------

    def _pointwise_s(self, elements: float, reads_writes: int = 2) -> float:
        """Latency of one memory-bound elementwise kernel."""
        traffic = elements * reads_writes * self.dtype.bytes
        bw = self.spec.mem_bw_bytes_per_s() * _POINTWISE_BW_EFFICIENCY
        return traffic / bw + self.spec.kernel_overhead_s

    def _layer_pointwise(self, cfg: TransformerConfig) -> Dict[str, float]:
        """Non-GEMM kernels of one layer (per tensor-parallel rank)."""
        b, s, h, a, t = (
            cfg.microbatch,
            cfg.seq_len,
            cfg.hidden_size,
            cfg.num_heads,
            cfg.tp_degree,
        )
        sbh = s * b * h
        out: Dict[str, float] = {}
        # Two layer norms: each reads and writes the full activation
        # (plus negligible statistics traffic).
        out["layernorm"] = 2 * self._pointwise_s(sbh, reads_writes=2)
        # Residual adds: read both operands, write the sum.
        out["residual"] = 2 * self._pointwise_s(sbh, reads_writes=3)
        if not self.flash:
            # Softmax over the (b*a/t, s, s) score tensor: read + write.
            scores = b * a // t * s * s
            out["softmax"] = self._pointwise_s(scores, reads_writes=2)
        if cfg.positional == "rotary":
            # Rotate q and k: read + write each, h/t wide per rank.
            out["rotary"] = 2 * self._pointwise_s(s * b * h // t, reads_writes=2)
        # MLP activation over the intermediate width; each token passes
        # through moe_top_k experts when the MLP is a mixture.
        act_tokens = s * b * (cfg.moe_top_k if cfg.num_experts else 1)
        out["activation"] = self._pointwise_s(act_tokens * cfg.d_ff // t, reads_writes=2)
        if cfg.mlp_kind == "swiglu":
            # The gate multiply reads two operands and writes one.
            out["activation"] += self._pointwise_s(
                act_tokens * cfg.d_ff // t, reads_writes=3
            )
        if cfg.num_experts:
            # Router softmax/top-k plus the gather/scatter of routed
            # tokens (read + write each way).
            out["moe_dispatch"] = self._pointwise_s(
                s * b * cfg.num_experts, reads_writes=2
            ) + self._pointwise_s(act_tokens * h, reads_writes=4)
        return out

    # -- GEMM components ----------------------------------------------------------

    def gemm_perf(self, op: TransformerGemm) -> GemmPerf:
        """Evaluate one Table II operator on the GPU substrate."""
        return self.gemm_model.evaluate(op.m, op.n, op.k, batch=op.batch)

    def _layer_gemm_components(
        self, cfg: TransformerConfig
    ) -> "List[Tuple[str, float, int]]":
        """(name, seconds, flops) per GEMM operator of one layer."""
        out = []
        for op in layer_gemms(cfg):
            if self.flash and op.module in ("attention_score", "attention_over_value"):
                continue
            perf = self.gemm_perf(op)
            out.append((op.module, perf.latency_s, op.flops))
        if self.flash:
            batch = cfg.microbatch * cfg.num_heads // cfg.tp_degree
            fp = self.flash_model.evaluate(batch, cfg.seq_len, cfg.head_dim)
            out.append(("flash_attention", fp.latency_s, fp.flops))
        return out

    # -- public API ------------------------------------------------------------------

    def layer_breakdown(self, cfg: TransformerConfig) -> LatencyBreakdown:
        """Latency breakdown of a single transformer layer."""
        bd = LatencyBreakdown()
        for name, seconds, flops in self._layer_gemm_components(cfg):
            bd.add(name, seconds)
            bd.flops += flops
        for name, seconds in self._layer_pointwise(cfg).items():
            bd.add(name, seconds)
        return bd

    def layer_latency(self, cfg: TransformerConfig) -> float:
        """Seconds for one layer's forward pass."""
        return self.layer_breakdown(cfg).total_s

    def layer_throughput_tflops(self, cfg: TransformerConfig) -> float:
        """Single-layer achieved TFLOP/s, the metric of the paper's Fig 1."""
        bd = self.layer_breakdown(cfg)
        return teraflops(bd.flops, bd.total_s)

    def model_breakdown(self, cfg: TransformerConfig) -> LatencyBreakdown:
        """Whole-model forward breakdown: L layers + embedding + logits."""
        bd = LatencyBreakdown()
        layer = self.layer_breakdown(cfg)
        bd.merge(layer, times=cfg.num_layers)
        sbh = cfg.seq_len * cfg.microbatch * cfg.hidden_size
        # Embedding gather + positional add, and the final layer norm.
        bd.add("embedding", self._pointwise_s(sbh, reads_writes=3))
        bd.add("layernorm", self._pointwise_s(sbh, reads_writes=2))
        logit = logit_gemm(cfg)
        perf = self.gemm_perf(logit)
        bd.add("logit", perf.latency_s)
        bd.flops += logit.flops
        return bd

    def model_latency(self, cfg: TransformerConfig) -> float:
        """Seconds for a full forward pass of one microbatch."""
        return self.model_breakdown(cfg).total_s

    def tokens_per_second(self, cfg: TransformerConfig) -> float:
        """Forward-pass token throughput of one GPU (one rank's share)."""
        latency = self.model_latency(cfg)
        if latency <= 0:
            raise ConfigError("model latency must be positive")
        return cfg.tokens_per_microbatch / latency

    def mfu(self, cfg: TransformerConfig) -> float:
        """Model FLOPs utilization: achieved / peak matrix throughput."""
        bd = self.model_breakdown(cfg)
        peak = (
            self.spec.matrix_peak_tflops(self.dtype)
            if self.spec.supports_matrix(self.dtype)
            else self.spec.vector_peak_tflops(self.dtype)
        )
        return bd.tflops / peak
