"""The paper's sizing rules (Sec VI-B) as a diagnostics engine.

The paper distills its analysis into checkable recommendations:

1. the vocabulary size should be divisible by 64;
2. the microbatch size ``b`` should be as large as possible;
3. ``b*s``, ``h/a`` and ``h/t`` should be divisible by a power of two,
   with no further benefit beyond 64;
4. ``(b*a)/t`` should be an integer;
5. ``t`` should be as small as possible;
6. the number of layers should be divisible by the number of pipeline
   stages;
7. (structural) ``h`` must be divisible by ``a``;
8. (informational) the big GEMMs' wave-quantization status on the
   target GPU.

Each rule yields :class:`Diagnostic` objects with a severity, an
explanation grounded in the GPU mechanism, and a concrete suggestion
where one exists.  The engine is what `repro rules` on the CLI and the
advisor's pre-screening use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.config import TransformerConfig
from repro.core.gemms import layer_gemms, logit_gemm
from repro.gpu.alignment import largest_pow2_divisor
from repro.gpu.specs import GPUSpec, get_gpu
from repro.gpu.tiles import default_tile
from repro.gpu.waves import wave_quantization_free

# "There is no further benefit to going beyond 64" (Sec VI-B).
POW2_TARGET = 64


class Severity(enum.IntEnum):
    """Ordered severity of a diagnostic (higher is worse)."""

    OK = 0
    INFO = 1
    WARNING = 2
    ERROR = 3


@dataclass(frozen=True)
class Diagnostic:
    """One finding from one rule applied to one configuration."""

    rule: str
    severity: Severity
    message: str
    suggestion: Optional[str] = None

    def __str__(self) -> str:
        tail = f" -> {self.suggestion}" if self.suggestion else ""
        return f"[{self.severity.name}] {self.rule}: {self.message}{tail}"


RuleFn = Callable[[TransformerConfig, GPUSpec], List[Diagnostic]]


def _pow2_diag(rule: str, label: str, value: int) -> Diagnostic:
    p = largest_pow2_divisor(value)
    if p >= POW2_TARGET:
        return Diagnostic(
            rule, Severity.OK, f"{label} = {value} is divisible by {POW2_TARGET}"
        )
    if p >= 8:
        return Diagnostic(
            rule,
            Severity.WARNING,
            f"{label} = {value} is only divisible by {p}; Tensor Core "
            f"efficiency improves up to divisibility by {POW2_TARGET}",
            suggestion=f"choose shapes making {label} a multiple of {POW2_TARGET}",
        )
    return Diagnostic(
        rule,
        Severity.ERROR,
        f"{label} = {value} is divisible only by {p} (< 8 FP16 elements "
        f"= 16 bytes), defeating Tensor Core fragment alignment",
        suggestion=f"make {label} a multiple of at least 8, ideally {POW2_TARGET}",
    )


def rule_vocab_divisible(cfg: TransformerConfig, gpu: GPUSpec) -> List[Diagnostic]:
    """Vocabulary size should be divisible by 64 (Sec VI-B, Fig 20)."""
    v = cfg.vocab_size
    if v % 64 == 0:
        return [Diagnostic("vocab_divisible_64", Severity.OK, f"v = {v} is a multiple of 64")]
    padded = -(-v // 64) * 64
    return [
        Diagnostic(
            "vocab_divisible_64",
            Severity.WARNING,
            f"v = {v} is not a multiple of 64; the logit GEMM "
            f"(b*s, h) x (h, v) loses Tensor Core efficiency",
            suggestion=f"pad the vocabulary to {padded} "
            f"(+{padded - v} unused tokens)",
        )
    ]


def rule_head_dim(cfg: TransformerConfig, gpu: GPUSpec) -> List[Diagnostic]:
    """h/a should be divisible by a power of two up to 64 (Figs 7, 21-47)."""
    return [_pow2_diag("head_dim_pow2", "h/a", cfg.head_dim)]


def rule_hidden_per_tp(cfg: TransformerConfig, gpu: GPUSpec) -> List[Diagnostic]:
    """h/t should be divisible by a power of two up to 64 (Sec VII-A)."""
    h, t = cfg.hidden_size, cfg.tp_degree
    if h % t:
        return [
            Diagnostic(
                "hidden_per_tp_pow2",
                Severity.ERROR,
                f"h = {h} is not divisible by t = {t}; tensor-parallel "
                "sharding is infeasible",
                suggestion="choose t dividing h",
            )
        ]
    return [_pow2_diag("hidden_per_tp_pow2", "h/t", h // t)]


def rule_tokens_pow2(cfg: TransformerConfig, gpu: GPUSpec) -> List[Diagnostic]:
    """b*s should be divisible by a power of two up to 64.

    The paper notes b itself needs no particular divisibility because s
    is normally a large power of two already.
    """
    return [_pow2_diag("tokens_pow2", "b*s", cfg.tokens_per_microbatch)]


def rule_heads_per_tp(cfg: TransformerConfig, gpu: GPUSpec) -> List[Diagnostic]:
    """(b*a)/t should be an integer (the BMM batch count)."""
    b, a, t = cfg.microbatch, cfg.num_heads, cfg.tp_degree
    if (b * a) % t == 0:
        return [
            Diagnostic(
                "heads_per_tp_integer",
                Severity.OK,
                f"(b*a)/t = {b * a // t} is an integer",
            )
        ]
    return [
        Diagnostic(
            "heads_per_tp_integer",
            Severity.ERROR,
            f"(b*a)/t = {b * a}/{t} is not an integer; the attention "
            "BMM batch cannot be sharded evenly",
            suggestion="choose t dividing b*a (ideally dividing a)",
        )
    ]


def rule_microbatch(cfg: TransformerConfig, gpu: GPUSpec) -> List[Diagnostic]:
    """b should be as large as memory allows (Sec VI-B, citing Nado et al.)."""
    if cfg.microbatch >= 4:
        return [
            Diagnostic(
                "microbatch_large",
                Severity.OK,
                f"b = {cfg.microbatch}",
            )
        ]
    return [
        Diagnostic(
            "microbatch_large",
            Severity.INFO,
            f"b = {cfg.microbatch} is small; larger microbatches raise "
            "GEMM arithmetic intensity",
            suggestion="increase b until activation memory is the binding constraint",
        )
    ]


def rule_tp_minimal(cfg: TransformerConfig, gpu: GPUSpec) -> List[Diagnostic]:
    """t should be as small as the model's memory footprint allows."""
    if cfg.tp_degree == 1:
        return [Diagnostic("tp_minimal", Severity.OK, "t = 1")]
    return [
        Diagnostic(
            "tp_minimal",
            Severity.INFO,
            f"t = {cfg.tp_degree} shrinks every per-GPU GEMM by {cfg.tp_degree}x; "
            "use the smallest t that fits memory (Narayanan et al.)",
        )
    ]


def rule_wave_quantization(cfg: TransformerConfig, gpu: GPUSpec) -> List[Diagnostic]:
    """Report wave-quantization status of the layer's dense GEMMs.

    Informational: the paper proves no transformer configuration can
    satisfy the Tensor Core rule and be wave-free with the 128x256 tile,
    so this can only be minimized, not eliminated.
    """
    tile = default_tile()
    out: List[Diagnostic] = []
    for op in layer_gemms(cfg) + [logit_gemm(cfg)]:
        if op.is_bmm:
            continue
        free = wave_quantization_free(op.m, op.n, tile.m, tile.n, gpu.num_sms)
        if free:
            out.append(
                Diagnostic(
                    "wave_quantization",
                    Severity.OK,
                    f"{op.module} ({op.m}x{op.n}) is wave-free on {gpu.name}",
                )
            )
        else:
            out.append(
                Diagnostic(
                    "wave_quantization",
                    Severity.INFO,
                    f"{op.module} output {op.m}x{op.n} has a partial tail "
                    f"wave on {gpu.name} ({gpu.num_sms} SMs, tile {tile.name})",
                )
            )
    return out


def rule_pipeline_divisibility(
    cfg: TransformerConfig, gpu: GPUSpec, pipeline_stages: int = 1
) -> List[Diagnostic]:
    """L should be divisible by the number of pipeline stages."""
    if pipeline_stages <= 1 or cfg.num_layers % pipeline_stages == 0:
        return [
            Diagnostic(
                "pipeline_divisibility",
                Severity.OK,
                f"L = {cfg.num_layers} divides evenly into "
                f"{pipeline_stages} stage(s)",
            )
        ]
    return [
        Diagnostic(
            "pipeline_divisibility",
            Severity.WARNING,
            f"L = {cfg.num_layers} is not divisible by {pipeline_stages} "
            "pipeline stages; some stages carry an extra layer and the "
            "pipeline runs at the slowest stage's rate",
            suggestion=f"use L divisible by {pipeline_stages}",
        )
    ]


def rule_moe_tokens(cfg: TransformerConfig, gpu: GPUSpec) -> List[Diagnostic]:
    """MoE: the per-expert row count should be large and 64-aligned.

    The expert GEMMs' m dimension is b*s*k/E — small or ragged values
    waste tiles and launch overhead, the MoE face of the paper's
    alignment rules.
    """
    if cfg.num_experts is None:
        return []
    m_e = cfg.tokens_per_expert
    total = cfg.tokens_per_microbatch * cfg.moe_top_k
    out: List[Diagnostic] = []
    if total % cfg.num_experts:
        out.append(
            Diagnostic(
                "moe_tokens",
                Severity.INFO,
                f"b*s*k = {total} does not divide evenly over "
                f"{cfg.num_experts} experts; capacity padding wastes "
                f"{cfg.num_experts * m_e - total} token slots per layer",
            )
        )
    if m_e < 256:
        out.append(
            Diagnostic(
                "moe_tokens",
                Severity.WARNING,
                f"only ~{m_e} tokens per expert: expert GEMMs are "
                "launch-overhead- and tile-quantization-dominated",
                suggestion="increase b, reduce experts, or raise top_k",
            )
        )
    elif m_e % 64:
        out.append(
            Diagnostic(
                "moe_tokens",
                Severity.INFO,
                f"tokens per expert ({m_e}) is not a multiple of 64; "
                "expert GEMM tile rows are padded",
            )
        )
    else:
        out.append(
            Diagnostic(
                "moe_tokens",
                Severity.OK,
                f"~{m_e} tokens per expert (64-aligned)",
            )
        )
    return out


DEFAULT_RULES: "tuple[RuleFn, ...]" = (
    rule_vocab_divisible,
    rule_head_dim,
    rule_hidden_per_tp,
    rule_tokens_pow2,
    rule_heads_per_tp,
    rule_microbatch,
    rule_tp_minimal,
    rule_moe_tokens,
    rule_wave_quantization,
)


class RuleEngine:
    """Applies the Sec VI-B rule set to a configuration on a target GPU."""

    def __init__(self, gpu: "str | GPUSpec" = "A100", rules=DEFAULT_RULES) -> None:
        self.gpu = get_gpu(gpu)
        self.rules = tuple(rules)

    def check(
        self, cfg: TransformerConfig, pipeline_stages: int = 1
    ) -> List[Diagnostic]:
        """Run every rule; returns diagnostics sorted worst-first."""
        out: List[Diagnostic] = []
        for rule in self.rules:
            out.extend(rule(cfg, self.gpu))
        out.extend(rule_pipeline_divisibility(cfg, self.gpu, pipeline_stages))
        return sorted(out, key=lambda d: -d.severity)

    def worst(self, cfg: TransformerConfig) -> Severity:
        """Highest severity across all diagnostics."""
        return max((d.severity for d in self.check(cfg)), default=Severity.OK)

    def report(self, cfg: TransformerConfig, pipeline_stages: int = 1) -> str:
        """Formatted multi-line report."""
        lines = [cfg.describe(), f"target GPU: {self.gpu.name}", ""]
        lines += [str(d) for d in self.check(cfg, pipeline_stages)]
        return "\n".join(lines)
