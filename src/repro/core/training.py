"""Training-step latency model (the paper's "trained 20% faster" claim).

A training step is the forward pass, the backward pass (each forward
GEMM induces a dgrad and a wgrad GEMM of equal FLOPs —
:func:`repro.core.gemms.backward_gemms_for`), roughly doubled pointwise
traffic, the optimizer update (a pure weight/optimizer-state streaming
pass), and optionally a data-parallel gradient all-reduce.  Because the
backward GEMMs are transposes of the forward shapes, *the same
alignment pathologies hit them too* — which is why shape retunes speed
up training end-to-end, not just inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import TransformerConfig
from repro.core.gemms import backward_gemms_for, layer_gemms, logit_gemm
from repro.core.latency import LatencyBreakdown, LayerLatencyModel
from repro.errors import ConfigError
from repro.gpu.specs import GPUSpec, get_gpu
from repro.parallelism.comm import CommModel
from repro.types import DType, teraflops

# Bytes of optimizer traffic per parameter for mixed-precision Adam:
# read+write fp32 master weight, m, v (6 x 4 B) plus the fp16 weight
# write and gradient read (2 x 2 B).
_ADAM_BYTES_PER_PARAM = 28
_POINTWISE_BW_EFFICIENCY = 0.75


@dataclass(frozen=True)
class TrainingStep:
    """Latency decomposition of one training step on one GPU."""

    forward_s: float
    backward_s: float
    optimizer_s: float
    allreduce_s: float
    flops: int
    tokens: int

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s + self.optimizer_s + self.allreduce_s

    @property
    def tokens_per_second(self) -> float:
        return self.tokens / self.total_s if self.total_s else 0.0

    @property
    def tflops(self) -> float:
        """Achieved model TFLOP/s over the step."""
        return teraflops(self.flops, self.total_s) if self.total_s else 0.0

    @property
    def backward_to_forward_ratio(self) -> float:
        return self.backward_s / self.forward_s if self.forward_s else 0.0


class TrainingStepModel:
    """Latency of one optimizer step for a model configuration."""

    def __init__(
        self,
        gpu: "str | GPUSpec" = "A100",
        dtype: "str | DType" = DType.FP16,
        flash_attention: bool = False,
    ) -> None:
        self.spec = get_gpu(gpu)
        self.dtype = DType.parse(dtype)
        self.layer_model = LayerLatencyModel(
            self.spec, self.dtype, flash_attention=flash_attention
        )
        self.flash = flash_attention

    # -- pieces ------------------------------------------------------------------

    def forward_breakdown(self, cfg: TransformerConfig) -> LatencyBreakdown:
        return self.layer_model.model_breakdown(cfg)

    def backward_breakdown(self, cfg: TransformerConfig) -> LatencyBreakdown:
        """dgrad + wgrad GEMMs plus doubled pointwise traffic."""
        bd = LatencyBreakdown()
        forward_ops = layer_gemms(cfg)
        if self.flash:
            forward_ops = [
                op
                for op in forward_ops
                if op.module not in ("attention_score", "attention_over_value")
            ]
        for op in forward_ops:
            for bop in backward_gemms_for(op):
                perf = self.layer_model.gemm_perf(bop)
                bd.add(bop.module, perf.latency_s * cfg.num_layers)
                bd.flops += bop.flops * cfg.num_layers
        for bop in backward_gemms_for(logit_gemm(cfg)):
            perf = self.layer_model.gemm_perf(bop)
            bd.add(bop.module, perf.latency_s)
            bd.flops += bop.flops
        if self.flash:
            # FlashAttention backward recomputes the forward and runs
            # ~2.5x its FLOPs in one fused kernel.
            batch = cfg.microbatch * cfg.num_heads // cfg.tp_degree
            fp = self.layer_model.flash_model.evaluate(
                batch, cfg.seq_len, cfg.head_dim
            )
            bd.add("flash_attention.bwd", 2.5 * fp.latency_s * cfg.num_layers)
            bd.flops += int(2.5 * fp.flops) * cfg.num_layers
        # Pointwise backward: roughly mirrors the forward's non-GEMM
        # traffic (norm/softmax/activation backward read the saved
        # activations and write gradients).
        fwd = self.layer_model.model_breakdown(cfg)
        pointwise_fwd = fwd.total_s - fwd.gemm_s
        bd.add("pointwise_bwd", pointwise_fwd)
        return bd

    def optimizer_s(self, cfg: TransformerConfig) -> float:
        """Adam update: stream weights + optimizer states once."""
        params = cfg.param_count() / cfg.tp_degree
        bw = self.spec.mem_bw_bytes_per_s() * _POINTWISE_BW_EFFICIENCY
        return params * _ADAM_BYTES_PER_PARAM / bw

    # -- public API -----------------------------------------------------------------

    def step(
        self,
        cfg: TransformerConfig,
        grad_accumulation: int = 1,
        data_parallel: int = 1,
        comm: Optional[CommModel] = None,
    ) -> TrainingStep:
        """One optimizer step: G micro-steps of fwd+bwd, then update.

        ``comm`` provides the gradient all-reduce cost when
        ``data_parallel > 1`` (defaults to a 100 GB/s link model).
        """
        if grad_accumulation <= 0 or data_parallel <= 0:
            raise ConfigError("grad_accumulation and data_parallel must be positive")
        fwd = self.forward_breakdown(cfg)
        bwd = self.backward_breakdown(cfg)
        allreduce = 0.0
        if data_parallel > 1:
            comm = comm or CommModel(bw_bytes_s=100e9)
            grad_bytes = cfg.param_count() / cfg.tp_degree * self.dtype.bytes
            allreduce = comm.allreduce(grad_bytes, data_parallel)
        return TrainingStep(
            forward_s=fwd.total_s * grad_accumulation,
            backward_s=bwd.total_s * grad_accumulation,
            optimizer_s=self.optimizer_s(cfg),
            allreduce_s=allreduce,
            flops=(fwd.flops + bwd.flops) * grad_accumulation,
            tokens=cfg.tokens_per_microbatch * grad_accumulation,
        )

    def tokens_per_second(self, cfg: TransformerConfig, **kw) -> float:
        return self.step(cfg, **kw).tokens_per_second

    def speedup(
        self, baseline: TransformerConfig, candidate: TransformerConfig, **kw
    ) -> float:
        """Training-throughput ratio candidate/baseline (>1 = faster)."""
        return self.tokens_per_second(candidate, **kw) / self.tokens_per_second(
            baseline, **kw
        )
