"""The paper's primary contribution: shape-aware transformer analysis.

- :mod:`repro.core.config` — transformer shape configurations and the
  named model presets used throughout the paper (GPT-3 family, Pythia
  suite, Llama-2, the Fig 1 C1/C2 retunes, ...),
- :mod:`repro.core.formulas` — parameter/FLOP/memory formulas (Sec III-C),
- :mod:`repro.core.gemms` — the Table II operator -> GEMM mapping,
- :mod:`repro.core.rules` — the Sec VI-B sizing rules as a diagnostics
  engine,
- :mod:`repro.core.latency` — per-layer / per-model latency composition
  over the GPU substrate,
- :mod:`repro.core.breakdown` — latency-proportion analyses (Figs 2, 11),
- :mod:`repro.core.advisor` — the shape-improvement search that
  reproduces the paper's case studies (e.g. GPT-3 2.7B -> C2).
"""

from repro.core.config import TransformerConfig, get_model, list_models, register_model
from repro.core.formulas import (
    param_count,
    param_count_approx,
    forward_flops_per_layer,
    forward_flops_model,
)
from repro.core.gemms import TransformerGemm, layer_gemms, model_gemms, logit_gemm
from repro.core.rules import Diagnostic, RuleEngine, Severity
from repro.core.latency import LayerLatencyModel, LatencyBreakdown
from repro.core.advisor import ShapeAdvisor, Proposal

__all__ = [
    "TransformerConfig",
    "get_model",
    "list_models",
    "register_model",
    "param_count",
    "param_count_approx",
    "forward_flops_per_layer",
    "forward_flops_model",
    "TransformerGemm",
    "layer_gemms",
    "model_gemms",
    "logit_gemm",
    "Diagnostic",
    "RuleEngine",
    "Severity",
    "LayerLatencyModel",
    "LatencyBreakdown",
    "ShapeAdvisor",
    "Proposal",
]
