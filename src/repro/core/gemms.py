"""The Table II mapping: transformer operators -> GEMM/BMM shapes.

This is the analytical counterpart of what the traced NumPy transformer
actually executes; tests diff the two.  Per transformer layer with
tensor-parallel degree ``t`` (per-GPU shapes, paper Sec III-C):

====================  =========================================================
operator              GEMM size
====================  =========================================================
QKV transform         ``(b*s, h) x (h, 3h/t)``
attention score       ``b*a/t`` BMMs of ``(s, h/a) x (h/a, s)``
attention over value  ``b*a/t`` BMMs of ``(s, s) x (s, h/a)``
linear projection     ``(b*s, h/t) x (h/t, h)``
MLP h -> d_ff         ``(b*s, h) x (h, d_ff/t)``
MLP d_ff -> h         ``(b*s, d_ff/t) x (d_ff/t, h)``
logit layer           ``(b*s, h) x (h, v)``
====================  =========================================================

SwiGLU MLPs contribute three matmuls (gate, up, down).  The logit GEMM
appears once per model, not per layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import TransformerConfig
from repro.errors import ParallelismError
from repro.gpu.bmm_model import BmmShape


@dataclass(frozen=True)
class TransformerGemm:
    """One operator of Table II, with its (batched) GEMM shape.

    ``module`` labels match the NumPy transformer's trace labels so the
    two can be compared mechanically.
    """

    module: str
    m: int
    k: int
    n: int
    batch: int = 1

    @property
    def flops(self) -> int:
        return 2 * self.batch * self.m * self.n * self.k

    @property
    def is_bmm(self) -> bool:
        return self.batch > 1

    def bmm_shape(self) -> BmmShape:
        """As a :class:`~repro.gpu.bmm_model.BmmShape` for evaluation."""
        return BmmShape(batch=self.batch, m=self.m, k=self.k, n=self.n)

    def shape_tuple(self) -> "tuple[int, int, int, int]":
        return (self.batch, self.m, self.k, self.n)


def _validate_tp(cfg: TransformerConfig) -> None:
    t = cfg.tp_degree
    if cfg.num_heads % t:
        raise ParallelismError(
            f"{cfg.name}: num_heads {cfg.num_heads} not divisible by t={t}"
        )
    if cfg.kv_heads % t:
        raise ParallelismError(
            f"{cfg.name}: kv_heads {cfg.kv_heads} not divisible by t={t}"
        )
    if (3 * cfg.hidden_size) % t or cfg.d_ff % t:
        raise ParallelismError(
            f"{cfg.name}: hidden/intermediate sizes not divisible by t={t}"
        )


def layer_gemms(cfg: TransformerConfig) -> List[TransformerGemm]:
    """Per-GPU GEMMs of one transformer layer, in execution order."""
    _validate_tp(cfg)
    b, s, h, a, t = (
        cfg.microbatch,
        cfg.seq_len,
        cfg.hidden_size,
        cfg.num_heads,
        cfg.tp_degree,
    )
    bs = b * s
    d = cfg.head_dim
    heads = b * a // t

    # Fused QKV width: h for Q plus 2*kv_dim for K and V (= 3h for
    # classic MHA; narrower under grouped-query attention).  The score
    # and attention-over-value BMMs are unchanged by GQA — each query
    # head still attends over an (s x d) key/value slice, the slices
    # are just shared between query groups.
    qkv_cols = h + 2 * cfg.kv_dim
    ops = [
        TransformerGemm("qkv_transform", m=bs, k=h, n=qkv_cols // t),
        TransformerGemm("attention_score", m=s, k=d, n=s, batch=heads),
        TransformerGemm("attention_over_value", m=s, k=s, n=d, batch=heads),
        TransformerGemm("attention_projection", m=bs, k=h // t, n=h),
    ]
    d_ff_shard = cfg.d_ff // t
    if cfg.num_experts is not None:
        # Mixture of experts: a router GEMM plus E expert MLPs executed
        # as a grouped (batched) GEMM over the balanced per-expert row
        # count (capacity-padded; the NumPy substrate routes exactly).
        m_e = cfg.tokens_per_expert
        E = cfg.num_experts
        ops.append(TransformerGemm("moe_router", m=bs, k=h, n=E))
        if cfg.mlp_kind == "swiglu":
            ops += [
                TransformerGemm("moe_mlp_gate", m=m_e, k=h, n=d_ff_shard, batch=E),
                TransformerGemm("moe_mlp_up", m=m_e, k=h, n=d_ff_shard, batch=E),
                TransformerGemm("moe_mlp_down", m=m_e, k=d_ff_shard, n=h, batch=E),
            ]
        else:
            ops += [
                TransformerGemm("moe_mlp_h_to_4h", m=m_e, k=h, n=d_ff_shard, batch=E),
                TransformerGemm("moe_mlp_4h_to_h", m=m_e, k=d_ff_shard, n=h, batch=E),
            ]
    elif cfg.mlp_kind == "swiglu":
        ops += [
            TransformerGemm("mlp_gate", m=bs, k=h, n=d_ff_shard),
            TransformerGemm("mlp_up", m=bs, k=h, n=d_ff_shard),
            TransformerGemm("mlp_down", m=bs, k=d_ff_shard, n=h),
        ]
    else:
        ops += [
            TransformerGemm("mlp_h_to_4h", m=bs, k=h, n=d_ff_shard),
            TransformerGemm("mlp_4h_to_h", m=bs, k=d_ff_shard, n=h),
        ]
    return ops


def logit_gemm(cfg: TransformerConfig) -> TransformerGemm:
    """The final vocabulary projection (Table II 'Linear Output', Fig 20).

    Computed as ``(b*s, h) x (h, v)``; the paper's table writes the
    transposed orientation, which has the same (m, n, k) multiset and
    identical performance characteristics.
    """
    return TransformerGemm(
        "logit", m=cfg.microbatch * cfg.seq_len, k=cfg.hidden_size, n=cfg.vocab_size
    )


def model_gemms(cfg: TransformerConfig) -> List[TransformerGemm]:
    """All per-GPU GEMMs of a full forward pass, in execution order.

    One layer's operator list repeated L times, plus the logit GEMM.
    (With tensor parallelism each listed GEMM runs once *per GPU*; this
    list is the per-GPU view.)
    """
    per_layer = layer_gemms(cfg)
    return per_layer * cfg.num_layers + [logit_gemm(cfg)]


def layer_gemm_flops(cfg: TransformerConfig) -> int:
    """Total matmul FLOPs of one layer (per tensor-parallel rank x t)."""
    return sum(op.flops for op in layer_gemms(cfg)) * cfg.tp_degree


def backward_gemms_for(op: TransformerGemm) -> List[TransformerGemm]:
    """The two backward GEMMs induced by one forward GEMM.

    For ``y = x @ W`` with x: (m, k) and W: (k, n)::

        dgrad:  dx = dy @ W^T   — (m, n) x (n, k)
        wgrad:  dW = x^T @ dy   — (k, m) x (m, n)

    Both have exactly the forward GEMM's FLOP count, which is why
    training costs ~3x a forward pass.  Module labels carry ``.dgrad``
    / ``.wgrad`` suffixes matching the traced backward pass.
    """
    return [
        TransformerGemm(f"{op.module}.dgrad", m=op.m, k=op.n, n=op.k, batch=op.batch),
        TransformerGemm(f"{op.module}.wgrad", m=op.k, k=op.m, n=op.n, batch=op.batch),
    ]


def training_gemms(cfg: TransformerConfig) -> List[TransformerGemm]:
    """All per-GPU GEMMs of one training step (fwd + bwd), per layer
    repeated L times, plus the logit GEMM triple."""
    ops: List[TransformerGemm] = []
    per_layer = layer_gemms(cfg)
    layer_full = list(per_layer)
    for op in per_layer:
        layer_full += backward_gemms_for(op)
    ops += layer_full * cfg.num_layers
    logit = logit_gemm(cfg)
    ops += [logit] + backward_gemms_for(logit)
    return ops
