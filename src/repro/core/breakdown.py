"""Latency-proportion analyses (paper Figs 2 and 11, Sec I).

- :func:`component_proportions` — Fig 2: the share of one layer's
  latency spent in each transformer component, including the non-GEMM
  remainder.
- :func:`gemm_proportions` — Fig 11: the share of the *GEMM* latency
  contributed by each GEMM module, across model sizes.
- :func:`gemm_share` — the Sec I headline numbers: GEMM kernels account
  for ~68.3% of a medium model's latency and ~94.9% of a large model's.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import TransformerConfig, get_model
from repro.core.latency import GEMM_COMPONENTS, LayerLatencyModel
from repro.gpu.specs import GPUSpec

# Reference shapes for "medium" and "large" models used by the Sec I /
# Fig 2 discussion; medium ~ GPT-3 1.3B-class layer, large ~ 20B-class.
MEDIUM_CONFIG = TransformerConfig(
    name="medium", hidden_size=2048, num_heads=32, num_layers=24
)
LARGE_CONFIG = TransformerConfig(
    name="large", hidden_size=6144, num_heads=64, num_layers=44
)


def component_proportions(
    cfg: TransformerConfig, model: "LayerLatencyModel | None" = None
) -> Dict[str, float]:
    """Fig 2: fraction of single-layer latency per component."""
    model = model or LayerLatencyModel()
    return model.layer_breakdown(cfg).proportions()


def gemm_proportions(
    cfg: TransformerConfig, model: "LayerLatencyModel | None" = None
) -> Dict[str, float]:
    """Fig 11: fraction of the layer's *GEMM* latency per GEMM module."""
    model = model or LayerLatencyModel()
    bd = model.layer_breakdown(cfg)
    gemm_total = bd.gemm_s or 1.0
    return {
        name: seconds / gemm_total
        for name, seconds in bd.components.items()
        if name in GEMM_COMPONENTS
    }


def gemm_share(
    cfg: TransformerConfig, model: "LayerLatencyModel | None" = None
) -> float:
    """Fraction of one layer's latency spent in GEMM kernels."""
    model = model or LayerLatencyModel()
    return model.layer_breakdown(cfg).gemm_fraction


def gemm_share_sweep(
    hidden_sizes: Sequence[int],
    heads_ratio: int = 64,
    model: "LayerLatencyModel | None" = None,
) -> "List[tuple[int, float]]":
    """GEMM latency share as h grows (holding h/a fixed).

    Reproduces the Sec I claim that the GEMM share rises with model
    size, which is why shape tuning matters more for larger models.
    """
    model = model or LayerLatencyModel()
    out = []
    for h in hidden_sizes:
        cfg = TransformerConfig(
            name=f"h{h}",
            hidden_size=h,
            num_heads=max(1, h // heads_ratio),
            num_layers=1,
        )
        out.append((h, gemm_share(cfg, model)))
    return out


def dominant_gemms(
    cfg: TransformerConfig,
    model: "LayerLatencyModel | None" = None,
    top: int = 3,
) -> List[str]:
    """The GEMM modules contributing most latency, best-first (Fig 11).

    For large models the paper finds QKV and the MLP GEMMs dominate
    while attention-over-value is smallest.
    """
    props = gemm_proportions(cfg, model)
    return [name for name, _ in sorted(props.items(), key=lambda kv: -kv[1])][:top]
