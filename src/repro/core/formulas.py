"""Closed-form parameter / FLOP / memory formulas (paper Sec III-C).

The paper states, for the classic GPT-2 architecture with learned
positions and tied embeddings:

- parameters: ``P = 12 h^2 L + 13 h L + (v + s) h`` (commonly
  approximated ``12 h^2 L``),
- forward compute per layer: ``24 b s h^2 + 4 b s^2 h
  = 24 b s h^2 (1 + s / 6h)``.

These are validated in the test suite against the actual NumPy model:
the exact weight-array element count and the traced matmul FLOPs.
Generalized variants cover SwiGLU (3 MLP matrices, arbitrary d_ff) so
the Sec VII-B case study can account parameters honestly.
"""

from __future__ import annotations

from repro.errors import ConfigError


def _check_positive(**values: int) -> None:
    for key, value in values.items():
        if value <= 0:
            raise ConfigError(f"{key} must be positive, got {value}")


def param_count(h: int, L: int, v: int, s: int) -> int:
    """The paper's exact formula: ``12 h^2 L + 13 h L + (v + s) h``.

    Assumes the classic block (4h MLP, biases, two norms), learned
    positions and tied input/output embeddings.  The final layer norm
    (2h parameters) is the only learned tensor it omits.
    """
    _check_positive(h=h, L=L, v=v, s=s)
    return 12 * h * h * L + 13 * h * L + (v + s) * h


def param_count_approx(h: int, L: int) -> int:
    """The leading-order approximation ``12 h^2 L``."""
    _check_positive(h=h, L=L)
    return 12 * h * h * L


def param_count_config(
    h: int,
    L: int,
    v: int,
    s: int,
    d_ff: int,
    mlp_matrices: int = 2,
    kv_dim: "int | None" = None,
    num_experts: "int | None" = None,
) -> int:
    """Exact parameter count for generalized configurations.

    Per layer:

    - attention: Q and output projections ``2 h^2``, K and V
      projections ``2 h kv_dim`` (``kv_dim = h`` for classic MHA;
      smaller under grouped-query attention), plus biases
      ``2 h + 2 kv_dim``,
    - classic MLP (2 matrices): ``2 h d_ff`` weights + ``d_ff + h``
      biases,
    - SwiGLU MLP (3 matrices): ``3 h d_ff`` weights, bias-free,
    - two layer norms: ``4 h``.

    Plus embeddings ``(v + s) h`` (pass ``s=0`` for non-learned
    positional embeddings).  Reduces exactly to :func:`param_count`
    when ``d_ff = 4h``, ``mlp_matrices = 2`` and ``kv_dim in (None, h)``.
    """
    _check_positive(h=h, L=L, v=v, d_ff=d_ff)
    if s < 0:
        raise ConfigError(f"s must be non-negative, got {s}")
    kv_dim = h if kv_dim is None else kv_dim
    _check_positive(kv_dim=kv_dim)
    if mlp_matrices == 2:
        mlp = 2 * h * d_ff + d_ff + h
    elif mlp_matrices == 3:
        mlp = 3 * h * d_ff
    else:
        raise ConfigError(f"mlp_matrices must be 2 or 3, got {mlp_matrices}")
    if num_experts is not None:
        if num_experts < 2:
            raise ConfigError(f"num_experts must be >= 2, got {num_experts}")
        # E experts plus the router's (h x E) weight.
        mlp = num_experts * mlp + h * num_experts
    attention = 2 * h * h + 2 * h * kv_dim + 2 * h + 2 * kv_dim
    norms = 4 * h
    return L * (attention + mlp + norms) + (v + s) * h


def forward_flops_per_layer(b: int, s: int, h: int) -> int:
    """The paper's per-layer forward FLOPs: ``24 b s h^2 + 4 b s^2 h``.

    24bsh^2 covers the four dense GEMMs (QKV 6bsh^2, projection 2bsh^2,
    MLP 16bsh^2) and 4bs^2h covers the two attention BMMs.
    """
    _check_positive(b=b, s=s, h=h)
    return 24 * b * s * h * h + 4 * b * s * s * h


def forward_flops_per_layer_general(
    b: int, s: int, h: int, d_ff: int, mlp_matrices: int = 2
) -> int:
    """Per-layer forward FLOPs with an arbitrary MLP configuration."""
    _check_positive(b=b, s=s, h=h, d_ff=d_ff)
    attention = 8 * b * s * h * h + 4 * b * s * s * h
    mlp = 2 * mlp_matrices * b * s * h * d_ff
    return attention + mlp


def forward_flops_model(
    b: int,
    s: int,
    h: int,
    L: int,
    v: int,
    d_ff: "int | None" = None,
    mlp_matrices: int = 2,
) -> int:
    """Whole-model forward FLOPs: L layers plus the logit GEMM (2bshv)."""
    _check_positive(b=b, s=s, h=h, L=L, v=v)
    d_ff = 4 * h if d_ff is None else d_ff
    per_layer = forward_flops_per_layer_general(b, s, h, d_ff, mlp_matrices)
    return L * per_layer + 2 * b * s * h * v


def training_flops_per_token(h: int, L: int, s: int) -> int:
    """Rough training FLOPs per token: 3x the forward pass (fwd + bwd).

    Uses the paper's per-layer expression normalized per token.
    """
    _check_positive(h=h, L=L, s=s)
    fwd = forward_flops_per_layer(1, s, h) * L // s
    return 3 * fwd


def weight_memory_bytes(params: int, bytes_per_param: int = 2) -> int:
    """Weight storage for the given element size (2 = FP16)."""
    _check_positive(params=params, bytes_per_param=bytes_per_param)
    return params * bytes_per_param


def kv_cache_bytes(b: int, s: int, h: int, L: int, bytes_per_elem: int = 2) -> int:
    """Decode-time key/value cache: ``2 * b * s * h * L`` elements."""
    _check_positive(b=b, s=s, h=h, L=L)
    return 2 * b * s * h * L * bytes_per_elem


def activation_memory_bytes(
    b: int, s: int, h: int, L: int, bytes_per_elem: int = 2
) -> int:
    """Rough stored-activation footprint for training without
    recomputation: ~``L * s * b * h * 34`` bytes at FP16 (Korthikanti et
    al.'s coefficient, ignoring the attention-score term)."""
    _check_positive(b=b, s=s, h=h, L=L)
    return L * s * b * h * 17 * bytes_per_elem
