"""Profile a recorded OpTrace with the GPU model.

:class:`~repro.transformer.trace.OpTrace` records what a NumPy model
*actually executed* — including the backward pass, tensor-parallel
shards, GQA widths, whatever the run did.  This module bridges that
record to the performance substrate: every traced matmul is priced by
the analytic GEMM model, producing the per-module latency profile a
GPU profiler (nsight) would show for the same computation on real
hardware.

This closes the loop the paper draws in Fig 2/11: from *executed
operations* to *modelled kernel time*, without trusting any hand-derived
mapping in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ExperimentError
from repro.gpu.gemm_model import GemmModel
from repro.gpu.specs import GPUSpec
from repro.harness.results import ResultTable
from repro.observability import metrics as _metrics
from repro.observability import span as _span
from repro.transformer.trace import OpTrace
from repro.types import DType, teraflops


@dataclass(frozen=True)
class ProfiledModule:
    """Aggregated modelled cost of one trace module label."""

    module: str
    calls: int
    flops: int
    latency_s: float

    @property
    def tflops(self) -> float:
        return teraflops(self.flops, self.latency_s) if self.latency_s else 0.0


class TraceProfiler:
    """Prices every matmul of an OpTrace on one GPU."""

    def __init__(
        self, gpu: "str | GPUSpec" = "A100", dtype: "str | DType" = DType.FP16
    ) -> None:
        self.model = GemmModel(gpu, dtype)
        # Identical shapes recur L times per trace; memoize evaluations.
        self._cache: Dict[tuple, float] = {}

    def _latency(self, batch: int, m: int, k: int, n: int) -> float:
        key = (batch, m, k, n)
        if key not in self._cache:
            self._cache[key] = self.model.evaluate(m, n, k, batch=batch).latency_s
        return self._cache[key]

    def profile(self, trace: OpTrace) -> List[ProfiledModule]:
        """Aggregate the trace per module label, largest latency first."""
        if len(trace) == 0:
            raise ExperimentError("cannot profile an empty trace")
        by_module: Dict[str, List] = {}
        for rec in trace:
            by_module.setdefault(rec.module, []).append(rec)
        agg: Dict[str, ProfiledModule] = {}
        for module, recs in by_module.items():
            # One span per priced module: the OpTrace -> GPU-model
            # bridge, carrying the *modelled* latency as an attribute
            # (the span's own duration is just pricing overhead).
            with _span("profile.module", module=module) as sp:
                latency = 0.0
                flops = 0
                for rec in recs:
                    latency += self._latency(rec.batch, rec.m, rec.k, rec.n)
                    flops += rec.flops
                sp.set(
                    calls=len(recs), flops=flops, modelled_latency_s=latency
                )
                agg[module] = ProfiledModule(
                    module=module,
                    calls=len(recs),
                    flops=flops,
                    latency_s=latency,
                )
        _metrics().counter("profile.modules_priced").inc(len(by_module))
        return sorted(agg.values(), key=lambda p: -p.latency_s)

    def total_latency_s(self, trace: OpTrace) -> float:
        """Sum of all modelled kernel times (serial execution)."""
        return sum(p.latency_s for p in self.profile(trace))

    def as_table(self, trace: OpTrace, title: str = "Trace profile") -> ResultTable:
        """The profile as a ResultTable (for printing/export)."""
        profiles = self.profile(trace)
        total = sum(p.latency_s for p in profiles) or 1.0
        table = ResultTable(
            title,
            ["module", "calls", "latency_ms", "share", "tflops"],
            notes=f"priced on {self.model.spec.name} ({self.model.dtype.name})",
        )
        for p in profiles:
            table.add(p.module, p.calls, p.latency_s * 1e3, p.latency_s / total, p.tflops)
        return table
