"""Shape-improvement search (the paper's case-study methodology).

Given a model configuration and a target GPU, propose near-identical
configurations with better hardware alignment and rank them by modelled
end-to-end latency.  The candidate moves mirror the paper's Sec VI-B
discussion:

- **retune heads** — change ``a`` to improve pow2(h/a); parameter count
  is *unchanged* (the head count does not appear in the parameter
  formula), which is exactly the GPT-3 2.7B -> C2 fix,
- **pad the vocabulary** to the next multiple of 64 (Fig 20,
  Karpathy's nanoGPT trick),
- **retune the SwiGLU intermediate size** near 8h/3 (Sec VII-B),
- **widen the hidden size** to the next 64-multiple with a layer-count
  compensation to hold parameters roughly constant (opt-in, since it
  changes the architecture more substantially).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import TransformerConfig
from repro.core.latency import LayerLatencyModel
from repro.errors import ConfigError
from repro.gpu.alignment import largest_pow2_divisor
from repro.gpu.specs import GPUSpec
from repro.types import DType


@dataclass(frozen=True)
class Proposal:
    """One candidate reshaping, with its modelled effect."""

    config: TransformerConfig
    latency_s: float
    baseline_latency_s: float
    rationale: str
    baseline_params: int = 0

    @property
    def speedup(self) -> float:
        """Baseline latency / proposal latency (>1 is an improvement)."""
        return self.baseline_latency_s / self.latency_s

    @property
    def param_ratio(self) -> float:
        return self.config.param_count() / max(self.baseline_params, 1)

    def describe(self) -> str:
        return (
            f"{self.config.describe()}\n"
            f"  {self.rationale}\n"
            f"  modelled speedup {self.speedup:.2f}x, "
            f"params {self.param_ratio:.3f}x baseline"
        )


class ShapeAdvisor:
    """Searches hardware-friendlier shapes near a given configuration."""

    def __init__(
        self,
        gpu: "str | GPUSpec" = "A100",
        dtype: "str | DType" = DType.FP16,
        flash_attention: bool = False,
    ) -> None:
        self.model = LayerLatencyModel(gpu, dtype, flash_attention=flash_attention)

    # -- candidate generators -----------------------------------------------------

    def _head_candidates(self, cfg: TransformerConfig) -> List[TransformerConfig]:
        """Alternative head counts dividing h, within 2x of the original.

        Keeping h fixed keeps the parameter count identical; the paper
        prefers *decreasing* a (raising h/a) because the attention BMMs
        are memory-bound in h/a, but larger a candidates are scored too
        so the ranking demonstrates why.
        """
        h, a0 = cfg.hidden_size, cfg.num_heads
        out = []
        for a in range(max(1, a0 // 2), 2 * a0 + 1):
            if a == a0 or h % a:
                continue
            out.append(
                cfg.with_overrides(
                    name=f"{cfg.name}/a{a}", num_heads=a
                )
            )
        return out

    def _vocab_candidate(self, cfg: TransformerConfig) -> Optional[TransformerConfig]:
        v = cfg.vocab_size
        if v % 64 == 0:
            return None
        padded = -(-v // 64) * 64
        return cfg.with_overrides(name=f"{cfg.name}/v{padded}", vocab_size=padded)

    def _swiglu_candidates(self, cfg: TransformerConfig) -> List[TransformerConfig]:
        if cfg.mlp_kind != "swiglu":
            return []
        d0 = cfg.d_ff
        out = []
        # Nearby multiples of 256 and 64 around the nominal width.
        for step in (256, 64):
            for mult in (-2, -1, 1, 2):
                d = (d0 // step + mult) * step
                if d > 0 and d != d0:
                    out.append(
                        cfg.with_overrides(
                            name=f"{cfg.name}/dff{d}", intermediate_size=d
                        )
                    )
        return out

    def _widen_candidate(self, cfg: TransformerConfig) -> Optional[TransformerConfig]:
        """Round h up to a 64-multiple, shedding layers to hold params."""
        h0, L0 = cfg.hidden_size, cfg.num_layers
        if h0 % 64 == 0:
            return None
        h = -(-h0 // 64) * 64
        # Hold 12 h^2 L approximately constant.
        L = max(1, round(12 * h0 * h0 * L0 / (12 * h * h)))
        return cfg.with_overrides(
            name=f"{cfg.name}/h{h}L{L}", hidden_size=h, num_layers=L
        )

    # -- public API ------------------------------------------------------------------

    def propose(
        self,
        cfg: TransformerConfig,
        max_param_increase: float = 0.01,
        include_widen: bool = True,
        top: int = 10,
    ) -> List[Proposal]:
        """Rank candidate reshapes by modelled forward latency.

        Only proposals within ``max_param_increase`` relative parameter
        growth are returned (the paper's premise is equal-size
        comparisons), sorted fastest-first.  The original configuration
        is *not* included; compare via ``baseline_latency_s``.
        """
        if max_param_increase < 0:
            raise ConfigError("max_param_increase must be non-negative")
        baseline_latency = self.model.model_latency(cfg)
        baseline_params = cfg.param_count()

        candidates: List[tuple[TransformerConfig, str]] = []
        for cand in self._head_candidates(cfg):
            candidates.append(
                (
                    cand,
                    f"retune heads {cfg.num_heads} -> {cand.num_heads}: "
                    f"h/a {cfg.head_dim} (pow2 {cfg.head_dim_pow2}) -> "
                    f"{cand.head_dim} (pow2 {cand.head_dim_pow2}), params unchanged",
                )
            )
        vocab = self._vocab_candidate(cfg)
        if vocab is not None:
            candidates.append(
                (
                    vocab,
                    f"pad vocabulary {cfg.vocab_size} -> {vocab.vocab_size} "
                    "(multiple of 64) for the logit GEMM",
                )
            )
        for cand in self._swiglu_candidates(cfg):
            candidates.append(
                (
                    cand,
                    f"retune SwiGLU intermediate size {cfg.d_ff} -> {cand.d_ff} "
                    f"(pow2 {largest_pow2_divisor(cand.d_ff)})",
                )
            )
        if include_widen:
            widen = self._widen_candidate(cfg)
            if widen is not None:
                candidates.append(
                    (
                        widen,
                        f"widen h {cfg.hidden_size} -> {widen.hidden_size} with "
                        f"L {cfg.num_layers} -> {widen.num_layers} to hold params",
                    )
                )

        proposals = []
        for cand, why in candidates:
            if cand.param_count() > baseline_params * (1 + max_param_increase):
                continue
            latency = self.model.model_latency(cand)
            proposals.append(
                Proposal(
                    config=cand,
                    latency_s=latency,
                    baseline_latency_s=baseline_latency,
                    rationale=why,
                    baseline_params=baseline_params,
                )
            )
        proposals.sort(key=lambda p: p.latency_s)
        return proposals[:top]

    def best(self, cfg: TransformerConfig, **kwargs) -> Optional[Proposal]:
        """The single fastest proposal, or None if nothing qualifies."""
        proposals = self.propose(cfg, **kwargs)
        return proposals[0] if proposals else None
