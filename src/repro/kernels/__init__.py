"""Kernel-parameter autotuning: tuned (tile, wave) tables per (GPU, dtype).

The engine answers "how fast is this shape"; this package answers the
inverse question a compiler or runtime asks per GEMM — *which kernel
parameters should run it* (the tritonBLAS direction, PAPERS.md).  The
pieces:

- :mod:`~repro.kernels.search` — batched analytical search: one SoA
  grid of tuning shapes evaluated once per pinned tile candidate
  through :meth:`~repro.engine.core.ShapeEngine.evaluate_tiles`, argmin
  across the candidate axis, bucketed into a lookup table.
- :mod:`~repro.kernels.table` — the versioned, checksummed JSON
  artifact (:class:`KernelTable`) those searches export, with an
  explanatory ranked diff (:func:`compare_tables`) for golden-drift
  gating.
- :mod:`~repro.kernels.registry` — :class:`KernelParamResolver`, the
  serving-side lookup: loaded tables first, deterministic analytical
  fallback on a miss.  ``repro serve`` answers ``kernel_params``
  queries through it on every transport.
- :mod:`~repro.kernels.wall` — the differential test wall: tuned picks
  and the analytical candidate ranking must agree with the
  discrete-event SM simulator (Kendall-tau and top-1 agreement floors).
"""

from repro.kernels.registry import (
    TABLES_ENV,
    KernelParamResolver,
    load_tables,
)
from repro.kernels.search import (
    TUNE_BATCHES,
    TUNE_DIMS,
    TUNE_DIMS_QUICK,
    tune_table,
)
from repro.kernels.table import (
    SCHEMA_VERSION,
    KernelEntry,
    KernelTable,
    compare_tables,
)
from repro.kernels.wall import WallReport, run_wall, validation_shapes

__all__ = [
    "SCHEMA_VERSION",
    "TABLES_ENV",
    "TUNE_BATCHES",
    "TUNE_DIMS",
    "TUNE_DIMS_QUICK",
    "KernelEntry",
    "KernelParamResolver",
    "KernelTable",
    "WallReport",
    "compare_tables",
    "load_tables",
    "run_wall",
    "tune_table",
    "validation_shapes",
]
