"""Loading tuned tables and answering ``kernel_params`` queries.

:class:`KernelParamResolver` is what the serve tier holds: a set of
loaded :class:`~repro.kernels.table.KernelTable` artifacts keyed by
(GPU, dtype), a bounded memo of answered shapes, and the deterministic
analytical fallback (:func:`~repro.kernels.search.best_for_shape`) for
anything the tables miss.  Resolution is a pure function of (query,
loaded tables, engine model version), which is what makes answers
bit-identical across the in-process server, supervisor pipe workers,
and the TCP cluster: every process resolves from the same environment
(``REPRO_KERNEL_TABLES`` is inherited by cluster workers exactly like
the engine cache dir) and the same model.

Stale tables are *refused*, not trusted: a loaded artifact whose
``model_version`` does not match the running engine would serve
predicted latencies the engine no longer agrees with, so it is treated
as absent (fallback answers instead) and counted in
:meth:`KernelParamResolver.describe`.
"""

from __future__ import annotations

import logging
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.cache import model_version
from repro.engine.core import ShapeEngine
from repro.errors import KernelTableError
from repro.kernels.search import best_for_shape
from repro.kernels.table import KernelEntry, KernelTable, bucket_of

__all__ = ["TABLES_ENV", "KernelParamResolver", "load_tables"]

#: Directory of ``<gpu>-<dtype>.json`` table artifacts for serving.
#: Unset (the default) means every query takes the analytical fallback.
TABLES_ENV = "REPRO_KERNEL_TABLES"

#: Bounded memo of resolved shapes per resolver.
_MEMO_ENTRIES = 4096

log = logging.getLogger("repro.kernels")


def load_tables(directory: "str | os.PathLike") -> List[KernelTable]:
    """Load and verify every ``*.json`` table artifact in a directory.

    A malformed or checksum-failing file raises
    :class:`~repro.errors.KernelTableError` naming the path — a corrupt
    artifact should fail loudly at startup, not silently degrade to
    fallback answers.
    """
    root = Path(directory)
    if not root.is_dir():
        raise KernelTableError(f"kernel table directory not found: {root}")
    tables = []
    for path in sorted(root.glob("*.json")):
        try:
            tables.append(KernelTable.from_json(path.read_text()))
        except OSError as exc:
            raise KernelTableError(
                f"cannot read kernel table {path}: {exc}"
            ) from exc
        except KernelTableError as exc:
            raise KernelTableError(f"{path}: {exc}") from exc
    return tables


class KernelParamResolver:
    """Answer "best (tile, wave) for this GEMM" from tables + fallback.

    Thread-safe; one instance is shared by every shard of an
    :class:`~repro.serve.server.AdvisoryServer`.
    """

    def __init__(
        self,
        tables: "List[KernelTable] | None" = None,
        engine: Optional[ShapeEngine] = None,
    ) -> None:
        self._engine = engine
        self._lock = threading.Lock()
        self._memo: "OrderedDict[Tuple[Any, ...], Dict[str, Any]]" = (
            OrderedDict()
        )
        self._tables: Dict[Tuple[str, str], KernelTable] = {}
        self._indexes: Dict[
            Tuple[str, str], Dict[Tuple[int, int, int, int], KernelEntry]
        ] = {}
        self._stale: List[str] = []
        current = model_version()
        for table in tables or []:
            if table.model_version != current:
                self._stale.append(
                    f"{table.gpu}/{table.dtype} (table model "
                    f"{table.model_version!r} != engine {current!r})"
                )
                log.warning(
                    "ignoring stale kernel table %s/%s: %s != %s",
                    table.gpu, table.dtype, table.model_version, current,
                )
                continue
            key = (table.gpu, table.dtype)
            self._tables[key] = table
            self._indexes[key] = table.index()

    @classmethod
    def from_env(
        cls, engine: Optional[ShapeEngine] = None
    ) -> "KernelParamResolver":
        """Build from ``REPRO_KERNEL_TABLES`` (empty resolver if unset)."""
        directory = os.environ.get(TABLES_ENV)
        tables = load_tables(directory) if directory else None
        return cls(tables=tables, engine=engine)

    # -- resolution ----------------------------------------------------------

    def _entry_payload(
        self, entry: KernelEntry, table: Optional[KernelTable]
    ) -> Dict[str, Any]:
        payload = entry.to_dict()
        payload["table_hit"] = table is not None
        payload["table_checksum"] = (
            table.checksum() if table is not None else None
        )
        payload["model_version"] = model_version()
        return payload

    def resolve(
        self,
        batch: int,
        m: int,
        n: int,
        k: int,
        gpu: str,
        dtype: str = "fp16",
    ) -> Dict[str, Any]:
        """The ``kernel_params`` answer payload for one GEMM.

        Table hit: the bucket entry (representative-shape prediction).
        Miss: the analytical argmin at the exact shape, flagged with
        ``table_hit: false``.  Either way the payload names the tile
        geometry, wave/block counts, predicted latency and throughput,
        the runner-up tile with its latency margin, and the provenance
        needed to audit the answer (table checksum, model version).
        """
        from repro.gpu.specs import get_gpu
        from repro.types import DType

        spec = get_gpu(gpu)
        parsed = DType.parse(dtype)
        memo_key = (batch, m, n, k, spec.name, parsed.name)
        with self._lock:
            hit = self._memo.get(memo_key)
            if hit is not None:
                self._memo.move_to_end(memo_key)
                return dict(hit)

        key = (spec.name, parsed.name)
        table = self._tables.get(key)
        entry = None
        if table is not None:
            bucket = (
                bucket_of(batch), bucket_of(m), bucket_of(n), bucket_of(k),
            )
            entry = self._indexes[key].get(bucket)
        if entry is not None:
            payload = self._entry_payload(entry, table)
        else:
            payload = self._entry_payload(
                best_for_shape(
                    batch, m, n, k, spec.name, parsed.name,
                    engine=self._engine,
                ),
                None,
            )
        with self._lock:
            self._memo[memo_key] = dict(payload)
            while len(self._memo) > _MEMO_ENTRIES:
                self._memo.popitem(last=False)
        return payload

    # -- introspection -------------------------------------------------------

    @property
    def tables(self) -> Dict[Tuple[str, str], KernelTable]:
        return dict(self._tables)

    def describe(self) -> str:
        loaded = ", ".join(
            f"{gpu}/{dtype}" for gpu, dtype in sorted(self._tables)
        )
        parts = [
            f"{len(self._tables)} kernel table(s) loaded"
            + (f" ({loaded})" if loaded else "")
        ]
        if self._stale:
            parts.append(f"{len(self._stale)} stale ignored: "
                         + "; ".join(self._stale))
        return "; ".join(parts)
