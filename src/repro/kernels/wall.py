"""The differential test wall: tuned picks vs the discrete-event simulator.

The tuner ranks candidates with the closed-form analytical model; the
:class:`~repro.gpu.simulator.SMSimulator` resolves block scheduling by
event loop instead of synchronized-wave arithmetic.  They are built
from the same physical constants but disagree exactly where the
closed form approximates (wave-tail backfill, per-block issue cost) —
so agreement between them is evidence the tuned picks reflect the
modeled machine, not an artifact of one formula.

For each sampled validation shape the wall computes:

- the **simulator ranking**: every candidate tile simulated with the
  tile pinned, ranked by makespan;
- the **analytical ranking**: the same candidates through the engine's
  pinned-tile batched path (one whole-grid call per candidate over all
  validation shapes at once);
- the **table's pick**: resolved exactly like a serve query (bucket
  lookup, analytical fallback on a miss).

It then enforces two floors: mean Kendall-tau between the rankings
(ordering agreement across the whole candidate pool) and top-1
agreement (the served pick matches the simulator's winner, or loses to
it by at most a hair — ``near_top1_rel`` guards the coin-flip ties a
rank statistic cannot see).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.stats import kendalltau

from repro.engine.core import ShapeEngine, default_engine
from repro.engine.grid import ShapeGrid
from repro.errors import KernelTableError
from repro.gpu.simulator import SMSimulator
from repro.gpu.specs import get_gpu
from repro.gpu.tiles import candidate_tiles
from repro.kernels.registry import KernelParamResolver
from repro.kernels.table import KernelTable
from repro.types import DType

__all__ = ["WallReport", "run_wall", "validation_shapes"]

#: Acceptance floors (ISSUE/CI contract): mean Kendall-tau across the
#: validation shapes, and the fraction of shapes whose served pick
#: matches (or nearly matches) the simulator's winner.
TAU_FLOOR = 0.6
TOP1_FLOOR = 0.8

#: A pick counts as agreeing with the simulator when its simulated
#: latency is within this relative distance of the simulated winner —
#: two tiles the simulator itself cannot separate are not a miss.
NEAR_TOP1_REL = 0.02

#: Validation-shape pool: moderate extents (simulation cost is linear
#: in block count), aligned and misaligned, in- and out-of-table.
_VALIDATION_DIMS = (
    192, 256, 384, 512, 768, 1000, 1024, 1536, 2048, 2560, 3072, 4096,
)
_VALIDATION_BATCHES = (1, 2, 4)


def validation_shapes(
    seed: int = 0, count: int = 12
) -> List[Tuple[int, int, int, int]]:
    """Deterministic sampled (batch, m, n, k) validation shapes."""
    if count < 1:
        raise KernelTableError(f"count must be >= 1, got {count}")
    rng = random.Random(seed)
    shapes: List[Tuple[int, int, int, int]] = []
    seen = set()
    while len(shapes) < count:
        shape = (
            rng.choice(_VALIDATION_BATCHES),
            rng.choice(_VALIDATION_DIMS),
            rng.choice(_VALIDATION_DIMS),
            rng.choice(_VALIDATION_DIMS),
        )
        if shape not in seen:
            seen.add(shape)
            shapes.append(shape)
    return shapes


@dataclass
class ShapeVerdict:
    """One validation shape's comparison against the simulator.

    ``tau`` is the Kendall rank correlation between the analytical and
    simulated candidate latencies (dimensionless, in [-1, 1]);
    ``pick_gap_rel`` is how far the served pick's simulated latency
    sits above the simulated winner's (0 = exact agreement).
    """

    shape: Tuple[int, int, int, int]
    table_pick: str
    table_hit: bool
    sim_pick: str
    tau: float
    pick_gap_rel: float

    @property
    def top1_ok(self) -> bool:
        return self.table_pick == self.sim_pick or (
            self.pick_gap_rel <= NEAR_TOP1_REL
        )


@dataclass
class WallReport:
    """Outcome of one differential wall run.

    ``mean_tau`` averages the per-shape Kendall-tau values;
    ``top1_agreement`` is the fraction of shapes whose served pick
    matched the simulator winner (within ``NEAR_TOP1_REL``).
    """

    gpu: str
    dtype: str
    verdicts: List[ShapeVerdict] = field(default_factory=list)
    tau_floor: float = TAU_FLOOR  # pass floor for mean_tau
    top1_floor: float = TOP1_FLOOR  # pass floor for top1_agreement

    @property
    def mean_tau(self) -> float:
        if not self.verdicts:
            return 0.0
        return float(np.mean([v.tau for v in self.verdicts]))

    @property
    def top1_agreement(self) -> float:
        if not self.verdicts:
            return 0.0
        return sum(v.top1_ok for v in self.verdicts) / len(self.verdicts)

    @property
    def passed(self) -> bool:
        return (
            bool(self.verdicts)
            and self.mean_tau >= self.tau_floor
            and self.top1_agreement >= self.top1_floor
        )

    def describe(self) -> str:
        lines = [
            f"kernel wall {self.gpu}/{self.dtype}: "
            f"{len(self.verdicts)} validation shape(s)"
        ]
        for v in self.verdicts:
            mark = "ok " if v.top1_ok else "MISS"
            src = "table" if v.table_hit else "fallback"
            lines.append(
                f"  {mark} {v.shape}: pick {v.table_pick} ({src}) vs sim "
                f"{v.sim_pick}  tau={v.tau:+.2f}  "
                f"gap={100 * v.pick_gap_rel:.1f}%"
            )
        lines.append(
            f"mean tau {self.mean_tau:.3f} (floor {self.tau_floor}), "
            f"top-1 agreement {100 * self.top1_agreement:.0f}% "
            f"(floor {100 * self.top1_floor:.0f}%) -> "
            + ("PASS" if self.passed else "FAIL")
        )
        return "\n".join(lines)


def run_wall(
    table: KernelTable,
    shapes: Optional[Sequence[Tuple[int, int, int, int]]] = None,
    seed: int = 0,
    count: int = 12,
    engine: Optional[ShapeEngine] = None,
) -> WallReport:
    """Run the differential wall for one tuned table."""
    spec = get_gpu(table.gpu)
    parsed = DType.parse(table.dtype)
    eng = engine if engine is not None else default_engine()
    pool = candidate_tiles(spec, parsed)
    samples = (
        list(shapes) if shapes is not None
        else validation_shapes(seed=seed, count=count)
    )
    resolver = KernelParamResolver(tables=[table], engine=eng)

    arr = np.asarray(samples, dtype=np.int64)
    grid = ShapeGrid.from_columns(
        batch=arr[:, 0], m=arr[:, 1], n=arr[:, 2], k=arr[:, 3]
    )
    sweep = eng.evaluate_tiles(grid, spec, parsed, candidates=pool)
    analytic = np.stack(
        [result.batch.latency_s for _tile, result in sweep]
    )  # (candidates, shapes)

    report = WallReport(gpu=spec.name, dtype=parsed.name)
    for row, (batch, m, n, k) in enumerate(samples):
        sim_latency: Dict[str, float] = {}
        for tile in pool:
            sim = SMSimulator(spec, parsed, tile=tile)
            sim_latency[tile.name] = sim.run(m, n, k, batch=batch).latency_s
        sim_series = np.asarray([sim_latency[t.name] for t in pool])
        tau, _p = kendalltau(analytic[:, row], sim_series)
        sim_best = pool[int(np.argmin(sim_series))].name
        sim_floor = float(np.min(sim_series))
        payload = resolver.resolve(
            batch, m, n, k, spec.name, parsed.name
        )
        pick = str(payload["tile"])
        gap = (
            (sim_latency[pick] - sim_floor) / sim_floor
            if sim_floor > 0 else 0.0
        )
        report.verdicts.append(
            ShapeVerdict(
                shape=(batch, m, n, k),
                table_pick=pick,
                table_hit=bool(payload["table_hit"]),
                sim_pick=sim_best,
                tau=float(tau),
                pick_gap_rel=float(gap),
            )
        )
    return report
