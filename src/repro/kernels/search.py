"""Batched analytical search producing tuned kernel-parameter tables.

:func:`tune_table` is the whole tuner: build *one*
:class:`~repro.engine.grid.ShapeGrid` covering every tuning shape for a
(GPU, dtype) pair, evaluate it once per pinned tile candidate through
:meth:`~repro.engine.core.ShapeEngine.evaluate_tiles` (the SoA
whole-grid path — no per-shape Python anywhere), take the argmin across
the candidate axis, and export the per-bucket winners as a
:class:`~repro.kernels.table.KernelTable`.

The tuning grid is the set of bucket representatives: every power of
two in the tuned octave range for m/n/k, crossed with the tuned batch
points.  Because representatives are exactly one per bucket, the table
is a total function over its octave range and a clean *miss* outside
it — which is where :func:`best_for_shape`, the deterministic
analytical fallback the resolver uses, takes over with the same argmin
over the same candidate pool at the exact query shape.

Determinism: candidate order comes from
:func:`~repro.gpu.tiles.candidate_tiles` (fixed), ``np.argmin`` breaks
ties toward the earlier candidate, and the grid is a pure function of
the arguments — so for a fixed engine model version, tuning twice
yields byte-identical artifacts.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.engine.core import ShapeEngine, default_engine
from repro.engine.grid import ShapeGrid
from repro.engine.cache import model_version
from repro.errors import KernelTableError
from repro.gpu.specs import get_gpu
from repro.gpu.tiles import TileConfig, candidate_tiles
from repro.kernels.table import SCHEMA_VERSION, KernelEntry, KernelTable
from repro.observability import span as _span
from repro.types import DType

__all__ = [
    "TUNE_BATCHES",
    "TUNE_DIMS",
    "TUNE_DIMS_QUICK",
    "best_for_shape",
    "tune_grid",
    "tune_table",
]

#: Default m/n/k tuning points: one power of two per octave, 64..8192.
TUNE_DIMS: Tuple[int, ...] = (64, 128, 256, 512, 1024, 2048, 4096, 8192)

#: The CI smoke grid: a narrower octave range, same structure.
TUNE_DIMS_QUICK: Tuple[int, ...] = (256, 512, 1024, 2048)

#: Default batch tuning points (single GEMMs and a batched-BMM regime).
TUNE_BATCHES: Tuple[int, ...] = (1, 8)


def _validate_points(name: str, points: Sequence[int]) -> Tuple[int, ...]:
    out = tuple(int(p) for p in points)
    if not out:
        raise KernelTableError(f"{name} tuning points must be non-empty")
    for p in out:
        if p < 1 or p & (p - 1):
            raise KernelTableError(
                f"{name} tuning points must be powers of two (one bucket "
                f"representative per octave), got {p}"
            )
    if len(set(out)) != len(out):
        raise KernelTableError(f"duplicate {name} tuning point in {out}")
    return out


def tune_grid(
    dims: Sequence[int] = TUNE_DIMS,
    batches: Sequence[int] = TUNE_BATCHES,
) -> ShapeGrid:
    """The SoA tuning grid: full cross product of representatives."""
    dims = _validate_points("dim", dims)
    batches = _validate_points("batch", batches)
    mesh = np.stack(
        [
            a.ravel()
            for a in np.meshgrid(batches, dims, dims, dims, indexing="ij")
        ],
        axis=1,
    ).astype(np.int64)
    return ShapeGrid.from_columns(
        batch=mesh[:, 0], m=mesh[:, 1], n=mesh[:, 2], k=mesh[:, 3]
    )


def _argmin_entries(
    grid: ShapeGrid,
    sweep: "Sequence[Tuple[TileConfig, object]]",
) -> Tuple[KernelEntry, ...]:
    """Per-shape winners (and runners-up) from a per-tile sweep."""
    latency = np.stack(
        [result.batch.latency_s for _tile, result in sweep]
    )  # (candidates, shapes)
    tflops = np.stack([result.batch.tflops for _tile, result in sweep])
    waves = np.stack([result.batch.waves for _tile, result in sweep])
    blocks = np.stack([result.batch.blocks for _tile, result in sweep])
    best = np.argmin(latency, axis=0)
    shapes = grid.shapes
    cols = np.arange(len(grid))
    # Runner-up: mask the winner out and argmin again (vectorized).
    masked = latency.copy()
    masked[best, cols] = np.inf
    second = np.argmin(masked, axis=0)
    entries = []
    for row in range(len(grid)):
        tile = sweep[best[row]][0]
        win_latency = float(latency[best[row], row])
        second_latency = float(masked[second[row], row])
        has_second = np.isfinite(second_latency)
        entries.append(
            KernelEntry(
                batch=int(shapes[row, 0]),
                m=int(shapes[row, 1]),
                n=int(shapes[row, 2]),
                k=int(shapes[row, 3]),
                tile=tile.name,
                tile_m=tile.m,
                tile_n=tile.n,
                k_stage=tile.k_stage,
                threads=tile.threads,
                waves=int(waves[best[row], row]),
                blocks=int(blocks[best[row], row]),
                latency_s=win_latency,
                tflops=float(tflops[best[row], row]),
                runner_up=sweep[second[row]][0].name if has_second else None,
                margin=(
                    second_latency / win_latency
                    if has_second and win_latency > 0
                    else 1.0
                ),
            )
        )
    return tuple(entries)


def tune_table(
    gpu: str,
    dtype: str = "fp16",
    engine: Optional[ShapeEngine] = None,
    dims: Sequence[int] = TUNE_DIMS,
    batches: Sequence[int] = TUNE_BATCHES,
) -> KernelTable:
    """Tune one (GPU, dtype) table by batched analytical search.

    One whole-grid evaluation per candidate tile; everything else is
    NumPy reductions over the (candidate x shape) latency surface.
    """
    spec = get_gpu(gpu)
    parsed = DType.parse(dtype)
    eng = engine if engine is not None else default_engine()
    grid = tune_grid(dims=dims, batches=batches)
    pool = candidate_tiles(spec, parsed)
    with _span(
        "kernels.tune", gpu=spec.name, dtype=parsed.name,
        shapes=len(grid), tiles=len(pool),
    ):
        sweep = eng.evaluate_tiles(grid, spec, parsed, candidates=pool)
        entries = _argmin_entries(grid, sweep)
    return KernelTable(
        gpu=spec.name,
        dtype=parsed.name,
        model_version=model_version(),
        schema=SCHEMA_VERSION,
        provenance=tuple(
            sorted(
                {
                    "tuner": "repro.kernels.search",
                    "dims": list(_validate_points("dim", dims)),
                    "batches": list(_validate_points("batch", batches)),
                    "candidates": [t.name for t in pool],
                    "shapes": len(grid),
                }.items()
            )
        ),
        entries=entries,
    )


def best_for_shape(
    batch: int,
    m: int,
    n: int,
    k: int,
    gpu: str,
    dtype: str = "fp16",
    engine: Optional[ShapeEngine] = None,
) -> KernelEntry:
    """The analytical fallback: argmin over candidates at one exact shape.

    Used by the resolver on table misses and usable standalone; the
    pick is computed with the *same* per-tile pinned evaluation the
    tuner uses, so a fallback answer at a representative shape is
    identical to the table entry tuned there.
    """
    spec = get_gpu(gpu)
    parsed = DType.parse(dtype)
    eng = engine if engine is not None else default_engine()
    grid = ShapeGrid.from_columns(
        batch=np.asarray([batch], dtype=np.int64),
        m=np.asarray([m], dtype=np.int64),
        n=np.asarray([n], dtype=np.int64),
        k=np.asarray([k], dtype=np.int64),
    )
    sweep = eng.evaluate_tiles(grid, spec, parsed)
    return _argmin_entries(grid, sweep)[0]
