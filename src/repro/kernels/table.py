"""The kernel-parameter table artifact: versioned, checksummed JSON.

A :class:`KernelTable` is the exported product of one tuning run
(:func:`repro.kernels.search.tune_table`): for one (GPU, dtype) pair it
maps log2 shape buckets to the tile/wave parameters the analytical
model ranks fastest at that bucket's representative shape.  The
artifact is designed for the same discipline as the golden snapshots
(:mod:`repro.harness.golden`):

- **versioned** — a ``schema`` integer for the file layout and the
  engine ``model_version`` the numbers were computed under.  A loaded
  table whose model version does not match the running engine is
  *stale*: its predicted latencies no longer agree with what the
  engine would serve, so the resolver refuses it.
- **checksummed** — a sha256 over the canonical JSON of everything
  except the checksum itself, so silent artifact edits and torn writes
  fail loudly at load.
- **deterministic** — no timestamps, hostnames, or float formatting
  noise anywhere in the payload: tuning the same (GPU, dtype) twice
  under one model version yields byte-identical files, which is what
  lets CI gate on golden-table drift.

:func:`compare_tables` mirrors ``harness.golden.compare_snapshot``: an
ordered, explanatory diff where the most explanatory difference (a
model-version bump) comes first and per-entry pick changes are ranked
by how much predicted latency they move.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import KernelTableError

__all__ = [
    "SCHEMA_VERSION",
    "KernelEntry",
    "KernelTable",
    "bucket_of",
    "compare_tables",
]

#: File-layout version; readers reject anything else.
SCHEMA_VERSION = 1

#: Hex digits kept from the sha256 (matches the golden snapshots).
_CHECKSUM_LEN = 16


def bucket_of(value: int) -> int:
    """The log2 bucket an extent falls in: ``floor(log2(value))``.

    Buckets quantize the continuous shape space into the octaves the
    table stores one representative entry for; ``bucket_of(96) == 6``
    (the 64..127 octave).
    """
    if value < 1:
        raise KernelTableError(f"extent must be >= 1, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class KernelEntry:
    """One tuned bucket: the winning tile/wave parameters.

    ``batch``/``m``/``n``/``k`` are the bucket's *representative*
    shape (the power-of-two tuning point), not the query's exact
    shape.  ``latency_s`` / ``tflops`` are the analytical model's
    prediction for the winning tile at that representative shape;
    ``margin`` is runner-up latency over winner latency
    (dimensionless, >= 1; large margin = robust pick).
    """

    batch: int
    m: int
    n: int
    k: int
    tile: str
    tile_m: int
    tile_n: int
    k_stage: int
    threads: int
    waves: int
    blocks: int
    latency_s: float
    tflops: float
    runner_up: Optional[str]
    margin: float

    def bucket(self) -> Tuple[int, int, int, int]:
        """The (batch, m, n, k) log2 bucket this entry answers."""
        return (
            bucket_of(self.batch),
            bucket_of(self.m),
            bucket_of(self.n),
            bucket_of(self.k),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "batch": self.batch,
            "m": self.m,
            "n": self.n,
            "k": self.k,
            "tile": self.tile,
            "tile_m": self.tile_m,
            "tile_n": self.tile_n,
            "k_stage": self.k_stage,
            "threads": self.threads,
            "waves": self.waves,
            "blocks": self.blocks,
            "latency_s": self.latency_s,
            "tflops": self.tflops,
            "runner_up": self.runner_up,
            "margin": self.margin,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "KernelEntry":
        try:
            return cls(
                batch=int(data["batch"]),
                m=int(data["m"]),
                n=int(data["n"]),
                k=int(data["k"]),
                tile=str(data["tile"]),
                tile_m=int(data["tile_m"]),
                tile_n=int(data["tile_n"]),
                k_stage=int(data["k_stage"]),
                threads=int(data["threads"]),
                waves=int(data["waves"]),
                blocks=int(data["blocks"]),
                latency_s=float(data["latency_s"]),
                tflops=float(data["tflops"]),
                runner_up=(
                    None if data.get("runner_up") is None
                    else str(data["runner_up"])
                ),
                margin=float(data["margin"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise KernelTableError(f"bad table entry: {exc}") from exc


@dataclass(frozen=True)
class KernelTable:
    """One (GPU, dtype) tuned kernel-parameter table.

    ``provenance`` describes how the table was produced (tuning grid,
    candidate pool, entry count) in *deterministic* terms only — it is
    part of the checksummed payload, so anything time- or
    machine-dependent would break byte-identical re-tuning.
    """

    gpu: str
    dtype: str
    model_version: str
    schema: int
    provenance: Tuple[Tuple[str, Any], ...]
    entries: Tuple[KernelEntry, ...]

    # -- canonical form ------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """Everything the checksum covers, as plain JSON types."""
        return {
            "schema": self.schema,
            "gpu": self.gpu,
            "dtype": self.dtype,
            "model_version": self.model_version,
            "provenance": dict(self.provenance),
            "entries": [e.to_dict() for e in self.entries],
        }

    def checksum(self) -> str:
        """sha256 (truncated) over the canonical payload JSON."""
        canonical = json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:_CHECKSUM_LEN]

    def to_json(self) -> str:
        """The artifact text: payload plus its checksum, stable layout."""
        body = dict(self.payload())
        body["checksum"] = self.checksum()
        return json.dumps(body, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "KernelTable":
        """Parse and *verify* one artifact (checksum and schema)."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise KernelTableError(f"malformed table JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise KernelTableError("table artifact must be a JSON object")
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise KernelTableError(
                f"unsupported table schema {schema!r} "
                f"(this reader speaks {SCHEMA_VERSION})"
            )
        stated = data.get("checksum")
        provenance = data.get("provenance")
        if not isinstance(provenance, dict):
            raise KernelTableError("table 'provenance' must be an object")
        entries_raw = data.get("entries")
        if not isinstance(entries_raw, list):
            raise KernelTableError("table 'entries' must be an array")
        table = cls(
            gpu=str(data.get("gpu", "")),
            dtype=str(data.get("dtype", "")),
            model_version=str(data.get("model_version", "")),
            schema=int(schema),
            provenance=tuple(sorted(provenance.items())),
            entries=tuple(KernelEntry.from_dict(e) for e in entries_raw),
        )
        actual = table.checksum()
        if stated != actual:
            raise KernelTableError(
                f"table checksum mismatch for {table.gpu}/{table.dtype}: "
                f"file says {stated!r}, contents hash to {actual!r} "
                "(artifact edited or torn; re-tune with 'repro tune-kernels')"
            )
        return table

    # -- lookup --------------------------------------------------------------

    def index(self) -> Dict[Tuple[int, int, int, int], KernelEntry]:
        """Bucket -> entry map (rebuild cost is on the caller to cache)."""
        return {entry.bucket(): entry for entry in self.entries}

    def lookup(
        self, batch: int, m: int, n: int, k: int
    ) -> Optional[KernelEntry]:
        """The entry answering one shape's bucket, or None on a miss."""
        key = (bucket_of(batch), bucket_of(m), bucket_of(n), bucket_of(k))
        return self.index().get(key)

    def describe(self) -> str:
        return (
            f"kernel table {self.gpu}/{self.dtype}: {len(self.entries)} "
            f"buckets, model {self.model_version}, "
            f"checksum {self.checksum()}"
        )


def _entry_diff_rank(old: KernelEntry, new: KernelEntry) -> float:
    """How explanatory a pick change is: relative predicted-latency move."""
    if old.latency_s <= 0:
        return float("inf")
    return abs(new.latency_s - old.latency_s) / old.latency_s


def compare_tables(stored: KernelTable, fresh: KernelTable) -> List[str]:
    """Explanatory ranked diff between two tables (empty on exact match).

    Ordered like :func:`repro.harness.golden.compare_snapshot`: the
    model-version line first (it explains every numeric change below),
    then identity/shape mismatches, then per-bucket pick changes ranked
    by predicted-latency impact, then pure numeric drift, and the
    checksum line last as the summary.
    """
    diffs: List[str] = []
    if stored.model_version != fresh.model_version:
        diffs.append(
            "model_version changed: "
            f"{stored.model_version!r} -> {fresh.model_version!r} "
            "(every entry below is expected to move; if intentional, "
            "refresh with 'repro tune-kernels --update-golden')"
        )
    if (stored.gpu, stored.dtype) != (fresh.gpu, fresh.dtype):
        diffs.append(
            f"target changed: {stored.gpu}/{stored.dtype} -> "
            f"{fresh.gpu}/{fresh.dtype}"
        )
        return diffs  # different tables entirely; stop here
    if stored.schema != fresh.schema:
        diffs.append(f"schema: {stored.schema} -> {fresh.schema}")
    if dict(stored.provenance) != dict(fresh.provenance):
        diffs.append(
            f"provenance changed: {dict(stored.provenance)} -> "
            f"{dict(fresh.provenance)} (different tuning grid; entries "
            "are not comparable bucket-by-bucket)"
        )
    old_index = stored.index()
    new_index = fresh.index()
    if len(old_index) != len(new_index):
        diffs.append(
            f"bucket count: {len(old_index)} -> {len(new_index)}"
        )
    pick_changes: List[Tuple[float, str]] = []
    drift: List[str] = []
    for bucket, old in sorted(old_index.items()):
        new = new_index.get(bucket)
        if new is None:
            drift.append(f"bucket {bucket}: entry removed (was {old.tile})")
            continue
        if old.tile != new.tile:
            rel = _entry_diff_rank(old, new)
            pick_changes.append(
                (
                    rel,
                    f"shape ({old.batch}, {old.m}, {old.n}, {old.k}): "
                    f"pick {old.tile} -> {new.tile} "
                    f"(predicted latency {old.latency_s:.3e}s -> "
                    f"{new.latency_s:.3e}s, {100 * rel:.1f}% move)",
                )
            )
        elif old != new:
            drift.append(
                f"shape ({old.batch}, {old.m}, {old.n}, {old.k}): "
                f"same pick {old.tile}, numbers drifted "
                f"(latency {old.latency_s:.6e}s -> {new.latency_s:.6e}s)"
            )
    for bucket, new in sorted(new_index.items()):
        if bucket not in old_index:
            drift.append(f"bucket {bucket}: new entry ({new.tile})")
    diffs.extend(text for _, text in sorted(pick_changes, reverse=True))
    diffs.extend(drift)
    if not diffs and stored.checksum() != fresh.checksum():
        # Only reachable if a field outside the compared set moved.
        diffs.append(
            f"checksum: {stored.checksum()} -> {fresh.checksum()}"
        )
    elif diffs:
        diffs.append(
            f"checksum: {stored.checksum()} -> {fresh.checksum()}"
        )
    return diffs
