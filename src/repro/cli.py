"""Command-line interface.

Verbs::

    repro analyze  <model> [--gpu A100]       latency breakdown of a preset
    repro rules    <model> [--gpu A100]       run the Sec VI-B rule engine
    repro advise   <model> [--gpu A100]       propose faster shapes
    repro figure   <id> [--csv] [--check]     regenerate a paper figure/table
    repro figures                             list all experiment ids
    repro run      [ids...] [--retries N] [--timeout S] [--journal P]
                   [--resume] [--inject-faults plan.json]
                   [--trace out.jsonl] [--metrics]
                                              fault-tolerant experiment sweep
    repro bench    [--quick] [--parallel N]   engine parity + cold/warm timings
    repro report   trace.jsonl                per-phase latency/cache/retry
                                              breakdown of a recorded trace
    repro lint     <model|config.json>        co-design shape linter
    repro lint     --self [paths...]          AST self-lint of the codebase
    repro serve    [--queries FILE|-]         answer advisory queries through
                   [--workers N] [--max-batch N] [--max-queue N]
                                              the dynamically-batched service
    repro loadgen  [--requests N] [--seed S]  deterministic load benchmark of
                   [--clients N] [--output P] the service (BENCH_serve.json)
    repro tune-kernels [--gpu A100 ...]       tune per-(GPU, dtype) kernel
                   [--out DIR] [--wall]       parameter tables; --check gates
                   [--check]                  golden-table drift
    repro estimate <model> [--gpu A100]       training-step runtime + memory
                   [--tp T] [--pp P] [--json] rollup; --checkpointing
                   [--checkpointing POLICY]   {none,full,auto}; --enforce
                   [--enforce]                exits 2 on a capacity overflow
    repro list-models / list-gpus             show registries

``run``, ``bench``, ``calibrate``, ``serve``, ``loadgen``,
``tune-kernels``, and ``estimate`` accept
``--trace out.jsonl``
(stream a structured span trace) and ``--metrics`` (print the counter /
histogram summary afterwards); tracing is off — and costs nothing —
unless requested.

Run as ``python -m repro.cli`` or via the ``repro`` console script.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.core.advisor import ShapeAdvisor
from repro.core.config import get_model, list_models
from repro.core.latency import LayerLatencyModel
from repro.core.rules import RuleEngine
from repro.errors import ReproError
from repro.gpu.specs import list_gpus
from repro.harness.figures import list_experiments
from repro.harness.runner import run_experiment


def _add_gpu(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--gpu", default="A100", help="target GPU (default A100)")


def _add_observability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="stream a structured JSONL span trace to PATH "
        "(inspect with 'repro report PATH')",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the counter/gauge/histogram summary after the run",
    )


def _add_serve_config(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=2, help="worker shards (default 2)"
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="max requests coalesced per dispatch (default 64)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="per-shard queue depth cap; beyond it requests are rejected "
        "(default 256)",
    )
    parser.add_argument(
        "--linger",
        type=float,
        default=0.002,
        metavar="S",
        help="batching window in seconds (default 0.002)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry attempts per batched engine call (default 0)",
    )


#: Verbs that accept --trace/--metrics (main() wraps their dispatch).
_OBSERVABLE_COMMANDS = (
    "run", "bench", "calibrate", "serve", "loadgen", "tune-kernels",
    "estimate",
)


@contextmanager
def _observed(args: argparse.Namespace) -> Iterator[None]:
    """Install trace/metrics collection around one verb, per its flags."""
    from repro.observability import (
        TraceRecorder,
        install_recorder,
        metrics,
        reset_metrics,
    )

    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    recorder = None
    if trace_path or want_metrics:
        reset_metrics()
    if trace_path:
        recorder = TraceRecorder(path=trace_path)
        install_recorder(recorder)
    try:
        yield
    finally:
        if recorder is not None:
            install_recorder(None)
            print(f"trace: {len(recorder)} span(s) written to {trace_path}")
        if want_metrics:
            print("\nmetrics:")
            print(metrics().render_text())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hardware-aware transformer shape analysis "
        "(reproduction of Anthony et al., ICPP 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="latency breakdown of a model preset")
    p.add_argument("model")
    _add_gpu(p)
    p.add_argument("--flash", action="store_true", help="use FlashAttention")

    p = sub.add_parser("rules", help="run the sizing-rule diagnostics")
    p.add_argument("model")
    _add_gpu(p)
    p.add_argument("--pipeline-stages", type=int, default=1)

    p = sub.add_parser("advise", help="propose faster equal-size shapes")
    p.add_argument("model")
    _add_gpu(p)
    p.add_argument("--top", type=int, default=5)

    p = sub.add_parser("figure", help="regenerate one paper figure/table")
    p.add_argument("id")
    p.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    p.add_argument("--check", action="store_true", help="only print the check result")
    p.add_argument(
        "--plot", action="store_true", help="render an ASCII plot of the series"
    )
    p.add_argument(
        "--update-golden",
        action="store_true",
        help="write/refresh this experiment's golden-regression snapshot",
    )
    p.add_argument(
        "--golden-dir",
        default=None,
        metavar="DIR",
        help="snapshot directory (default tests/golden)",
    )

    sub.add_parser("figures", help="list experiment ids")
    sub.add_parser("list-models", help="list model presets")
    sub.add_parser("list-gpus", help="list GPU specs")

    p = sub.add_parser(
        "report",
        help="run every experiment and emit a markdown report, or — given "
        "a JSONL trace file — print its latency/cache/retry breakdown",
    )
    p.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="a trace file recorded with --trace; when given, summarize "
        "it instead of running experiments",
    )
    p.add_argument("--output", default="-", help="file path or '-' for stdout")
    p.add_argument(
        "--ids", nargs="*", default=None, help="subset of experiment ids"
    )

    p = sub.add_parser("gemm", help="inspect one GEMM shape on one GPU")
    p.add_argument("m", type=int)
    p.add_argument("n", type=int)
    p.add_argument("k", type=int)
    p.add_argument("--batch", type=int, default=1)
    _add_gpu(p)
    p.add_argument("--dtype", default="fp16")

    p = sub.add_parser("whatif", help="rank shape knobs by modelled payoff")
    p.add_argument("model")
    _add_gpu(p)

    p = sub.add_parser(
        "export", help="run experiments and write csv/md/plot artifacts"
    )
    p.add_argument("--dir", required=True, help="output directory")
    p.add_argument("--ids", nargs="*", default=None, help="subset of ids")

    p = sub.add_parser(
        "run",
        help="fault-tolerant experiment sweep: failures are isolated per "
        "experiment, retried with backoff, and checkpointed for --resume",
    )
    p.add_argument(
        "ids", nargs="*", help="experiment ids (default: every top-level one)"
    )
    p.add_argument(
        "--parallel", type=int, default=1, help="concurrent workers (default 1)"
    )
    p.add_argument(
        "--executor",
        choices=("thread", "process", "serial"),
        default="thread",
        help="worker pool tier; process degrades to thread then serial "
        "on pool failure (default thread)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry attempts per experiment with exponential backoff "
        "(default 0)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-attempt deadline in seconds (default: none)",
    )
    p.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="checkpoint completed experiments to this JSONL journal",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments already completed in --journal",
    )
    p.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help="JSON fault plan for chaos runs (see examples/faults/)",
    )
    _add_observability(p)

    p = sub.add_parser(
        "bench",
        help="benchmark the shape-evaluation engine (parity + cold/warm cache)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry attempts per experiment in the benchmark sweeps (default 0)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-attempt experiment deadline in seconds (default: none)",
    )
    p.add_argument(
        "--output",
        default="BENCH_engine.json",
        help="JSON output path, or '-' to skip writing (default BENCH_engine.json)",
    )
    p.add_argument(
        "--quick", action="store_true", help="smaller parity grid (CI smoke mode)"
    )
    p.add_argument(
        "--parallel",
        type=int,
        default=1,
        help="also time a warm run_all across N workers",
    )
    p.add_argument("--ids", nargs="*", default=None, help="subset of experiment ids")
    _add_observability(p)

    p = sub.add_parser(
        "lint",
        help="lint a model shape against the paper's sizing rules, "
        "or the codebase itself (--self)",
    )
    p.add_argument(
        "target",
        nargs="?",
        help="model preset name or JSON config file (omit with --self)",
    )
    p.add_argument(
        "--self",
        dest="self_lint",
        action="store_true",
        help="run the AST self-lint pass (flat walker + flow analysis) "
        "instead of shape linting",
    )
    p.add_argument(
        "--flow",
        dest="flow_lint",
        action="store_true",
        help="run only the flow-sensitive pass (CFG + dataflow: units, "
        "concurrency, observability)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="with --self/--flow: files/directories to lint (default: "
        "the installed repro package)",
    )
    _add_gpu(p)
    p.add_argument("--pipeline-stages", type=int, default=1)
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default text)",
    )
    p.add_argument(
        "--min-severity",
        choices=("ok", "info", "warning", "error"),
        default="info",
        help="hide findings below this severity (default info; "
        "'ok' also shows passing checks and capacity advisories)",
    )

    p = sub.add_parser(
        "calibrate",
        help="fit model constants to measured kernel timings (CSV: m,n,k,latency_s[,batch])",
    )
    p.add_argument("csv", help="measurement file, or '-' for stdin")
    _add_gpu(p)
    p.add_argument("--dtype", default="fp16")
    p.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="checkpoint each completed fit to this JSONL journal",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip fits already completed in --journal",
    )
    _add_observability(p)

    p = sub.add_parser(
        "serve",
        help="answer a batch of advisory queries through the dynamically-"
        "batched in-process service (JSONL advisories on stdout)",
    )
    p.add_argument(
        "--queries",
        default=None,
        metavar="FILE",
        help="query file (JSONL objects or a JSON array), or '-' for "
        "stdin; default: a built-in demo battery",
    )
    _add_serve_config(p)
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-request deadline in seconds (default: none)",
    )
    p.add_argument(
        "--listen",
        default=None,
        metavar="[HOST:]PORT",
        help="run the multi-process cluster and serve the JSONL protocol "
        "over TCP (workers become OS processes; SIGTERM drains, SIGHUP "
        "rereads --config; port 0 picks an ephemeral port)",
    )
    p.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="ServeConfig JSON file (overrides the individual flags; with "
        "--listen, SIGHUP rereads it for a hot reload)",
    )
    p.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help="JSON fault plan forwarded to every worker process "
        "(cluster chaos runs; requires --listen)",
    )
    _add_observability(p)

    p = sub.add_parser(
        "loadgen",
        help="deterministic seeded load benchmark of the advisory service "
        "(throughput, latency percentiles, coalesce ratio)",
    )
    p.add_argument(
        "--requests", type=int, default=2000, help="request count (default 2000)"
    )
    p.add_argument(
        "--unique",
        type=int,
        default=48,
        help="distinct shape pool size; requests >> unique forces heavy "
        "duplication (default 48)",
    )
    p.add_argument(
        "--clients", type=int, default=8, help="client threads (default 8)"
    )
    p.add_argument("--seed", type=int, default=0, help="traffic seed (default 0)")
    p.add_argument(
        "--gpus",
        nargs="+",
        default=["A100"],
        metavar="GPU",
        help="GPU mix for generated queries (default A100)",
    )
    p.add_argument(
        "--kernel-share",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="fraction of requests that ask kernel_params instead of a "
        "shape advisory (default 0.25)",
    )
    _add_serve_config(p)
    p.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="drive a remote 'repro serve --listen' cluster over TCP "
        "instead of an in-process server",
    )
    p.add_argument(
        "--client-procs",
        type=int,
        default=1,
        help="independent OS client processes (requires --connect; each "
        "drives a disjoint slice of the stream; default 1)",
    )
    p.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help="JSON fault plan for chaos runs (see examples/faults/)",
    )
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the bit-identical check against a fresh engine",
    )
    p.add_argument(
        "--output",
        default="BENCH_serve.json",
        help="JSON output path, or '-' to skip writing (default BENCH_serve.json)",
    )
    _add_observability(p)

    p = sub.add_parser(
        "tune-kernels",
        help="tune per-(GPU, dtype) kernel-parameter tables by batched "
        "analytical search (versioned, checksummed JSON artifacts)",
    )
    p.add_argument(
        "--gpu",
        dest="gpus",
        nargs="+",
        default=["A100"],
        metavar="GPU",
        help="GPUs to tune a table for (default A100)",
    )
    p.add_argument("--dtype", default="fp16", help="operand dtype (default fp16)")
    p.add_argument(
        "--out",
        default="kernels",
        metavar="DIR",
        help="table artifact directory (default ./kernels); point "
        "REPRO_KERNEL_TABLES here to serve from the tables",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="narrower tuning grid (CI smoke mode)",
    )
    p.add_argument(
        "--wall",
        action="store_true",
        help="after tuning, run the differential wall against the "
        "discrete-event SM simulator (Kendall-tau + top-1 floors)",
    )
    p.add_argument(
        "--wall-seed", type=int, default=0, help="validation-shape seed"
    )
    p.add_argument(
        "--wall-count", type=int, default=12, help="validation shapes per GPU"
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="gate instead of write: re-tune and diff against the stored "
        "tables in --out, exiting 1 with a ranked explanation on drift",
    )
    p.add_argument(
        "--update-golden",
        action="store_true",
        help="rewrite the stored tables after an intentional model change "
        "(same as the default write mode; spelled out for CI scripts)",
    )
    _add_observability(p)

    p = sub.add_parser(
        "estimate",
        help="training-step runtime + memory rollup (fwd/bwd/optimizer "
        "phases, per-module table, peak-memory timeline)",
    )
    p.add_argument("model", help="model preset name")
    _add_gpu(p)
    p.add_argument("--dtype", default="fp16", help="operand dtype (default fp16)")
    p.add_argument(
        "--tp", type=int, default=None, metavar="T",
        help="tensor-parallel degree (default: the preset's)",
    )
    p.add_argument(
        "--pp", type=int, default=1, metavar="P",
        help="pipeline stages for the memory timeline (default 1)",
    )
    p.add_argument(
        "--microbatch", type=int, default=None, metavar="B",
        help="override the preset's microbatch size",
    )
    p.add_argument(
        "--checkpointing",
        choices=("none", "full", "auto"),
        default="none",
        help="activation checkpointing policy; 'auto' picks 'none' when "
        "the step fits the GPU and falls back to 'full' (default none)",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the estimate as JSON"
    )
    p.add_argument(
        "--enforce",
        action="store_true",
        help="exit 2 with a typed capacity error naming the overflowing "
        "phase if the chosen policy does not fit the GPU",
    )
    _add_observability(p)
    return parser


def cmd_analyze(args: argparse.Namespace) -> int:
    cfg = get_model(args.model)
    model = LayerLatencyModel(args.gpu, flash_attention=args.flash)
    bd = model.model_breakdown(cfg)
    print(cfg.describe())
    print(f"target: {args.gpu}" + (" + FlashAttention" if args.flash else ""))
    print()
    print(bd.summary())
    print(
        f"\ntokens/s: {model.tokens_per_second(cfg):,.0f}   "
        f"MFU: {100 * model.mfu(cfg):.1f}%"
    )
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    cfg = get_model(args.model)
    engine = RuleEngine(args.gpu)
    print(engine.report(cfg, pipeline_stages=args.pipeline_stages))
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    cfg = get_model(args.model)
    advisor = ShapeAdvisor(args.gpu)
    proposals = advisor.propose(cfg, top=args.top)
    print(f"baseline: {cfg.describe()}")
    if not proposals:
        print("no qualifying proposals")
        return 0
    for i, prop in enumerate(proposals, 1):
        print(f"\n#{i}: {prop.describe()}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    report = run_experiment(args.id)
    if args.update_golden:
        from repro.harness.golden import DEFAULT_GOLDEN_DIR, write_snapshot

        path = write_snapshot(report, args.golden_dir or DEFAULT_GOLDEN_DIR)
        print(f"wrote golden snapshot {path}")
        return 0 if report.passed else 1
    if args.check:
        print(("PASS: " if report.passed else "FAIL: ") + report.check.details)
    elif args.csv:
        print(report.table.to_csv(), end="")
    elif args.plot:
        from repro.harness.ascii_plot import plot_experiment

        print(plot_experiment(args.id, report.table))
        print(f"\ncheck: {'PASS' if report.passed else 'FAIL'}")
    else:
        print(report.render())
    return 0 if report.passed else 1


def cmd_figures(_args: argparse.Namespace) -> int:
    for exp in list_experiments():
        print(exp.describe())
    return 0


def cmd_list_models(_args: argparse.Namespace) -> int:
    for cfg in list_models():
        print(cfg.describe())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.trace is not None:
        from repro.errors import ConfigError
        from repro.observability import render_trace_report

        try:
            text = render_trace_report(args.trace)
        except OSError as exc:
            raise ConfigError(f"cannot read trace {args.trace}: {exc}") from exc
        if args.output == "-":
            print(text)
        else:
            with open(args.output, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.output}")
        return 0

    from repro.harness.runner import run_all, to_markdown_report

    reports = run_all(args.ids)
    text = to_markdown_report(reports)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    return 0 if all(r.passed for r in reports) else 1


def cmd_gemm(args: argparse.Namespace) -> int:
    from repro.gpu.alignment import largest_pow2_divisor
    from repro.gpu.gemm_model import GemmModel
    from repro.gpu.roofline import RooflinePoint
    from repro.gpu.tiles import candidate_tiles, tile_score
    from repro.types import DType

    dtype = DType.parse(args.dtype)
    model = GemmModel(args.gpu, dtype)
    perf = model.evaluate(args.m, args.n, args.k, batch=args.batch)
    print(perf.describe())
    point = RooflinePoint.for_gemm(
        args.m, args.n, args.k, model.spec, dtype, batch=args.batch
    )
    print(
        f"roofline: intensity {point.intensity:.1f} FLOP/B, "
        f"attainable {point.attainable_tflops:.1f} TFLOP/s ({point.bound}-bound)"
    )
    print(
        "alignment: pow2(m, n, k) = "
        f"({largest_pow2_divisor(args.m)}, {largest_pow2_divisor(args.n)}, "
        f"{largest_pow2_divisor(args.k)}); efficiency {perf.alignment_eff:.2f}"
    )
    print(
        f"grid: {perf.blocks} blocks, {perf.waves} waves of "
        f"{model.spec.num_sms} SMs (wave efficiency {perf.wave_eff:.2f}, "
        f"tile waste {100 * perf.tile_waste:.1f}%)"
    )
    print("\ntile candidates (model's relative compute scores, lower wins):")
    scores = [
        (tile_score(t, args.m, args.n, args.k, model.spec, dtype, args.batch), t)
        for t in candidate_tiles(model.spec, dtype)
    ]
    best = min(s for s, _ in scores)
    for score, tile in sorted(scores, key=lambda st: (st[0], st[1].name)):
        mark = " <- selected" if tile == perf.tile else ""
        print(f"  {tile.name:<8} {score / best:7.2f}x{mark}")
    return 0


def cmd_whatif(args: argparse.Namespace) -> int:
    from repro.core.whatif import WhatIfAnalyzer

    cfg = get_model(args.model)
    print(WhatIfAnalyzer(args.gpu).report(cfg))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.harness.export import export_all

    written = export_all(args.dir, ids=args.ids)
    print(f"wrote {len(written)} files under {args.dir}")
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.calibration.fit import MeasuredGemm, run_calibration
    from repro.errors import CalibrationError, ConfigError
    from repro.resilience import SweepJournal

    if args.resume and not args.journal:
        raise ConfigError("--resume requires --journal PATH")

    if args.csv == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            with open(args.csv) as fh:
                lines = fh.read().splitlines()
        except OSError as exc:
            raise CalibrationError(f"cannot read {args.csv}: {exc}") from exc
    samples = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line or line.startswith("#") or line.lower().startswith("m,"):
            continue
        parts = [p.strip() for p in line.split(",")]
        if len(parts) not in (4, 5):
            raise CalibrationError(
                f"line {lineno}: expected m,n,k,latency_s[,batch], got {line!r}"
            )
        m, n, k = (int(p) for p in parts[:3])
        latency = float(parts[3])
        batch = int(parts[4]) if len(parts) == 5 else 1
        samples.append(MeasuredGemm(m=m, n=n, k=k, latency_s=latency, batch=batch))
    print(f"loaded {len(samples)} measurements")

    journal = None
    if args.journal:
        journal = SweepJournal(
            args.journal,
            sweep_id=f"calibrate:{args.gpu}:{args.dtype}",
            resume=args.resume,
        )
        if args.resume and journal.completed():
            print(f"resuming: {journal.describe()}")
    results = run_calibration(
        samples, gpu=args.gpu, dtype=args.dtype, journal=journal
    )
    for res in results:
        print(
            f"{res.name:<28} = {res.value:.3f}  "
            f"(rms relative error {100 * res.rms_rel_error:.1f}% "
            f"over {res.samples} samples)"
        )
    print(
        "\napply with: GemmModel(gpu, bw_efficiency=...) and "
        "repro.gpu.alignment._EFF_AT_MIN"
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.bench import render_bench, run_bench, write_bench

    record = run_bench(
        ids=args.ids,
        parallel=args.parallel,
        quick=args.quick,
        retries=args.retries,
        timeout_s=args.timeout,
    )
    print(render_bench(record))
    if args.output != "-":
        write_bench(record, args.output)
        print(f"wrote {args.output}")
    return 0 if record["passed"] else 1


def cmd_run(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.harness.figures import list_experiments
    from repro.harness.runner import (
        run_all_resilient,
        summary,
        sweep_journal,
        validate_ids,
    )
    from repro.resilience import FaultPlan, clear_plan, install_plan

    if args.resume and not args.journal:
        raise ConfigError("--resume requires --journal PATH")
    ids = (
        validate_ids(args.ids)
        if args.ids
        else [e.id for e in list_experiments()]
    )
    journal = None
    if args.journal:
        journal = sweep_journal(args.journal, ids, resume=args.resume)
        if args.resume and journal.completed():
            print(f"resuming: {journal.describe()}")

    plan = None
    if args.inject_faults:
        plan = FaultPlan.load(args.inject_faults)
        install_plan(plan)
        print(
            f"chaos mode: {len(plan.specs)} fault spec(s) from "
            f"{args.inject_faults} (seed {plan.seed})"
        )
    try:
        result = run_all_resilient(
            ids,
            parallel=args.parallel,
            executor=args.executor,
            retries=args.retries,
            timeout_s=args.timeout,
            journal=journal,
        )
    finally:
        if plan is not None:
            clear_plan()

    print(summary(result.reports))
    if result.skipped:
        print(
            f"resumed: {len(result.skipped)} experiment(s) restored from "
            f"journal, {len(result.outcomes)} executed"
        )
    for from_tier, to_tier, reason in result.downgrades:
        print(f"executor downgraded {from_tier} -> {to_tier}: {reason}")
    if plan is not None:
        print(f"chaos: {plan.fired()} injected fault(s) fired")
    return 0 if result.passed else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import Severity, SelfLinter, ShapeLinter, load_targets
    from repro.errors import ConfigError

    min_severity = {
        "ok": Severity.OK,
        "info": Severity.INFO,
        "warning": Severity.WARNING,
        "error": Severity.ERROR,
    }[args.min_severity]

    if args.self_lint or args.flow_lint:
        from repro.analysis.flow import FlowLinter

        if args.target is not None:
            # With --self/--flow the positional slot is a path.
            args.paths = [args.target] + list(args.paths)
        paths = args.paths or None
        if args.flow_lint and not args.self_lint:
            report = FlowLinter().lint(paths)
        else:
            # --self runs both prongs: the flat walker and the
            # flow-sensitive pass share one report (and exit code).
            report = SelfLinter().lint(paths)
            report.extend(FlowLinter().lint(paths).diagnostics)
    else:
        if args.target is None:
            raise ConfigError(
                "lint needs a model preset or JSON config (or --self/--flow)"
            )
        if args.paths:
            raise ConfigError(
                "extra positional arguments are only valid with --self"
            )
        linter = ShapeLinter(args.gpu)
        configs = load_targets(args.target)
        if len(configs) == 1:
            report = linter.lint(configs[0], pipeline_stages=args.pipeline_stages)
        else:
            report = linter.lint_grid(
                configs, pipeline_stages=args.pipeline_stages
            )

    if args.format == "json":
        print(report.to_json(min_severity))
    elif args.format == "sarif":
        print(report.to_sarif(min_severity))
    else:
        print(report.render_text(min_severity))
    return report.exit_code


def _serve_config(args: argparse.Namespace) -> "ServeConfig":  # noqa: F821
    from repro.serve import ServeConfig

    return ServeConfig(
        workers=args.workers,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        linger_s=args.linger,
        deadline_s=getattr(args, "deadline", None),
        retries=args.retries,
    )


#: ``repro serve`` demo battery: the paper's flagship shapes plus a
#: misaligned one and a lint verdict, exercising every query kind.
_DEMO_QUERIES = (
    {"kind": "evaluate", "m": 4096, "n": 4096, "k": 4096},
    {"kind": "latency", "m": 2048, "n": 8192, "k": 8192, "gpu": "H100"},
    {"kind": "tflops", "m": 1000, "n": 1111, "k": 2049},
    {"kind": "latency", "m": 4096, "n": 4096, "k": 4096},
    {"kind": "kernel_params", "m": 4096, "n": 4096, "k": 4096},
    {"kind": "lint", "model": "gpt3-2.7b"},
)


def _cluster_serve_config(args: argparse.Namespace) -> "ServeConfig":  # noqa: F821
    """Cluster config: --config file wins, else the individual flags."""
    from repro.errors import ConfigError
    from repro.serve import ServeConfig

    if args.config:
        try:
            with open(args.config) as fh:
                text = fh.read()
        except OSError as exc:
            raise ConfigError(
                f"cannot read serve config {args.config}: {exc}"
            ) from exc
        return ServeConfig.from_json(text)
    return _serve_config(args)


def _cmd_serve_listen(args: argparse.Namespace) -> int:
    """``repro serve --listen``: the multi-process cluster front-end."""
    from repro.serve import ServeConfig  # noqa: F401 - config type below
    from repro.serve.cluster import ClusterServer
    from repro.serve.loadgen import _parse_address

    listen = args.listen
    host, port = (
        _parse_address(listen) if ":" in listen else ("127.0.0.1", int(listen))
    )
    config = _cluster_serve_config(args)

    def announce(bound_port: int) -> None:
        print(
            f"cluster: listening on {host}:{bound_port} "
            f"({config.describe()})",
            file=sys.stderr,
            flush=True,
        )

    server = ClusterServer(
        config,
        host=host or "127.0.0.1",
        port=port,
        config_path=args.config,
        fault_plan_path=args.inject_faults,
        on_bound=announce,
    )
    server.serve_forever(install_signals=True)
    stats = server.supervisor.cluster_stats()
    print(
        f"cluster: drained ({stats['restarts']} restart(s), "
        f"{stats['shed']} shed, {stats['degraded']} degraded)",
        file=sys.stderr,
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError, QueueFullError
    from repro.serve import Advisory, AdvisoryServer, ShapeQuery

    import json as _json

    if args.listen is not None:
        try:
            return _cmd_serve_listen(args)
        except ValueError as exc:
            raise ConfigError(f"bad --listen address: {exc}") from exc
    if args.queries is None:
        raw_queries = list(_DEMO_QUERIES)
    else:
        if args.queries == "-":
            text = sys.stdin.read()
        else:
            try:
                with open(args.queries) as fh:
                    text = fh.read()
            except OSError as exc:
                raise ConfigError(
                    f"cannot read queries {args.queries}: {exc}"
                ) from exc
        stripped = text.strip()
        if not stripped:
            raise ConfigError("query file is empty")
        try:
            if stripped.startswith("["):
                raw_queries = _json.loads(stripped)
            else:
                raw_queries = [
                    _json.loads(line)
                    for line in stripped.splitlines()
                    if line.strip()
                ]
        except ValueError as exc:
            raise ConfigError(f"bad query JSON: {exc}") from exc
    queries = [ShapeQuery.from_dict(raw) for raw in raw_queries]

    bad = 0
    with AdvisoryServer(_serve_config(args)) as server:
        # Submit everything before gathering so concurrent queries can
        # coalesce into shared engine calls.
        futures = []
        for query in queries:
            try:
                futures.append(server.submit(query))
            except QueueFullError as exc:
                futures.append(
                    Advisory(
                        query=query,
                        status="rejected",
                        error=str(exc),
                        error_type=type(exc).__name__,
                    )
                )
        for item in futures:
            advisory = item if isinstance(item, Advisory) else item.result()
            if not advisory.ok:
                bad += 1
            print(advisory.to_json())
        stats = server.stats()
    print(stats.describe(), file=sys.stderr)
    return 1 if bad else 0


def _cmd_loadgen_connect(args: argparse.Namespace) -> "LoadReport":  # noqa: F821
    """``repro loadgen --connect``: drive a remote cluster over TCP."""
    from repro.serve import (
        SocketTransport,
        generate_queries,
        run_load,
        run_load_processes,
    )
    from repro.serve.loadgen import _parse_address

    if args.client_procs > 1:
        return run_load_processes(
            args.connect,
            args.requests,
            procs=args.client_procs,
            clients=args.clients,
            seed=args.seed,
            unique=args.unique,
            gpus=args.gpus,
            kernel_share=args.kernel_share,
            verify=not args.no_verify,
        )
    host, port = _parse_address(args.connect)
    queries = generate_queries(
        args.requests, seed=args.seed, unique=args.unique, gpus=args.gpus,
        kernel_share=args.kernel_share,
    )
    with SocketTransport(host=host, port=port) as transport:
        return run_load(
            transport,
            queries,
            clients=args.clients,
            seed=args.seed,
            verify=not args.no_verify,
        )


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.resilience import FaultPlan, clear_plan, install_plan
    from repro.serve import (
        AdvisoryServer,
        generate_queries,
        render_load,
        run_load,
        write_load,
    )

    if args.client_procs > 1 and not args.connect:
        raise ConfigError("--client-procs needs --connect (a remote cluster)")
    plan = None
    if args.inject_faults:
        plan = FaultPlan.load(args.inject_faults)
        install_plan(plan)
        print(
            f"chaos mode: {len(plan.specs)} fault spec(s) from "
            f"{args.inject_faults} (seed {plan.seed})"
        )
    try:
        if args.connect:
            report = _cmd_loadgen_connect(args)
        else:
            queries = generate_queries(
                args.requests, seed=args.seed, unique=args.unique,
                gpus=args.gpus, kernel_share=args.kernel_share,
            )
            with AdvisoryServer(_serve_config(args)) as server:
                report = run_load(
                    server,
                    queries,
                    clients=args.clients,
                    seed=args.seed,
                    verify=not args.no_verify,
                )
    finally:
        if plan is not None:
            clear_plan()
    print(render_load(report))
    if plan is not None:
        print(f"chaos: {plan.fired()} injected fault(s) fired")
    if args.output != "-":
        write_load(report, args.output)
        print(f"wrote {args.output}")
    return 0 if report.passed else 1


def cmd_tune_kernels(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import KernelTableError
    from repro.kernels import (
        TUNE_DIMS,
        TUNE_DIMS_QUICK,
        KernelTable,
        compare_tables,
        run_wall,
        tune_table,
    )

    dims = TUNE_DIMS_QUICK if args.quick else TUNE_DIMS
    out = Path(args.out)
    failures = 0
    for gpu in args.gpus:
        table = tune_table(gpu, args.dtype, dims=dims)
        path = out / f"{table.gpu}-{table.dtype}.json"
        if args.check:
            try:
                stored = KernelTable.from_json(path.read_text())
            except OSError as exc:
                raise KernelTableError(
                    f"no stored table to check at {path} "
                    f"(tune one first): {exc}"
                ) from exc
            diffs = compare_tables(stored, table)
            if diffs:
                failures += 1
                print(f"{path}: DRIFT ({len(diffs)} difference(s))")
                for line in diffs:
                    print(f"  {line}")
            else:
                print(f"{path}: ok ({stored.describe()})")
        else:
            out.mkdir(parents=True, exist_ok=True)
            path.write_text(table.to_json())
            print(f"wrote {path} ({table.describe()})")
        if args.wall:
            report = run_wall(
                table, seed=args.wall_seed, count=args.wall_count
            )
            print(report.describe())
            if not report.passed:
                failures += 1
    return 1 if failures else 0


def cmd_list_gpus(_args: argparse.Namespace) -> int:
    for spec in list_gpus():
        print(
            f"{spec.name:<10} {spec.vendor:<7} {spec.num_sms:>3} SMs  "
            f"{spec.mem_bw_gbs:>6.0f} GB/s  "
            f"align {spec.tc_align_bytes}B"
        )
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    import json as _json

    from repro.core.memory import MemoryBudget
    from repro.trainstep import (
        TrainStepEstimator,
        estimate_memory,
        estimate_to_json,
        render_estimate,
    )

    overrides = {}
    if args.tp is not None:
        overrides["tp_degree"] = args.tp
    if args.microbatch is not None:
        overrides["microbatch"] = args.microbatch
    cfg = get_model(args.model, **overrides)
    budget = MemoryBudget.for_gpu(args.gpu)
    policy = args.checkpointing
    if policy == "auto":
        # Checkpointing only ever costs time, so prefer "none" and fall
        # back to "full" when the activations alone blow the budget.
        probe = estimate_memory(cfg, pipeline_stages=args.pp, checkpointing="none")
        policy = "none" if probe.fits(budget) else "full"
    estimator = TrainStepEstimator(gpu=args.gpu, dtype=args.dtype)
    est = estimator.estimate(cfg, pipeline_stages=args.pp, checkpointing=policy)
    if args.enforce:
        est.memory.require_fits(budget)
    if args.json:
        print(_json.dumps(estimate_to_json(est), indent=2))
    else:
        print(render_estimate(est))
        if not est.memory.fits(budget):
            print(
                f"\nWARNING: peak {est.memory.peak_bytes / 1e9:.1f} GB "
                f"({est.memory.peak_phase}) exceeds the "
                f"{budget.usable_bytes / 1e9:.1f} GB usable on {est.gpu}; "
                "raise --tp/--pp or try --checkpointing full"
            )
    return 0


_COMMANDS = {
    "analyze": cmd_analyze,
    "rules": cmd_rules,
    "advise": cmd_advise,
    "figure": cmd_figure,
    "figures": cmd_figures,
    "list-models": cmd_list_models,
    "list-gpus": cmd_list_gpus,
    "report": cmd_report,
    "gemm": cmd_gemm,
    "whatif": cmd_whatif,
    "export": cmd_export,
    "run": cmd_run,
    "bench": cmd_bench,
    "calibrate": cmd_calibrate,
    "lint": cmd_lint,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
    "tune-kernels": cmd_tune_kernels,
    "estimate": cmd_estimate,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command in _OBSERVABLE_COMMANDS:
            with _observed(args):
                return _COMMANDS[args.command](args)
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
