"""Whole-train-step runtime estimator, priced through ONE grid call.

The estimator expands a configuration's training step — every forward
GEMM, its mechanically-derived dgrad/wgrad pair, and (under full
checkpointing) the recompute pass — into a single columnar
:class:`~repro.engine.grid.ShapeGrid` with ``module`` / ``phase`` /
``count`` annotation columns, prices the whole grid in **one**
:meth:`~repro.engine.core.ShapeEngine.evaluate_grid` call, and rolls
the result up per phase and per module with NumPy reductions.  No
scalar engine call and no per-shape Python loop exists on this path
(the self-lint's ``engine-eval-in-loop`` rule enforces it), which is
what makes the differential wall (:mod:`repro.trainstep.wall`) able to
demand bit-identical totals against a per-record scalar accumulation.

The optimizer phase is not a GEMM: it is priced as one streaming pass
over the rank's unique parameter elements at
:data:`ADAM_TRAFFIC_BYTES_PER_PARAM` bytes each (the same traffic model
as :mod:`repro.core.training`), with FLOPs from
:data:`repro.transformer.trace.ADAM_FLOPS_PER_PARAM` so the whole-step
flop conservation law covers it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import TransformerConfig
from repro.core.gemms import backward_gemms_for, layer_gemms, logit_gemm
from repro.engine.core import ShapeEngine, default_engine
from repro.engine.grid import ShapeGrid
from repro.errors import ConfigError
from repro.gpu.specs import GPUSpec, get_gpu
from repro.observability import span as _span
from repro.trainstep.memory import TrainStepMemory, estimate_memory
from repro.transformer.trace import ADAM_FLOPS_PER_PARAM
from repro.types import DType, teraflops

#: Phase labels, in step-execution order (recompute only under
#: ``checkpointing="full"``).
PHASE_FORWARD = "forward"
PHASE_BACKWARD = "backward"
PHASE_RECOMPUTE = "recompute"
PHASE_OPTIMIZER = "optimizer"

#: Bytes of optimizer traffic per parameter for mixed-precision Adam:
#: read+write fp32 master weight, m, v (6 x 4 B) plus the fp16 weight
#: write and gradient read (2 x 2 B).  Mirrors
#: ``repro.core.training._ADAM_BYTES_PER_PARAM``.
ADAM_TRAFFIC_BYTES_PER_PARAM = 28

#: Achievable fraction of peak HBM bandwidth for streaming pointwise
#: passes (mirrors ``repro.core.training._POINTWISE_BW_EFFICIENCY``).
POINTWISE_BW_EFFICIENCY = 0.75


def training_grid(
    cfg: TransformerConfig, checkpointing: str = "none"
) -> ShapeGrid:
    """The whole training step as one annotated shape grid.

    One row per distinct (module, phase) GEMM with a ``count`` column
    carrying its per-step repetition (L for layer operators, 1 for the
    logit triple).  Row order is deterministic — forward layer ops,
    their backward pairs, the optional recompute pass, then the logit
    triple — and the differential wall relies on it: both the grid path
    and the scalar path reduce the same row order with the same
    ``np.sum``, so equal per-row latencies force bit-identical totals.
    """
    if checkpointing not in ("none", "full"):
        raise ConfigError(
            f"unknown checkpointing policy {checkpointing!r} "
            "(choose 'none' or 'full')"
        )
    per_layer = layer_gemms(cfg)
    L = cfg.num_layers
    modules: List[str] = []
    phases: List[str] = []
    counts: List[int] = []
    shapes: List[Tuple[int, int, int, int]] = []

    def add(op, phase: str, count: int) -> None:
        modules.append(op.module)
        phases.append(phase)
        counts.append(count)
        shapes.append((op.batch, op.m, op.n, op.k))

    for op in per_layer:
        add(op, PHASE_FORWARD, L)
    for op in per_layer:
        for bop in backward_gemms_for(op):
            add(bop, PHASE_BACKWARD, L)
    if checkpointing == "full":
        # Recompute re-executes every layer forward GEMM once during
        # backward; the logit/embedding are never checkpointed.
        for op in per_layer:
            add(op, PHASE_RECOMPUTE, L)
    logit = logit_gemm(cfg)
    add(logit, PHASE_FORWARD, 1)
    for bop in backward_gemms_for(logit):
        add(bop, PHASE_BACKWARD, 1)

    arr = np.asarray(shapes, dtype=np.int64)
    return ShapeGrid.from_columns(
        batch=arr[:, 0],
        m=arr[:, 1],
        n=arr[:, 2],
        k=arr[:, 3],
        module=np.array(modules),
        phase=np.array(phases),
        count=np.asarray(counts, dtype=np.int64),
    )


@dataclass(frozen=True)
class PhaseCost:
    """Runtime + FLOPs of one training-step phase on one rank.

    ``seconds`` is modelled wall-clock time [s]; ``flops`` is the
    multiply-add count (dimensionless work, not a rate).
    """

    phase: str
    seconds: float
    flops: int


@dataclass(frozen=True)
class ModuleCost:
    """Per-module runtime rollup (dgrad/wgrad folded into the base
    module label)."""

    module: str
    forward_s: float
    backward_s: float
    recompute_s: float
    flops: int

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s + self.recompute_s


@dataclass(frozen=True)
class TrainStepEstimate:
    """One rank's modelled training step: runtime phases, per-module
    rollup, and the memory timeline."""

    model: str
    gpu: str
    dtype: str
    tp: int
    pipeline_stages: int
    checkpointing: str
    tokens: int
    phases: Tuple[PhaseCost, ...]
    modules: Tuple[ModuleCost, ...]
    memory: TrainStepMemory

    def phase(self, name: str) -> PhaseCost:
        for p in self.phases:
            if p.phase == name:
                return p
        raise KeyError(f"unknown phase {name!r}")

    @property
    def phase_names(self) -> Tuple[str, ...]:
        return tuple(p.phase for p in self.phases)

    @property
    def total_s(self) -> float:
        return sum(p.seconds for p in self.phases)

    @property
    def gemm_s(self) -> float:
        return sum(
            p.seconds for p in self.phases if p.phase != PHASE_OPTIMIZER
        )

    @property
    def flops(self) -> int:
        return sum(p.flops for p in self.phases)

    @property
    def tokens_per_second(self) -> float:
        return self.tokens / self.total_s if self.total_s else 0.0

    @property
    def tflops(self) -> float:
        return teraflops(self.flops, self.total_s) if self.total_s else 0.0

    @property
    def backward_to_forward_flops(self) -> float:  # unit: dimensionless
        """Backward/forward FLOP ratio (exactly 2.0 for pure GEMM nets)."""
        fwd = self.phase(PHASE_FORWARD).flops
        return self.phase(PHASE_BACKWARD).flops / fwd if fwd else 0.0


class TrainStepEstimator:
    """Prices one training step per (t, p) rank via the batch engine."""

    def __init__(
        self,
        gpu: "str | GPUSpec" = "A100",
        dtype: "str | DType" = DType.FP16,
        engine: Optional[ShapeEngine] = None,
    ) -> None:
        self.spec = get_gpu(gpu)
        self.dtype = DType.parse(dtype)
        self._engine = engine

    @property
    def engine(self) -> ShapeEngine:
        return self._engine if self._engine is not None else default_engine()

    def optimizer_cost(self, memory: TrainStepMemory) -> PhaseCost:
        """The Adam update as one bandwidth-bound streaming pass over
        the rank's unique (tied-dedup) parameter elements."""
        elems = memory.parameter_elements
        bw = self.spec.mem_bw_bytes_per_s() * POINTWISE_BW_EFFICIENCY
        return PhaseCost(
            phase=PHASE_OPTIMIZER,
            seconds=elems * ADAM_TRAFFIC_BYTES_PER_PARAM / bw,
            flops=int(round(elems * ADAM_FLOPS_PER_PARAM)),
        )

    def estimate(
        self,
        cfg: TransformerConfig,
        pipeline_stages: int = 1,
        checkpointing: str = "none",
    ) -> TrainStepEstimate:
        """One rank's step at ``cfg.tp_degree`` tensor parallelism.

        Runtime phases cover the whole model's GEMMs executed serially
        on one rank (the planner layers its pipeline schedule on top);
        the memory timeline models the heaviest stage under
        ``(cfg.tp_degree, pipeline_stages)``.
        """
        with _span(
            "trainstep.estimate",
            model=cfg.name,
            gpu=self.spec.name,
            checkpointing=checkpointing,
        ) as sp:
            grid = training_grid(cfg, checkpointing)
            result = self.engine.evaluate_grid(grid, self.spec, self.dtype)
            latency = np.asarray(result.batch.latency_s, dtype=np.float64)
            counts = grid.column("count")
            seconds = latency * counts.astype(np.float64)
            flops = (
                2
                * grid.column("batch")
                * grid.column("m")
                * grid.column("n")
                * grid.column("k")
                * counts
            )
            phase_col = grid.column("phase")

            memory = estimate_memory(
                cfg,
                pipeline_stages=pipeline_stages,
                checkpointing=checkpointing,
            )
            phases: List[PhaseCost] = []
            order = [PHASE_FORWARD, PHASE_BACKWARD]
            if checkpointing == "full":
                order.append(PHASE_RECOMPUTE)
            for name in order:
                mask = phase_col == name
                phases.append(
                    PhaseCost(
                        phase=name,
                        seconds=float(np.sum(seconds[mask])),
                        flops=int(np.sum(flops[mask])),
                    )
                )
            phases.append(self.optimizer_cost(memory))

            modules = _module_rollup(grid, seconds, flops)
            sp.set(
                rows=len(grid),
                total_s=sum(p.seconds for p in phases),
            )
            return TrainStepEstimate(
                model=cfg.name,
                gpu=self.spec.name,
                dtype=self.dtype.name,
                tp=cfg.tp_degree,
                pipeline_stages=pipeline_stages,
                checkpointing=checkpointing,
                tokens=cfg.tokens_per_microbatch,
                phases=tuple(phases),
                modules=modules,
                memory=memory,
            )


def _module_rollup(
    grid: ShapeGrid, seconds: np.ndarray, flops: np.ndarray
) -> Tuple[ModuleCost, ...]:
    """Group per-row costs by base module, preserving first appearance."""
    base = np.array([m.split(".")[0] for m in grid.column("module").tolist()])
    phase_col = grid.column("phase")
    rollup: Dict[str, List[float]] = {}
    for name in base.tolist():
        rollup.setdefault(name, [0.0, 0.0, 0.0, 0.0])
    for name in rollup:
        mine = base == name
        rollup[name][0] = float(np.sum(seconds[mine & (phase_col == PHASE_FORWARD)]))
        rollup[name][1] = float(np.sum(seconds[mine & (phase_col == PHASE_BACKWARD)]))
        rollup[name][2] = float(
            np.sum(seconds[mine & (phase_col == PHASE_RECOMPUTE)])
        )
        rollup[name][3] = float(np.sum(flops[mine]))
    return tuple(
        ModuleCost(
            module=name,
            forward_s=vals[0],
            backward_s=vals[1],
            recompute_s=vals[2],
            flops=int(vals[3]),
        )
        for name, vals in rollup.items()
    )
