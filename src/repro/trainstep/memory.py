"""Per-module, per-phase peak-memory model for one training step.

Where :func:`repro.core.memory.training_bytes` answers "how many bytes,
roughly" with one aggregate, this module does the accounting the
planner's capacity wall needs:

- **per module** — every learned tensor is attributed to the module
  label the GEMM trace uses (``qkv_transform``, ``mlp_h_to_4h``, ...),
  with parameter, gradient, optimizer-state, activation, and KV-cache
  bytes per (t, p) rank,
- **per phase** — the rolled-up residency of the ``forward`` /
  ``backward`` / ``optimizer`` phases, so an OOM rejection can *name*
  the overflowing phase instead of one opaque total,
- **under a checkpointing policy** — ``"none"`` stores every per-layer
  activation; ``"full"`` keeps only the 2sbh/t layer-boundary tensors
  plus one live layer's activations during recomputation.

Accounting identities (pinned by the conservation-law suite):

- the tied-dedup module walk sums *exactly* to ``cfg.param_count()``
  (the tied logit projection weight IS the embedding table and is
  counted once — see :func:`module_param_elements`),
- for the classic GPT block the per-module activation walk sums exactly
  to Korthikanti's ``(34 s b h + 5 a s^2 b) / t`` per-layer coefficient
  (:func:`repro.core.memory.activation_bytes_per_layer`),
- peak memory is monotone non-increasing in both t and p, and
  checkpointing never increases it.

Mixed-precision Adam residency per parameter element: fp16 weight (2 B)
+ fp16 gradient (2 B) + fp32 master weight, m, v (12 B) = 16 B, matching
:data:`repro.core.memory.ADAM_STATE_BYTES_PER_PARAM`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.config import TransformerConfig
from repro.core.memory import ADAM_STATE_BYTES_PER_PARAM, MemoryBudget
from repro.errors import CapacityError, ConfigError

#: fp16 storage of the live weight / gradient, bytes per element.
PARAM_BYTES = 2
GRADIENT_BYTES = 2
#: fp32 Adam master weight + first and second moments, bytes per element.
OPTIMIZER_STATE_BYTES = ADAM_STATE_BYTES_PER_PARAM - PARAM_BYTES - GRADIENT_BYTES

#: Phase timeline of one training step, in execution order.
PHASES = ("forward", "backward", "optimizer")

#: Supported activation-checkpointing policies.
CHECKPOINTING_POLICIES = ("none", "full")

#: Synthetic module label holding the stored layer-boundary activations
#: under full checkpointing.
BOUNDARY_MODULE = "layer_boundary"


def _check_sharding(t: int, p: int) -> None:
    if t <= 0 or p <= 0:
        raise ConfigError(f"tp and pipeline_stages must be positive, got ({t}, {p})")


def _check_policy(checkpointing: str) -> None:
    if checkpointing not in CHECKPOINTING_POLICIES:
        raise ConfigError(
            f"unknown checkpointing policy {checkpointing!r} "
            f"(choose from {CHECKPOINTING_POLICIES})"
        )


def embedding_elements(cfg: TransformerConfig) -> int:
    """Learned elements of the (tied) embedding: ``(v + s) h``, with
    ``s = 0`` for non-learned positional embeddings."""
    s_pos = cfg.seq_len if cfg.positional == "learned" else 0
    return (cfg.vocab_size + s_pos) * cfg.hidden_size


def module_param_elements(
    cfg: TransformerConfig, dedup_tied: bool = True
) -> Dict[str, int]:
    """Learned elements per module label for the whole unsharded model.

    With ``dedup_tied`` (the default) the ``logit`` entry is zero — its
    ``(h, v)`` weight *is* the tied embedding table, already counted
    under ``embedding`` — and the values sum exactly to
    ``cfg.param_count()``.  ``dedup_tied=False`` is the naive
    GEMM-operand walk that counts the tied weight twice (the historical
    planner bug this module exists to make visible: under tensor
    parallelism it inflates every rank by ``v*h/t`` extra elements).
    """
    h, L, d = cfg.hidden_size, cfg.num_layers, cfg.d_ff
    kv = cfg.kv_dim
    out: Dict[str, int] = {"embedding": embedding_elements(cfg)}
    layer: Dict[str, int] = {
        # Q weight + bias, K/V weights + biases (GQA-narrowed).
        "qkv_transform": h * (h + 2 * kv) + h + 2 * kv,
        "attention_projection": h * h + h,
        # Two pre-norms, gamma + beta each.
        "layernorm": 4 * h,
    }
    if cfg.num_experts is not None:
        E = cfg.num_experts
        layer["moe_router"] = h * E
        if cfg.mlp_kind == "swiglu":
            layer["moe_mlp_gate"] = E * h * d
            layer["moe_mlp_up"] = E * h * d
            layer["moe_mlp_down"] = E * d * h
        else:
            layer["moe_mlp_h_to_4h"] = E * (h * d + d)
            layer["moe_mlp_4h_to_h"] = E * (d * h + h)
    elif cfg.mlp_kind == "swiglu":
        layer["mlp_gate"] = h * d
        layer["mlp_up"] = h * d
        layer["mlp_down"] = d * h
    else:
        layer["mlp_h_to_4h"] = h * d + d
        layer["mlp_4h_to_h"] = d * h + h
    for name, elems in layer.items():
        out[name] = elems * L
    out["logit"] = 0 if dedup_tied else cfg.vocab_size * h
    return out


def module_activation_bytes(
    cfg: TransformerConfig, t: int, flash_attention: bool = False
) -> Dict[str, float]:
    """Stored activation bytes of one layer per module, per (t,) rank.

    The per-module split of Korthikanti et al.'s unfused-transformer
    coefficient: each module is charged its stored *inputs* plus the
    outputs only it needs for backward (fp16, dropout masks one byte
    per element).  For the classic GPT block (2-matrix MLP,
    ``d_ff = 4h``) the values sum exactly to ``(34 s b h + 5 a s^2 b)/t``;
    SwiGLU and MoE blocks generalize the MLP terms honestly instead of
    forcing the classic total.
    """
    s, b, h, a = cfg.seq_len, cfg.microbatch, cfg.hidden_size, cfg.num_heads
    d = cfg.d_ff
    sbh = float(s * b * h)
    score = 0.0 if flash_attention else float(a * s * s * b)
    out: Dict[str, float] = {
        # LN output feeding QKV.
        "qkv_transform": 2 * sbh,
        # Q and K (4sbh) + the raw score matrix (2as^2b).
        "attention_score": 4 * sbh + 2 * score,
        # V (2sbh) + softmax output (2as^2b) + dropout mask (as^2b).
        "attention_over_value": 2 * sbh + 3 * score,
        # Its input (2sbh) + the post-projection dropout mask (sbh).
        "attention_projection": 3 * sbh,
        # Two norms, input + mean/var working set: 2sbh each.
        "layernorm": 4 * sbh,
    }
    sbd = float(s * b * d)
    if cfg.num_experts is not None:
        k_route = float(cfg.moe_top_k or 1)
        out["moe_router"] = 2.0 * s * b * cfg.num_experts
        if cfg.mlp_kind == "swiglu":
            out["moe_mlp_gate"] = 2 * sbh + k_route * 2 * sbd
            out["moe_mlp_up"] = k_route * 2 * sbd
            out["moe_mlp_down"] = k_route * 2 * sbd
        else:
            out["moe_mlp_h_to_4h"] = 2 * sbh + k_route * 2 * sbd
            out["moe_mlp_4h_to_h"] = k_route * (2 * sbd + sbh / max(k_route, 1.0))
    elif cfg.mlp_kind == "swiglu":
        out["mlp_gate"] = 2 * sbh + 2 * sbd
        out["mlp_up"] = 2 * sbd
        out["mlp_down"] = 2 * sbd
    else:
        # Input (2sbh) + fc1 output (2sbd) | GELU output (2sbd) +
        # dropout mask (sbh).  With d = 4h: 10sbh and 9sbh.
        out["mlp_h_to_4h"] = 2 * sbh + 2 * sbd
        out["mlp_4h_to_h"] = 2 * sbd + sbh
    return {name: bytes_ / t for name, bytes_ in out.items()}


def boundary_bytes_per_layer(cfg: TransformerConfig, t: int) -> float:
    """The fp16 layer-input tensor kept per layer under full
    checkpointing: ``2 s b h / t`` bytes."""
    return 2.0 * cfg.seq_len * cfg.microbatch * cfg.hidden_size / t


@dataclass(frozen=True)
class ModuleMemory:
    """Bytes attributed to one module label on one (t, p) rank."""

    module: str
    parameter_bytes: float
    gradient_bytes: float
    optimizer_state_bytes: float
    activation_bytes: float
    kv_cache_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return (
            self.parameter_bytes
            + self.gradient_bytes
            + self.optimizer_state_bytes
            + self.activation_bytes
            + self.kv_cache_bytes
        )


@dataclass(frozen=True)
class PhaseMemory:
    """Peak residency of one training-step phase on one rank."""

    phase: str
    parameter_bytes: float
    gradient_bytes: float
    optimizer_state_bytes: float
    activation_bytes: float
    kv_cache_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return (
            self.parameter_bytes
            + self.gradient_bytes
            + self.optimizer_state_bytes
            + self.activation_bytes
            + self.kv_cache_bytes
        )

    def gb(self) -> float:
        return self.total_bytes / 1e9


@dataclass(frozen=True)
class TrainStepMemory:
    """The full memory estimate: per-module rows + per-phase timeline."""

    model: str
    tp: int
    pipeline_stages: int
    checkpointing: str
    modules: Tuple[ModuleMemory, ...]
    phases: Tuple[PhaseMemory, ...]

    # -- component totals (backward-phase residency) -----------------------

    @property
    def parameter_bytes(self) -> float:
        return sum(m.parameter_bytes for m in self.modules)

    @property
    def gradient_bytes(self) -> float:
        return sum(m.gradient_bytes for m in self.modules)

    @property
    def optimizer_state_bytes(self) -> float:
        return sum(m.optimizer_state_bytes for m in self.modules)

    @property
    def activation_bytes(self) -> float:
        return sum(m.activation_bytes for m in self.modules)

    @property
    def kv_cache_bytes(self) -> float:
        return sum(m.kv_cache_bytes for m in self.modules)

    @property
    def parameter_elements(self) -> float:
        """Learned elements resident on this rank (tied weights once)."""
        return self.parameter_bytes / PARAM_BYTES

    # -- peaks -------------------------------------------------------------

    @property
    def peak_bytes(self) -> float:
        return max(p.total_bytes for p in self.phases)

    @property
    def peak_phase(self) -> str:
        return max(self.phases, key=lambda p: p.total_bytes).phase

    def phase(self, name: str) -> PhaseMemory:
        for p in self.phases:
            if p.phase == name:
                return p
        raise KeyError(f"unknown phase {name!r}")

    def fits(self, budget: MemoryBudget) -> bool:
        return self.peak_bytes <= budget.usable_bytes

    def require_fits(self, budget: MemoryBudget) -> None:
        """Raise :class:`CapacityError` naming the overflowing phase."""
        if self.fits(budget):
            return
        peak = self.phase(self.peak_phase)
        raise CapacityError(
            f"{self.model}: (t={self.tp}, p={self.pipeline_stages}, "
            f"checkpointing={self.checkpointing}) does not fit: "
            f"{peak.phase} phase needs {peak.total_bytes / 1e9:.1f} GB "
            f"against a {budget.usable_bytes / 1e9:.1f} GB budget",
            phase=peak.phase,
            required_bytes=peak.total_bytes,
            budget_bytes=budget.usable_bytes,
        )


def estimate_memory(
    cfg: TransformerConfig,
    tp: "int | None" = None,
    pipeline_stages: int = 1,
    checkpointing: str = "none",
    flash_attention: bool = False,
) -> TrainStepMemory:
    """The per-module / per-phase memory estimate for one (t, p) rank.

    ``tp`` defaults to ``cfg.tp_degree``.  The modelled rank is the
    *heaviest* pipeline stage: it holds ``ceil(L / p)`` layers plus the
    full vocab-sharded embedding, so the estimate upper-bounds every
    stage and is monotone non-increasing in both t and p.
    """
    t = cfg.tp_degree if tp is None else tp
    p = pipeline_stages
    _check_sharding(t, p)
    _check_policy(checkpointing)

    L = cfg.num_layers
    layers_per_stage = max(1, -(-L // p))
    param_elems = module_param_elements(cfg)
    act_layer = module_activation_bytes(cfg, t, flash_attention)

    modules: List[ModuleMemory] = []
    # Union of labels: weighted modules plus activation-only ones (the
    # attention BMMs store scores/probs but own no learned tensors).
    names = list(param_elems)
    names += [n for n in act_layer if n not in param_elems]
    for name in names:
        elems = param_elems.get(name, 0)
        if name == "embedding":
            # Vocab-sharded across t; resident in full on its stage.
            elems_rank = elems / t
        elif name == "logit":
            elems_rank = elems / t  # zero under tied dedup
        else:
            # Per-layer weights: t-sharded, layers split over stages.
            elems_rank = elems * layers_per_stage / (L * t)
        act = act_layer.get(name, 0.0)
        if checkpointing == "full":
            # Only the live (recomputing) layer's activations exist.
            act_rank = act
        else:
            act_rank = act * layers_per_stage
        modules.append(
            ModuleMemory(
                module=name,
                parameter_bytes=elems_rank * PARAM_BYTES,
                gradient_bytes=elems_rank * GRADIENT_BYTES,
                optimizer_state_bytes=elems_rank * OPTIMIZER_STATE_BYTES,
                activation_bytes=act_rank,
                kv_cache_bytes=0.0,  # no decode cache during training
            )
        )
    if checkpointing == "full" and layers_per_stage > 1:
        modules.append(
            ModuleMemory(
                module=BOUNDARY_MODULE,
                parameter_bytes=0.0,
                gradient_bytes=0.0,
                optimizer_state_bytes=0.0,
                activation_bytes=(
                    boundary_bytes_per_layer(cfg, t) * (layers_per_stage - 1)
                ),
            )
        )

    params = sum(m.parameter_bytes for m in modules)
    grads = sum(m.gradient_bytes for m in modules)
    opt = sum(m.optimizer_state_bytes for m in modules)
    acts = sum(m.activation_bytes for m in modules)
    phases = (
        # Forward: weights + persistent optimizer states, activations
        # accumulating to their full footprint.
        PhaseMemory("forward", params, 0.0, opt, acts),
        # Backward start: activations still live, gradients now too —
        # the step's peak.
        PhaseMemory("backward", params, grads, opt, acts),
        # Optimizer: activations freed, gradients consumed in place.
        PhaseMemory("optimizer", params, grads, opt, 0.0),
    )
    return TrainStepMemory(
        model=cfg.name,
        tp=t,
        pipeline_stages=p,
        checkpointing=checkpointing,
        modules=tuple(modules),
        phases=phases,
    )
