"""Text and JSON rendering of a training-step estimate.

The CLI's ``repro estimate`` verb prints :func:`render_estimate`; the
``--json`` path emits :func:`estimate_to_json` (stable key order, plain
Python scalars) so the golden snapshots and the CI smoke job can diff
it without parsing a table.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.trainstep.memory import TrainStepMemory
from repro.trainstep.step import TrainStepEstimate

_GB = 1024.0**3


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s"
    return f"{seconds * 1e3:8.3f} ms"


def render_estimate(est: TrainStepEstimate) -> str:
    """Human-readable rollup: phases, per-module runtime, memory."""
    lines: List[str] = []
    lines.append(
        f"train step: {est.model} on {est.gpu}/{est.dtype}  "
        f"t={est.tp} p={est.pipeline_stages} ckpt={est.checkpointing}"
    )
    lines.append(
        f"  total {_fmt_s(est.total_s)}  "
        f"{est.tokens_per_second:,.0f} tok/s  "
        f"{est.tflops:.1f} TFLOP/s (whole step)"
    )
    lines.append("")
    lines.append(f"  {'phase':<12} {'time':>12} {'share':>7} {'PFLOPs':>10}")
    total = est.total_s or 1.0
    for p in est.phases:
        lines.append(
            f"  {p.phase:<12} {_fmt_s(p.seconds):>12} "
            f"{100.0 * p.seconds / total:6.1f}% {p.flops / 1e15:10.3f}"
        )
    lines.append("")
    lines.append(
        f"  {'module':<22} {'fwd':>11} {'bwd':>11} {'recomp':>11} {'share':>7}"
    )
    gemm_total = est.gemm_s or 1.0
    for m in sorted(est.modules, key=lambda m: -m.total_s):
        lines.append(
            f"  {m.module:<22} {_fmt_s(m.forward_s):>11} "
            f"{_fmt_s(m.backward_s):>11} {_fmt_s(m.recompute_s):>11} "
            f"{100.0 * m.total_s / gemm_total:6.1f}%"
        )
    lines.append("")
    lines.extend(_render_memory(est.memory))
    return "\n".join(lines)


def _render_memory(mem: TrainStepMemory) -> List[str]:
    lines = [
        f"  memory per GPU (t={mem.tp}, p={mem.pipeline_stages}, "
        f"ckpt={mem.checkpointing}): peak "
        f"{mem.peak_bytes / _GB:.2f} GiB in {mem.peak_phase}"
    ]
    lines.append(
        f"  {'phase':<12} {'params':>9} {'grads':>9} {'opt':>9} "
        f"{'acts':>9} {'total':>9}"
    )
    for ph in mem.phases:
        lines.append(
            f"  {ph.phase:<12} {ph.parameter_bytes / _GB:8.2f}G "
            f"{ph.gradient_bytes / _GB:8.2f}G "
            f"{ph.optimizer_state_bytes / _GB:8.2f}G "
            f"{ph.activation_bytes / _GB:8.2f}G "
            f"{ph.total_bytes / _GB:8.2f}G"
        )
    return lines


def estimate_to_json(est: TrainStepEstimate) -> Dict[str, Any]:
    """Stable, scalar-only dict for ``--json`` output and goldens."""
    return {
        "model": est.model,
        "gpu": est.gpu,
        "dtype": est.dtype,
        "tp": est.tp,
        "pipeline_stages": est.pipeline_stages,
        "checkpointing": est.checkpointing,
        "tokens": est.tokens,
        "total_s": est.total_s,
        "tokens_per_second": est.tokens_per_second,
        "tflops": est.tflops,
        "phases": [
            {"phase": p.phase, "seconds": p.seconds, "flops": p.flops}
            for p in est.phases
        ],
        "modules": [
            {
                "module": m.module,
                "forward_s": m.forward_s,
                "backward_s": m.backward_s,
                "recompute_s": m.recompute_s,
                "flops": m.flops,
            }
            for m in est.modules
        ],
        "memory": {
            "peak_bytes": est.memory.peak_bytes,
            "peak_phase": est.memory.peak_phase,
            "phases": [
                {
                    "phase": ph.phase,
                    "parameter_bytes": ph.parameter_bytes,
                    "gradient_bytes": ph.gradient_bytes,
                    "optimizer_state_bytes": ph.optimizer_state_bytes,
                    "activation_bytes": ph.activation_bytes,
                    "kv_cache_bytes": ph.kv_cache_bytes,
                    "total_bytes": ph.total_bytes,
                }
                for ph in est.memory.phases
            ],
        },
    }
