"""Differential wall: grid-path estimator vs scalar per-record brute force.

Like the kernels and simulator walls, this is a *blocking* parity gate:
the training-step estimator prices the whole step through one
:meth:`~repro.engine.core.ShapeEngine.evaluate_grid` call, and this
module re-prices the identical grid through the scalar
:class:`~repro.gpu.gemm_model.GemmModel`, one ``evaluate`` call per
record, then demands the per-phase runtime totals be **bit-identical**
(``==`` on float64, no tolerance) and the GEMM FLOP totals be exactly
equal as integers against the fully expanded analytic mapping
(:func:`repro.core.gemms.training_gemms`).

Bit-identity works because both sides reduce per-row float64 latencies
in the same grid row order with the same masked ``np.sum``; the engine's
scalar-parity contract (``verify_against_scalar``) guarantees equal
per-row latencies, so any drift in grid expansion, phase masking, or
count weighting surfaces as a hard inequality — not a tolerance tweak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.config import TransformerConfig, get_model
from repro.core.gemms import training_gemms
from repro.gpu.gemm_model import GemmModel
from repro.trainstep.step import (
    PHASE_OPTIMIZER,
    TrainStepEstimate,
    TrainStepEstimator,
    training_grid,
)
from repro.transformer.trace import ADAM_FLOPS_PER_PARAM

#: The paper's model zoo for the wall: every Pythia size plus the GPT-3
#: case study (and its small config) — the same families the figures
#: sweep.
WALL_MODELS: Tuple[str, ...] = (
    "pythia-70m",
    "pythia-160m",
    "pythia-410m",
    "pythia-1b",
    "pythia-1.4b",
    "pythia-2.8b",
    "pythia-6.9b",
    "pythia-12b",
    "gpt3-2.7b",
    "gpt3-175b",
)


@dataclass(frozen=True)
class WallCase:
    """One model's parity outcome."""

    model: str
    checkpointing: str
    phase_mismatches: Tuple[str, ...]
    gemm_flops_grid: int
    gemm_flops_analytic: int

    @property
    def passed(self) -> bool:
        return (
            not self.phase_mismatches
            and self.gemm_flops_grid == self.gemm_flops_analytic
        )


@dataclass(frozen=True)
class WallReport:
    """Aggregate parity report over the zoo."""

    gpu: str
    dtype: str
    cases: Tuple[WallCase, ...]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.cases)

    def describe(self) -> str:
        lines = [
            f"trainstep wall on {self.gpu}/{self.dtype}: "
            f"{sum(c.passed for c in self.cases)}/{len(self.cases)} cases "
            f"bit-identical"
        ]
        for c in self.cases:
            status = "ok" if c.passed else "MISMATCH"
            detail = ""
            if c.phase_mismatches:
                detail = f" phases={','.join(c.phase_mismatches)}"
            if c.gemm_flops_grid != c.gemm_flops_analytic:
                detail += (
                    f" flops grid={c.gemm_flops_grid}"
                    f" analytic={c.gemm_flops_analytic}"
                )
            lines.append(
                f"  {c.model:<14} ckpt={c.checkpointing:<4} {status}{detail}"
            )
        return "\n".join(lines)


def scalar_phase_seconds(
    cfg: TransformerConfig,
    gpu: str,
    dtype: str,
    checkpointing: str = "none",
) -> dict:
    """Brute-force re-pricing of the step, one scalar call per record.

    Rebuilds the estimator's exact grid, walks its rows through the
    scalar model, then reduces with the identical masked ``np.sum`` the
    estimator uses — the only difference under test is batch-vs-scalar
    evaluation.
    """
    grid = training_grid(cfg, checkpointing)
    model = GemmModel(gpu, dtype)
    lat: List[float] = []
    for bb, mm, nn, kk in grid.shapes:
        # The scalar loop IS the point of the wall: it is the brute-
        # force side of the differential against the batched grid path.
        perf = model.evaluate(int(mm), int(nn), int(kk), int(bb))  # lint: allow(scalar-eval-in-loop)
        lat.append(perf.latency_s)
    latency = np.asarray(lat, dtype=np.float64)
    seconds = latency * grid.column("count").astype(np.float64)
    phase_col = grid.column("phase")
    return {
        str(name): float(np.sum(seconds[phase_col == name]))
        for name in dict.fromkeys(phase_col.tolist())
    }


def analytic_gemm_flops(cfg: TransformerConfig) -> int:
    """Exact fwd+bwd GEMM FLOPs from the fully expanded Table II map."""
    return sum(op.flops for op in training_gemms(cfg))


def check_model(
    name: str,
    gpu: str = "A100",
    dtype: str = "fp16",
    checkpointing: str = "none",
) -> WallCase:
    """Run the wall for one model; returns the per-phase verdict."""
    cfg = get_model(name)
    estimator = TrainStepEstimator(gpu=gpu, dtype=dtype)
    est: TrainStepEstimate = estimator.estimate(cfg, checkpointing=checkpointing)
    scalar = scalar_phase_seconds(cfg, gpu, dtype, checkpointing)

    mismatches: List[str] = []
    for phase in est.phases:
        if phase.phase == PHASE_OPTIMIZER:
            continue  # not a GEMM; no scalar counterpart to diff
        if phase.seconds != scalar[phase.phase]:
            mismatches.append(phase.phase)

    grid_gemm_flops = sum(
        p.flops for p in est.phases
        if p.phase in ("forward", "backward")
    )
    case = WallCase(
        model=cfg.name,
        checkpointing=checkpointing,
        phase_mismatches=tuple(mismatches),
        gemm_flops_grid=grid_gemm_flops,
        gemm_flops_analytic=analytic_gemm_flops(cfg),
    )
    # Cheap internal invariants, independent of the scalar diff: the
    # optimizer flops must follow the Adam constant exactly, and the
    # derived backward must cost exactly twice the forward.
    assert est.phase(PHASE_OPTIMIZER).flops == (
        est.memory.parameter_elements * ADAM_FLOPS_PER_PARAM
    )
    assert est.phase("backward").flops == 2 * est.phase("forward").flops
    return case


def run_wall(
    models: Tuple[str, ...] = WALL_MODELS,
    gpu: str = "A100",
    dtype: str = "fp16",
) -> WallReport:
    """The blocking differential wall over the paper's model zoo.

    Each model is checked under both checkpointing policies, so the
    recompute phase's grid expansion is also under the bit-identity
    contract.
    """
    cases: List[WallCase] = []
    for name in models:
        cases.append(check_model(name, gpu=gpu, dtype=dtype, checkpointing="none"))
    # Full-checkpointing parity on a subset keeps the wall fast while
    # still covering the recompute expansion on both families.
    for name in (models[0], "gpt3-2.7b"):
        cases.append(check_model(name, gpu=gpu, dtype=dtype, checkpointing="full"))
    return WallReport(gpu=gpu, dtype=dtype, cases=tuple(cases))
