"""Training-step runtime + memory estimator.

Prices a whole training step — forward GEMMs, mechanically-derived
dgrad/wgrad backward pairs, optional full-checkpointing recompute, and
the Adam update — through **one** batched engine evaluation, and rolls
up per-module / per-phase runtime alongside a peak-memory timeline the
parallelism planner uses for its capacity (OOM) wall.

Public surface:

- :func:`~repro.trainstep.memory.estimate_memory` /
  :class:`~repro.trainstep.memory.TrainStepMemory` — closed-form
  per-phase memory model (params, grads, fp32 Adam state, activations).
- :class:`~repro.trainstep.step.TrainStepEstimator` /
  :class:`~repro.trainstep.step.TrainStepEstimate` — grid-priced
  runtime estimator.
- :func:`~repro.trainstep.wall.run_wall` — blocking differential wall
  vs the scalar model.
"""

from repro.trainstep.memory import (
    CHECKPOINTING_POLICIES,
    PHASES,
    ModuleMemory,
    PhaseMemory,
    TrainStepMemory,
    boundary_bytes_per_layer,
    embedding_elements,
    estimate_memory,
    module_activation_bytes,
    module_param_elements,
)
from repro.trainstep.report import estimate_to_json, render_estimate
from repro.trainstep.step import (
    ADAM_TRAFFIC_BYTES_PER_PARAM,
    ModuleCost,
    PhaseCost,
    TrainStepEstimate,
    TrainStepEstimator,
    training_grid,
)
from repro.trainstep.wall import WALL_MODELS, WallCase, WallReport, run_wall

__all__ = [
    "ADAM_TRAFFIC_BYTES_PER_PARAM",
    "CHECKPOINTING_POLICIES",
    "PHASES",
    "ModuleCost",
    "ModuleMemory",
    "PhaseCost",
    "PhaseMemory",
    "TrainStepEstimate",
    "TrainStepEstimator",
    "TrainStepMemory",
    "WALL_MODELS",
    "WallCase",
    "WallReport",
    "boundary_bytes_per_layer",
    "embedding_elements",
    "estimate_memory",
    "estimate_to_json",
    "module_activation_bytes",
    "module_param_elements",
    "render_estimate",
    "run_wall",
    "training_grid",
]
