"""Terminal line/scatter plots for experiment series.

`repro figure <id> --plot` renders the regenerated series the way the
paper's figures present them — throughput vs size, grouped by series —
without needing matplotlib.  Pure text: a character grid with axes,
min/max tick labels, and a per-series legend.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError

#: Symbols assigned to series in order.
_MARKS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, extent: int) -> int:
    if hi <= lo:
        return 0
    pos = int(round((value - lo) / (hi - lo) * (extent - 1)))
    return min(max(pos, 0), extent - 1)


def line_plot(
    series: "Dict[Any, List[Tuple[float, float]]]",
    width: int = 72,
    height: int = 18,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render grouped (x, y) series as an ASCII scatter plot.

    Series keys become legend entries; points that collide on the grid
    show the later series' mark.
    """
    if not series or all(not pts for pts in series.values()):
        raise ExperimentError("nothing to plot")
    if width < 16 or height < 4:
        raise ExperimentError("plot area too small")

    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo > 0 and y_lo < 0.3 * y_hi:
        y_lo = 0.0  # anchor throughput-style plots at zero

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (key, pts) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        label = "series" if key is None else str(key)
        legend.append(f"{mark} = {label}")
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:.4g}"
    y_lo_label = f"{y_lo:.4g}"
    margin = max(len(y_hi_label), len(y_lo_label), len(y_label)) + 1
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            prefix = y_hi_label.rjust(margin)
        elif row_idx == height - 1:
            prefix = y_lo_label.rjust(margin)
        elif row_idx == height // 2:
            prefix = y_label[: margin - 1].rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|" + "".join(row))
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_lo:.4g}".ljust(width - 10) + f"{x_hi:.4g}"
    lines.append(" " * (margin + 1) + x_axis)
    lines.append(" " * (margin + 1) + x_label)
    if len(series) > 1 or None not in series:
        lines.append(" " * (margin + 1) + "   ".join(legend))
    return "\n".join(lines)


#: For each experiment id: (x column, y column, group column or None).
PLOT_HINTS: Dict[str, Tuple[str, str, Optional[str]]] = {
    "fig5": ("size", "tflops", "series"),
    "fig6": ("size", "tflops", "batch"),
    "fig7": ("hidden", "tflops", "pow2"),
    "fig8": ("hidden", "tflops", None),
    "fig9": ("hidden", "tflops", None),
    "fig10": ("hidden", "tflops", "direction"),
    "fig12": ("hidden", "tflops", None),
    "fig13": ("params_m", "latency_ms", None),
    "fig15": ("hidden", "tflops", "tp"),
    "fig17": ("hidden", "tflops", None),
    "fig18": ("hidden", "tflops", None),
    "fig19": ("hidden", "tflops", None),
    "fig20": ("vocab", "tflops", "zoom"),
    "fig21_33": ("hidden", "tflops", "pow2"),
    "fig34": ("hidden", "tflops", None),
    "fig35_47": ("hidden", "tflops", "pow2"),
    "ext_seqlen": ("seq_len", "latency_share", None),
    "ext_flash_e2e": ("hidden", "speedup", None),
    "ext_batching": ("batch", "tokens_per_s", None),
    "ext_window": ("context", "flash_speedup", None),
    "ext_moe": ("experts", "expert_gemm_tflops", None),
}


def plot_experiment(exp_id: str, table, width: int = 72, height: int = 18) -> str:
    """Plot a ResultTable using the registered axis hint for its id."""
    hint = PLOT_HINTS.get(exp_id.lower())
    if hint is None:
        raise ExperimentError(
            f"no plot hint for {exp_id!r}; plottable: {sorted(PLOT_HINTS)}"
        )
    x, y, group = hint
    series = table.series(x, y, group=group)
    return line_plot(
        series, width=width, height=height, title=table.title, x_label=x, y_label=y
    )
