"""Qualitative paper-shape checks.

Our substrate is a model, so absolute TFLOP/s are not expected to match
the authors' silicon; what must match is the *shape* of every result:
who wins, whether a curve rises/saturates, whether series are ordered by
pow-2 alignment, where the sawtooth lives.  The helpers here turn those
statements into pass/fail checks that the experiments and tests share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one qualitative check."""

    passed: bool
    details: str

    def __bool__(self) -> bool:
        return self.passed

    @staticmethod
    def all_of(results: "Sequence[CheckResult]") -> "CheckResult":
        """Combine: passes iff every sub-check passes."""
        if not results:
            raise ExperimentError("no sub-checks given")
        passed = all(r.passed for r in results)
        details = "; ".join(
            ("PASS " if r.passed else "FAIL ") + r.details for r in results
        )
        return CheckResult(passed=passed, details=details)


def check_winner(
    rows: "Dict[Any, float]", expected_winner: Any, higher_is_better: bool = True
) -> CheckResult:
    """The expected key has the best value."""
    if expected_winner not in rows:
        return CheckResult(False, f"{expected_winner!r} missing from {list(rows)}")
    pick = max if higher_is_better else min
    winner = pick(rows, key=lambda k: rows[k])
    return CheckResult(
        winner == expected_winner,
        f"winner={winner!r} (expected {expected_winner!r}); values="
        + ", ".join(f"{k}={v:.4g}" for k, v in rows.items()),
    )


def check_ratio(
    numerator: float, denominator: float, lo: float, hi: float, label: str
) -> CheckResult:
    """numerator/denominator falls in [lo, hi]."""
    if denominator <= 0:
        return CheckResult(False, f"{label}: non-positive denominator")
    ratio = numerator / denominator
    return CheckResult(
        lo <= ratio <= hi,
        f"{label}: ratio {ratio:.3f} (expected [{lo}, {hi}])",
    )


def check_series_ordered(
    series: "Dict[Any, List[Tuple[Any, float]]]",
    key_order: "Sequence[Any]",
    min_fraction: float = 0.8,
) -> CheckResult:
    """Higher-keyed series lie above lower-keyed ones (Figs 7/21-47).

    Compares consecutive key pairs at their overlapping x values (by
    nearest-x matching); passes when at least ``min_fraction`` of the
    comparisons respect the ordering.
    """
    comparisons = wins = 0
    for low_key, high_key in zip(key_order, key_order[1:]):
        lo_pts = series.get(low_key, [])
        hi_pts = series.get(high_key, [])
        if not len(lo_pts) or not len(hi_pts):
            continue
        lo = np.asarray(lo_pts, dtype=np.float64)
        hi = np.asarray(hi_pts, dtype=np.float64)
        # Nearest-x matching over the full pair grid; argmin resolves
        # ties to the first lo point, matching a linear min() scan.
        nearest = np.argmin(
            np.abs(lo[:, 0][None, :] - hi[:, 0][:, None]), axis=1
        )
        x_lo, y_lo = lo[nearest, 0], lo[nearest, 1]
        x_hi, y_hi = hi[:, 0], hi[:, 1]
        # Only compare points within 25% in x; farther apart the
        # size effect swamps the alignment effect.
        close = np.abs(x_lo - x_hi) <= 0.25 * np.maximum(x_hi, 1.0)
        comparisons += int(np.count_nonzero(close))
        wins += int(np.count_nonzero(close & (y_hi >= y_lo)))
    return _series_verdict(wins, comparisons, min_fraction)


def _series_verdict(wins: int, comparisons: int, min_fraction: float) -> CheckResult:
    if comparisons == 0:
        return CheckResult(False, "series ordering: no comparable points")
    frac = wins / comparisons
    return CheckResult(
        frac >= min_fraction,
        f"series ordering holds for {wins}/{comparisons} "
        f"comparisons ({100 * frac:.0f}%, need {100 * min_fraction:.0f}%)",
    )


def check_series_ordered_blocks(
    block_keys,
    series_keys,
    xs,
    ys,
    min_fraction: float = 0.8,
) -> "List[CheckResult]":
    """Fused :func:`check_series_ordered` over many blocks at once.

    Equivalent to grouping the rows by ``block_keys``, building the
    per-block series (keyed by ``series_keys``, in sorted key order)
    and running :func:`check_series_ordered` once per block — but the
    nearest-x matching for *every* block and key pair happens in a
    handful of whole-array operations, so a 13-family appendix check
    costs the same as one.  Returns one :class:`CheckResult` per
    distinct block key, in ascending block-key order.
    """
    block_keys = np.asarray(block_keys)
    series_keys = np.asarray(series_keys)
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    n = x.size
    if n == 0:
        return []

    order = np.lexsort((series_keys, block_keys))  # stable: keeps row order
    b = block_keys[order]
    sk = series_keys[order]
    x = x[order]
    y = y[order]

    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.logical_or(b[1:] != b[:-1], sk[1:] != sk[:-1], out=new_group[1:])
    group_id = np.cumsum(new_group) - 1
    starts = np.flatnonzero(new_group)
    ends = np.append(starts[1:], n)
    group_block = b[starts]
    ublocks, block_of_group = np.unique(group_block, return_inverse=True)

    # The single-searchsorted pair matching below needs integral,
    # strictly-ascending x within every group (ties and fractional
    # keys could perturb nearest-match order); fall back to the scalar
    # helper otherwise.  All figure sweeps use integer x grids.
    integral = bool(np.all(np.isfinite(x)) and np.all(np.floor(x) == x))
    ascending = bool(np.all((x[1:] > x[:-1]) | new_group[1:]))
    span = (int(x.max()) - int(x.min()) + 1) if integral else 0
    fits = integral and span * starts.size < 2**62
    if not (integral and ascending and fits):
        results = []
        for blk in ublocks.tolist():
            mask = block_keys == blk
            series = {
                key: list(
                    zip(
                        np.asarray(xs)[mask & (series_keys == key)].tolist(),
                        np.asarray(ys)[mask & (series_keys == key)].tolist(),
                    )
                )
                for key in np.unique(series_keys[mask]).tolist()
            }
            results.append(
                check_series_ordered(series, sorted(series), min_fraction)
            )
        return results

    # "hi" rows belong to a series whose predecessor group shares the
    # block — exactly the consecutive sorted-key pairs of the scalar
    # helper.
    has_prev = np.empty(starts.size, dtype=bool)
    has_prev[0] = False
    has_prev[1:] = group_block[1:] == group_block[:-1]
    hi_rows = np.flatnonzero(has_prev[group_id])

    comp_blk = np.zeros(ublocks.size, dtype=np.int64)
    wins_blk = np.zeros(ublocks.size, dtype=np.int64)
    if hi_rows.size:
        g_hi = group_id[hi_rows]
        lo_start = starts[g_hi - 1]
        lo_end = ends[g_hi - 1]
        # Encode (group, x) into one monotone int64 key space so a
        # single searchsorted locates every hi point inside its lo
        # series at once.
        xi = x.astype(np.int64)
        base = int(xi.min())
        keys = group_id * span + (xi - base)
        target = (g_hi - 1) * span + (xi[hi_rows] - base)
        ins = np.searchsorted(keys, target, side="left")
        left = np.clip(ins - 1, lo_start, lo_end - 1)
        right = np.clip(ins, lo_start, lo_end - 1)
        x_hi = x[hi_rows]
        # Nearest lo point; ties go left — the first (lowest-x)
        # occurrence, matching the scalar helper's linear min() scan.
        pick = np.where(
            np.abs(x[left] - x_hi) <= np.abs(x[right] - x_hi), left, right
        )
        close = np.abs(x[pick] - x_hi) <= 0.25 * np.maximum(x_hi, 1.0)
        win = close & (y[hi_rows] >= y[pick])
        blk_of_hi = block_of_group[g_hi]
        comp_blk = np.bincount(
            blk_of_hi[close], minlength=ublocks.size
        ).astype(np.int64)
        wins_blk = np.bincount(
            blk_of_hi[win], minlength=ublocks.size
        ).astype(np.int64)
    return [
        _series_verdict(int(w), int(c), min_fraction)
        for w, c in zip(wins_blk, comp_blk)
    ]


def check_monotone_rise(
    points: "List[Tuple[float, float]]",
    min_fraction: float = 0.7,
    allow_plateau: bool = True,
) -> CheckResult:
    """y broadly increases with x (throughput rising with size)."""
    if len(points) < 3:
        return CheckResult(False, "need at least 3 points")
    pts = sorted(points)
    rises = total = 0
    for (_, y0), (_, y1) in zip(pts, pts[1:]):
        total += 1
        if y1 > y0 or (allow_plateau and y1 >= 0.97 * y0):
            rises += 1
    frac = rises / total
    return CheckResult(
        frac >= min_fraction,
        f"rising for {rises}/{total} steps ({100 * frac:.0f}%)",
    )


def check_saturates(
    points: "List[Tuple[float, float]]", tail_fraction: float = 0.3, spread: float = 0.25
) -> CheckResult:
    """The curve's tail flattens (roofline saturation, Figs 10/12)."""
    if len(points) < 4:
        return CheckResult(False, "need at least 4 points")
    pts = sorted(points)
    tail = pts[int(len(pts) * (1 - tail_fraction)) :]
    ys = [y for _, y in tail]
    lo, hi = min(ys), max(ys)
    rel = (hi - lo) / hi if hi else 1.0
    return CheckResult(
        rel <= spread,
        f"tail spread {100 * rel:.1f}% over last {len(tail)} points "
        f"(need <= {100 * spread:.0f}%)",
    )


def check_sawtooth(
    points: "List[Tuple[float, float]]", min_drops: int = 2, drop_rel: float = 0.02
) -> CheckResult:
    """The curve shows repeated local drops (wave quantization)."""
    if len(points) < 5:
        return CheckResult(False, "need at least 5 points")
    pts = sorted(points)
    drops = 0
    for (_, y0), (_, y1) in zip(pts, pts[1:]):
        if y1 < y0 * (1 - drop_rel):
            drops += 1
    return CheckResult(
        drops >= min_drops,
        f"{drops} local drops observed (need >= {min_drops})",
    )


def check_all_equal(
    values: "Dict[Any, float]", tolerance: float = 0.05
) -> CheckResult:
    """All values agree within a relative tolerance (Fig 14)."""
    if not values:
        return CheckResult(False, "no values")
    vals = list(values.values())
    lo, hi = min(vals), max(vals)
    rel = (hi - lo) / hi if hi else 0.0
    return CheckResult(
        rel <= tolerance,
        f"spread {100 * rel:.1f}% across {list(values)} "
        f"(need <= {100 * tolerance:.0f}%)",
    )
