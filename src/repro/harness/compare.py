"""Qualitative paper-shape checks.

Our substrate is a model, so absolute TFLOP/s are not expected to match
the authors' silicon; what must match is the *shape* of every result:
who wins, whether a curve rises/saturates, whether series are ordered by
pow-2 alignment, where the sawtooth lives.  The helpers here turn those
statements into pass/fail checks that the experiments and tests share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ExperimentError


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one qualitative check."""

    passed: bool
    details: str

    def __bool__(self) -> bool:
        return self.passed

    @staticmethod
    def all_of(results: "Sequence[CheckResult]") -> "CheckResult":
        """Combine: passes iff every sub-check passes."""
        if not results:
            raise ExperimentError("no sub-checks given")
        passed = all(r.passed for r in results)
        details = "; ".join(
            ("PASS " if r.passed else "FAIL ") + r.details for r in results
        )
        return CheckResult(passed=passed, details=details)


def check_winner(
    rows: "Dict[Any, float]", expected_winner: Any, higher_is_better: bool = True
) -> CheckResult:
    """The expected key has the best value."""
    if expected_winner not in rows:
        return CheckResult(False, f"{expected_winner!r} missing from {list(rows)}")
    pick = max if higher_is_better else min
    winner = pick(rows, key=lambda k: rows[k])
    return CheckResult(
        winner == expected_winner,
        f"winner={winner!r} (expected {expected_winner!r}); values="
        + ", ".join(f"{k}={v:.4g}" for k, v in rows.items()),
    )


def check_ratio(
    numerator: float, denominator: float, lo: float, hi: float, label: str
) -> CheckResult:
    """numerator/denominator falls in [lo, hi]."""
    if denominator <= 0:
        return CheckResult(False, f"{label}: non-positive denominator")
    ratio = numerator / denominator
    return CheckResult(
        lo <= ratio <= hi,
        f"{label}: ratio {ratio:.3f} (expected [{lo}, {hi}])",
    )


def check_series_ordered(
    series: "Dict[Any, List[Tuple[Any, float]]]",
    key_order: "Sequence[Any]",
    min_fraction: float = 0.8,
) -> CheckResult:
    """Higher-keyed series lie above lower-keyed ones (Figs 7/21-47).

    Compares consecutive key pairs at their overlapping x values (by
    nearest-x matching); passes when at least ``min_fraction`` of the
    comparisons respect the ordering.
    """
    comparisons = wins = 0
    for low_key, high_key in zip(key_order, key_order[1:]):
        lo_pts = series.get(low_key, [])
        hi_pts = series.get(high_key, [])
        if not lo_pts or not hi_pts:
            continue
        for x_hi, y_hi in hi_pts:
            x_lo, y_lo = min(lo_pts, key=lambda p: abs(p[0] - x_hi))
            # Only compare points within 25% in x; farther apart the
            # size effect swamps the alignment effect.
            if abs(x_lo - x_hi) > 0.25 * max(x_hi, 1):
                continue
            comparisons += 1
            if y_hi >= y_lo:
                wins += 1
    if comparisons == 0:
        return CheckResult(False, "series ordering: no comparable points")
    frac = wins / comparisons
    return CheckResult(
        frac >= min_fraction,
        f"series ordering holds for {wins}/{comparisons} "
        f"comparisons ({100 * frac:.0f}%, need {100 * min_fraction:.0f}%)",
    )


def check_monotone_rise(
    points: "List[Tuple[float, float]]",
    min_fraction: float = 0.7,
    allow_plateau: bool = True,
) -> CheckResult:
    """y broadly increases with x (throughput rising with size)."""
    if len(points) < 3:
        return CheckResult(False, "need at least 3 points")
    pts = sorted(points)
    rises = total = 0
    for (_, y0), (_, y1) in zip(pts, pts[1:]):
        total += 1
        if y1 > y0 or (allow_plateau and y1 >= 0.97 * y0):
            rises += 1
    frac = rises / total
    return CheckResult(
        frac >= min_fraction,
        f"rising for {rises}/{total} steps ({100 * frac:.0f}%)",
    )


def check_saturates(
    points: "List[Tuple[float, float]]", tail_fraction: float = 0.3, spread: float = 0.25
) -> CheckResult:
    """The curve's tail flattens (roofline saturation, Figs 10/12)."""
    if len(points) < 4:
        return CheckResult(False, "need at least 4 points")
    pts = sorted(points)
    tail = pts[int(len(pts) * (1 - tail_fraction)) :]
    ys = [y for _, y in tail]
    lo, hi = min(ys), max(ys)
    rel = (hi - lo) / hi if hi else 1.0
    return CheckResult(
        rel <= spread,
        f"tail spread {100 * rel:.1f}% over last {len(tail)} points "
        f"(need <= {100 * spread:.0f}%)",
    )


def check_sawtooth(
    points: "List[Tuple[float, float]]", min_drops: int = 2, drop_rel: float = 0.02
) -> CheckResult:
    """The curve shows repeated local drops (wave quantization)."""
    if len(points) < 5:
        return CheckResult(False, "need at least 5 points")
    pts = sorted(points)
    drops = 0
    for (_, y0), (_, y1) in zip(pts, pts[1:]):
        if y1 < y0 * (1 - drop_rel):
            drops += 1
    return CheckResult(
        drops >= min_drops,
        f"{drops} local drops observed (need >= {min_drops})",
    )


def check_all_equal(
    values: "Dict[Any, float]", tolerance: float = 0.05
) -> CheckResult:
    """All values agree within a relative tolerance (Fig 14)."""
    if not values:
        return CheckResult(False, "no values")
    vals = list(values.values())
    lo, hi = min(vals), max(vals)
    rel = (hi - lo) / hi if hi else 0.0
    return CheckResult(
        rel <= tolerance,
        f"spread {100 * rel:.1f}% across {list(values)} "
        f"(need <= {100 * tolerance:.0f}%)",
    )
