"""Transformer-level experiments: Figs 1, 2, 10, 11, 12, 15-20, Table II.

These run the Table II operators and whole layers through the latency
model, plus the Table II mapping validation against the traced NumPy
transformer.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.breakdown import (
    LARGE_CONFIG,
    MEDIUM_CONFIG,
    component_proportions,
    gemm_proportions,
    gemm_share,
    gemm_share_sweep,
)
from repro.core.config import TransformerConfig, get_model
from repro.core.gemms import layer_gemms, logit_gemm
from repro.core.latency import LayerLatencyModel
from repro.engine import default_engine, shape_array
from repro.harness import sweep
from repro.harness.compare import (
    CheckResult,
    check_monotone_rise,
    check_ratio,
    check_saturates,
    check_winner,
)
from repro.harness.results import ResultTable
from repro.transformer.flash import FlashAttentionModel
from repro.transformer.model import DecoderModel
from repro.transformer.trace import OpTrace

_B, _S = 4, 2048


# -- Fig 1: 2.7B-class shape comparison ----------------------------------------


FIG1_SHAPES = ("gpt3-2.7b", "c1", "c2", "gpt3-2.7b/a20", "gpt3-2.7b/a16")


def _fig1_config(name: str) -> TransformerConfig:
    if name.endswith("/a20"):
        return get_model("gpt3-2.7b").with_overrides(name=name, num_heads=20)
    if name.endswith("/a16"):
        return get_model("gpt3-2.7b").with_overrides(name=name, num_heads=16)
    return get_model(name)


def run_fig1() -> ResultTable:
    """Single-layer throughput of equal-parameter 2.7B shapes on A100.

    Includes the paper's Fig 1 C1/C2 definitions plus the a=20 retune
    its Sec VI-B text recommends.
    """
    model = LayerLatencyModel("A100")
    table = ResultTable(
        "Fig 1: single-layer throughput of 2.7B-class shapes",
        ["shape", "heads", "head_dim", "tflops", "layer_ms", "params_b"],
    )
    for name in FIG1_SHAPES:
        cfg = _fig1_config(name)
        table.add(
            name,
            cfg.num_heads,
            cfg.head_dim,
            model.layer_throughput_tflops(cfg),
            model.layer_latency(cfg) * 1e3,
            cfg.param_count() / 1e9,
        )
    return table


def check_fig1(table: ResultTable) -> CheckResult:
    rows = {r[0]: r[3] for r in table.rows}
    latencies = {r[0]: r[4] for r in table.rows}
    checks = [
        # The misaligned small-head-dim variant (C1, h/a=40) is worst.
        check_winner(rows, "c1", higher_is_better=False),
        # The paper's recommended retune beats the default by >= ~1.15x
        # (paper: 1.18x end-to-end, up to 39% single-layer).
        check_ratio(
            latencies["gpt3-2.7b"],
            latencies["gpt3-2.7b/a20"],
            1.10,
            1.60,
            "a=20 retune speedup",
        ),
        # C2 (h/a=64) is at least on par with the default h/a=80 shape.
        check_ratio(latencies["gpt3-2.7b"], latencies["c2"], 0.95, 1.40, "c2 vs default"),
    ]
    return CheckResult.all_of(checks)


# -- Fig 2 / Fig 11 / gemm share ------------------------------------------------


def run_fig2() -> ResultTable:
    """Latency share of each component in one medium-model layer."""
    props = component_proportions(MEDIUM_CONFIG)
    table = ResultTable(
        "Fig 2: latency proportion per component (medium model)",
        ["component", "fraction"],
        notes=f"config: {MEDIUM_CONFIG.describe()}",
    )
    for name, frac in sorted(props.items(), key=lambda kv: -kv[1]):
        table.add(name, frac)
    return table


def check_fig2(table: ResultTable) -> CheckResult:
    fractions = dict(zip(table.column("component"), table.column("fraction")))
    total = sum(fractions.values())
    gemms = sum(
        v
        for k, v in fractions.items()
        if k
        in (
            "qkv_transform",
            "attention_score",
            "attention_over_value",
            "attention_projection",
            "mlp_h_to_4h",
            "mlp_4h_to_h",
        )
    )
    return CheckResult.all_of(
        [
            check_ratio(total, 1.0, 0.999, 1.001, "fractions sum to 1"),
            check_ratio(gemms, 1.0, 0.55, 0.80, "GEMM share (paper: 68.3%)"),
        ]
    )


def run_gemm_share() -> ResultTable:
    """GEMM share of layer latency: medium vs large model (Sec I)."""
    table = ResultTable(
        "GEMM share of layer latency vs model size",
        ["model", "hidden", "gemm_share"],
        notes="paper: 68.3% (medium) and 94.9% (large)",
    )
    table.add("medium", MEDIUM_CONFIG.hidden_size, gemm_share(MEDIUM_CONFIG))
    table.add("large", LARGE_CONFIG.hidden_size, gemm_share(LARGE_CONFIG))
    for h, share in gemm_share_sweep([1024, 2048, 4096, 8192, 12288]):
        table.add(f"h{h}", h, share)
    return table


def check_gemm_share(table: ResultTable) -> CheckResult:
    shares = dict(zip(table.column("model"), table.column("gemm_share")))
    return CheckResult.all_of(
        [
            check_ratio(shares["medium"], 1.0, 0.55, 0.80, "medium share"),
            check_ratio(shares["large"], 1.0, 0.80, 0.99, "large share"),
            CheckResult(
                shares["large"] > shares["medium"],
                f"share grows with size: {shares['medium']:.3f} -> {shares['large']:.3f}",
            ),
        ]
    )


def run_fig11() -> ResultTable:
    """Per-GEMM latency proportions across model sizes."""
    model = LayerLatencyModel("A100")
    table = ResultTable(
        "Fig 11: proportion of GEMM latency per module",
        ["hidden", "module", "fraction"],
    )
    for h in (1024, 2048, 4096, 8192, 12288):
        cfg = TransformerConfig(
            name=f"h{h}", hidden_size=h, num_heads=max(1, h // 128), num_layers=1
        )
        for module, frac in gemm_proportions(cfg, model).items():
            table.add(h, module, frac)
    return table


def check_fig11(table: ResultTable) -> CheckResult:
    # At the largest size: QKV + MLP dominate; attention-over-value is
    # the smallest GEMM (paper Sec VI-A).
    biggest = max(table.column("hidden"))
    fractions = {
        row[1]: row[2] for row in table.rows if row[0] == biggest
    }
    mlp_qkv = (
        fractions.get("qkv_transform", 0)
        + fractions.get("mlp_h_to_4h", 0)
        + fractions.get("mlp_4h_to_h", 0)
    )
    checks = [
        check_ratio(mlp_qkv, 1.0, 0.55, 1.0, "QKV+MLP dominate at large h"),
        check_winner(fractions, "attention_over_value", higher_is_better=False),
    ]
    return CheckResult.all_of(checks)


# -- Fig 10 and the appendix single-GEMM sweeps (Figs 15-19) --------------------


def _operator_sweep(module: str, heads: int = 128, tp: int = 1) -> ResultTable:
    """Throughput of one Table II operator as h sweeps (a=128 fixed)."""
    model = LayerLatencyModel("A100")
    table = ResultTable(
        f"{module} throughput vs hidden size (a={heads}, t={tp})",
        ["hidden", "tflops"],
    )
    for h in sweep.hidden_sweep_for_heads(heads, min_head_dim=8, max_hidden=16384, points=40):
        cfg = TransformerConfig(
            name=f"h{h}",
            hidden_size=h,
            num_heads=heads,
            num_layers=1,
            microbatch=_B,
            seq_len=_S,
            tp_degree=tp,
        )
        for op in layer_gemms(cfg):
            if op.module == module:
                perf = model.gemm_perf(op)
                table.add(h, perf.tflops)
    return table


def run_fig10() -> ResultTable:
    """MLP h->4h and 4h->h throughput vs h (a=128)."""
    up = _operator_sweep("mlp_h_to_4h")
    down = _operator_sweep("mlp_4h_to_h")
    table = ResultTable(
        "Fig 10: MLP GEMM throughput vs hidden size",
        ["direction", "hidden", "tflops"],
    )
    for row in up.rows:
        table.add("h_to_4h", *row)
    for row in down.rows:
        table.add("4h_to_h", *row)
    return table


def check_fig10(table: ResultTable) -> CheckResult:
    checks = []
    for direction, pts in table.series("hidden", "tflops", group="direction").items():
        checks.append(check_monotone_rise(pts, min_fraction=0.6))
        checks.append(check_saturates(pts, spread=0.35))
    return CheckResult.all_of(checks)


def run_fig15() -> ResultTable:
    """QKV transform vs h, including tensor-parallel sizes (Figs 15/16)."""
    table = ResultTable(
        "Fig 15/16: QKV transform throughput vs h and TP degree",
        ["tp", "hidden", "tflops"],
    )
    for tp in (1, 2, 4, 8):
        sub = _operator_sweep("qkv_transform", heads=128, tp=tp)
        for h, tflops in sub.rows:
            table.add(tp, h, tflops)
    return table


def check_fig15(table: ResultTable) -> CheckResult:
    series = table.series("hidden", "tflops", group="tp")
    # Smaller t -> larger per-GPU GEMM -> higher throughput ("t should
    # be as small as possible").
    keys = sorted(series, reverse=True)  # [8, 4, 2, 1]: ordered ascending
    from repro.harness.compare import check_series_ordered

    return check_series_ordered(series, keys, min_fraction=0.75)


def run_fig17() -> ResultTable:
    """KQ^T sweep at a=128 (appendix Fig 17)."""
    return _operator_sweep("attention_score")


def run_fig18() -> ResultTable:
    """Scores x values sweep at a=128 (appendix Fig 18)."""
    return _operator_sweep("attention_over_value")


def run_fig19() -> ResultTable:
    """Post-attention linear projection sweep (appendix Fig 19)."""
    return _operator_sweep("attention_projection")


def check_rises(table: ResultTable) -> CheckResult:
    return check_monotone_rise(table.series("hidden", "tflops")[None], min_fraction=0.6)


# -- Fig 20: vocabulary / logit layer -------------------------------------------


def run_fig20() -> ResultTable:
    """Logit GEMM throughput: coarse v sweep plus the 50257 zoom."""
    h = 2560
    table = ResultTable(
        "Fig 20: logit layer throughput vs vocabulary size",
        ["zoom", "vocab", "tflops"],
        notes="zoomed region brackets GPT-2's 50257 (padded: 50304)",
    )
    coarse = list(sweep.arange_steps(8192, 57344, 2048))
    zoom = list(sweep.vocab_sweep(center=50257, span=64, step=1))
    tflops = default_engine().tflops(shape_array(_B * _S, coarse + zoom, h), "A100")
    for v, t in zip(coarse, tflops[: len(coarse)]):
        table.add("coarse", v, float(t))
    for v, t in zip(zoom, tflops[len(coarse) :]):
        table.add("zoom", v, float(t))
    return table


def check_fig20(table: ResultTable) -> CheckResult:
    zoom = {v: t for z, v, t in table.rows if z == "zoom"}
    aligned = [t for v, t in zoom.items() if v % 64 == 0]
    odd = [t for v, t in zoom.items() if v % 2 == 1]
    checks = [
        CheckResult(
            min(aligned) > max(odd),
            f"all v%64==0 points ({min(aligned):.0f}+ TFLOP/s) beat all "
            f"odd-v points ({max(odd):.0f} TFLOP/s max)",
        ),
        check_ratio(zoom[50304], zoom[50257], 1.05, 5.0, "padding 50257 -> 50304"),
    ]
    return CheckResult.all_of(checks)


# -- Fig 12: FlashAttention ------------------------------------------------------


def run_fig12() -> ResultTable:
    """FlashAttention-2 throughput vs h at a=128: a clean roofline."""
    model = FlashAttentionModel("A100")
    heads = 128
    table = ResultTable(
        "Fig 12: FlashAttention throughput vs hidden size (a=128)",
        ["hidden", "head_dim", "tflops"],
    )
    for h in sweep.hidden_sweep_for_heads(heads, min_head_dim=8, max_hidden=16384, points=40):
        perf = model.evaluate(_B * heads, _S, h // heads)
        table.add(h, h // heads, perf.tflops)
    return table


def check_fig12(table: ResultTable) -> CheckResult:
    pts = table.series("hidden", "tflops")[None]
    return CheckResult.all_of(
        [
            check_monotone_rise(pts, min_fraction=0.75),
            check_saturates(pts, spread=0.25),
        ]
    )


# -- Table II: mapping validation -------------------------------------------------


def run_table2() -> ResultTable:
    """Diff the analytic Table II mapping against the traced transformer.

    Executes a real (small) NumPy forward pass and compares every
    recorded matmul shape to the analytic ``layer_gemms`` prediction.
    """
    cfg = TransformerConfig(
        name="table2",
        hidden_size=128,
        num_heads=8,
        num_layers=2,
        vocab_size=512,
        seq_len=32,
        microbatch=2,
    )

    def traced_columns() -> dict:
        model = DecoderModel(
            vocab_size=cfg.vocab_size,
            max_seq=cfg.seq_len,
            hidden_size=cfg.hidden_size,
            num_heads=cfg.num_heads,
            num_layers=cfg.num_layers,
            rng=np.random.default_rng(0),
        )
        trace = OpTrace()
        ids = np.random.default_rng(1).integers(
            0, cfg.vocab_size, size=(cfg.seq_len, cfg.microbatch)
        )
        model.forward(ids, trace)
        return trace.to_columns()

    # The traced mapping is a pure function of (config, weight seed 0,
    # input seed 1): cache its columnar form in the engine warm store so
    # regeneration skips the NumPy forward pass entirely.
    cols = default_engine().memo_columns(
        "table2.trace",
        (
            "v1",
            cfg.hidden_size,
            cfg.num_heads,
            cfg.num_layers,
            cfg.vocab_size,
            cfg.seq_len,
            cfg.microbatch,
            0,
            1,
        ),
        traced_columns,
    )

    expected = {op.module: op.shape_tuple() for op in layer_gemms(cfg)}
    expected["logit"] = logit_gemm(cfg).shape_tuple()

    table = ResultTable(
        "Table II: analytic GEMM mapping vs executed matmul shapes",
        ["module", "analytic", "traced", "match"],
    )
    traced = {
        module: tuple(shape)
        for module, shape in zip(
            cols["module"].tolist(), cols["shape"].tolist()
        )
    }
    for module, shape in expected.items():
        got = traced.get(module)
        table.add(module, str(shape), str(got), shape == got)
    return table


def check_table2(table: ResultTable) -> CheckResult:
    ok = all(table.column("match"))
    return CheckResult(ok, f"{sum(table.column('match'))}/{len(table)} modules match")
