"""Bulk export of experiment artifacts to a directory.

``repro export --dir out/`` (or :func:`export_all`) writes, for every
registered experiment:

- ``<id>.csv`` — the regenerated table,
- ``<id>.md`` — the table as markdown with the check verdict appended,
- ``<id>.txt`` — the ASCII plot, where a plot hint exists,

plus an ``index.md`` summarizing pass/fail.  This is the "hand the
results to someone else" path: everything a plotting script needs to
redraw the paper's figures from our substrate.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.errors import ExperimentError
from repro.harness.ascii_plot import PLOT_HINTS, plot_experiment
from repro.harness.runner import ExperimentReport, run_all


def _safe_name(exp_id: str) -> str:
    return exp_id.replace("/", "_")


def export_report(report: ExperimentReport, directory: str) -> List[str]:
    """Write one experiment's artifacts; returns the paths written."""
    written = []
    base = os.path.join(directory, _safe_name(report.id))

    csv_path = base + ".csv"
    with open(csv_path, "w") as fh:
        fh.write(report.table.to_csv())
    written.append(csv_path)

    md_path = base + ".md"
    with open(md_path, "w") as fh:
        fh.write(report.table.to_markdown())
        status = "PASS" if report.passed else "FAIL"
        fh.write(f"\n**Check [{status}]**: {report.check.details}\n")
    written.append(md_path)

    if report.id.lower() in PLOT_HINTS:
        txt_path = base + ".txt"
        with open(txt_path, "w") as fh:
            fh.write(plot_experiment(report.id, report.table))
            fh.write("\n")
        written.append(txt_path)
    return written


def export_all(
    directory: str, ids: Optional[Sequence[str]] = None
) -> List[str]:
    """Run the experiments and export everything; returns written paths.

    Creates ``directory`` if needed.  Raises
    :class:`~repro.errors.ExperimentError` if the directory path exists
    but is not a directory.
    """
    if os.path.exists(directory) and not os.path.isdir(directory):
        raise ExperimentError(f"{directory!r} exists and is not a directory")
    os.makedirs(directory, exist_ok=True)

    reports = run_all(ids)
    written: List[str] = []
    for report in reports:
        written.extend(export_report(report, directory))

    index_path = os.path.join(directory, "index.md")
    with open(index_path, "w") as fh:
        fh.write("# Exported experiments\n\n")
        fh.write("| id | paper ref | status | files |\n|---|---|---|---|\n")
        for report in reports:
            status = "✅" if report.passed else "❌"
            name = _safe_name(report.id)
            files = f"[csv]({name}.csv), [md]({name}.md)"
            if report.id.lower() in PLOT_HINTS:
                files += f", [plot]({name}.txt)"
            fh.write(
                f"| `{report.id}` | {report.paper_ref} | {status} | {files} |\n"
            )
    written.append(index_path)
    return written
