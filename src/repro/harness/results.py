"""Tabular experiment results.

Every harness experiment returns a :class:`ResultTable`: named columns,
homogeneous rows, a title, and free-form notes.  The table renders to
markdown (for EXPERIMENTS.md) and CSV, and supports the series
extraction the figure checks need (x/y pairs, optionally grouped by a
key column — e.g. Figs 7/21-47 group by pow2(h/a)).
"""

from __future__ import annotations

import io
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError


class ResultTable:
    """Columns + rows with rendering and series helpers."""

    def __init__(
        self,
        title: str,
        columns: Sequence[str],
        notes: str = "",
    ) -> None:
        if not columns:
            raise ExperimentError("a result table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ExperimentError(f"duplicate column names: {columns}")
        self.title = title
        self.columns = list(columns)
        self.notes = notes
        self._rows: List[Tuple[Any, ...]] = []
        # Columnar chunks appended by add_columns, transposed into
        # _rows only when .rows is first read.  Keeping the table
        # columnar until someone actually needs rows means the SoA hot
        # path (build columns -> check columns) never pays for a
        # row-tuple materialization it does not use.
        self._col_chunks: List[List[Sequence[Any]]] = []

    @property
    def rows(self) -> List[Tuple[Any, ...]]:
        """All rows, materializing any pending columnar chunks."""
        if self._col_chunks:
            for ordered in self._col_chunks:
                self._rows.extend(zip(*ordered))
            self._col_chunks.clear()
        return self._rows

    # -- building -------------------------------------------------------------

    def add(self, *values: Any, **named: Any) -> None:
        """Append one row, positionally or by column name."""
        if values and named:
            raise ExperimentError("pass either positional or named values")
        if named:
            missing = set(self.columns) - set(named)
            if missing:
                raise ExperimentError(f"missing columns: {sorted(missing)}")
            values = tuple(named[c] for c in self.columns)
        if len(values) != len(self.columns):
            raise ExperimentError(
                f"row width {len(values)} != {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.add(*row)

    def add_columns(self, **columns: Sequence[Any]) -> None:
        """Bulk-append rows from equal-length columns.

        The columnar fast path for SoA grid materialization: width and
        column names are validated once, then rows are zipped straight
        into the row list — no per-row validation overhead.
        """
        missing = set(self.columns) - set(columns)
        extra = set(columns) - set(self.columns)
        if missing or extra:
            raise ExperimentError(
                f"column mismatch: missing {sorted(missing)}, "
                f"unknown {sorted(extra)}"
            )
        ordered = [columns[c] for c in self.columns]
        lengths = {len(c) for c in ordered}
        if len(lengths) > 1:
            raise ExperimentError(f"ragged columns: lengths {sorted(lengths)}")
        self._col_chunks.append(ordered)

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows) + sum(len(c[0]) for c in self._col_chunks)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order.

        Pending columnar chunks are read directly — asking for one
        column never forces the row-tuple materialization.
        """
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise ExperimentError(
                f"unknown column {name!r}; have {self.columns}"
            ) from None
        out: List[Any] = [row[idx] for row in self._rows]
        for ordered in self._col_chunks:
            out.extend(ordered[idx])
        return out

    def series(
        self, x: str, y: str, group: Optional[str] = None
    ) -> Dict[Any, List[Tuple[Any, Any]]]:
        """(x, y) pairs, grouped by the ``group`` column (or one group).

        Groups preserve row order; the single-group case uses key
        ``None``.
        """
        xs, ys = self.column(x), self.column(y)
        if group is None:
            return {None: list(zip(xs, ys))}
        gs = self.column(group)
        out: Dict[Any, List[Tuple[Any, Any]]] = {}
        for g, xv, yv in zip(gs, xs, ys):
            out.setdefault(g, []).append((xv, yv))
        return out

    def rows_as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def best_row(self, by: str, minimize: bool = False) -> Dict[str, Any]:
        """Row with the max (default) or min value of one column."""
        if not self.rows:
            raise ExperimentError("table is empty")
        vals = self.column(by)
        pick = min if minimize else max
        idx = vals.index(pick(vals))
        return dict(zip(self.columns, self.rows[idx]))

    # -- rendering -------------------------------------------------------------

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.001:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    def to_markdown(self, max_rows: Optional[int] = None) -> str:
        """GitHub-style markdown table (optionally truncated)."""
        buf = io.StringIO()
        buf.write(f"### {self.title}\n\n")
        if self.notes:
            buf.write(self.notes.strip() + "\n\n")
        buf.write("| " + " | ".join(self.columns) + " |\n")
        buf.write("|" + "|".join("---" for _ in self.columns) + "|\n")
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        for row in rows:
            buf.write("| " + " | ".join(self._fmt(v) for v in row) + " |\n")
        if max_rows is not None and len(self.rows) > max_rows:
            buf.write(f"| ... ({len(self.rows) - max_rows} more rows) |\n")
        return buf.getvalue()

    def to_csv(self) -> str:
        buf = io.StringIO()
        buf.write(",".join(self.columns) + "\n")
        for row in self.rows:
            buf.write(",".join(self._fmt(v) for v in row) + "\n")
        return buf.getvalue()

    def __str__(self) -> str:
        """Fixed-width console rendering."""
        widths = [
            max(len(c), *(len(self._fmt(r[i])) for r in self.rows))
            if self.rows
            else len(c)
            for i, c in enumerate(self.columns)
        ]
        lines = [self.title]
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(
                    self._fmt(v).ljust(w) for v, w in zip(row, widths)
                )
            )
        return "\n".join(lines)
