"""Programmatic runner over the experiment registry.

``run_experiment`` executes one experiment and its qualitative check;
``run_all`` sweeps the registry — serially or across a
``concurrent.futures`` pool — and summarizes.  This is what generates
the paper-vs-measured records in EXPERIMENTS.md and backs the
``repro figure`` / ``repro bench`` CLI verbs.

Each report carries its wall time and the shape-evaluation cache
activity it caused (hits/misses of the global scalar memo,
:func:`repro.engine.cache.scalar_memo_stats`), so regressions in the
hot path show up directly in the rendered reports.  With a thread pool
the cache counters are process-wide, so concurrent experiments'
attributions overlap; totals remain exact.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.analysis.diagnostics import LintReport

from repro.engine import cache as engine_cache
from repro.errors import ExperimentError
from repro.harness.compare import CheckResult
from repro.harness.figures import get_experiment, list_experiments
from repro.harness.results import ResultTable


@dataclass
class ExperimentReport:
    """An experiment's table plus its check outcome and run stats."""

    id: str
    title: str
    paper_ref: str
    table: ResultTable
    check: CheckResult
    wall_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Preflight shape-lint over the experiment's declared model
    #: configs (``Experiment.lint_configs``); ``None`` when the
    #: experiment declares none.
    lint: Optional["LintReport"] = None

    @property
    def passed(self) -> bool:
        return self.check.passed

    @property
    def lint_warnings(self) -> int:
        """Findings at WARNING or above in the preflight shape lint."""
        from repro.core.rules import Severity

        if self.lint is None:
            return 0
        return len(self.lint.findings(Severity.WARNING))

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def render(self, max_rows: Optional[int] = 30) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"== {self.id} ({self.paper_ref}) [{status}] ==",
            self.title,
            "",
            str(self.table) if max_rows is None else _truncate(self.table, max_rows),
            "",
            f"check: {self.check.details}",
            f"wall time: {self.wall_time_s * 1e3:.1f} ms, "
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses",
        ]
        if self.lint_warnings:
            lines.append(
                f"lint: {self.lint_warnings} shape warning(s) on this "
                "experiment's configs — see 'repro lint <model>'"
            )
        return "\n".join(lines)


def _truncate(table: ResultTable, max_rows: int) -> str:
    text = str(table)
    lines = text.splitlines()
    head = 3  # title + header + rule
    if len(lines) <= head + max_rows:
        return text
    kept = lines[: head + max_rows]
    kept.append(f"... ({len(lines) - head - max_rows} more rows)")
    return "\n".join(kept)


def preflight_lint(exp, gpu: str = "A100") -> Optional["LintReport"]:
    """Shape-lint an experiment's declared configs before it runs.

    Intentional negative cases (the paper's *inefficient* shapes, e.g.
    ``c1`` or unpadded GPT-NeoX vocabularies) still lint with warnings;
    the preflight only surfaces them, it never blocks the run.
    """
    if not exp.lint_configs:
        return None
    from repro.analysis import ShapeLinter
    from repro.core.config import get_model

    configs = [get_model(name) for name in exp.lint_configs]
    return ShapeLinter(gpu).lint_grid(configs)


def run_experiment(exp_id: str) -> ExperimentReport:
    """Run one experiment by id, including its qualitative check.

    Experiments that declare ``lint_configs`` get a preflight shape
    lint whose report rides along on the
    :attr:`ExperimentReport.lint` field.
    """
    exp = get_experiment(exp_id)
    lint = preflight_lint(exp)
    before = engine_cache.scalar_memo_stats().snapshot()
    start = time.perf_counter()
    table = exp.run()
    check = exp.check(table)
    elapsed = time.perf_counter() - start
    used = engine_cache.scalar_memo_stats().delta(before)
    return ExperimentReport(
        id=exp.id,
        title=exp.title,
        paper_ref=exp.paper_ref,
        table=table,
        check=check,
        wall_time_s=elapsed,
        cache_hits=used.hits,
        cache_misses=used.misses,
        lint=lint,
    )


_EXECUTORS = {
    "thread": ThreadPoolExecutor,
    "process": ProcessPoolExecutor,
}


def run_all(
    ids: Optional[Sequence[str]] = None,
    parallel: int = 1,
    executor: str = "thread",
) -> List[ExperimentReport]:
    """Run a set of experiments (default: every top-level one).

    Parameters
    ----------
    parallel:
        Number of concurrent workers; ``1`` (default) runs serially in
        this thread.
    executor:
        ``"thread"`` (shares the in-process shape caches — the fast,
        default choice since experiments are NumPy-bound) or
        ``"process"`` (full isolation; each worker warms its own cache).

    Report order always matches ``ids`` regardless of completion order.
    """
    if ids is None:
        ids = [e.id for e in list_experiments()]
    if parallel < 1:
        raise ExperimentError(f"parallel must be >= 1, got {parallel}")
    if parallel == 1:
        return [run_experiment(i) for i in ids]
    try:
        pool_cls = _EXECUTORS[executor]
    except KeyError:
        raise ExperimentError(
            f"unknown executor {executor!r}; expected one of {sorted(_EXECUTORS)}"
        ) from None
    with pool_cls(max_workers=parallel) as pool:
        return list(pool.map(run_experiment, ids))


def to_markdown_report(
    reports: Sequence[ExperimentReport], max_rows: int = 25
) -> str:
    """Render a full markdown reproduction report (``repro report``).

    One section per experiment: status, the paper reference, the
    regenerated table (truncated), and the qualitative check detail.
    """
    passed = sum(1 for r in reports if r.passed)
    total_s = sum(r.wall_time_s for r in reports)
    lines = [
        "# Reproduction report",
        "",
        f"{passed}/{len(reports)} experiments reproduce the paper's "
        "qualitative shape.",
        f"Total experiment wall time: {total_s:.2f} s.",
        "",
        "| id | paper ref | status | wall time | cache hit rate | title |",
        "|---|---|---|---|---|---|",
    ]
    for rep in reports:
        status = "✅" if rep.passed else "❌"
        lines.append(
            f"| `{rep.id}` | {rep.paper_ref} | {status} "
            f"| {rep.wall_time_s * 1e3:.0f} ms "
            f"| {100 * rep.cache_hit_rate:.0f}% | {rep.title} |"
        )
    lines.append("")
    for rep in reports:
        status = "PASS" if rep.passed else "FAIL"
        lines.append(f"## `{rep.id}` — {rep.title} [{status}]")
        lines.append("")
        lines.append(f"Paper reference: {rep.paper_ref}")
        lines.append("")
        lines.append(rep.table.to_markdown(max_rows=max_rows))
        lines.append(f"Check: {rep.check.details}")
        lines.append("")
    return "\n".join(lines)


def summary(reports: Sequence[ExperimentReport]) -> str:
    """One line per experiment plus pass/time/cache totals."""
    lines = []
    for rep in reports:
        status = "PASS" if rep.passed else "FAIL"
        lines.append(
            f"{status}  {rep.id:<12} {rep.paper_ref:<22} "
            f"{rep.wall_time_s * 1e3:7.1f} ms  {rep.title}"
        )
    passed = sum(1 for r in reports if r.passed)
    total_s = sum(r.wall_time_s for r in reports)
    hits = sum(r.cache_hits for r in reports)
    misses = sum(r.cache_misses for r in reports)
    lines.append(
        f"\n{passed}/{len(reports)} experiments reproduce the paper's shape "
        f"({total_s:.2f} s; shape cache {hits} hits / {misses} misses)"
    )
    return "\n".join(lines)
