"""Programmatic runner over the experiment registry.

``run_experiment`` executes one experiment and its qualitative check;
``run_all`` sweeps the registry — serially or across a
``concurrent.futures`` pool — and summarizes.  This is what generates
the paper-vs-measured records in EXPERIMENTS.md and backs the
``repro figure`` / ``repro bench`` / ``repro run`` CLI verbs.

Each report carries its wall time and the shape-evaluation cache
activity it caused (hits/misses of the global scalar memo,
:func:`repro.engine.cache.scalar_memo_stats`), so regressions in the
hot path show up directly in the rendered reports.  With a thread pool
the cache counters are process-wide, so concurrent experiments'
attributions overlap; totals remain exact.

Sweeps can run **resiliently** (:func:`run_all_resilient`, or
``run_all`` with any of ``retries`` / ``timeout_s`` / ``journal`` /
``isolate``): one raising or hanging experiment no longer aborts the
sweep — it yields a failure report carrying the exception type and
retry count while every other experiment completes.  With a journal,
completed experiments are checkpointed so a killed sweep resumes where
it left off (``repro run --resume``).
"""

from __future__ import annotations

import difflib
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.analysis.diagnostics import LintReport
    from repro.resilience.checkpoint import SweepJournal

from repro.engine import cache as engine_cache
from repro.engine.core import default_engine
from repro.errors import ExperimentError
from repro.harness.compare import CheckResult
from repro.harness.figures import get_experiment, list_experiments
from repro.harness.results import ResultTable
from repro.observability import metrics as _metrics
from repro.observability import span as _span
from repro.resilience.execute import RetryPolicy, TaskOutcome, execute_tasks
from repro.resilience.faults import fault_site


@dataclass
class ExperimentReport:
    """An experiment's table plus its check outcome and run stats."""

    id: str
    title: str
    paper_ref: str
    table: ResultTable
    check: CheckResult
    wall_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Engine cache traffic (memory LRU + disk store lookups of the
    #: process-wide default engine) attributed to this experiment.
    #: Separate from the scalar memo so grid-path experiments show
    #: their cache behaviour instead of a misleading ``0 / 0``.
    engine_hits: int = 0
    engine_misses: int = 0
    #: Preflight shape-lint over the experiment's declared model
    #: configs (``Experiment.lint_configs``); ``None`` when the
    #: experiment declares none.
    lint: Optional["LintReport"] = None
    #: Set on failure reports from a resilient sweep: the exception
    #: message and class name the experiment task died with.
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: Executions under the retry policy (1 = first try succeeded).
    attempts: int = 1
    #: True when this report was restored from a resume journal rather
    #: than re-executed (its table is a placeholder).
    restored: bool = False

    @property
    def passed(self) -> bool:
        return self.check.passed

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    @property
    def lint_warnings(self) -> int:
        """Findings at WARNING or above in the preflight shape lint."""
        from repro.core.rules import Severity

        if self.lint is None:
            return 0
        return len(self.lint.findings(Severity.WARNING))

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def render(self, max_rows: Optional[int] = 30) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"== {self.id} ({self.paper_ref}) [{status}] ==",
            self.title,
            "",
            str(self.table) if max_rows is None else _truncate(self.table, max_rows),
            "",
            f"check: {self.check.details}",
            f"wall time: {self.wall_time_s * 1e3:.1f} ms, "
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses, "
            f"engine: {self.engine_hits} hits / {self.engine_misses} misses",
        ]
        if self.error is not None:
            lines.append(
                f"error: {self.error_type}: {self.error} "
                f"({self.attempts} attempt(s))"
            )
        if self.lint_warnings:
            lines.append(
                f"lint: {self.lint_warnings} shape warning(s) on this "
                "experiment's configs — see 'repro lint <model>'"
            )
        return "\n".join(lines)


def _truncate(table: ResultTable, max_rows: int) -> str:
    text = str(table)
    lines = text.splitlines()
    head = 3  # title + header + rule
    if len(lines) <= head + max_rows:
        return text
    kept = lines[: head + max_rows]
    kept.append(f"... ({len(lines) - head - max_rows} more rows)")
    return "\n".join(kept)


def preflight_lint(exp, gpu: str = "A100") -> Optional["LintReport"]:
    """Shape-lint an experiment's declared configs before it runs.

    Intentional negative cases (the paper's *inefficient* shapes, e.g.
    ``c1`` or unpadded GPT-NeoX vocabularies) still lint with warnings;
    the preflight only surfaces them, it never blocks the run.
    """
    if not exp.lint_configs:
        return None
    from repro.analysis import ShapeLinter
    from repro.core.config import get_model

    configs = [get_model(name) for name in exp.lint_configs]
    return ShapeLinter(gpu).lint_grid(configs)


def run_experiment(exp_id: str) -> ExperimentReport:
    """Run one experiment by id, including its qualitative check.

    Experiments that declare ``lint_configs`` get a preflight shape
    lint whose report rides along on the
    :attr:`ExperimentReport.lint` field.
    """
    exp = get_experiment(exp_id)
    with _span("runner.experiment", id=exp.id) as sp:
        fault_site("runner.experiment", id=exp.id)
        lint = preflight_lint(exp)
        engine = default_engine()
        before = engine_cache.scalar_memo_stats().snapshot()
        mem_before = engine.memory_stats.snapshot()
        disk_before = (
            engine.disk_stats.snapshot() if engine.disk_stats is not None else None
        )
        start = time.perf_counter()
        table = exp.run()
        check = exp.check(table)
        elapsed = time.perf_counter() - start
        used = engine_cache.scalar_memo_stats().delta(before)
        engine_used = engine.memory_stats.delta(mem_before)
        engine_hits, engine_misses = engine_used.hits, engine_used.misses
        if disk_before is not None and engine.disk_stats is not None:
            disk_used = engine.disk_stats.delta(disk_before)
            # A disk hit resolved a memory miss; don't double-count it
            # as a miss at the experiment level.
            engine_hits += disk_used.hits
            engine_misses = max(0, engine_misses - disk_used.hits)
        sp.set(
            passed=check.passed,
            rows=len(table.rows),
            memo_hits=used.hits,
            memo_misses=used.misses,
            engine_hits=engine_hits,
            engine_misses=engine_misses,
        )
        reg = _metrics()
        reg.counter("runner.experiments").inc()
        reg.counter("runner.memo_hits").inc(used.hits)
        reg.counter("runner.memo_misses").inc(used.misses)
        reg.histogram("runner.experiment_s").observe(elapsed)
        return ExperimentReport(
            id=exp.id,
            title=exp.title,
            paper_ref=exp.paper_ref,
            table=table,
            check=check,
            wall_time_s=elapsed,
            cache_hits=used.hits,
            cache_misses=used.misses,
            engine_hits=engine_hits,
            engine_misses=engine_misses,
            lint=lint,
        )


def validate_ids(ids: Sequence[str]) -> List[str]:
    """Resolve all experiment ids up front, or raise one error naming
    every unknown id with its closest valid matches.

    Raising before any work starts (rather than deep inside a worker
    pool, mid-sweep) turns a typo into an instant, actionable message
    instead of a partially completed run.
    """
    known = [e.id for e in list_experiments(include_family_members=True)]
    resolved: List[str] = []
    problems: List[str] = []
    for raw in ids:
        canon = str(raw).strip().lower()
        if canon in known:
            resolved.append(canon)
            continue
        close = difflib.get_close_matches(canon, known, n=3, cutoff=0.5)
        hint = f" (did you mean: {', '.join(close)}?)" if close else ""
        problems.append(f"{raw!r}{hint}")
    if problems:
        raise ExperimentError(
            f"unknown experiment id(s): {'; '.join(problems)}. "
            "See 'repro figures' for the registry."
        )
    return resolved


_EXECUTORS = {
    "thread": ThreadPoolExecutor,
    "process": ProcessPoolExecutor,
}


@dataclass
class SweepResult:
    """Everything a resilient sweep produced.

    ``reports`` is one per requested id, in request order (restored,
    executed, and failure reports alike); ``outcomes`` covers only the
    ids actually executed this run; ``skipped`` names the ids restored
    from the resume journal; ``downgrades`` lists executor-tier
    fallbacks as ``(from_tier, to_tier, reason)``.
    """

    reports: List[ExperimentReport] = field(default_factory=list)
    outcomes: List[TaskOutcome] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    downgrades: List[tuple] = field(default_factory=list)
    executor: str = "serial"

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.reports)

    def failures(self) -> List[ExperimentReport]:
        return [r for r in self.reports if r.error is not None]


def _failure_report(outcome: TaskOutcome) -> ExperimentReport:
    """A per-experiment error outcome rendered as a failing report."""
    try:
        exp = get_experiment(outcome.task_id)
        title, paper_ref = exp.title, exp.paper_ref
    except ExperimentError:  # pragma: no cover - ids validated up front
        title, paper_ref = outcome.task_id, "?"
    table = ResultTable(
        f"{outcome.task_id}: no results ({outcome.status.value})", ["note"]
    )
    table.add(f"{outcome.error_type}: {outcome.error}")
    return ExperimentReport(
        id=outcome.task_id,
        title=title,
        paper_ref=paper_ref,
        table=table,
        check=CheckResult(
            passed=False,
            details=(
                f"{outcome.status.value} after {outcome.attempts} "
                f"attempt(s): {outcome.error_type}: {outcome.error}"
            ),
        ),
        wall_time_s=outcome.wall_time_s,
        error=outcome.error,
        error_type=outcome.error_type,
        attempts=outcome.attempts,
    )


def _restored_report(entry: Dict) -> ExperimentReport:
    """Rebuild a completed experiment's report from its journal entry."""
    payload = entry.get("payload", {})
    table = ResultTable("restored from resume journal", ["note"])
    table.add("experiment completed in a previous run; table not re-generated")
    return ExperimentReport(
        id=entry["id"],
        title=payload.get("title", entry["id"]),
        paper_ref=payload.get("paper_ref", "?"),
        table=table,
        check=CheckResult(
            passed=bool(payload.get("passed", False)),
            details=payload.get("check_details", "restored from journal"),
        ),
        wall_time_s=float(payload.get("wall_time_s", 0.0)),
        attempts=int(entry.get("attempts", 1)),
        restored=True,
    )


def _journal_payload(report: ExperimentReport) -> Dict:
    return {
        "title": report.title,
        "paper_ref": report.paper_ref,
        "passed": report.passed,
        "check_details": report.check.details,
        "wall_time_s": round(report.wall_time_s, 6),
    }


def sweep_journal(
    path: "str", ids: Sequence[str], resume: bool = False
) -> "SweepJournal":
    """Open (or resume) the checkpoint journal for a run_all sweep.

    The journal's sweep id is derived from the sorted experiment ids,
    so resuming against a journal from a *different* sweep fails loudly
    instead of skipping the wrong work.
    """
    from repro.resilience.checkpoint import SweepJournal

    sweep_id = "run_all:" + ",".join(sorted(ids))
    return SweepJournal(path, sweep_id=sweep_id, resume=resume)


def run_all_resilient(
    ids: Optional[Sequence[str]] = None,
    parallel: int = 1,
    executor: str = "thread",
    retries: int = 0,
    timeout_s: Optional[float] = None,
    journal: Optional["SweepJournal"] = None,
    policy: Optional[RetryPolicy] = None,
) -> SweepResult:
    """Run experiments with failure isolation, deadlines, and resume.

    Every experiment yields a report: failures become error reports
    (exception type, message, attempt count) instead of aborting the
    sweep.  With ``journal``, each completion is checkpointed as it
    happens and already-completed ids are restored instead of re-run.
    """
    if ids is None:
        ids = [e.id for e in list_experiments()]
    ids = validate_ids(ids)
    if policy is None:
        policy = RetryPolicy(retries=retries)

    by_id: Dict[str, ExperimentReport] = {}
    skipped: List[str] = []
    pending = list(ids)
    if journal is not None:
        completed = journal.completed()
        for exp_id in ids:
            if exp_id in completed:
                entry = journal.entry_for(exp_id)
                assert entry is not None
                by_id[exp_id] = _restored_report(entry)
                skipped.append(exp_id)
        pending = [i for i in ids if i not in completed]

    def on_outcome(outcome: TaskOutcome) -> None:
        if journal is None:
            return
        if outcome.ok:
            journal.record(
                outcome.task_id,
                "ok",
                payload=_journal_payload(outcome.value),
                attempts=outcome.attempts,
            )
        else:
            journal.record(
                outcome.task_id,
                outcome.status.value,
                payload={
                    "error": outcome.error,
                    "error_type": outcome.error_type,
                },
                attempts=outcome.attempts,
            )

    execution = execute_tasks(
        run_experiment,
        pending,
        policy=policy,
        timeout_s=timeout_s,
        parallel=parallel,
        executor=executor,
        on_outcome=on_outcome,
    )
    for outcome in execution.outcomes:
        if outcome.ok:
            report = outcome.value
            report.attempts = outcome.attempts
            by_id[outcome.task_id] = report
        else:
            by_id[outcome.task_id] = _failure_report(outcome)

    return SweepResult(
        reports=[by_id[i] for i in ids],
        outcomes=execution.outcomes,
        skipped=skipped,
        downgrades=execution.downgrades,
        executor=execution.executor,
    )


def run_all(
    ids: Optional[Sequence[str]] = None,
    parallel: int = 1,
    executor: str = "thread",
    retries: int = 0,
    timeout_s: Optional[float] = None,
    journal: Optional["SweepJournal"] = None,
    isolate: bool = False,
) -> List[ExperimentReport]:
    """Run a set of experiments (default: every top-level one).

    Parameters
    ----------
    parallel:
        Number of concurrent workers; ``1`` (default) runs serially in
        this thread.
    executor:
        ``"thread"`` (shares the in-process shape caches — the fast,
        default choice since experiments are NumPy-bound) or
        ``"process"`` (full isolation; each worker warms its own cache).
    retries, timeout_s, journal, isolate:
        Any of these switches the sweep to the resilient path
        (:func:`run_all_resilient`): per-experiment failures become
        error reports instead of aborting the sweep, each attempt
        honours the deadline, and completions are checkpointed to the
        journal for ``--resume``.

    Report order always matches ``ids`` regardless of completion order.
    """
    if parallel < 1:
        raise ExperimentError(f"parallel must be >= 1, got {parallel}")
    if executor not in _EXECUTORS:
        raise ExperimentError(
            f"unknown executor {executor!r}; expected one of {sorted(_EXECUTORS)}"
        )
    if ids is None:
        ids = [e.id for e in list_experiments()]
    ids = validate_ids(ids)
    if isolate or retries or timeout_s is not None or journal is not None:
        return run_all_resilient(
            ids,
            parallel=parallel,
            executor=executor,
            retries=retries,
            timeout_s=timeout_s,
            journal=journal,
        ).reports
    if parallel == 1:
        return [run_experiment(i) for i in ids]
    with _EXECUTORS[executor](max_workers=parallel) as pool:
        return list(pool.map(run_experiment, ids))


def to_markdown_report(
    reports: Sequence[ExperimentReport], max_rows: int = 25
) -> str:
    """Render a full markdown reproduction report (``repro report``).

    One section per experiment: status, the paper reference, the
    regenerated table (truncated), and the qualitative check detail.
    """
    passed = sum(1 for r in reports if r.passed)
    total_s = sum(r.wall_time_s for r in reports)
    lines = [
        "# Reproduction report",
        "",
        f"{passed}/{len(reports)} experiments reproduce the paper's "
        "qualitative shape.",
        f"Total experiment wall time: {total_s:.2f} s.",
        "",
        "| id | paper ref | status | wall time | memo (hits/misses) "
        "| engine (hits/misses) | title |",
        "|---|---|---|---|---|---|---|",
    ]
    for rep in reports:
        status = "✅" if rep.passed else "❌"
        lines.append(
            f"| `{rep.id}` | {rep.paper_ref} | {status} "
            f"| {rep.wall_time_s * 1e3:.0f} ms "
            f"| {rep.cache_hits}/{rep.cache_misses} "
            f"({100 * rep.cache_hit_rate:.0f}%) "
            f"| {rep.engine_hits}/{rep.engine_misses} | {rep.title} |"
        )
    lines.append("")
    for rep in reports:
        status = "PASS" if rep.passed else "FAIL"
        lines.append(f"## `{rep.id}` — {rep.title} [{status}]")
        lines.append("")
        lines.append(f"Paper reference: {rep.paper_ref}")
        lines.append("")
        lines.append(rep.table.to_markdown(max_rows=max_rows))
        lines.append(f"Check: {rep.check.details}")
        lines.append("")
    return "\n".join(lines)


def summary(reports: Sequence[ExperimentReport]) -> str:
    """One line per experiment plus pass/time/cache totals.

    Resilient-sweep artifacts show up inline: failure reports render as
    ``ERROR``/``TIMEOUT`` with their exception and attempt count, and
    journal-restored reports are marked ``(restored)``.
    """
    lines = []
    for rep in reports:
        if rep.error is not None:
            status = "TIMEOUT" if rep.error_type == "TaskTimeoutError" else "ERROR"
        else:
            status = "PASS" if rep.passed else "FAIL"
        note = ""
        if rep.error is not None:
            note = f"  [{rep.error_type}: {rep.error}; {rep.attempts} attempt(s)]"
        elif rep.restored:
            note = "  [restored]"
        elif rep.retries:
            note = f"  [{rep.attempts} attempts]"
        lines.append(
            f"{status:<7} {rep.id:<12} {rep.paper_ref:<22} "
            f"{rep.wall_time_s * 1e3:7.1f} ms  {rep.title}{note}"
        )
    passed = sum(1 for r in reports if r.passed)
    errors = sum(1 for r in reports if r.error is not None)
    total_s = sum(r.wall_time_s for r in reports)
    hits = sum(r.cache_hits for r in reports)
    misses = sum(r.cache_misses for r in reports)
    tail = (
        f"\n{passed}/{len(reports)} experiments reproduce the paper's shape "
        f"({total_s:.2f} s; shape cache {hits} hits / {misses} misses)"
    )
    if errors:
        tail += f"; {errors} failed with errors"
    lines.append(tail)
    return "\n".join(lines)
