"""Programmatic runner over the experiment registry.

``run_experiment`` executes one experiment and its qualitative check;
``run_all`` sweeps the registry and summarizes — this is what generates
the paper-vs-measured records in EXPERIMENTS.md and backs the
``repro figure`` CLI verb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.harness.compare import CheckResult
from repro.harness.figures import get_experiment, list_experiments
from repro.harness.results import ResultTable


@dataclass
class ExperimentReport:
    """An experiment's table plus its check outcome."""

    id: str
    title: str
    paper_ref: str
    table: ResultTable
    check: CheckResult

    @property
    def passed(self) -> bool:
        return self.check.passed

    def render(self, max_rows: Optional[int] = 30) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"== {self.id} ({self.paper_ref}) [{status}] ==",
            self.title,
            "",
            str(self.table) if max_rows is None else _truncate(self.table, max_rows),
            "",
            f"check: {self.check.details}",
        ]
        return "\n".join(lines)


def _truncate(table: ResultTable, max_rows: int) -> str:
    text = str(table)
    lines = text.splitlines()
    head = 3  # title + header + rule
    if len(lines) <= head + max_rows:
        return text
    kept = lines[: head + max_rows]
    kept.append(f"... ({len(lines) - head - max_rows} more rows)")
    return "\n".join(kept)


def run_experiment(exp_id: str) -> ExperimentReport:
    """Run one experiment by id, including its qualitative check."""
    exp = get_experiment(exp_id)
    table = exp.run()
    check = exp.check(table)
    return ExperimentReport(
        id=exp.id,
        title=exp.title,
        paper_ref=exp.paper_ref,
        table=table,
        check=check,
    )


def run_all(ids: Optional[Sequence[str]] = None) -> List[ExperimentReport]:
    """Run a set of experiments (default: every top-level one)."""
    if ids is None:
        ids = [e.id for e in list_experiments()]
    return [run_experiment(i) for i in ids]


def to_markdown_report(
    reports: Sequence[ExperimentReport], max_rows: int = 25
) -> str:
    """Render a full markdown reproduction report (``repro report``).

    One section per experiment: status, the paper reference, the
    regenerated table (truncated), and the qualitative check detail.
    """
    passed = sum(1 for r in reports if r.passed)
    lines = [
        "# Reproduction report",
        "",
        f"{passed}/{len(reports)} experiments reproduce the paper's "
        "qualitative shape.",
        "",
        "| id | paper ref | status | title |",
        "|---|---|---|---|",
    ]
    for rep in reports:
        status = "✅" if rep.passed else "❌"
        lines.append(f"| `{rep.id}` | {rep.paper_ref} | {status} | {rep.title} |")
    lines.append("")
    for rep in reports:
        status = "PASS" if rep.passed else "FAIL"
        lines.append(f"## `{rep.id}` — {rep.title} [{status}]")
        lines.append("")
        lines.append(f"Paper reference: {rep.paper_ref}")
        lines.append("")
        lines.append(rep.table.to_markdown(max_rows=max_rows))
        lines.append(f"Check: {rep.check.details}")
        lines.append("")
    return "\n".join(lines)


def summary(reports: Sequence[ExperimentReport]) -> str:
    """One line per experiment plus a pass count."""
    lines = []
    for rep in reports:
        status = "PASS" if rep.passed else "FAIL"
        lines.append(f"{status}  {rep.id:<12} {rep.paper_ref:<22} {rep.title}")
    passed = sum(1 for r in reports if r.passed)
    lines.append(f"\n{passed}/{len(reports)} experiments reproduce the paper's shape")
    return "\n".join(lines)
