"""Kernel-level experiments: the paper's Figs 5, 6, 7, 8, 9, 14, 21-47.

These sweep raw GEMM/BMM shapes through the GPU substrate, reproducing
the plots of Sec V and the attention-BMM appendix family.  All sweeps
evaluate through the vectorized engine (:mod:`repro.engine`) — one
batched call per series instead of a Python loop of scalar model calls —
which is bit-identical to the scalar path and hits the shared cache on
regeneration.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.engine import default_engine, shape_array
from repro.gpu.bmm_model import BmmShape
from repro.gpu.tiles import default_tile
from repro.harness import sweep
from repro.harness.compare import (
    CheckResult,
    check_all_equal,
    check_monotone_rise,
    check_sawtooth,
    check_series_ordered,
)
from repro.harness.results import ResultTable

#: Attention-head counts of the appendix family (Figs 21-33 / 35-47).
APPENDIX_HEAD_COUNTS = (8, 12, 16, 20, 24, 32, 40, 64, 80, 96, 128, 256, 512)

# Default workload parameters shared by the attention sweeps (paper
# Sec IV: GPT-NeoX-style layers at s=2048).
_B, _S = 4, 2048


# -- Fig 5: plain GEMM sweeps -------------------------------------------------


def run_fig5() -> ResultTable:
    """Square GEMM throughput on V100 and A100, fixed vs auto tiles.

    Three series: (a) V100 auto, (b) A100 with the 128x256 tile pinned
    (raw wave quantization), (c) A100 with auto tile selection
    (quantization lessened).
    """
    table = ResultTable(
        "Fig 5: GEMM throughput vs size",
        ["series", "size", "tflops"],
        notes="m=n=k sweep; series b pins the 128x256 tile, series c "
        "lets the model pick (PyTorch-like).",
    )
    sizes = sweep.arange_steps(1024, 9216, 256)
    engine = default_engine()
    square = shape_array(sizes, sizes, sizes)
    v100 = engine.tflops(square, "V100")
    a100_fixed = engine.tflops(square, "A100", tile=default_tile())
    a100_auto = engine.tflops(square, "A100")
    for i, n in enumerate(sizes):
        table.add("v100-auto", n, float(v100[i]))
        table.add("a100-fixed", n, float(a100_fixed[i]))
        table.add("a100-auto", n, float(a100_auto[i]))
    return table


def check_fig5(table: ResultTable) -> CheckResult:
    series = table.series("size", "tflops", group="series")
    rising = check_monotone_rise(series["a100-fixed"], min_fraction=0.55)
    saw = check_sawtooth(series["a100-fixed"], min_drops=3)
    # Auto selection should never lose to the pinned tile by more than
    # rounding, and should win somewhere.
    fixed = dict(series["a100-fixed"])
    auto = dict(series["a100-auto"])
    never_worse = all(auto[n] >= fixed[n] * 0.999 for n in fixed)
    wins = sum(1 for n in fixed if auto[n] > fixed[n] * 1.001)
    lessened = CheckResult(
        never_worse and wins >= 1,
        f"auto >= fixed everywhere: {never_worse}; strict wins: {wins}",
    )
    return CheckResult.all_of([rising, saw, lessened])


# -- Fig 6: BMM sweeps --------------------------------------------------------


def run_fig6() -> ResultTable:
    """BMM throughput vs matrix size for several batch counts."""
    table = ResultTable(
        "Fig 6: BMM throughput",
        ["batch", "size", "k", "tflops"],
        notes="batch x (size, k) x (k, size) — the attention-score "
        "shape family at s=size, k=head dim.",
    )
    combos = [
        BmmShape(batch=batch, m=size, k=k, n=size)
        for batch in (16, 64, 128, 256)
        for size in (256, 512, 1024, 2048, 4096)
        for k in (64, 128)
    ]
    tflops = default_engine().tflops(sweep.bmm_shape_array(combos), "A100")
    for shape, tf in zip(combos, tflops):
        table.add(shape.batch, shape.m, shape.k, float(tf))
    return table


def check_fig6(table: ResultTable) -> CheckResult:
    checks = []
    by_key: dict = {}
    for batch, size, k, tflops in table.rows:
        by_key.setdefault((batch, k), []).append((size, tflops))
    for pts in by_key.values():
        checks.append(check_monotone_rise(pts, min_fraction=0.6))
    return CheckResult.all_of(checks)


# -- Figs 7 / 21-33 / 35-47: attention BMMs split by pow2(h/a) -----------------


def _attention_sweep(
    kind: str, heads: int, gpu: str = "A100", max_hidden: "int | None" = None
) -> ResultTable:
    """Throughput vs h for one head count, keyed by pow2(h/a).

    ``kind``: ``score`` for KQ^T, ``aov`` for attention-over-value.
    Walks h in steps of 8*a so the pow-2 series from 8 to 64+ all
    appear, exactly like the appendix figures.  The range extends with
    the head count so every pow-2 bucket gets comparable-h neighbours.
    """
    table = ResultTable(
        f"Attention {kind} BMM, a={heads}",
        ["hidden", "head_dim", "pow2", "tflops"],
        notes="series key: largest power of two dividing h/a, capped at 64",
    )
    grid = sweep.attention_grid(kind, heads, b=_B, s=_S, max_hidden=max_hidden)
    result = default_engine().evaluate_grid(grid, gpu)
    table.add_columns(
        **result.columns(("hidden", "head_dim", "pow2", "tflops"))
    )
    return table


def make_attention_experiment(kind: str, heads: int) -> "Callable[[], ResultTable]":
    """Bind an appendix-family sweep for one head count."""

    def run() -> ResultTable:
        return _attention_sweep(kind, heads)

    return run


def check_pow2_ordering(table: ResultTable) -> CheckResult:
    """Higher pow2(h/a) series lie above lower ones (Figs 7/21-47)."""
    series = table.series("hidden", "tflops", group="pow2")
    keys = sorted(series)
    return check_series_ordered(series, keys, min_fraction=0.7)


def run_fig7() -> ResultTable:
    """Fig 7: score and AOV sweeps at a=32, keyed by pow2(h/a)."""
    score = _attention_sweep("score", 32)
    aov = _attention_sweep("aov", 32)
    table = ResultTable(
        "Fig 7: attention BMM throughput (a=32) by pow2(h/a)",
        ["kind", "hidden", "head_dim", "pow2", "tflops"],
    )
    for row in score.rows:
        table.add("score", *row)
    for row in aov.rows:
        table.add("aov", *row)
    return table


def check_fig7(table: ResultTable) -> CheckResult:
    checks = []
    for kind in ("score", "aov"):
        sub = ResultTable("sub", ["hidden", "head_dim", "pow2", "tflops"])
        for row in table.rows:
            if row[0] == kind:
                sub.add(*row[1:])
        checks.append(check_pow2_ordering(sub))
    return CheckResult.all_of(checks)


# -- Figs 8 / 9 / 34: fixed h/a = 64 sweeps -----------------------------------


def _fixed_head_dim_sweep(kind: str, gpu: str = "A100") -> ResultTable:
    # Pin the default 128x256 kernel: cuBLAS strided-batched GEMM does
    # not re-tune the tile per batch count, and letting our oracle
    # selector re-optimize at every point would hide the very wave
    # cliffs this figure exists to show.
    table = ResultTable(
        f"Attention {kind} BMM at fixed h/a=64",
        ["hidden", "heads", "tflops"],
        notes="h = 64a as a sweeps; sawtooth period differs per a "
        "(wave quantization).",
    )
    grid = sweep.head_dim_preserving_grid(kind, 64, b=_B, s=_S, max_hidden=12288)
    result = default_engine().evaluate_grid(grid, gpu, tile=default_tile())
    table.add_columns(**result.columns(("hidden", "heads", "tflops")))
    return table


def run_fig8() -> ResultTable:
    return _fixed_head_dim_sweep("score")


def run_fig9() -> ResultTable:
    return _fixed_head_dim_sweep("aov")


def check_fig8_9(table: ResultTable) -> CheckResult:
    pts = table.series("hidden", "tflops")[None]
    return CheckResult.all_of(
        [
            check_monotone_rise(pts, min_fraction=0.55),
            # Wave-quantization ripple: its amplitude decays as the
            # block count grows (these BMMs launch hundreds of blocks
            # per point, so the tail wave is a small fraction); require
            # a pervasive >=0.2% sawtooth rather than deep cliffs.
            check_sawtooth(pts, min_drops=5, drop_rel=0.002),
        ]
    )


# -- Fig 14: dimension ordering -----------------------------------------------


def run_fig14() -> ResultTable:
    """(2048,4,n)x(n,3n) vs (4,2048,n)x(n,3n) vs (8192,n)x(n,3n).

    The 3-D orderings collapse to the same 2-D GEMM (8192, n) x (n, 3n)
    because the batched dimension is just row blocking; all three must
    therefore model identically.
    """
    table = ResultTable(
        "Fig 14: GEMM dimension-ordering invariance",
        ["ordering", "n", "tflops"],
    )
    ns = (512, 1024, 2048, 4096)
    tflops = default_engine().tflops(
        shape_array(8192, [3 * n for n in ns], list(ns)), "A100"
    )
    for n, flat in zip(ns, tflops):
        # Both 3-D layouts flatten the leading two dims into m=8192, so
        # all three orderings are the same (8192, n) x (n, 3n) GEMM.
        table.add("(2048,4,n)", n, float(flat))
        table.add("(4,2048,n)", n, float(flat))
        table.add("(8192,n)", n, float(flat))
    return table


def check_fig14(table: ResultTable) -> CheckResult:
    checks = []
    for n in sorted(set(table.column("n"))):
        vals = {
            row[0]: row[2] for row in table.rows if row[1] == n
        }
        checks.append(check_all_equal(vals, tolerance=0.01))
    return CheckResult.all_of(checks)
