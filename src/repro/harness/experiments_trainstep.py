"""Training-step estimator experiments: phase shares + the OOM wall.

Two figure-family extensions backed by :mod:`repro.trainstep`:

- ``ext_trainstep`` sweeps the model zoo and tabulates how the step's
  runtime splits between forward, backward, and optimizer — the paper's
  "training is ~3x forward GEMMs plus a bandwidth-bound tail" claim,
  per size.
- ``ext_capacity`` snapshots the planner's fits/rejects matrix for the
  GPT-3 6.7B case on an A100-40GB node: which (t, p) cells OOM, which
  phase overflows, and the modelled peak — the golden form of the
  planner's capacity wall.
"""

from __future__ import annotations

from repro.core.config import get_model
from repro.harness.compare import CheckResult
from repro.harness.results import ResultTable
from repro.parallelism.planner import ParallelPlanner, capacity_matrix
from repro.trainstep import TrainStepEstimator

#: Zoo for the phase-share sweep: ascending Pythia sizes + the GPT-3
#: case study configs.
TRAINSTEP_ZOO = (
    "pythia-160m",
    "pythia-410m",
    "pythia-1.4b",
    "pythia-2.8b",
    "pythia-6.9b",
    "gpt3-2.7b",
    "c1",
    "c2",
)


def run_ext_trainstep() -> ResultTable:
    """Fwd/bwd/optimizer runtime shares across the model zoo."""
    estimator = TrainStepEstimator("A100")
    table = ResultTable(
        "Extension: training-step phase shares across the zoo",
        [
            "model",
            "params_b",
            "step_ms",
            "fwd_share",
            "bwd_share",
            "opt_share",
            "bwd_over_fwd_flops",
            "peak_gb",
        ],
        notes="A100/fp16, t=1 p=1, no checkpointing",
    )
    for name in TRAINSTEP_ZOO:
        cfg = get_model(name)
        est = estimator.estimate(cfg)
        total = est.total_s
        table.add(
            name,
            cfg.param_count() / 1e9,
            total * 1e3,
            est.phase("forward").seconds / total,
            est.phase("backward").seconds / total,
            est.phase("optimizer").seconds / total,
            est.backward_to_forward_flops,
            est.memory.peak_bytes / 1e9,
        )
    return table


def check_ext_trainstep(table: ResultTable) -> CheckResult:
    rows = {r[0]: r for r in table.rows}
    checks = []
    for name, row in rows.items():
        fwd, bwd, opt = row[3], row[4], row[5]
        checks.append(
            CheckResult(
                abs(fwd + bwd + opt - 1.0) < 1e-9,
                f"{name}: phase shares sum to 1",
            )
        )
        checks.append(
            CheckResult(
                row[6] == 2.0, f"{name}: backward GEMM flops == 2x forward"
            )
        )
        checks.append(
            CheckResult(
                bwd > fwd, f"{name}: backward runtime exceeds forward"
            )
        )
    # The optimizer is bandwidth-bound: its share should *grow* with
    # model size slower than the GEMM phases shrink, but always stay a
    # minority of the step.
    checks.append(
        CheckResult(
            all(r[5] < 0.5 for r in table.rows),
            "optimizer is a minority of every step",
        )
    )
    checks.append(
        CheckResult(
            rows["pythia-6.9b"][7] > rows["pythia-160m"][7],
            "peak memory grows with model size",
        )
    )
    return CheckResult.all_of(checks)


def run_ext_capacity() -> ResultTable:
    """The planner OOM wall: fits/rejects matrix for 6.7B on A100-40GB."""
    planner = ParallelPlanner("aws-p4d")
    cfg = get_model("gpt3-6.7b", microbatch=1)
    table = ResultTable(
        "Extension: planner capacity wall, GPT-3 6.7B on aws-p4d",
        ["tp", "pp", "fits", "phase", "peak_gb", "budget_gb"],
        notes="microbatch 1, no checkpointing; phase = overflowing "
        "(or peak, when it fits)",
    )
    for row in capacity_matrix(
        planner, cfg, tp_degrees=(1, 2, 4, 8), pipeline_stages=(1, 2, 4)
    ):
        table.add(
            row["tp"],
            row["pp"],
            row["fits"],
            row["phase"],
            row["peak_gb"],
            row["budget_gb"],
        )
    return table


def check_ext_capacity(table: ResultTable) -> CheckResult:
    cells = {(r[0], r[1]): r for r in table.rows}
    checks = [
        CheckResult(
            not cells[(1, 1)][2] and cells[(1, 1)][3] == "backward",
            "(t=1,p=1) OOMs in the backward phase",
        ),
        CheckResult(cells[(8, 1)][2], "(t=8,p=1) fits"),
        CheckResult(
            all(
                r[4] <= r[5] for r in table.rows if r[2]
            ),
            "every accepted cell is within budget",
        ),
        CheckResult(
            all(
                r[4] > r[5] for r in table.rows if not r[2]
            ),
            "every rejected cell is over budget",
        ),
    ]
    # Peak memory is monotone non-increasing along both axes.
    for (t, p), row in cells.items():
        if (t * 2, p) in cells:
            checks.append(
                CheckResult(
                    cells[(t * 2, p)][4] <= row[4],
                    f"peak non-increasing in t at (t={t},p={p})",
                )
            )
        if (t, p * 2) in cells:
            checks.append(
                CheckResult(
                    cells[(t, p * 2)][4] <= row[4],
                    f"peak non-increasing in p at (t={t},p={p})",
                )
            )
    return CheckResult.all_of(checks)
