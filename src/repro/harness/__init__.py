"""Benchmark harness: one experiment per paper figure/table.

- :mod:`repro.harness.results` — :class:`ResultTable`, the tabular
  output every experiment produces (markdown/CSV rendering, series
  extraction),
- :mod:`repro.harness.sweep` — parameter-sweep helpers,
- :mod:`repro.harness.experiment` — the :class:`Experiment` unit,
- :mod:`repro.harness.compare` — qualitative paper-shape checks
  (who wins, where the spikes are),
- :mod:`repro.harness.figures` — the registry mapping every figure and
  table of the paper to a runnable experiment,
- :mod:`repro.harness.runner` — programmatic/CLI entry point.
"""

from repro.harness.results import ResultTable
from repro.harness.experiment import Experiment
from repro.harness.compare import CheckResult
from repro.harness.figures import get_experiment, list_experiments
from repro.harness.runner import run_experiment, run_all

__all__ = [
    "ResultTable",
    "Experiment",
    "CheckResult",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "run_all",
]
