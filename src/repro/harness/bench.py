"""Engine benchmark: parity gate plus cold/warm cache timings.

Backs the ``repro bench`` CLI verb.  One invocation:

1. verifies the vectorized engine against the scalar oracle on a
   randomized grid (any bitwise mismatch fails the benchmark),
2. times a **cold** ``run_all`` of the experiment registry (all shape
   caches cleared first),
3. times a **warm** ``run_all`` (caches left hot from the cold run),
   optionally across a worker pool,

and emits a JSON record (``BENCH_engine.json``) so successive PRs have
a perf trajectory to compare against.
"""

from __future__ import annotations

import json
import time
from typing import List, Optional, Sequence

from repro.engine import cache as engine_cache
from repro.engine import default_engine, verify_against_scalar
from repro.harness.runner import ExperimentReport, run_all

#: Parity-grid sizes: full mode satisfies the ≥500-point acceptance bar
#: per (gpu, dtype) combo family; quick mode is the CI smoke setting.
_FULL_POINTS = 200
_QUICK_POINTS = 40


def _clear_shape_caches() -> None:
    engine_cache.clear_scalar_memo()
    default_engine().clear()


#: Warm runs must not be slower than cold ones beyond timing noise:
#: ``warm_ms <= cold_ms * REGRESSION_FACTOR + REGRESSION_SLACK_MS``.
REGRESSION_FACTOR = 1.5
REGRESSION_SLACK_MS = 0.25


def _report_record(
    cold: ExperimentReport,
    warm: ExperimentReport,
    *extra_warm: ExperimentReport,
) -> dict:
    # Sub-millisecond single-shot timings are noisy enough to invert
    # the cold/warm ordering (the committed fig8 record once did);
    # keep the minimum over the warm samples.
    warm_ms = min(w.wall_time_s * 1e3 for w in (warm, *extra_warm))
    return {
        "id": cold.id,
        "passed": bool(cold.passed and warm.passed),
        "cold_ms": round(cold.wall_time_s * 1e3, 3),
        "warm_ms": round(warm_ms, 3),
        "cold_cache_hits": cold.cache_hits,
        "cold_cache_misses": cold.cache_misses,
        "warm_cache_hits": warm.cache_hits,
        "warm_cache_misses": warm.cache_misses,
        "cold_engine_hits": cold.engine_hits,
        "cold_engine_misses": cold.engine_misses,
        "warm_engine_hits": warm.engine_hits,
        "warm_engine_misses": warm.engine_misses,
    }


def warm_regressions(experiments: Sequence[dict]) -> List[str]:
    """Experiment ids whose warm run is slower than cold beyond noise."""
    return [
        e["id"]
        for e in experiments
        if e["warm_ms"] > e["cold_ms"] * REGRESSION_FACTOR + REGRESSION_SLACK_MS
    ]


def _scalar_reference_s(ids: Optional[Sequence[str]]) -> float:
    """Time a serial ``run_all`` through the pre-engine scalar path.

    Temporarily routes every engine batch call through one-shape-at-a-
    time uncached scalar evaluation (and disables the scalar memo), so
    this measures what regenerating the registry cost before the
    vectorized engine existed — the committed record carries its own
    serial baseline.
    """
    import numpy as np

    from repro.engine.core import ShapeEngine
    from repro.gpu.gemm_model import GemmModel

    def scalar_perfs(shapes, gpu, dtype, tile, candidates):
        model = GemmModel(gpu, dtype, tile=tile, candidates=candidates)
        return [
            model.evaluate(int(m), int(n), int(k), int(b))  # lint: allow(scalar-eval-in-loop)
            for b, m, n, k in np.asarray(shapes, dtype=np.int64).reshape(-1, 4)
        ]

    def scalar_latency(self, shapes, gpu, dtype="fp16", tile=None, candidates=None, **kw):
        return np.array(
            [p.latency_s for p in scalar_perfs(shapes, gpu, dtype, tile, candidates)]
        )

    def scalar_tflops(self, shapes, gpu, dtype="fp16", tile=None, candidates=None, **kw):
        return np.array(
            [p.tflops for p in scalar_perfs(shapes, gpu, dtype, tile, candidates)]
        )

    orig_latency, orig_tflops = ShapeEngine.latency, ShapeEngine.tflops
    engine_cache.configure(enabled=False)
    ShapeEngine.latency, ShapeEngine.tflops = scalar_latency, scalar_tflops
    try:
        t0 = time.perf_counter()
        run_all(ids)
        return time.perf_counter() - t0
    finally:
        ShapeEngine.latency, ShapeEngine.tflops = orig_latency, orig_tflops
        engine_cache.configure(enabled=True)


def run_bench(
    ids: Optional[Sequence[str]] = None,
    parallel: int = 1,
    quick: bool = False,
    gpus: Sequence[str] = ("A100", "V100", "H100", "MI250X"),
    dtypes: Sequence[str] = ("fp16", "fp32"),
    retries: int = 0,
    timeout_s: Optional[float] = None,
) -> dict:
    """Run the full engine benchmark; returns the JSON-able record.

    ``retries`` / ``timeout_s`` flow through to every ``run_all`` the
    benchmark performs (the resilient path), so long unattended bench
    runs tolerate transient per-experiment failures; the record then
    counts failure reports as failed checks rather than aborting.
    """
    points = _QUICK_POINTS if quick else _FULL_POINTS
    parity = verify_against_scalar(points=points, gpus=gpus, dtypes=dtypes)

    def timed_run_all(run_parallel: int = 1):
        t0 = time.perf_counter()
        reports = run_all(
            ids, parallel=run_parallel, retries=retries, timeout_s=timeout_s
        )
        return reports, time.perf_counter() - t0

    _clear_shape_caches()
    cold_reports, cold_s = timed_run_all()

    # Three warm samples (min-of-3): see _report_record.  On a loaded
    # 1-core CI box a single warm pass jitters by 2x at sub-ms scale.
    warm_reports, warm_s = timed_run_all()
    warm2_reports, warm2_s = timed_run_all()
    warm3_reports, warm3_s = timed_run_all()
    warm_s = min(warm_s, warm2_s, warm3_s)

    scalar_ref_s = _scalar_reference_s(ids)

    record: dict = {
        "benchmark": "repro bench",
        "model_version": engine_cache.model_version(),
        "parity": {
            "points": parity.points,
            "mismatches": parity.mismatches,
            "passed": parity.passed,
            "combos": [list(c) for c in parity.combos],
        },
        "experiments": [
            _report_record(c, w, w2, w3)
            for c, w, w2, w3 in zip(
                cold_reports, warm_reports, warm2_reports, warm3_reports
            )
        ],
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2) if warm_s > 0 else None,
        "scalar_reference_s": round(scalar_ref_s, 4),
        "warm_vs_scalar_speedup": round(scalar_ref_s / warm_s, 2)
        if warm_s > 0
        else None,
        "checks_passed": sum(1 for r in warm_reports if r.passed),
        "checks_total": len(warm_reports),
        "scalar_memo": {
            "entries": len(engine_cache.scalar_memo()),
            "stats": engine_cache.scalar_memo_stats().describe(),
        },
        "engine_memory": default_engine().describe(),
    }

    if parallel > 1:
        par_reports, par_s = timed_run_all(parallel)
        record["parallel"] = {
            "workers": parallel,
            "warm_wall_s": round(par_s, 4),
            "matches_serial": [r.id for r in par_reports]
            == [r.id for r in warm_reports]
            and [r.passed for r in par_reports] == [r.passed for r in warm_reports],
        }

    record["warm_regressions"] = warm_regressions(record["experiments"])
    record["passed"] = bool(
        parity.passed
        and record["checks_passed"] == record["checks_total"]
        and record.get("parallel", {}).get("matches_serial", True)
        and not record["warm_regressions"]
    )
    return record


def render_bench(record: dict) -> str:
    """Human summary of a benchmark record."""
    parity = record["parity"]
    lines: List[str] = [
        f"parity: {'OK' if parity['passed'] else 'MISMATCH'} "
        f"({parity['points']} points, {parity['mismatches']} mismatches)",
        f"cold run: {record['cold_s'] * 1e3:.0f} ms   "
        f"warm run: {record['warm_s'] * 1e3:.0f} ms   "
        f"speedup: {record['warm_speedup']}x",
        f"scalar (pre-engine) reference: {record['scalar_reference_s'] * 1e3:.0f} ms "
        f"-> warm is {record['warm_vs_scalar_speedup']}x faster",
        f"checks: {record['checks_passed']}/{record['checks_total']} pass",
        f"scalar memo: {record['scalar_memo']['stats']} "
        f"({record['scalar_memo']['entries']} entries)",
        f"engine: {record['engine_memory']}",
        "warm regressions: "
        + (", ".join(record["warm_regressions"]) if record.get("warm_regressions") else "none"),
    ]
    if "parallel" in record:
        par = record["parallel"]
        lines.append(
            f"parallel x{par['workers']}: {par['warm_wall_s'] * 1e3:.0f} ms "
            f"(matches serial: {par['matches_serial']})"
        )
    lines.append("benchmark: " + ("PASS" if record["passed"] else "FAIL"))
    return "\n".join(lines)


def write_bench(record: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=False)
        fh.write("\n")
