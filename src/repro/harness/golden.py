"""Golden-regression snapshots for headline experiments.

A snapshot is a compact, checked-in JSON record of one experiment's
output: the column layout, the ranked winners (top rows by the table's
headline metric), and a checksum per numeric column.  The test wall
(``tests/golden/``) re-runs each experiment and compares against its
snapshot, so *any* silent numeric drift in the model — a constant
nudged, an efficiency curve reshaped, a cache serving stale entries —
fails loudly with a diff naming what moved, while the snapshot stays a
few hundred bytes instead of a full results dump.

Snapshots embed :func:`repro.engine.cache.model_version`; a version
mismatch is reported first, since it legitimately changes every number
(the fix is ``repro figure <id> --update-golden``, same as for an
intentional model change).

Values are formatted with ``%.12g`` before hashing/storing so
comparisons are exact at well above float32 precision but immune to
repr noise.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List

from repro.engine.cache import model_version
from repro.errors import ExperimentError

if TYPE_CHECKING:
    from repro.harness.results import ResultTable
    from repro.harness.runner import ExperimentReport

#: The headline experiments the golden wall pins (fig1/fig2 throughput
#: comparisons, fig5 tiling, fig7 alignment, fig12 attention sizing,
#: and the Sec VII-B 2.7B retune case study).
GOLDEN_EXPERIMENTS = (
    "fig1",
    "fig2",
    "fig5",
    "fig7",
    "fig12",
    "case_gpt3",
    "ext_trainstep",
    "ext_capacity",
)

#: Where snapshots live relative to the repo root.
DEFAULT_GOLDEN_DIR = Path("tests") / "golden"

#: How many ranked winners a snapshot stores verbatim.
TOP_ROWS = 3

_FORMAT_VERSION = 1


def fmt_value(value: Any) -> str:
    """Canonical string form of one cell (floats via ``%.12g``)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.12g}"
    return str(value)


def _numeric_columns(table: "ResultTable") -> List[str]:
    out = []
    for name in table.columns:
        values = table.column(name)
        if values and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in values
        ):
            out.append(name)
    return out


def rank_column(table: "ResultTable") -> "tuple[str, bool] | None":
    """(column, minimize) the table's winners rank by, or None.

    Prefers a throughput-style column (maximize), then a latency-style
    column (minimize), then the first numeric column.
    """
    numeric = _numeric_columns(table)
    if not numeric:
        return None
    for token in ("tflops", "throughput", "tokens_per_s", "speedup"):
        for name in numeric:
            if token in name.lower():
                return name, False
    for token in ("latency", "time", "waste", "ms", "_s"):
        for name in numeric:
            if token in name.lower():
                return name, True
    return numeric[0], False


def _column_checksum(values: List[Any]) -> str:
    payload = "\n".join(fmt_value(v) for v in values)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _top_rows(table: "ResultTable", by: str, minimize: bool) -> List[Dict[str, str]]:
    ranked = sorted(
        table.rows_as_dicts(),
        key=lambda r: r[by],
        reverse=not minimize,
    )
    return [
        {col: fmt_value(v) for col, v in row.items()}
        for row in ranked[:TOP_ROWS]
    ]


def snapshot_experiment(report: "ExperimentReport") -> Dict[str, Any]:
    """Build the golden snapshot dict for one experiment report."""
    table = report.table
    ranking = rank_column(table)
    snap: Dict[str, Any] = {
        "format": _FORMAT_VERSION,
        "experiment": report.id,
        "title": report.title,
        "paper_ref": report.paper_ref,
        "model_version": model_version(),
        "check_passed": report.passed,
        "columns": list(table.columns),
        "row_count": len(table.rows),
        "checksums": {
            name: _column_checksum(table.column(name))
            for name in _numeric_columns(table)
        },
    }
    if ranking is not None:
        by, minimize = ranking
        snap["ranked_by"] = by
        snap["minimize"] = minimize
        snap["winners"] = _top_rows(table, by, minimize)
    return snap


def snapshot_path(exp_id: str, golden_dir: "str | Path" = DEFAULT_GOLDEN_DIR) -> Path:
    return Path(golden_dir) / f"{exp_id}.json"


def write_snapshot(
    report: "ExperimentReport", golden_dir: "str | Path" = DEFAULT_GOLDEN_DIR
) -> Path:
    """Write (or refresh) one experiment's golden snapshot."""
    path = snapshot_path(report.id, golden_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(snapshot_experiment(report), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_snapshot(
    exp_id: str, golden_dir: "str | Path" = DEFAULT_GOLDEN_DIR
) -> Dict[str, Any]:
    path = snapshot_path(exp_id, golden_dir)
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ExperimentError(
            f"no golden snapshot for {exp_id!r} at {path} "
            f"(generate with 'repro figure {exp_id} --update-golden'): {exc}"
        ) from exc
    except ValueError as exc:
        raise ExperimentError(f"corrupt golden snapshot {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ExperimentError(f"corrupt golden snapshot {path}: not an object")
    return data


def compare_snapshot(
    stored: Dict[str, Any], report: "ExperimentReport"
) -> List[str]:
    """Diff a fresh report against a stored snapshot.

    Returns human-readable difference strings, empty on an exact match.
    Ordered so the most explanatory difference comes first (a model
    version bump explains every downstream checksum change).
    """
    fresh = snapshot_experiment(report)
    diffs: List[str] = []
    if stored.get("model_version") != fresh["model_version"]:
        diffs.append(
            "model_version changed: "
            f"{stored.get('model_version')!r} -> {fresh['model_version']!r} "
            "(every checksum below is expected to move; if intentional, "
            f"refresh with 'repro figure {report.id} --update-golden')"
        )
    if stored.get("experiment") != fresh["experiment"]:
        diffs.append(
            f"experiment id: {stored.get('experiment')!r} != {fresh['experiment']!r}"
        )
    if stored.get("columns") != fresh["columns"]:
        diffs.append(
            f"columns changed: {stored.get('columns')} -> {fresh['columns']}"
        )
        return diffs  # every further comparison would be noise
    if stored.get("row_count") != fresh["row_count"]:
        diffs.append(
            f"row count: {stored.get('row_count')} -> {fresh['row_count']}"
        )
    if bool(stored.get("check_passed")) != fresh["check_passed"]:
        diffs.append(
            f"qualitative check flipped: passed={stored.get('check_passed')} "
            f"-> passed={fresh['check_passed']}"
        )
    if stored.get("ranked_by") != fresh.get("ranked_by"):
        diffs.append(
            f"rank column: {stored.get('ranked_by')!r} -> {fresh.get('ranked_by')!r}"
        )
    elif stored.get("winners") != fresh.get("winners"):
        old = stored.get("winners") or []
        new = fresh.get("winners") or []
        for i in range(max(len(old), len(new))):
            o = old[i] if i < len(old) else None
            n = new[i] if i < len(new) else None
            if o == n:
                continue
            if o is None or n is None:
                diffs.append(f"winner #{i + 1}: {o} -> {n}")
                continue
            changed = [
                f"{col}: {o.get(col)} -> {n.get(col)}"
                for col in fresh["columns"]
                if o.get(col) != n.get(col)
            ]
            diffs.append(
                f"winner #{i + 1} (ranked by {fresh.get('ranked_by')}) "
                f"changed: {'; '.join(changed)}"
            )
    old_sums = stored.get("checksums", {})
    for name, checksum in fresh["checksums"].items():
        if name not in old_sums:
            diffs.append(f"column {name!r}: no stored checksum (new column?)")
        elif old_sums[name] != checksum:
            diffs.append(
                f"column {name!r} series changed "
                f"(checksum {old_sums[name]} -> {checksum})"
            )
    for name in old_sums:
        if name not in fresh["checksums"]:
            diffs.append(f"column {name!r}: stored checksum has no counterpart")
    return diffs


def check_experiment(
    exp_id: str, golden_dir: "str | Path" = DEFAULT_GOLDEN_DIR
) -> List[str]:
    """Run one experiment and diff it against its snapshot."""
    from repro.harness.runner import run_experiment

    stored = load_snapshot(exp_id, golden_dir)
    return compare_snapshot(stored, run_experiment(exp_id))
