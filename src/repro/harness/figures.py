"""Registry: every paper figure/table -> a runnable experiment.

Experiment ids match DESIGN.md's per-experiment index.  The appendix
families (Figs 21-33 and 35-47) are registered both as one combined
experiment per family and individually per head count
(``fig21_33/a8`` etc.) for targeted runs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from repro.errors import ExperimentError
from repro.harness import experiments_cases as cases
from repro.harness import experiments_kernels as kernels
from repro.harness import experiments_transformer as tfm
from repro.harness.compare import CheckResult
from repro.harness.experiment import Experiment
from repro.harness.results import ResultTable

_REGISTRY: Dict[str, Experiment] = {}


def register(exp: Experiment) -> None:
    if exp.id in _REGISTRY:
        raise ExperimentError(f"duplicate experiment id {exp.id!r}")
    _REGISTRY[exp.id] = exp


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment by id."""
    try:
        return _REGISTRY[exp_id.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(f"unknown experiment {exp_id!r}; known: {known}") from None


def list_experiments(include_family_members: bool = False) -> List[Experiment]:
    """All registered experiments in id order."""
    exps = sorted(_REGISTRY.values(), key=lambda e: e.id)
    if include_family_members:
        return exps
    return [e for e in exps if "/" not in e.id]


# -- main figures ---------------------------------------------------------------

register(
    Experiment(
        id="fig1",
        title="Single-layer throughput of equal-parameter 2.7B shapes",
        paper_ref="Fig 1 / Sec VI-B",
        run_fn=tfm.run_fig1,
        check_fn=tfm.check_fig1,
        lint_configs=("gpt3-2.7b", "c1", "c2"),
    )
)
register(
    Experiment(
        id="fig2",
        title="Latency proportion per transformer component (medium model)",
        paper_ref="Fig 2 / Sec I",
        run_fn=tfm.run_fig2,
        check_fn=tfm.check_fig2,
    )
)
register(
    Experiment(
        id="fig5",
        title="GEMM throughput vs size (V100/A100, fixed vs auto tiles)",
        paper_ref="Fig 5",
        run_fn=kernels.run_fig5,
        check_fn=kernels.check_fig5,
    )
)
register(
    Experiment(
        id="fig6",
        title="Batched matrix multiplication throughput",
        paper_ref="Fig 6",
        run_fn=kernels.run_fig6,
        check_fn=kernels.check_fig6,
    )
)
register(
    Experiment(
        id="fig7",
        title="Attention BMMs at a=32, split by pow2(h/a)",
        paper_ref="Fig 7a/7b",
        run_fn=kernels.run_fig7,
        check_fn=kernels.check_fig7,
    )
)
register(
    Experiment(
        id="fig8",
        title="Attention score BMM at fixed h/a=64",
        paper_ref="Fig 8",
        run_fn=kernels.run_fig8,
        check_fn=kernels.check_fig8_9,
    )
)
register(
    Experiment(
        id="fig9",
        title="Attention over value BMM at fixed h/a=64",
        paper_ref="Fig 9",
        run_fn=kernels.run_fig9,
        check_fn=kernels.check_fig8_9,
    )
)
register(
    Experiment(
        id="fig10",
        title="MLP GEMM throughput vs hidden size",
        paper_ref="Fig 10a/10b",
        run_fn=tfm.run_fig10,
        check_fn=tfm.check_fig10,
    )
)
register(
    Experiment(
        id="fig11",
        title="Per-GEMM latency proportions across model sizes",
        paper_ref="Fig 11",
        run_fn=tfm.run_fig11,
        check_fn=tfm.check_fig11,
    )
)
register(
    Experiment(
        id="fig12",
        title="FlashAttention hidden-size sweep (roofline)",
        paper_ref="Fig 12 / Sec VI-C3",
        run_fn=tfm.run_fig12,
        check_fn=tfm.check_fig12,
    )
)
register(
    Experiment(
        id="fig13",
        title="Pythia suite inference latency trend",
        paper_ref="Fig 13 / Sec VII-C",
        run_fn=cases.run_fig13,
        check_fn=cases.check_fig13,
        lint_configs=("pythia-410m", "pythia-1.4b", "pythia-2.8b", "pythia-6.9b"),
    )
)
register(
    Experiment(
        id="fig14",
        title="GEMM dimension-ordering invariance",
        paper_ref="Fig 14 (appendix)",
        run_fn=kernels.run_fig14,
        check_fn=kernels.check_fig14,
    )
)
register(
    Experiment(
        id="fig15",
        title="QKV transform vs h and tensor-parallel degree",
        paper_ref="Figs 15/16",
        run_fn=tfm.run_fig15,
        check_fn=tfm.check_fig15,
    )
)
register(
    Experiment(
        id="fig17",
        title="Attention key-query score GEMM sweep (a=128)",
        paper_ref="Fig 17",
        run_fn=tfm.run_fig17,
        check_fn=tfm.check_rises,
    )
)
register(
    Experiment(
        id="fig18",
        title="Attention score times values sweep (a=128)",
        paper_ref="Fig 18",
        run_fn=tfm.run_fig18,
        check_fn=tfm.check_rises,
    )
)
register(
    Experiment(
        id="fig19",
        title="Post-attention linear projection sweep",
        paper_ref="Fig 19",
        run_fn=tfm.run_fig19,
        check_fn=tfm.check_rises,
    )
)
register(
    Experiment(
        id="fig20",
        title="Logit layer throughput vs vocabulary size",
        paper_ref="Fig 20a/20b",
        run_fn=tfm.run_fig20,
        check_fn=tfm.check_fig20,
    )
)

# -- appendix families ------------------------------------------------------------


@lru_cache(maxsize=8)
def _family_grid(kind: str):
    # One SoA grid spanning every head count: the full family is a
    # single engine evaluation (one ufunc chain, one cache entry)
    # instead of 13 per-head-count calls.  Memoized like the per-head
    # sweep grids — the concat of 13 frozen grids is itself frozen and
    # reused across warm runs.
    from repro.engine import ShapeGrid
    from repro.harness import sweep
    from repro.harness.sweep import _frozen

    return _frozen(
        ShapeGrid.concat(
            [
                sweep.attention_grid(kind, heads)
                for heads in kernels.APPENDIX_HEAD_COUNTS
            ]
        )
    )


def _family_run(kind: str):
    def run() -> ResultTable:
        from repro.engine import default_engine

        table = ResultTable(
            f"Appendix family: attention {kind} BMM across head counts",
            ["heads", "hidden", "head_dim", "pow2", "tflops"],
        )
        result = default_engine().evaluate_grid(_family_grid(kind), "A100")
        table.add_columns(
            **result.columns(("heads", "hidden", "head_dim", "pow2", "tflops"))
        )
        return table

    return run


def _family_check(table: ResultTable) -> CheckResult:
    from repro.harness.compare import check_series_ordered_blocks

    # One fused pass over the whole family: same semantics as running
    # check_pow2_ordering per head count, without rebuilding 13
    # sub-tables row by row.  table.column() reads the pending SoA
    # chunks directly, so the check never materializes row tuples.
    checks = check_series_ordered_blocks(
        table.column("heads"),
        table.column("pow2"),
        table.column("hidden"),
        table.column("tflops"),
        min_fraction=0.7,
    )
    return CheckResult.all_of(checks)


register(
    Experiment(
        id="fig21_33",
        title="Attention score BMM per head count (pow2 series)",
        paper_ref="Figs 21-33",
        run_fn=_family_run("score"),
        check_fn=_family_check,
    )
)
register(
    Experiment(
        id="fig35_47",
        title="Attention over value BMM per head count (pow2 series)",
        paper_ref="Figs 35-47",
        run_fn=_family_run("aov"),
        check_fn=_family_check,
    )
)
for _heads in kernels.APPENDIX_HEAD_COUNTS:
    register(
        Experiment(
            id=f"fig21_33/a{_heads}",
            title=f"Attention score BMM, a={_heads}",
            paper_ref="Figs 21-33",
            run_fn=kernels.make_attention_experiment("score", _heads),
            check_fn=kernels.check_pow2_ordering,
        )
    )
    register(
        Experiment(
            id=f"fig35_47/a{_heads}",
            title=f"Attention over value BMM, a={_heads}",
            paper_ref="Figs 35-47",
            run_fn=kernels.make_attention_experiment("aov", _heads),
            check_fn=kernels.check_pow2_ordering,
        )
    )

register(
    Experiment(
        id="fig34",
        title="Attention score BMM at h/a=64, full range",
        paper_ref="Fig 34",
        run_fn=kernels.run_fig8,
        check_fn=kernels.check_fig8_9,
    )
)

# -- tables and case studies ---------------------------------------------------------

register(
    Experiment(
        id="table2",
        title="Analytic GEMM mapping vs traced transformer",
        paper_ref="Table II",
        run_fn=tfm.run_table2,
        check_fn=tfm.check_table2,
    )
)
register(
    Experiment(
        id="gemm_share",
        title="GEMM share of layer latency vs model size",
        paper_ref="Sec I (68.3% / 94.9%)",
        run_fn=tfm.run_gemm_share,
        check_fn=tfm.check_gemm_share,
    )
)
register(
    Experiment(
        id="case_gpt3",
        title="Retuning GPT-3 2.7B",
        paper_ref="Sec VI-B",
        run_fn=cases.run_case_gpt3,
        check_fn=cases.check_case_gpt3,
        lint_configs=("gpt3-2.7b", "c1", "c2"),
    )
)
register(
    Experiment(
        id="case_swiglu",
        title="SwiGLU intermediate-size brute force",
        paper_ref="Sec VII-B",
        run_fn=cases.run_case_swiglu,
        check_fn=cases.check_case_swiglu,
    )
)
register(
    Experiment(
        id="case_6gpu",
        title="6-GPU Summit nodes vs 8-GPU nodes",
        paper_ref="Sec VII-A",
        run_fn=cases.run_case_6gpu,
        check_fn=cases.check_case_6gpu,
    )
)

# -- ablations and extensions (see experiments_extensions) ---------------------------

from repro.harness import experiments_extensions as ext  # noqa: E402

register(
    Experiment(
        id="ablation_tile",
        title="Tile auto-selection vs pinned 128x256",
        paper_ref="ablation (Sec V)",
        run_fn=ext.run_ablation_tile,
        check_fn=ext.check_ablation_tile,
    )
)
register(
    Experiment(
        id="ablation_dtype",
        title="Alignment breakpoints by dtype",
        paper_ref="ablation (Sec III-B)",
        run_fn=ext.run_ablation_dtype,
        check_fn=ext.check_ablation_dtype,
    )
)
register(
    Experiment(
        id="ablation_backfill",
        title="DES simulator vs analytic wave model",
        paper_ref="ablation (internal)",
        run_fn=ext.run_ablation_backfill,
        check_fn=ext.check_ablation_backfill,
    )
)
register(
    Experiment(
        id="ext_seqlen",
        title="Attention share vs sequence length",
        paper_ref="extension (Sec III-C formula)",
        run_fn=ext.run_ext_seqlen,
        check_fn=ext.check_ext_seqlen,
    )
)
register(
    Experiment(
        id="ext_flash_e2e",
        title="FlashAttention end-to-end layer speedup",
        paper_ref="extension (Sec VI-C3)",
        run_fn=ext.run_ext_flash,
        check_fn=ext.check_ext_flash,
    )
)
register(
    Experiment(
        id="ext_training",
        title="Training-step throughput of 2.7B shapes",
        paper_ref="extension (Sec I claim)",
        run_fn=ext.run_ext_training,
        check_fn=ext.check_ext_training,
        lint_configs=("gpt3-2.7b", "c1", "c2"),
    )
)
register(
    Experiment(
        id="ext_gqa",
        title="Grouped-query attention decode effect",
        paper_ref="extension (Sec VI-C)",
        run_fn=ext.run_ext_gqa,
        check_fn=ext.check_ext_gqa,
    )
)
register(
    Experiment(
        id="ext_gpus",
        title="The 2.7B retune across the GPU zoo",
        paper_ref="extension (Sec II-B / VIII)",
        run_fn=ext.run_ext_gpus,
        check_fn=ext.check_ext_gpus,
    )
)
register(
    Experiment(
        id="ext_seqpar",
        title="Sequence parallelism on top of TP",
        paper_ref="extension (Sec III-C future work)",
        run_fn=ext.run_ext_seqpar,
        check_fn=ext.check_ext_seqpar,
    )
)
register(
    Experiment(
        id="ext_moe",
        title="MoE expert count vs expert-GEMM efficiency",
        paper_ref="extension (shape rules for MoE)",
        run_fn=ext.run_ext_moe,
        check_fn=ext.check_ext_moe,
    )
)
register(
    Experiment(
        id="ext_batching",
        title="Decode batching curve",
        paper_ref="extension (Sec VII-C)",
        run_fn=ext.run_ext_batching,
        check_fn=ext.check_ext_batching,
    )
)
register(
    Experiment(
        id="ext_window",
        title="Sliding-window attention at long context",
        paper_ref="extension (Sec VI-C)",
        run_fn=ext.run_ext_window,
        check_fn=ext.check_ext_window,
    )
)
register(
    Experiment(
        id="ext_quant",
        title="Weight-only quantized decode",
        paper_ref="extension (Sec VII-C)",
        run_fn=ext.run_ext_quant,
        check_fn=ext.check_ext_quant,
    )
)
register(
    Experiment(
        id="ext_pipeline_sim",
        title="Pipeline schedule simulation vs closed form",
        paper_ref="extension (Sec VI-B rule 6)",
        run_fn=ext.run_ext_pipeline_sim,
        check_fn=ext.check_ext_pipeline_sim,
    )
)

from repro.harness import experiments_trainstep as trainstep  # noqa: E402

register(
    Experiment(
        id="ext_trainstep",
        title="Training-step phase shares across the zoo",
        paper_ref="extension (whole-step co-design)",
        run_fn=trainstep.run_ext_trainstep,
        check_fn=trainstep.check_ext_trainstep,
    )
)
register(
    Experiment(
        id="ext_capacity",
        title="Planner capacity wall: fits/rejects matrix",
        paper_ref="extension (Sec VII-A memory)",
        run_fn=trainstep.run_ext_capacity,
        check_fn=trainstep.check_ext_capacity,
    )
)
