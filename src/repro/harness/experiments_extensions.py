"""Ablations and extensions beyond the paper's figures.

Ablations quantify the GPU model's own design choices:

- ``ablation_tile`` — auto tile selection vs the pinned 128x256 kernel,
- ``ablation_dtype`` — how the alignment breakpoints move with element
  size (the 128-byte rule is *bytes*, so fp32 saturates at 32 elements),
- ``ablation_backfill`` — discrete-event simulator vs the analytic
  wave model across the transformer GEMM set.

Extensions probe territory the paper motivates but leaves open:

- ``ext_seqlen`` — the attention share of layer compute as s grows
  (the ``24bsh^2(1 + s/6h)`` structure made visible),
- ``ext_flash_e2e`` — end-to-end layer latency with/without
  FlashAttention across hidden sizes (Sec VI-C3's recommendation),
- ``ext_training`` — the Fig 1 comparison under a full training step
  (fwd + bwd + optimizer), confirming the retunes speed up *training*,
- ``ext_gqa`` — grouped-query attention's decode-time effect.
"""

from __future__ import annotations

from repro.core.config import TransformerConfig, get_model
from repro.core.latency import LayerLatencyModel
from repro.core.formulas import forward_flops_per_layer
from repro.core.gemms import layer_gemms
from repro.core.training import TrainingStepModel
from repro.engine import default_engine, shape_array
from repro.gpu.simulator import SMSimulator
from repro.gpu.specs import get_gpu
from repro.gpu.tiles import default_tile
from repro.harness import sweep
from repro.harness.compare import (
    CheckResult,
    check_monotone_rise,
    check_ratio,
)
from repro.harness.results import ResultTable
from repro.inference.latency import InferenceModel
from repro.types import DType

_B, _S = 4, 2048


# -- ablation: tile selection -----------------------------------------------------


def run_ablation_tile() -> ResultTable:
    """Auto tile selection vs pinned 128x256 on the Table II GEMM set."""
    cfg = get_model("gpt3-2.7b")
    table = ResultTable(
        "Ablation: cuBLAS-like tile selection vs pinned 128x256",
        ["gemm", "auto_us", "pinned_us", "gain"],
        notes="gain = pinned / auto latency (>= 1 by construction)",
    )
    # The Table II GEMM set plus a skinny decode GEMM where selection
    # matters most, both policies through one engine batch each.
    ops = list(layer_gemms(cfg))
    names = [op.module for op in ops] + ["decode_gemv"]
    shapes = shape_array(
        [op.m for op in ops] + [1],
        [op.n for op in ops] + [10240],
        [op.k for op in ops] + [2560],
        [op.batch for op in ops] + [1],
    )
    auto = default_engine().latency(shapes, "A100")
    pinned = default_engine().latency(shapes, "A100", tile=default_tile())
    for name, a, p in zip(names, auto, pinned):
        table.add(name, float(a) * 1e6, float(p) * 1e6, float(p) / float(a))
    return table


def check_ablation_tile(table: ResultTable) -> CheckResult:
    gains = dict(zip(table.column("gemm"), table.column("gain")))
    checks = [
        CheckResult(
            all(g >= 0.999 for g in gains.values()),
            "auto selection never loses to the pinned tile",
        ),
        CheckResult(
            gains["decode_gemv"] == max(gains.values())
            and gains["decode_gemv"] > 1.2,
            f"the skinny GEMV gains most ({gains['decode_gemv']:.2f}x)",
        ),
    ]
    return CheckResult.all_of(checks)


# -- ablation: dtype alignment breakpoints -------------------------------------------


def run_ablation_dtype() -> ResultTable:
    """Alignment efficiency of k across dtypes.

    The 128-byte A100 rule translates to 64 fp16 / 32 fp32 elements, so
    the same element count can be fully aligned in fp32 yet partially
    aligned in fp16's terms — and the INT8 grain is coarser still.
    """
    table = ResultTable(
        "Ablation: alignment breakpoints by dtype (A100, k sweep)",
        ["dtype", "k", "pow2", "alignment_eff"],
    )
    from repro.gpu.alignment import gemm_alignment_efficiency

    spec = get_gpu("A100")
    for dtype in (DType.FP16, DType.FP32, DType.INT8):
        for k in (8, 16, 32, 64, 128, 256):
            eff = gemm_alignment_efficiency(4096, 4096, k, dtype, spec)
            table.add(dtype.name, k, k & -k, eff)
    return table


def check_ablation_dtype(table: ResultTable) -> CheckResult:
    rows = {(r[0], r[1]): r[3] for r in table.rows}
    checks = [
        CheckResult(rows[("FP32", 32)] == 1.0, "fp32 saturates at 32 elements"),
        CheckResult(rows[("FP16", 32)] < 1.0, "fp16 not yet saturated at 32"),
        CheckResult(rows[("FP16", 64)] == 1.0, "fp16 saturates at 64 elements"),
        CheckResult(rows[("INT8", 64)] < 1.0, "int8 needs 128 elements"),
        CheckResult(rows[("INT8", 128)] == 1.0, "int8 saturates at 128"),
    ]
    return CheckResult.all_of(checks)


# -- ablation: simulator backfill ------------------------------------------------------


def run_ablation_backfill() -> ResultTable:
    """Discrete-event simulation vs analytic waves per transformer GEMM."""
    cfg = get_model("gpt3-2.7b")
    table = ResultTable(
        "Ablation: DES simulator vs analytic wave model",
        ["gemm", "analytic_us", "simulated_us", "rel_diff"],
    )
    ops = list(layer_gemms(cfg))
    batch = default_engine().evaluate(
        shape_array(
            [op.m for op in ops],
            [op.n for op in ops],
            [op.k for op in ops],
            [op.batch for op in ops],
        ),
        "A100",
    )

    def simulate() -> dict:
        import numpy as np

        return {
            "simulated_s": np.array(
                [
                    SMSimulator("A100", tile=batch.tile(i))
                    .run(op.m, op.n, op.k, op.batch)
                    .latency_s
                    for i, op in enumerate(ops)
                ],
                dtype=np.float64,
            )
        }

    # The DES sweep is pure in (shapes, selected tiles, sim version):
    # memoize its columnar output so warm regeneration skips the
    # event-by-event simulation.
    sim_key = (
        "v1",
        "A100",
        tuple(op.shape_tuple() for op in ops),
        tuple(batch.tile(i) for i in range(len(ops))),
    )
    sim = default_engine().memo_columns("backfill.sim", sim_key, simulate)

    for i, op in enumerate(ops):
        a_s = float(batch.latency_s[i])
        s_s = float(sim["simulated_s"][i])
        rel = abs(s_s - a_s) / a_s
        table.add(op.module, a_s * 1e6, s_s * 1e6, rel)
    return table


def check_ablation_backfill(table: ResultTable) -> CheckResult:
    worst = max(table.column("rel_diff"))
    return CheckResult(
        worst <= 0.08,
        f"backends agree within {100 * worst:.1f}% on every transformer GEMM",
    )


# -- extension: sequence length --------------------------------------------------------


def run_ext_seqlen() -> ResultTable:
    """Attention share of layer compute and latency as s grows.

    The paper's per-layer FLOPs are 24bsh^2 (1 + s/6h): the attention
    BMM term grows linearly in s relative to the dense GEMMs, which is
    the regime where FlashAttention and sequence parallelism start to
    matter (future work the paper points at).
    """
    h, a = 2048, 16
    model = LayerLatencyModel("A100")
    table = ResultTable(
        "Extension: attention share vs sequence length (h=2048)",
        ["seq_len", "flops_share", "latency_share"],
        notes="flops_share = (s/6h)/(1+s/6h), the paper's formula term",
    )
    for s in (512, 1024, 2048, 4096, 8192):
        cfg = TransformerConfig(
            name=f"s{s}",
            hidden_size=h,
            num_heads=a,
            num_layers=1,
            seq_len=s,
            microbatch=2,
        )
        flops_share = (s / (6 * h)) / (1 + s / (6 * h))
        bd = model.layer_breakdown(cfg)
        attn = sum(
            v
            for k, v in bd.components.items()
            if k in ("attention_score", "attention_over_value", "softmax")
        )
        table.add(s, flops_share, attn / bd.total_s)
    return table


def check_ext_seqlen(table: ResultTable) -> CheckResult:
    checks = [
        check_monotone_rise(table.series("seq_len", "flops_share")[None], 1.0),
        check_monotone_rise(table.series("seq_len", "latency_share")[None], 0.9),
    ]
    # The formula term must match 24bsh^2 + 4bs^2h exactly.
    s, h, b = 4096, 2048, 2
    total = forward_flops_per_layer(b, s, h)
    attn = 4 * b * s * s * h
    row = {r[0]: r[1] for r in table.rows}[4096]
    checks.append(check_ratio(row, attn / total, 0.999, 1.001, "formula identity"))
    return CheckResult.all_of(checks)


# -- extension: FlashAttention end-to-end -----------------------------------------------


def run_ext_flash() -> ResultTable:
    """Layer latency with vs without FlashAttention across h."""
    plain = LayerLatencyModel("A100")
    flash = LayerLatencyModel("A100", flash_attention=True)
    table = ResultTable(
        "Extension: FlashAttention end-to-end layer speedup",
        ["hidden", "plain_ms", "flash_ms", "speedup"],
    )
    for h in (1024, 2048, 4096, 8192):
        cfg = TransformerConfig(
            name=f"h{h}",
            hidden_size=h,
            num_heads=max(1, h // 128),
            num_layers=1,
            microbatch=_B,
            seq_len=_S,
        )
        p = plain.layer_latency(cfg)
        f = flash.layer_latency(cfg)
        table.add(h, p * 1e3, f * 1e3, p / f)
    return table


def check_ext_flash(table: ResultTable) -> CheckResult:
    speedups = table.column("speedup")
    checks = [
        CheckResult(all(s > 1.0 for s in speedups), "flash always helps"),
        CheckResult(
            speedups[0] > speedups[-1],
            "flash helps small models most (paper: 'use FlashAttention "
            "for small models')",
        ),
    ]
    return CheckResult.all_of(checks)


# -- extension: training-step comparison ---------------------------------------------------


def run_ext_training() -> ResultTable:
    """Fig 1's shape comparison under a full training step."""
    model = TrainingStepModel("A100")
    base = get_model("gpt3-2.7b")
    table = ResultTable(
        "Extension: training-step throughput of 2.7B shapes",
        ["shape", "head_dim", "tokens_per_s", "speedup_vs_default"],
    )
    base_tps = model.tokens_per_second(base)
    for name, cfg in (
        ("default", base),
        ("c1", get_model("c1")),
        ("c2", get_model("c2")),
        ("a20", base.with_overrides(num_heads=20)),
    ):
        tps = model.tokens_per_second(cfg)
        table.add(name, cfg.head_dim, tps, tps / base_tps)
    return table


def check_ext_training(table: ResultTable) -> CheckResult:
    rows = {r[0]: r[3] for r in table.rows}
    checks = [
        check_ratio(rows["a20"], 1.0, 1.08, 1.6, "a=20 trains faster (paper: 1.18x)"),
        CheckResult(rows["c1"] < 1.0, "c1 trains slower than default"),
    ]
    return CheckResult.all_of(checks)


# -- extension: grouped-query attention ------------------------------------------------------


def run_ext_gqa() -> ResultTable:
    """Decode latency of Llama-2-70B-shaped models vs KV head count."""
    model = InferenceModel("A100-80GB")
    base = get_model("llama2-70b", microbatch=1)
    table = ResultTable(
        "Extension: GQA decode effect (Llama-2-70B shape, ctx 4096)",
        ["kv_heads", "kv_cache_ms", "latency_ms", "params_b"],
    )
    for kv in (64, 8, 1):
        cfg = base.with_overrides(num_kv_heads=kv)
        step = model.decode_step(cfg, context_len=4096)
        table.add(kv, step.kv_cache_s * 1e3, step.latency_s * 1e3, cfg.param_count() / 1e9)
    return table


def run_ext_moe() -> ResultTable:
    """MoE expert-count sweep: per-expert rows vs GEMM efficiency.

    At a fixed token budget, more experts means fewer rows per expert
    GEMM — the MoE face of the paper's shape rules.  The sweep holds the
    Mixtral trunk fixed and varies E (top-2 routing).
    """
    model = LayerLatencyModel("A100-80GB")
    base = get_model("mixtral-8x7b", microbatch=1)
    table = ResultTable(
        "Extension: MoE expert count vs expert-GEMM efficiency",
        ["experts", "tokens_per_expert", "expert_gemm_tflops", "mlp_ms"],
        notes="Mixtral trunk, 8192 tokens, top-2 routing",
    )
    # Up to E=512 the per-expert rows fall from 2048 to 32 — into tile-
    # quantization territory; E=48 adds a ragged (non-dividing) case.
    for E in (8, 32, 48, 64, 128, 256, 512):
        cfg = base.with_overrides(num_experts=E)
        ops = {op.module: op for op in layer_gemms(cfg)}
        gate = model.gemm_perf(ops["moe_mlp_gate"])
        mlp_s = sum(
            model.gemm_perf(ops[name]).latency_s
            for name in ("moe_mlp_gate", "moe_mlp_up", "moe_mlp_down")
        )
        table.add(E, cfg.tokens_per_expert, gate.tflops, mlp_s * 1e3)
    return table


def check_ext_moe(table: ResultTable) -> CheckResult:
    rows = table.rows_as_dicts()
    by_e = {r["experts"]: r for r in rows}
    checks = [
        CheckResult(
            by_e[8]["expert_gemm_tflops"] >= by_e[512]["expert_gemm_tflops"] * 1.15,
            f"E=8 beats E=512 by "
            f"{by_e[8]['expert_gemm_tflops'] / by_e[512]['expert_gemm_tflops']:.2f}x "
            "(tiny per-expert rows waste tiles)",
        ),
        CheckResult(
            by_e[8]["mlp_ms"] <= by_e[512]["mlp_ms"],
            "few large experts never slower than many tiny ones at equal FLOPs",
        ),
        CheckResult(
            all(
                r["tokens_per_expert"] * r["experts"] >= 2 * 8192 for r in rows
            ),
            "capacity padding covers the token budget at every E",
        ),
    ]
    return CheckResult.all_of(checks)


def run_ext_batching() -> ResultTable:
    """Decode batching curve (Pythia-2.8B on A100-80GB).

    Batching amortizes the per-token weight stream; throughput climbs
    near-linearly until per-sequence KV traffic takes over.
    """
    from repro.inference.batching import BatchingAnalyzer

    analyzer = BatchingAnalyzer("A100-80GB")
    cfg = get_model("pythia-2.8b", microbatch=1)
    table = ResultTable(
        "Extension: decode batching curve (Pythia-2.8B, ctx 1024)",
        ["batch", "per_token_ms", "tokens_per_s", "fits_memory"],
        notes=f"knee at batch {analyzer.knee(cfg)}",
    )
    for pt in analyzer.sweep(cfg, max_batch=128):
        table.add(pt.batch, pt.per_token_ms, pt.tokens_per_s, pt.fits_memory)
    return table


def check_ext_batching(table: ResultTable) -> CheckResult:
    pts = table.series("batch", "tokens_per_s")[None]
    rows = {r[0]: r for r in table.rows}
    checks = [
        check_monotone_rise(pts, min_fraction=0.99),
        check_ratio(rows[2][2], rows[1][2], 1.6, 2.01, "first doubling near-2x"),
        CheckResult(
            rows[128][2] / rows[64][2] < rows[2][2] / rows[1][2],
            "diminishing returns at large batch",
        ),
    ]
    return CheckResult.all_of(checks)


def run_ext_window() -> ResultTable:
    """Sliding-window attention (Mistral-7B shape) at long context.

    Two effects: the fused attention kernel skips masked tiles (FLOPs
    follow the attended-pair count), and the decode-time KV cache is
    bounded at the window.
    """
    from repro.transformer.flash import FlashAttentionModel, sum_attended_pairs

    flash = FlashAttentionModel("A100-80GB")
    infer = InferenceModel("A100-80GB")
    cfg = get_model("mistral-7b", microbatch=1)
    full = cfg.with_overrides(attention_window=None)
    table = ResultTable(
        "Extension: sliding-window attention (Mistral-7B, w=4096)",
        ["context", "pair_fraction", "flash_speedup", "kv_ms_windowed", "kv_ms_full"],
    )
    for s in (4096, 8192, 16384, 32768):
        pairs_w = sum_attended_pairs(s, 4096)
        pairs_f = sum_attended_pairs(s, s)
        batch = cfg.num_heads
        fw = flash.evaluate(batch, s, cfg.head_dim, window=4096).latency_s
        ff = flash.evaluate(batch, s, cfg.head_dim).latency_s
        table.add(
            s,
            pairs_w / pairs_f,
            ff / fw,
            infer.decode_step(cfg, s).kv_cache_s * 1e3,
            infer.decode_step(full, s).kv_cache_s * 1e3,
        )
    return table


def check_ext_window(table: ResultTable) -> CheckResult:
    rows = table.rows_as_dicts()
    by_ctx = {r["context"]: r for r in rows}
    checks = [
        check_ratio(
            by_ctx[4096]["flash_speedup"], 1.0, 0.99, 1.01, "no benefit at ctx == window"
        ),
        CheckResult(
            by_ctx[32768]["flash_speedup"] > 3.0,
            f"big win at 8x window ({by_ctx[32768]['flash_speedup']:.2f}x)",
        ),
        CheckResult(
            by_ctx[32768]["kv_ms_windowed"] == by_ctx[4096]["kv_ms_windowed"],
            "KV cost plateaus at the window",
        ),
        CheckResult(
            all(
                r["kv_ms_windowed"] <= r["kv_ms_full"] + 1e-12 for r in rows
            ),
            "windowed KV never costlier than full",
        ),
    ]
    return CheckResult.all_of(checks)


def run_ext_quant() -> ResultTable:
    """Weight-only quantization at decode time (Pythia-2.8B on A100).

    Decode is weight-streaming-bound, so INT8/INT4 weights cut latency
    nearly proportionally until the (fp16) KV cache and launch
    overheads dominate.
    """
    from repro.inference.quantization import QuantizedInferenceModel

    model = QuantizedInferenceModel("A100")
    cfg = get_model("pythia-2.8b", microbatch=1)
    table = ResultTable(
        "Extension: weight-only quantized decode (Pythia-2.8B)",
        ["scheme", "context", "latency_ms", "speedup_vs_fp16"],
    )
    for ctx in (512, 8192):
        fp16 = model.decode_step(cfg, ctx, "fp16").latency_s
        for scheme in ("fp16", "int8", "int4"):
            step = model.decode_step(cfg, ctx, scheme)
            table.add(scheme, ctx, step.latency_s * 1e3, fp16 / step.latency_s)
    return table


def check_ext_quant(table: ResultTable) -> CheckResult:
    rows = {(r[0], r[1]): r[3] for r in table.rows}
    checks = [
        check_ratio(rows[("int8", 512)], 1.0, 1.2, 2.0, "int8 speedup at short ctx"),
        CheckResult(
            rows[("int4", 512)] > rows[("int8", 512)], "int4 beats int8"
        ),
        CheckResult(
            rows[("int8", 8192)] < rows[("int8", 512)],
            "fp16 KV cache dilutes the win at long context",
        ),
    ]
    return CheckResult.all_of(checks)


def run_ext_pipeline_sim() -> ResultTable:
    """Event-simulated 1F1B/GPipe bubbles vs the closed form.

    Grounds the paper's 'L divisible by pipeline stages' rule in an
    actual schedule: uniform stages reproduce (p-1)/m exactly, and 1F1B
    caps in-flight activations at p - stage.
    """
    from repro.parallelism.pipeline import bubble_fraction
    from repro.parallelism.schedule import simulate_pipeline

    table = ResultTable(
        "Extension: pipeline schedule simulation",
        ["schedule", "stages", "microbatches", "bubble", "closed_form", "peak_acts_s0"],
    )
    combos = [
        (schedule, p, m)
        for schedule in ("1f1b", "gpipe")
        for p, m in ((4, 4), (4, 16), (8, 8))
    ]

    def simulate() -> dict:
        import numpy as np

        bubbles, closed, peaks = [], [], []
        for schedule, p, m in combos:
            res = simulate_pipeline(p, m, schedule=schedule)
            bubbles.append(res.bubble_fraction)
            closed.append(bubble_fraction(p, m))
            peaks.append(res.peak_activations(0))
        return {
            "bubble": np.array(bubbles, dtype=np.float64),
            "closed_form": np.array(closed, dtype=np.float64),
            "peak_acts_s0": np.array(peaks, dtype=np.int64),
        }

    # Schedule simulation is pure in (combos, sim version): its columns
    # live in the engine warm store alongside the GEMM batches.
    sim = default_engine().memo_columns(
        "pipeline.sim", ("v1", tuple(combos)), simulate
    )
    table.add_columns(
        schedule=[c[0] for c in combos],
        stages=[c[1] for c in combos],
        microbatches=[c[2] for c in combos],
        bubble=sim["bubble"].tolist(),
        closed_form=sim["closed_form"].tolist(),
        peak_acts_s0=sim["peak_acts_s0"].tolist(),
    )
    return table


def check_ext_pipeline_sim(table: ResultTable) -> CheckResult:
    checks = []
    for row in table.rows_as_dicts():
        checks.append(
            check_ratio(
                row["bubble"] + 1,
                row["closed_form"] + 1,
                0.999,
                1.001,
                f"{row['schedule']} p={row['stages']} m={row['microbatches']}",
            )
        )
        if row["schedule"] == "1f1b":
            checks.append(
                CheckResult(
                    row["peak_acts_s0"] <= row["stages"],
                    "1F1B caps stage-0 in-flight activations at p",
                )
            )
    return CheckResult.all_of(checks)


def run_ext_seqpar() -> ResultTable:
    """Sequence parallelism on top of TP (the paper's deferred analysis).

    Per TP degree: layer latency with plain TP vs TP+SP, the pointwise
    time SP shards away, and the norm-region activation saving.
    """
    from repro.parallelism.sequence_parallel import SequenceParallelLayer
    from repro.parallelism.tensor_parallel import TensorParallelLayer

    tp = TensorParallelLayer("aws-p4d")
    sp = SequenceParallelLayer("aws-p4d")
    cfg = get_model("gpt3-6.7b")
    table = ResultTable(
        "Extension: sequence parallelism on top of TP (GPT-3 6.7B)",
        ["tp", "tp_ms", "sp_ms", "pointwise_saved_ms", "activation_saving"],
    )
    for t in (2, 4, 8):
        tc = tp.layer_cost(cfg, t)
        sc = sp.layer_cost(cfg, t)
        table.add(
            t,
            tc.total_s * 1e3,
            sc.total_s * 1e3,
            sc.pointwise_saved_s * 1e3,
            sp.activation_savings_fraction(cfg, t),
        )
    return table


def check_ext_seqpar(table: ResultTable) -> CheckResult:
    rows = table.rows_as_dicts()
    checks = [
        CheckResult(
            all(r["sp_ms"] <= r["tp_ms"] for r in rows),
            "SP never slower than plain TP",
        ),
        CheckResult(
            all(r["pointwise_saved_ms"] > 0 for r in rows),
            "SP shards away positive pointwise time",
        ),
        check_ratio(
            rows[-1]["activation_saving"], 1.0, 0.87, 0.88, "1 - 1/8 saving at t=8"
        ),
    ]
    return CheckResult.all_of(checks)


def run_ext_gpus() -> ResultTable:
    """The GPT-3 2.7B retune across the whole GPU zoo (Table III + H100).

    The guidelines are claimed to be first-principles, so the same
    equal-parameter retune must win on every architecture — including
    AMD's MI250X, whose matrix cores follow the same byte-alignment
    logic.
    """
    base = get_model("gpt3-2.7b")
    retuned = base.with_overrides(num_heads=20)
    table = ResultTable(
        "Extension: the 2.7B retune across GPUs",
        ["gpu", "base_tflops", "retuned_tflops", "speedup"],
    )
    for gpu in ("V100", "A100", "A100-80GB", "H100", "MI250X"):
        model = LayerLatencyModel(gpu)
        b = model.model_latency(base)
        r = model.model_latency(retuned)
        table.add(
            gpu,
            model.layer_throughput_tflops(base),
            model.layer_throughput_tflops(retuned),
            b / r,
        )
    return table


def check_ext_gpus(table: ResultTable) -> CheckResult:
    speedups = dict(zip(table.column("gpu"), table.column("speedup")))
    checks = [
        CheckResult(
            all(s > 1.02 for s in speedups.values()),
            "the retune wins on every GPU: "
            + ", ".join(f"{g}={s:.2f}x" for g, s in speedups.items()),
        ),
        # H100 vs A100 absolute throughput ratio ~3:1 (Sec VIII).
        check_ratio(
            {r[0]: r[1] for r in table.rows}["H100"],
            {r[0]: r[1] for r in table.rows}["A100"],
            2.0,
            3.8,
            "H100:A100 layer throughput",
        ),
    ]
    return CheckResult.all_of(checks)


def check_ext_gqa(table: ResultTable) -> CheckResult:
    rows = {r[0]: r for r in table.rows}
    checks = [
        check_ratio(rows[64][1], rows[8][1], 7.9, 8.1, "kv cache shrinks 8x at kv=8"),
        CheckResult(
            rows[8][2] < rows[64][2], "GQA reduces decode latency"
        ),
        CheckResult(
            rows[8][3] < rows[64][3], "GQA also sheds parameters"
        ),
    ]
    return CheckResult.all_of(checks)
