"""Parameter-sweep helpers for the figure experiments.

The paper's sweeps walk dimensions in hardware-meaningful steps: hidden
sizes in multiples of ``64 * a`` (so every point keeps h/a integral),
head-dim-preserving sweeps (h = 64a as a varies), and vocabulary sweeps
around the GPT-2 tokenizer size.  These helpers build those grids.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Sequence

from repro.errors import ExperimentError


def _frozen(grid):
    """Freeze a grid's columns so memoized grids cannot be mutated."""
    for name in grid.names:
        grid.column(name).flags.writeable = False
    return grid


def arange_steps(lo: int, hi: int, step: int) -> List[int]:
    """Inclusive integer range with validation."""
    if step <= 0:
        raise ExperimentError(f"step must be positive, got {step}")
    if lo > hi:
        raise ExperimentError(f"empty range [{lo}, {hi}]")
    return list(range(lo, hi + 1, step))


def hidden_sweep_for_heads(
    a: int, min_head_dim: int = 8, max_hidden: int = 16384, points: int = 40
) -> List[int]:
    """Hidden sizes h that keep h/a an integer, up to ``max_hidden``.

    Walks h in steps of ``a * min_head_dim`` (the finest grid where
    every point has an integral head dim), thinned to ~``points``
    samples.  This is the x-axis of Figs 7/21-47: "each line moves in
    steps of 64 h/a" when min_head_dim=64.
    """
    if a <= 0 or min_head_dim <= 0:
        raise ExperimentError("a and min_head_dim must be positive")
    step = a * min_head_dim
    grid = arange_steps(step, max_hidden, step)
    if len(grid) > points:
        stride = -(-len(grid) // points)
        # An even stride would alias the pow-2 structure of h/a (e.g.
        # stride 2 keeps only the odd multiples of min_head_dim, all in
        # the lowest pow-2 bucket); force it odd to sample every bucket.
        if stride % 2 == 0:
            stride += 1
        grid = grid[::stride]
    return grid


def head_dim_preserving_sweep(
    head_dim: int = 64, max_hidden: int = 16384, min_heads: int = 1
) -> List[tuple]:
    """(h, a) pairs with fixed h/a — the Figs 8/9/34 sweep.

    a runs over the integers, h = a * head_dim.
    """
    if head_dim <= 0:
        raise ExperimentError("head_dim must be positive")
    out = []
    a = max(1, min_heads)
    while a * head_dim <= max_hidden:
        out.append((a * head_dim, a))
        a += 1
    if not out:
        raise ExperimentError("sweep produced no points")
    return out


def bmm_shape_array(shapes: Sequence) -> "object":
    """(N, 4) engine shape array from a sequence of BmmShape-like objects.

    The bridge between the figure sweeps (which think in
    :class:`~repro.gpu.bmm_model.BmmShape`) and the vectorized engine
    (which thinks in ``[batch, m, n, k]`` rows).  Row order follows the
    input order, so table rows stay aligned with engine outputs.
    """
    from repro.engine import shape_array

    return shape_array(
        [s.m for s in shapes],
        [s.n for s in shapes],
        [s.k for s in shapes],
        [s.batch for s in shapes],
    )


def pow2_bucket(value: int, cap: int = 64) -> int:
    """Largest power of two dividing ``value``, capped (series key of
    Figs 7/21-47)."""
    if value <= 0:
        raise ExperimentError(f"value must be positive, got {value}")
    return min(value & -value, cap)


def pow2_buckets(values, cap: int = 64):
    """Vectorized :func:`pow2_bucket` over an int array."""
    import numpy as np

    arr = np.asarray(values, dtype=np.int64)
    if arr.size and int(arr.min()) <= 0:
        raise ExperimentError("values must be positive")
    return np.minimum(arr & -arr, cap)


def attention_grid(
    kind: str,
    heads: int,
    b: int = 4,
    s: int = 2048,
    max_hidden: "int | None" = None,
    points: int = 60,
) -> "object":
    """Columnar appendix-family sweep for one head count (Figs 7/21-47).

    Expands the whole ``hidden`` axis as arrays — BMM shape fields,
    head dim, and the pow-2 series key are all ufunc chains; no
    per-point :class:`~repro.gpu.bmm_model.BmmShape` objects exist.
    ``kind``: ``score`` for KQ^T (``b*a x (s, h/a) x (h/a, s)``), ``aov``
    for attention-over-value (``b*a x (s, s) x (s, h/a)``).

    Grids are memoized (and frozen read-only): the sweep definition is
    static, so repeat experiment runs share one columnar expansion.
    """
    return _attention_grid_cached(kind, heads, b, s, max_hidden, points)


@lru_cache(maxsize=256)
def _attention_grid_cached(
    kind: str, heads: int, b: int, s: int, max_hidden: "int | None", points: int
) -> "object":
    import numpy as np

    from repro.engine.grid import ShapeGrid

    if kind not in ("score", "aov"):
        raise ExperimentError(f"unknown attention kind {kind!r}")
    if max_hidden is None:
        max_hidden = max(16384, heads * 8 * 24)
    hiddens = np.asarray(
        hidden_sweep_for_heads(
            heads, min_head_dim=8, max_hidden=max_hidden, points=points
        ),
        dtype=np.int64,
    )
    head_dim = hiddens // heads
    return _frozen(
        ShapeGrid.from_columns(
            batch=b * heads,
            m=s,
            n=s if kind == "score" else head_dim,
            k=head_dim if kind == "score" else s,
            hidden=hiddens,
            heads=heads,
            head_dim=head_dim,
            pow2=pow2_buckets(head_dim),
        )
    )


def head_dim_preserving_grid(
    kind: str,
    head_dim: int = 64,
    b: int = 4,
    s: int = 2048,
    max_hidden: int = 16384,
    min_heads: int = 1,
) -> "object":
    """Columnar fixed-h/a sweep (Figs 8/9/34): h = head_dim * a.

    Memoized and frozen like :func:`attention_grid`.
    """
    return _head_dim_grid_cached(kind, head_dim, b, s, max_hidden, min_heads)


@lru_cache(maxsize=256)
def _head_dim_grid_cached(
    kind: str, head_dim: int, b: int, s: int, max_hidden: int, min_heads: int
) -> "object":
    import numpy as np

    from repro.engine.grid import ShapeGrid

    if kind not in ("score", "aov"):
        raise ExperimentError(f"unknown attention kind {kind!r}")
    if head_dim <= 0:
        raise ExperimentError("head_dim must be positive")
    a = np.arange(max(1, min_heads), max_hidden // head_dim + 1, dtype=np.int64)
    if a.size == 0:
        raise ExperimentError("sweep produced no points")
    return _frozen(
        ShapeGrid.from_columns(
            batch=b * a,
            m=s,
            n=s if kind == "score" else head_dim,
            k=head_dim if kind == "score" else s,
            hidden=a * head_dim,
            heads=a,
        )
    )


def vocab_sweep(center: int = 50257, span: int = 96, step: int = 1) -> List[int]:
    """Vocabulary sizes around a tokenizer's natural size (Fig 20b)."""
    lo = max(1, center - span)
    return arange_steps(lo, center + span, step)


def geometric_sizes(lo: int, hi: int, factor: float = 1.3, multiple: int = 64) -> List[int]:
    """Roughly geometric size grid snapped to a multiple (Fig 5/6 axes)."""
    if lo <= 0 or hi < lo or factor <= 1.0:
        raise ExperimentError("invalid geometric range")
    out: List[int] = []
    x = float(lo)
    while x <= hi:
        snapped = max(multiple, int(round(x / multiple)) * multiple)
        if not out or snapped != out[-1]:
            out.append(snapped)
        x *= factor
    return out
