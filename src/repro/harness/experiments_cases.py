"""Case-study experiments: Fig 13 and the Sec VII studies.

- ``fig13`` — Pythia-suite inference latency trend,
- ``case_gpt3`` — the GPT-3 2.7B retune (Sec VI-B / Fig 1's claim),
- ``case_swiglu`` — the Llama-2 intermediate-size brute force (VII-B),
- ``case_6gpu`` — Summit's 6-GPU nodes vs 8-GPU p4d nodes (VII-A).
"""

from __future__ import annotations

from repro.autotune.swiglu import candidate_for, swiglu_intermediate_search
from repro.core.advisor import ShapeAdvisor
from repro.core.config import get_model
from repro.gpu.alignment import largest_pow2_divisor
from repro.harness.compare import CheckResult, check_ratio
from repro.harness.results import ResultTable
from repro.inference.pythia import OFF_TREND_EXPECTED, run_suite
from repro.parallelism.tensor_parallel import TensorParallelLayer


# -- Fig 13: Pythia inference trend ---------------------------------------------


def run_fig13() -> ResultTable:
    """Per-token decode latency across the Pythia suite, with trend fit."""
    table = ResultTable(
        "Fig 13: Pythia suite inference latency",
        ["model", "params_m", "latency_ms", "trend_ms", "residual"],
        notes="trend fitted through the on-trend suite members; positive "
        "residual = slower than the scaling trend",
    )
    for point in run_suite():
        table.add(
            point.name,
            point.params / 1e6,
            point.latency_ms,
            point.predicted_ms,
            point.residual,
        )
    return table


def check_fig13(table: ResultTable) -> CheckResult:
    residuals = dict(zip(table.column("model"), table.column("residual")))
    checks = []
    for name, sign in OFF_TREND_EXPECTED.items():
        res = residuals[name]
        checks.append(
            CheckResult(
                res * sign > 0.05,
                f"{name}: residual {res:+.3f} (expected sign {sign:+d})",
            )
        )
    # The off-trend pair should be more extreme than every on-trend model.
    on_trend_max = max(
        abs(r) for name, r in residuals.items() if name not in OFF_TREND_EXPECTED
    )
    checks.append(
        CheckResult(
            abs(residuals["pythia-410m"]) > on_trend_max
            and abs(residuals["pythia-1b"]) > on_trend_max,
            f"off-trend pair exceeds on-trend max |residual| {on_trend_max:.3f}",
        )
    )
    return CheckResult.all_of(checks)


# -- GPT-3 2.7B retune case study -------------------------------------------------


def run_case_gpt3() -> ResultTable:
    """Advisor proposals for GPT-3 2.7B on A100 (the Sec VI-B fix)."""
    advisor = ShapeAdvisor("A100")
    cfg = get_model("gpt3-2.7b")
    table = ResultTable(
        "Case study: retuning GPT-3 2.7B (Sec VI-B)",
        ["proposal", "heads", "head_dim", "speedup", "param_ratio"],
        notes=f"baseline: {cfg.describe()}",
    )
    for prop in advisor.propose(cfg, top=8):
        table.add(
            prop.config.name,
            prop.config.num_heads,
            prop.config.head_dim,
            prop.speedup,
            prop.param_ratio,
        )
    return table


def check_case_gpt3(table: ResultTable) -> CheckResult:
    best = table.best_row(by="speedup")
    checks = [
        check_ratio(best["speedup"], 1.0, 1.10, 1.60, "best retune speedup (paper: 1.18x)"),
        CheckResult(
            best["head_dim"] > 80 and best["head_dim"] % 8 == 0,
            f"best proposal raises h/a: {best['head_dim']} (was 80)",
        ),
        CheckResult(
            abs(best["param_ratio"] - 1.0) < 1e-9,
            f"head retune keeps params identical (ratio {best['param_ratio']:.6f})",
        ),
    ]
    return CheckResult.all_of(checks)


# -- SwiGLU intermediate-size search -----------------------------------------------


def run_case_swiglu() -> ResultTable:
    """Brute-force d_ff near 8h/3 for h=4096 (Llama-2-7B, Sec VII-B).

    A step-8 grid keeps the run quick while covering every alignment
    class that matters (odd values are hopeless on all counts); the
    published 11008 and the naive round(8h/3)=10923 are force-included.
    """
    naive = round(8 * 4096 / 3)
    candidates = swiglu_intermediate_search(
        h=4096, gpu="A100", window=0.06, step=8, must_include=[naive, 11008]
    )
    table = ResultTable(
        "Case study: SwiGLU intermediate size search, h=4096 (Sec VII-B)",
        ["d_ff", "coefficient", "pow2", "latency_us", "percentile"],
        notes="nominal 8h/3 = 10922.67; Llama-2-7B ships 11008",
    )
    for cand in candidates:
        table.add(
            cand.d_ff,
            cand.coefficient,
            cand.pow2,
            cand.latency_s * 1e6,
            cand.percentile,
        )
    return table


def check_case_swiglu(table: ResultTable) -> CheckResult:
    rows = {r[0]: r for r in table.rows}
    llama = rows[11008]
    naive = rows[10923]
    checks = [
        CheckResult(
            llama[4] >= 0.9,
            f"Llama-2's 11008 is top-decile in its range (percentile {llama[4]:.2f})",
        ),
        # The odd 10923 loses vectorized alignment entirely; the paper
        # does not quantify the gap, only that it is "much slower".
        check_ratio(naive[3], llama[3], 1.05, 8.0, "naive 10923 vs 11008 latency"),
    ]
    return CheckResult.all_of(checks)


# -- 6-GPU nodes (Summit) case study ------------------------------------------------


#: (hidden, heads) shapes contrasted by the 6-GPU study: the 8-GPU
#: standard 2.7B shape, and a Summit-friendly variant divisible by 6.
_6GPU_SHAPES = ((2560, 32), (2688, 24))


def run_case_6gpu() -> ResultTable:
    """The Sec VII-A trilemma, quantified.

    1. The standard 8-GPU-friendly h=2560 cannot run t=6 at all
       (neither h nor a divides by 6).
    2. A Summit-friendly h=2688 (divisible by 6 *and* 64) works at t=6
       with pow2(h/t)=64...
    3. ...but that concession bites downstream: at t=8 its per-rank
       width 336 has pow-2 factor only 16, degrading every GEMM for
       users fine-tuning or serving on 8-GPU nodes.
    """
    table = ResultTable(
        "Case study: 6-GPU nodes (Sec VII-A)",
        ["system", "hidden", "tp", "feasible", "h_over_t", "pow2", "layer_ms"],
    )
    for system in ("ornl-summit", "aws-p4d"):
        tp_model = TensorParallelLayer(system)
        max_t = tp_model.topology.gpus_per_node
        for h, a in _6GPU_SHAPES:
            cfg = get_model("gpt3-2.7b").with_overrides(
                name=f"h{h}", hidden_size=h, num_heads=a, microbatch=6
            )
            for t in (1, 2, 4, 6, 8):
                if t > max_t:
                    continue
                try:
                    cost = tp_model.layer_cost(cfg, t)
                except Exception:
                    table.add(system, h, t, False, 0, 0, float("nan"))
                    continue
                h_t = h // t
                table.add(
                    system,
                    h,
                    t,
                    True,
                    h_t,
                    largest_pow2_divisor(h_t),
                    cost.total_s * 1e3,
                )
    return table


def check_case_6gpu(table: ResultTable) -> CheckResult:
    rows = table.rows_as_dicts()

    def find(system, h, t):
        for r in rows:
            if r["system"] == system and r["hidden"] == h and r["tp"] == t:
                return r
        return None

    summit_2560_t6 = find("ornl-summit", 2560, 6)
    summit_2688_t6 = find("ornl-summit", 2688, 6)
    p4d_2688_t8 = find("aws-p4d", 2688, 8)
    p4d_2560_t8 = find("aws-p4d", 2560, 8)
    checks = [
        CheckResult(
            summit_2560_t6 is not None and summit_2560_t6["feasible"] is False,
            "h=2560/a=32 is infeasible at t=6",
        ),
        CheckResult(
            summit_2688_t6 is not None
            and summit_2688_t6["feasible"] is True
            and summit_2688_t6["pow2"] >= 64,
            "Summit-friendly h=2688 runs t=6 with pow2(h/t) >= 64",
        ),
        CheckResult(
            p4d_2688_t8 is not None
            and p4d_2688_t8["feasible"] is True
            and p4d_2688_t8["pow2"] < 64,
            "the 6-GPU concession degrades 8-GPU deployment: "
            f"pow2(2688/8) = {p4d_2688_t8['pow2'] if p4d_2688_t8 else '?'} < 64",
        ),
        CheckResult(
            p4d_2560_t8 is not None and p4d_2560_t8["pow2"] >= 64,
            "while the 8-GPU shape keeps pow2(2560/8) >= 64",
        ),
    ]
    return CheckResult.all_of(checks)
