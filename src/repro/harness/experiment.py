"""The experiment unit: a named, runnable paper artifact.

Each :class:`Experiment` wraps a ``run()`` producing a
:class:`~repro.harness.results.ResultTable` and an optional ``check()``
verifying the paper's qualitative claim about that artifact's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.errors import ExperimentError
from repro.harness.compare import CheckResult
from repro.harness.results import ResultTable

RunFn = Callable[[], ResultTable]
CheckFn = Callable[[ResultTable], CheckResult]


@dataclass
class Experiment:
    """One reproducible figure/table/case study."""

    id: str
    title: str
    paper_ref: str
    run_fn: RunFn
    check_fn: Optional[CheckFn] = None
    description: str = ""
    #: Model-preset names this experiment sweeps; the runner lints them
    #: through :class:`repro.analysis.ShapeLinter` before running so
    #: known-inefficient shapes are flagged before a long sweep starts.
    lint_configs: Tuple[str, ...] = ()

    def run(self) -> ResultTable:
        """Execute the experiment and return its table."""
        table = self.run_fn()
        if not isinstance(table, ResultTable):
            raise ExperimentError(
                f"{self.id}: run_fn returned {type(table).__name__}, "
                "expected ResultTable"
            )
        if len(table) == 0:
            raise ExperimentError(f"{self.id}: experiment produced no rows")
        return table

    def check(self, table: Optional[ResultTable] = None) -> CheckResult:
        """Run (or reuse) the table and verify the paper-shape claim."""
        if table is None:
            table = self.run()
        if self.check_fn is None:
            return CheckResult(
                passed=True,
                details=f"{self.id}: no qualitative check registered",
            )
        return self.check_fn(table)

    def describe(self) -> str:
        return f"{self.id:<12} {self.paper_ref:<18} {self.title}"
