"""Observability: structured tracing, metrics, and trace reports.

A stdlib-only leaf package — it imports nothing from the layers it
instruments, so any module in the codebase can safely call
:func:`span` / :func:`event` / :func:`metrics` without creating an
import cycle.

Tracing is zero-cost when disabled: :func:`span` performs a single
module-global read and returns a shared no-op singleton unless a
:class:`TraceRecorder` has been installed (see :func:`recording`).
"""

from repro.observability.metrics import (
    DEFAULT_LATENCY_EDGES_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
    reset_metrics,
)
from repro.observability.report import (
    NameStats,
    TraceReport,
    render_trace_report,
    summarize,
)
from repro.observability.tracing import (
    NULL_SPAN,
    LoadedTrace,
    NullSpan,
    Span,
    TraceRecorder,
    current_recorder,
    event,
    install_recorder,
    load_trace,
    recording,
    span,
    tracing_enabled,
)

__all__ = [
    # tracing
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "TraceRecorder",
    "span",
    "event",
    "recording",
    "install_recorder",
    "current_recorder",
    "tracing_enabled",
    "load_trace",
    "LoadedTrace",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "reset_metrics",
    "DEFAULT_LATENCY_EDGES_S",
    # report
    "NameStats",
    "TraceReport",
    "summarize",
    "render_trace_report",
]
