"""Metrics: counters, gauges, and fixed-bucket histograms.

Complements tracing the way a production system's metrics pipeline
complements its distributed tracer: spans answer *where did this run's
time go*, metrics answer *how many / how much* across the whole
process — cache hits vs recomputes, task retries, fault firings,
journal appends.

Everything is deliberately simple and dependency-free:

- :class:`Counter` — monotonically increasing int.
- :class:`Gauge` — last-written float (harvested values like cache
  sizes are *set*, not incremented).
- :class:`Histogram` — fixed bucket edges chosen at creation; observing
  a value increments the first bucket whose upper edge contains it.
  Fixed edges keep merge/compare trivial (no dynamic rebinning) and
  match how latency SLO histograms work in real metric systems.
- :class:`MetricsRegistry` — a named collection of the above with a
  text and JSON summary.  Instruments are created on first use
  (``registry.counter("engine.eval.calls").inc()``), so call sites
  never pre-register.

Increment cost is one dict lookup plus an int add under the GIL; the
instrumented layers only record *coarse* events (one per batch
evaluation, task attempt, fit — never per scalar model call), so the
registry stays out of the 10.8x warm path.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "reset_metrics",
    "DEFAULT_LATENCY_EDGES_S",
]

#: Default histogram edges for second-denominated latencies: spans the
#: microsecond engine batches through multi-second experiment sweeps.
DEFAULT_LATENCY_EDGES_S: Tuple[float, ...] = (
    1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 60.0,
)


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Last-written value (e.g. cache entry counts harvested at report)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``edges`` are the inclusive upper bounds of each finite bucket; one
    overflow bucket catches everything above the last edge.  Edges are
    fixed at creation so two summaries of the same metric are always
    comparable bucket-for-bucket.
    """

    __slots__ = ("name", "edges", "_counts", "_count", "_sum", "_min",
                 "_max", "_lock")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_LATENCY_EDGES_S) -> None:
        if not edges or list(edges) != sorted(float(e) for e in edges):
            raise ValueError(f"histogram {name} needs ascending edges, got {edges}")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self._counts = [0] * (len(self.edges) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.edges)
        for i, edge in enumerate(self.edges):
            if value <= edge:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> List[Tuple[str, int]]:
        """(label, count) pairs including the overflow bucket."""
        labels = [f"<={e:g}" for e in self.edges] + [f">{self.edges[-1]:g}"]
        with self._lock:
            return list(zip(labels, self._counts))

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "type": "histogram",
                "edges": list(self.edges),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }


class MetricsRegistry:
    """Named instruments, created on first use.

    A name must keep one instrument type for the registry's lifetime;
    asking for ``counter(name)`` after ``gauge(name)`` raises — silent
    type morphing is how metric pipelines corrupt dashboards.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, *args):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, *args)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise ValueError(
                    f"metric {name!r} is a {type(inst).__name__}, "
                    f"not a {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_LATENCY_EDGES_S
    ) -> Histogram:
        return self._get(name, Histogram, edges)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str) -> Optional[Any]:
        with self._lock:
            return self._instruments.get(name)

    def reset(self) -> None:
        """Drop every instrument (tests; fresh CLI runs)."""
        with self._lock:
            self._instruments.clear()

    # -- reporting -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: inst.to_dict() for name, inst in items}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        """Aligned text summary, one instrument per line (+ buckets)."""
        with self._lock:
            items = sorted(self._instruments.items())
        if not items:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in items)
        lines: List[str] = []
        for name, inst in items:
            if isinstance(inst, Counter):
                lines.append(f"{name:<{width}}  counter    {inst.value}")
            elif isinstance(inst, Gauge):
                lines.append(f"{name:<{width}}  gauge      {inst.value:g}")
            else:
                lines.append(
                    f"{name:<{width}}  histogram  count={inst.count} "
                    f"sum={inst.sum:.6g} mean={inst.mean:.6g}"
                )
                buckets = ", ".join(
                    f"{label}: {count}"
                    for label, count in inst.bucket_counts()
                    if count
                )
                if buckets:
                    lines.append(f"{'':<{width}}             [{buckets}]")
        return "\n".join(lines)


#: Process-wide registry the instrumented layers write to.
_GLOBAL = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _GLOBAL


def reset_metrics() -> None:
    """Clear the global registry (tests; start of a traced CLI run)."""
    _GLOBAL.reset()
