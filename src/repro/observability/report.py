"""Trace analysis: per-phase latency / cache / retry breakdown.

Backs ``repro report trace.jsonl``.  Given spans (live from a
:class:`~repro.observability.tracing.TraceRecorder` or reloaded with
:func:`~repro.observability.tracing.load_trace`), :func:`summarize`
builds a :class:`TraceReport` whose :meth:`~TraceReport.render_text`
answers the questions the paper's kernel-share figures answer for a
training step:

- **Where did the time go?**  Total/mean/max duration per phase (the
  first dot-segment of a span name) and per span name, with shares.
- **What did the caches do?**  Engine batch evaluations split by
  ``source`` (memory / disk / compute) from ``engine.evaluate`` spans,
  plus SoA whole-grid evaluations (``engine.evaluate_grid``), column
  memo lookups (``engine.memo_columns``), and per-experiment memo /
  engine-cache deltas from ``runner.experiment`` spans.
- **What did resilience do?**  Task attempts split by outcome, retried
  tasks, injected-fault firings, journal appends — so a chaos sweep's
  trace shows every retry storm and fault site at a glance.

The module is dependency-free (plain text rendering) so the
observability package never imports the layers it instruments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.observability.tracing import LoadedTrace, Span

__all__ = ["NameStats", "TraceReport", "summarize", "render_trace_report"]


@dataclass
class NameStats:
    """Aggregate duration statistics for one span name (or phase)."""

    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    errors: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def add(self, span: Span) -> None:
        self.count += 1
        self.total_s += span.duration_s
        self.max_s = max(self.max_s, span.duration_s)
        if span.status != "ok":
            self.errors += 1


def _aggregate(spans: Sequence[Span], key) -> List[NameStats]:
    stats: Dict[str, NameStats] = {}
    for span in spans:
        k = key(span)
        entry = stats.get(k)
        if entry is None:
            entry = stats[k] = NameStats(name=k)
        entry.add(span)
    return sorted(stats.values(), key=lambda s: -s.total_s)


@dataclass
class TraceReport:
    """Everything the trace-report verb prints, in structured form."""

    spans: int
    dropped_lines: int
    wall_span_s: float
    processes: int
    threads: int
    phases: List[NameStats] = field(default_factory=list)
    names: List[NameStats] = field(default_factory=list)
    #: engine.evaluate spans bucketed by their ``source`` attribute.
    cache_sources: Dict[str, int] = field(default_factory=dict)
    #: shapes evaluated per source (sum of the ``shapes`` attribute).
    cache_shapes: Dict[str, int] = field(default_factory=dict)
    #: engine.evaluate_grid spans (SoA front door) and their shape total.
    grid_evaluations: int = 0
    grid_shapes: int = 0
    #: engine.memo_columns spans bucketed by ``source``.
    column_memo_sources: Dict[str, int] = field(default_factory=dict)
    #: per-experiment memo/engine cache deltas from runner.experiment
    #: spans: id -> {memo_hits, memo_misses, engine_hits, engine_misses}.
    experiment_memo: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: task.attempt spans bucketed by their ``outcome`` attribute.
    attempt_outcomes: Dict[str, int] = field(default_factory=dict)
    tasks: int = 0
    retried_tasks: int = 0
    max_attempts: int = 0
    fault_events: int = 0
    fault_sites: Dict[str, int] = field(default_factory=dict)
    journal_appends: int = 0

    def phase_names(self) -> List[str]:
        return [p.name for p in self.phases]

    # -- rendering -----------------------------------------------------------

    def render_text(self) -> str:
        lines: List[str] = [
            f"trace: {self.spans} span(s) over {self.wall_span_s * 1e3:.1f} ms "
            f"({self.processes} process(es), {self.threads} thread(s))",
        ]
        if self.dropped_lines:
            lines.append(f"  {self.dropped_lines} torn/corrupt line(s) dropped on load")
        if not self.spans:
            lines.append("(empty trace)")
            return "\n".join(lines)

        total = sum(p.total_s for p in self.phases) or 1.0
        lines.append("")
        lines.append("per-phase breakdown (span time, not wall time):")
        lines.append(
            f"  {'phase':<14} {'spans':>6} {'total_ms':>10} {'mean_ms':>9} "
            f"{'max_ms':>9} {'share':>6} {'errors':>6}"
        )
        for p in self.phases:
            lines.append(
                f"  {p.name:<14} {p.count:>6} {p.total_s * 1e3:>10.2f} "
                f"{p.mean_s * 1e3:>9.3f} {p.max_s * 1e3:>9.2f} "
                f"{100 * p.total_s / total:>5.1f}% {p.errors:>6}"
            )

        lines.append("")
        lines.append("per-span-name breakdown:")
        for n in self.names:
            lines.append(
                f"  {n.name:<28} {n.count:>6} spans  {n.total_s * 1e3:>10.2f} ms "
                f"(mean {n.mean_s * 1e3:.3f} ms, max {n.max_s * 1e3:.2f} ms"
                + (f", {n.errors} errors)" if n.errors else ")")
            )

        if self.cache_sources:
            lines.append("")
            evals = sum(self.cache_sources.values())
            hits = evals - self.cache_sources.get("compute", 0)
            lines.append(
                f"engine cache: {evals} batch evaluation(s), "
                f"{hits} served from cache "
                f"({100 * hits / evals:.0f}% batch hit rate)"
            )
            for source in ("memory", "disk", "compute"):
                if source in self.cache_sources:
                    shapes = self.cache_shapes.get(source, 0)
                    lines.append(
                        f"  {source:<8} {self.cache_sources[source]:>5} "
                        f"batch(es), {shapes} shape(s)"
                    )
        if self.grid_evaluations:
            lines.append(
                f"soa grids: {self.grid_evaluations} whole-grid evaluation(s), "
                f"{self.grid_shapes} shape(s)"
            )
        if self.column_memo_sources:
            lookups = sum(self.column_memo_sources.values())
            source_bits = ", ".join(
                f"{k}: {v}"
                for k in ("memory", "disk", "compute")
                if (v := self.column_memo_sources.get(k))
            )
            lines.append(f"column memo: {lookups} lookup(s) ({source_bits})")
        if self.experiment_memo:
            lines.append("")
            lines.append("per-experiment cache deltas (hits/misses):")
            lines.append(
                f"  {'experiment':<20} {'scalar memo':>12} {'engine':>10}"
            )
            for exp_id, st in sorted(self.experiment_memo.items()):
                memo = f"{st['memo_hits']}/{st['memo_misses']}"
                eng = f"{st['engine_hits']}/{st['engine_misses']}"
                lines.append(f"  {exp_id:<20} {memo:>12} {eng:>10}")

        if self.attempt_outcomes:
            lines.append("")
            attempts = sum(self.attempt_outcomes.values())
            outcome_bits = ", ".join(
                f"{k}: {v}" for k, v in sorted(self.attempt_outcomes.items())
            )
            lines.append(
                f"tasks: {self.tasks} task(s), {attempts} attempt(s) "
                f"({outcome_bits})"
            )
            if self.retried_tasks:
                lines.append(
                    f"  {self.retried_tasks} task(s) retried "
                    f"(max {self.max_attempts} attempts on one task)"
                )
        if self.fault_events:
            sites = ", ".join(
                f"{k}: {v}" for k, v in sorted(self.fault_sites.items())
            )
            lines.append(f"faults: {self.fault_events} injected firing(s) ({sites})")
        if self.journal_appends:
            lines.append(f"journal: {self.journal_appends} checkpoint append(s)")
        return "\n".join(lines)


def summarize(
    trace: "LoadedTrace | Sequence[Span]",
    dropped_lines: Optional[int] = None,
) -> TraceReport:
    """Aggregate spans into a :class:`TraceReport`."""
    if isinstance(trace, LoadedTrace):
        spans: List[Span] = list(trace.spans)
        dropped = trace.dropped_lines if dropped_lines is None else dropped_lines
        wall = trace.wall_span_s()
    else:
        spans = list(trace)
        dropped = dropped_lines or 0
        if spans:
            start = min(s.start_unix_s for s in spans)
            end = max(s.start_unix_s + s.duration_s for s in spans)
            wall = end - start
        else:
            wall = 0.0

    report = TraceReport(
        spans=len(spans),
        dropped_lines=dropped,
        wall_span_s=wall,
        processes=len({s.pid for s in spans}),
        threads=len({(s.pid, s.thread) for s in spans}),
        phases=_aggregate(spans, lambda s: s.phase),
        names=_aggregate(spans, lambda s: s.name),
    )

    task_attempts: Dict[Any, int] = {}
    for span in spans:
        if span.name == "engine.evaluate":
            source = str(span.attrs.get("source", "compute"))
            report.cache_sources[source] = report.cache_sources.get(source, 0) + 1
            report.cache_shapes[source] = report.cache_shapes.get(
                source, 0
            ) + int(span.attrs.get("shapes", 0))
        elif span.name == "engine.evaluate_grid":
            report.grid_evaluations += 1
            report.grid_shapes += int(span.attrs.get("shapes", 0))
        elif span.name == "engine.memo_columns":
            source = str(span.attrs.get("source", "compute"))
            report.column_memo_sources[source] = (
                report.column_memo_sources.get(source, 0) + 1
            )
        elif span.name == "runner.experiment":
            exp_id = str(span.attrs.get("id", "?"))
            entry = report.experiment_memo.setdefault(
                exp_id,
                {
                    "memo_hits": 0,
                    "memo_misses": 0,
                    "engine_hits": 0,
                    "engine_misses": 0,
                },
            )
            for field_name in entry:
                entry[field_name] += int(span.attrs.get(field_name, 0))
        elif span.name == "task.attempt":
            outcome = str(span.attrs.get("outcome", "unknown"))
            report.attempt_outcomes[outcome] = (
                report.attempt_outcomes.get(outcome, 0) + 1
            )
            task = span.attrs.get("task", "?")
            task_attempts[task] = task_attempts.get(task, 0) + 1
        elif span.name == "fault.fired":
            report.fault_events += 1
            site = str(span.attrs.get("site", "?"))
            report.fault_sites[site] = report.fault_sites.get(site, 0) + 1
        elif span.name == "journal.append":
            report.journal_appends += 1
    report.tasks = len(task_attempts)
    report.retried_tasks = sum(1 for n in task_attempts.values() if n > 1)
    report.max_attempts = max(task_attempts.values(), default=0)
    return report


def render_trace_report(path: str) -> str:
    """Load a JSONL trace file and render the full text report."""
    from repro.observability.tracing import load_trace

    return summarize(load_trace(path)).render_text()
