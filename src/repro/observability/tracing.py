"""Structured tracing: nested spans, a thread-safe collector, JSONL I/O.

The reproduction's performance story is built from decomposition — the
paper explains end-to-end latency by attributing it to kernels (Figs
2/11), and this module does the same for the reproduction itself: every
interesting unit of work (an experiment task attempt, an engine batch
evaluation, a calibration fit, a priced trace module) runs inside a
**span** carrying its wall time and a small attribute dict, and spans
nest so a trace reconstructs *where the time went*.

Design constraints, in order:

1. **Zero cost when disabled.**  Tracing is off by default; the hot
   layers call :func:`span` unconditionally, so with no recorder
   installed the call must be one global read returning a shared no-op
   object — no ``Span`` allocation, no clock read, no lock.  This is
   what preserves the engine's warm-path win from PR 1 (the acceptance
   bar is ``repro bench`` within 5% of BENCH_engine.json with tracing
   disabled).
2. **Thread-safe, process-tolerant collection.**  The recorder appends
   finished spans to an in-memory list under a lock; worker threads of
   a resilient sweep share it.  Each span records its pid and thread
   name, and when the recorder streams to a ``path``, lines are written
   with ``O_APPEND`` semantics so multiple processes appending to the
   same file interleave whole lines rather than tearing each other.
3. **Torn-tail-tolerant reload.**  A crashed run leaves at worst one
   torn final line; :func:`load_trace` drops undecodable lines (and a
   final line missing its newline) and reports how many it dropped,
   exactly like the resilience journal.

Span parentage is tracked per thread (a ``threading.local`` stack), so
concurrent experiment tasks each get their own span tree under the
recorder's trace.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "TraceRecorder",
    "install_recorder",
    "current_recorder",
    "tracing_enabled",
    "span",
    "event",
    "recording",
    "load_trace",
    "LoadedTrace",
]


def _new_id() -> str:
    """A short unique span id (64 random bits, hex)."""
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One finished unit of work.

    ``start_unix_s`` is wall-clock (``time.time``) for cross-process
    ordering; ``duration_s`` is measured with ``perf_counter`` so it is
    monotonic and sub-microsecond.  ``phase`` is the first dot-segment
    of ``name`` (``"engine.evaluate"`` -> ``"engine"``) — the report
    verb aggregates per phase.
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    trace_id: str
    start_unix_s: float
    duration_s: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    pid: int = 0
    thread: str = ""

    @property
    def phase(self) -> str:
        return self.name.split(".", 1)[0]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_unix_s": round(self.start_unix_s, 6),
            "duration_s": self.duration_s,
            "attrs": self.attrs,
            "status": self.status,
            "pid": self.pid,
            "thread": self.thread,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            name=str(data["name"]),
            span_id=str(data.get("span_id", "")),
            parent_id=data.get("parent_id"),
            trace_id=str(data.get("trace_id", "")),
            start_unix_s=float(data.get("start_unix_s", 0.0)),
            duration_s=float(data.get("duration_s", 0.0)),
            attrs=dict(data.get("attrs", {})),
            status=str(data.get("status", "ok")),
            pid=int(data.get("pid", 0)),
            thread=str(data.get("thread", "")),
        )


class NullSpan:
    """The shared do-nothing span handle returned while tracing is off.

    Implements the full live-span surface (context manager plus
    :meth:`set`) so call sites never branch on whether tracing is
    enabled.  A single module-level instance is reused for every call —
    the disabled path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attrs: Any) -> "NullSpan":
        return self


NULL_SPAN = NullSpan()


class _LiveSpan:
    """Context-manager handle for one in-flight span."""

    __slots__ = ("_recorder", "name", "attrs", "span_id", "parent_id",
                 "_start_unix", "_start_perf")

    def __init__(self, recorder: "TraceRecorder", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id = _new_id()
        self.parent_id: Optional[str] = None
        self._start_unix = 0.0
        self._start_perf = 0.0

    def __enter__(self) -> "_LiveSpan":
        self.parent_id = self._recorder._push(self.span_id)
        self._start_unix = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        duration = time.perf_counter() - self._start_perf
        self._recorder._pop(self.span_id)
        status = "ok"
        if exc_type is not None:
            status = "error"
            self.attrs.setdefault("error_type", exc_type.__name__)
        self._recorder._finish(
            Span(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                trace_id=self._recorder.trace_id,
                start_unix_s=self._start_unix,
                duration_s=duration,
                attrs=self.attrs,
                status=status,
                pid=os.getpid(),
                thread=threading.current_thread().name,
            )
        )

    def set(self, **attrs: Any) -> "_LiveSpan":
        """Attach attributes mid-span (e.g. an outcome computed later)."""
        self.attrs.update(attrs)
        return self


class TraceRecorder:
    """Thread-safe in-memory span collector with optional JSONL stream.

    Parameters
    ----------
    path:
        When given, every finished span is immediately appended to this
        file as one JSON line (append-mode writes, so concurrent
        processes tracing to the same file interleave whole lines).
        Without it, spans live in memory until :meth:`export_jsonl`.
    """

    def __init__(self, path: "str | Path | None" = None) -> None:
        self.trace_id = _new_id()
        self.spans: List[Span] = []
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._stack = threading.local()
        if self.path is not None and self.path.parent:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- span-stack plumbing (called by _LiveSpan) ---------------------------

    def _push(self, span_id: str) -> Optional[str]:
        stack = getattr(self._stack, "ids", None)
        if stack is None:
            stack = self._stack.ids = []
        parent = stack[-1] if stack else None
        stack.append(span_id)
        return parent

    def _pop(self, span_id: str) -> None:
        stack = getattr(self._stack, "ids", None)
        if stack and stack[-1] == span_id:
            stack.pop()
        elif stack and span_id in stack:  # pragma: no cover - defensive
            stack.remove(span_id)

    def _finish(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)
            if self.path is not None:
                line = json.dumps(span.to_dict(), sort_keys=True)
                with open(self.path, "a") as fh:
                    fh.write(line + "\n")

    # -- public API ----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _LiveSpan:
        """Start a span under this recorder (see module-level :func:`span`)."""
        return _LiveSpan(self, name, attrs)

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    def by_name(self, name: str) -> List[Span]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def phases(self) -> List[str]:
        """Distinct phases recorded so far, in first-appearance order."""
        seen: Dict[str, None] = {}
        with self._lock:
            for s in self.spans:
                seen.setdefault(s.phase)
        return list(seen)

    def export_jsonl(self, path: "str | Path") -> int:
        """Write every collected span to ``path``; returns the count.

        With a streaming ``path`` already set this is only needed to
        export a *second* copy; streamed files are written incrementally.
        """
        target = Path(path)
        if target.parent:
            target.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            spans = list(self.spans)
        with open(target, "w") as fh:
            for span_obj in spans:
                fh.write(json.dumps(span_obj.to_dict(), sort_keys=True) + "\n")
        return len(spans)


# -- the installed recorder -------------------------------------------------------

_ACTIVE: Optional[TraceRecorder] = None
_ACTIVE_LOCK = threading.Lock()


def install_recorder(recorder: Optional[TraceRecorder]) -> None:
    """Install (or, with ``None``, remove) the process-wide recorder.

    Like the fault plan, the recorder is process-global so worker
    *threads* of a resilient sweep trace into it; process-pool workers
    do not inherit it (trace runs use the thread or serial executor).
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = recorder


def current_recorder() -> Optional[TraceRecorder]:
    return _ACTIVE


def tracing_enabled() -> bool:
    return _ACTIVE is not None


def span(name: str, **attrs: Any):
    """Open a span on the installed recorder, or the shared no-op.

    The disabled path is a single global read plus returning the
    module-level :data:`NULL_SPAN` — no allocation, no clock read::

        with span("engine.evaluate", shapes=len(batch)) as sp:
            ...
            sp.set(source="memory")
    """
    recorder = _ACTIVE
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record an instantaneous (zero-duration) span, e.g. a fault firing."""
    recorder = _ACTIVE
    if recorder is None:
        return
    with recorder.span(name, **attrs):
        pass


class recording:
    """Context manager installing a recorder for the duration of a block.

    Returns the recorder so the block can inspect collected spans::

        with recording() as rec:
            run_experiment("fig2")
        assert rec.by_name("runner.experiment")

    Accepts an existing :class:`TraceRecorder`, a path to stream JSONL
    to (a fresh recorder is created), or nothing (in-memory recorder).
    """

    def __init__(
        self, target: "TraceRecorder | str | Path | None" = None
    ) -> None:
        if isinstance(target, TraceRecorder):
            self.recorder = target
        else:
            self.recorder = TraceRecorder(path=target)

    def __enter__(self) -> TraceRecorder:
        install_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc_info: Any) -> None:
        install_recorder(None)


# -- reload -----------------------------------------------------------------------


@dataclass
class LoadedTrace:
    """Spans reloaded from a JSONL trace file.

    ``dropped_lines`` counts torn or undecodable lines skipped on load
    (a crashed writer can tear at most the final line of its stream).
    """

    spans: List[Span]
    dropped_lines: int = 0
    path: Optional[Path] = None

    def __len__(self) -> int:
        return len(self.spans)

    def phases(self) -> List[str]:
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.phase)
        return list(seen)

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def wall_span_s(self) -> float:
        """Wall-clock extent from first span start to last span end."""
        if not self.spans:
            return 0.0
        start = min(s.start_unix_s for s in self.spans)
        end = max(s.start_unix_s + s.duration_s for s in self.spans)
        return end - start


def load_trace(path: "str | Path") -> LoadedTrace:
    """Reload a JSONL trace, tolerating a torn tail.

    Raises :class:`OSError` if the file cannot be read at all; corrupt
    *lines* (including a final line with no terminating newline, which
    the append contract marks as possibly incomplete) are dropped and
    counted, never fatal.
    """
    target = Path(path)
    text = target.read_text()
    spans: List[Span] = []
    dropped = 0
    lines = text.split("\n")
    torn_tail = bool(lines) and lines[-1] != ""
    for i, line in enumerate(lines):
        if not line:
            continue
        if torn_tail and i == len(lines) - 1:
            dropped += 1
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict) or "name" not in record:
                raise ValueError("not a span record")
            spans.append(Span.from_dict(record))
        except (ValueError, KeyError, TypeError):
            dropped += 1
    spans.sort(key=lambda s: (s.start_unix_s, s.span_id))
    return LoadedTrace(spans=spans, dropped_lines=dropped, path=target)


def children_of(spans: List[Span], parent_id: str) -> List[Span]:
    """Direct children of one span (report drill-down helper)."""
    return [s for s in spans if s.parent_id == parent_id]


def roots(spans: List[Span]) -> List[Span]:
    """Spans with no recorded parent (per-thread/per-task tree roots)."""
    ids = {s.span_id for s in spans}
    return [s for s in spans if s.parent_id is None or s.parent_id not in ids]


def spans_to_tuples(spans: List[Span]) -> List[Tuple[str, float]]:
    """(name, duration) pairs — a convenience for quick assertions."""
    return [(s.name, s.duration_s) for s in spans]
