"""Matmul operation tracing.

The paper's entire analysis rests on one mapping: *which GEMMs does a
transformer layer actually execute* (Table II).  Rather than trusting a
hand-derived table, the NumPy transformer routes every matrix
multiplication through :meth:`OpTrace.matmul` / :meth:`OpTrace.bmm`,
recording the executed shapes.  Tests then diff the recorded shapes
against the analytical mapping, making the Table II reproduction
self-verifying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ShapeError

#: Arithmetic cost of one mixed-precision Adam update per parameter:
#: two moment EMAs (4 flops), bias corrections (2), sqrt + divide +
#: epsilon (3), the master-weight update (2), and the fp16 cast (1).
#: The update is bandwidth-bound in practice (see
#: :mod:`repro.core.training`); this constant exists so a *flop*
#: conservation law can cover the whole step, optimizer included.
ADAM_FLOPS_PER_PARAM = 12

#: Suffixes of backward-pass records derived from a forward matmul.
BACKWARD_SUFFIXES = (".dgrad", ".wgrad")


@dataclass(frozen=True)
class MatmulRecord:
    """One executed (batched) matrix multiplication.

    ``batch == 1`` denotes a plain GEMM.  Shapes follow BLAS convention:
    the operation was ``batch x [(m, k) @ (k, n)]``.
    """

    module: str
    m: int
    k: int
    n: int
    batch: int = 1

    @property
    def flops(self) -> int:
        """Multiply-add operation count (2 * b * m * n * k)."""
        return 2 * self.batch * self.m * self.n * self.k

    @property
    def is_bmm(self) -> bool:
        return self.batch > 1

    @property
    def phase(self) -> str:
        """``"forward"`` or ``"backward"`` (by module-label suffix)."""
        return (
            "backward"
            if self.module.endswith(BACKWARD_SUFFIXES)
            else "forward"
        )

    @property
    def base_module(self) -> str:
        """The forward module label, with any ``.dgrad``/``.wgrad``
        suffix stripped."""
        for suffix in BACKWARD_SUFFIXES:
            if self.module.endswith(suffix):
                return self.module[: -len(suffix)]
        return self.module

    def shape_tuple(self) -> Tuple[int, int, int, int]:
        """(batch, m, k, n) for order-insensitive comparisons."""
        return (self.batch, self.m, self.k, self.n)

    def backward_pair(self) -> Tuple["MatmulRecord", "MatmulRecord"]:
        """The two backward matmuls this forward matmul induces.

        For ``y = x @ W`` with x: (m, k) and W: (k, n)::

            dgrad:  dx = dy @ W^T   — (m, n) x (n, k)
            wgrad:  dW = x^T @ dy   — (k, m) x (m, n)

        Each has exactly this record's FLOP count — the standard
        "backward costs 2x forward" identity, derived mechanically so
        the trace never needs to execute a backward pass to price one.
        Labels and orientations match both the analytic mapping
        (:func:`repro.core.gemms.backward_gemms_for`) and the traced
        NumPy backward (:mod:`repro.transformer.backward`).
        """
        return (
            MatmulRecord(
                module=f"{self.module}.dgrad",
                m=self.m,
                k=self.n,
                n=self.k,
                batch=self.batch,
            ),
            MatmulRecord(
                module=f"{self.module}.wgrad",
                m=self.k,
                k=self.m,
                n=self.n,
                batch=self.batch,
            ),
        )


class OpTrace:
    """Recorder and executor of traced matrix multiplications.

    Pass an instance to the transformer modules; afterwards inspect
    :attr:`records`, or aggregate with :meth:`flops` /
    :meth:`by_module`.  The trace executes the arithmetic itself (via
    :func:`numpy.matmul`) so recording cannot drift from computation.
    """

    def __init__(self) -> None:
        self.records: List[MatmulRecord] = []

    # -- executing + recording ---------------------------------------------

    def matmul(self, module: str, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """2-D GEMM ``x @ w`` with shape recording."""
        if x.ndim != 2 or w.ndim != 2:
            raise ShapeError(
                f"{module}: matmul expects 2-D operands, got {x.shape} @ {w.shape}"
            )
        if x.shape[1] != w.shape[0]:
            raise ShapeError(
                f"{module}: inner dims disagree: {x.shape} @ {w.shape}"
            )
        m, k = x.shape
        n = w.shape[1]
        self.records.append(MatmulRecord(module=module, m=m, k=k, n=n))
        return x @ w

    def bmm(self, module: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Batched GEMM ``a @ b`` for 3-D stacks with shape recording."""
        if a.ndim != 3 or b.ndim != 3:
            raise ShapeError(
                f"{module}: bmm expects 3-D operands, got {a.shape} @ {b.shape}"
            )
        if a.shape[0] != b.shape[0] or a.shape[2] != b.shape[1]:
            raise ShapeError(f"{module}: bmm shapes disagree: {a.shape} @ {b.shape}")
        batch, m, k = a.shape
        n = b.shape[2]
        self.records.append(MatmulRecord(module=module, m=m, k=k, n=n, batch=batch))
        return np.matmul(a, b)

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[MatmulRecord]:
        return iter(self.records)

    def clear(self) -> None:
        self.records.clear()

    def flops(self) -> int:
        """Total multiply-add FLOPs across all recorded matmuls."""
        return sum(r.flops for r in self.records)

    # -- training-step derivation ---------------------------------------------

    def backward_records(self) -> List[MatmulRecord]:
        """The backward-pass matmuls this trace's records induce.

        Derived mechanically via :meth:`MatmulRecord.backward_pair`, in
        reverse execution order (backpropagation visits modules last to
        first).  Only forward records are expanded; records that already
        carry a ``.dgrad``/``.wgrad`` suffix are skipped, so calling
        this on a trace of a full training step does not derive
        second-order terms.
        """
        out: List[MatmulRecord] = []
        for rec in reversed(self.records):
            if rec.phase == "forward":
                out.extend(rec.backward_pair())
        return out

    def backward_flops(self) -> int:
        """FLOPs of the derived backward pass (= 2x forward exactly)."""
        return sum(r.flops for r in self.backward_records())

    def optimizer_flops(self, param_count: int) -> int:
        """Adam-update FLOPs for ``param_count`` learned parameters."""
        if param_count < 0:
            raise ShapeError(f"param_count must be >= 0, got {param_count}")
        return param_count * ADAM_FLOPS_PER_PARAM

    def training_flops(self, param_count: int) -> int:
        """Whole-step FLOPs: forward + derived backward + optimizer."""
        return (
            self.flops()
            + self.backward_flops()
            + self.optimizer_flops(param_count)
        )

    def by_module(self) -> Dict[str, List[MatmulRecord]]:
        """Records grouped by module label, preserving order."""
        groups: Dict[str, List[MatmulRecord]] = {}
        for rec in self.records:
            groups.setdefault(rec.module, []).append(rec)
        return groups

    def modules(self) -> List[str]:
        """Distinct module labels in first-appearance order."""
        seen: Dict[str, None] = {}
        for rec in self.records:
            seen.setdefault(rec.module)
        return list(seen)

    def to_columns(self) -> Dict[str, np.ndarray]:
        """Columnar export: module names + ``(N, 4)`` shape tuples.

        The SoA bridge for caching traced mappings (e.g. the Table II
        diff) in the engine's columnar memo: fixed-width string module
        labels and one int64 shape row per record, in trace order.
        """
        return {
            "module": np.array([r.module for r in self.records]),
            "shape": np.array(
                [r.shape_tuple() for r in self.records], dtype=np.int64
            ).reshape(-1, 4),
        }

    def training_columns(self) -> Dict[str, np.ndarray]:
        """Columnar export of the whole step: forward + derived backward.

        Like :meth:`to_columns` plus a ``phase`` column, with the
        mechanically-derived backward records appended after the
        recorded forward ones.  This is the bridge the training-step
        estimator (:mod:`repro.trainstep`) uses to price a traced model
        without executing its backward pass.
        """
        records = self.records + self.backward_records()
        return {
            "module": np.array([r.module for r in records]),
            "phase": np.array([r.phase for r in records]),
            "shape": np.array(
                [r.shape_tuple() for r in records], dtype=np.int64
            ).reshape(-1, 4),
        }

    def summary(self) -> str:
        """Human-readable per-module FLOP breakdown."""
        total = max(self.flops(), 1)
        lines = []
        for module, recs in self.by_module().items():
            fl = sum(r.flops for r in recs)
            lines.append(
                f"{module:<24} {len(recs):>3} matmuls  {fl:>16,} FLOPs  "
                f"({100.0 * fl / total:5.1f}%)"
            )
        return "\n".join(lines)


class NullTrace(OpTrace):
    """An :class:`OpTrace` that executes but does not record.

    Useful when the caller wants the traced code path without paying
    list-append overhead (e.g. in benchmarks of the NumPy forward).
    """

    def matmul(self, module: str, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        return x @ w

    def bmm(self, module: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.matmul(a, b)
