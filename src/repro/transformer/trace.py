"""Matmul operation tracing.

The paper's entire analysis rests on one mapping: *which GEMMs does a
transformer layer actually execute* (Table II).  Rather than trusting a
hand-derived table, the NumPy transformer routes every matrix
multiplication through :meth:`OpTrace.matmul` / :meth:`OpTrace.bmm`,
recording the executed shapes.  Tests then diff the recorded shapes
against the analytical mapping, making the Table II reproduction
self-verifying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ShapeError


@dataclass(frozen=True)
class MatmulRecord:
    """One executed (batched) matrix multiplication.

    ``batch == 1`` denotes a plain GEMM.  Shapes follow BLAS convention:
    the operation was ``batch x [(m, k) @ (k, n)]``.
    """

    module: str
    m: int
    k: int
    n: int
    batch: int = 1

    @property
    def flops(self) -> int:
        """Multiply-add operation count (2 * b * m * n * k)."""
        return 2 * self.batch * self.m * self.n * self.k

    @property
    def is_bmm(self) -> bool:
        return self.batch > 1

    def shape_tuple(self) -> Tuple[int, int, int, int]:
        """(batch, m, k, n) for order-insensitive comparisons."""
        return (self.batch, self.m, self.k, self.n)


class OpTrace:
    """Recorder and executor of traced matrix multiplications.

    Pass an instance to the transformer modules; afterwards inspect
    :attr:`records`, or aggregate with :meth:`flops` /
    :meth:`by_module`.  The trace executes the arithmetic itself (via
    :func:`numpy.matmul`) so recording cannot drift from computation.
    """

    def __init__(self) -> None:
        self.records: List[MatmulRecord] = []

    # -- executing + recording ---------------------------------------------

    def matmul(self, module: str, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """2-D GEMM ``x @ w`` with shape recording."""
        if x.ndim != 2 or w.ndim != 2:
            raise ShapeError(
                f"{module}: matmul expects 2-D operands, got {x.shape} @ {w.shape}"
            )
        if x.shape[1] != w.shape[0]:
            raise ShapeError(
                f"{module}: inner dims disagree: {x.shape} @ {w.shape}"
            )
        m, k = x.shape
        n = w.shape[1]
        self.records.append(MatmulRecord(module=module, m=m, k=k, n=n))
        return x @ w

    def bmm(self, module: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Batched GEMM ``a @ b`` for 3-D stacks with shape recording."""
        if a.ndim != 3 or b.ndim != 3:
            raise ShapeError(
                f"{module}: bmm expects 3-D operands, got {a.shape} @ {b.shape}"
            )
        if a.shape[0] != b.shape[0] or a.shape[2] != b.shape[1]:
            raise ShapeError(f"{module}: bmm shapes disagree: {a.shape} @ {b.shape}")
        batch, m, k = a.shape
        n = b.shape[2]
        self.records.append(MatmulRecord(module=module, m=m, k=k, n=n, batch=batch))
        return np.matmul(a, b)

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[MatmulRecord]:
        return iter(self.records)

    def clear(self) -> None:
        self.records.clear()

    def flops(self) -> int:
        """Total multiply-add FLOPs across all recorded matmuls."""
        return sum(r.flops for r in self.records)

    def by_module(self) -> Dict[str, List[MatmulRecord]]:
        """Records grouped by module label, preserving order."""
        groups: Dict[str, List[MatmulRecord]] = {}
        for rec in self.records:
            groups.setdefault(rec.module, []).append(rec)
        return groups

    def modules(self) -> List[str]:
        """Distinct module labels in first-appearance order."""
        seen: Dict[str, None] = {}
        for rec in self.records:
            seen.setdefault(rec.module)
        return list(seen)

    def to_columns(self) -> Dict[str, np.ndarray]:
        """Columnar export: module names + ``(N, 4)`` shape tuples.

        The SoA bridge for caching traced mappings (e.g. the Table II
        diff) in the engine's columnar memo: fixed-width string module
        labels and one int64 shape row per record, in trace order.
        """
        return {
            "module": np.array([r.module for r in self.records]),
            "shape": np.array(
                [r.shape_tuple() for r in self.records], dtype=np.int64
            ).reshape(-1, 4),
        }

    def summary(self) -> str:
        """Human-readable per-module FLOP breakdown."""
        total = max(self.flops(), 1)
        lines = []
        for module, recs in self.by_module().items():
            fl = sum(r.flops for r in recs)
            lines.append(
                f"{module:<24} {len(recs):>3} matmuls  {fl:>16,} FLOPs  "
                f"({100.0 * fl / total:5.1f}%)"
            )
        return "\n".join(lines)


class NullTrace(OpTrace):
    """An :class:`OpTrace` that executes but does not record.

    Useful when the caller wants the traced code path without paying
    list-append overhead (e.g. in benchmarks of the NumPy forward).
    """

    def matmul(self, module: str, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        return x @ w

    def bmm(self, module: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.matmul(a, b)
