"""Explicit backward pass for the NumPy transformer (t=1 path).

The paper's headline claims are about *training* throughput ("trained
almost 20% faster"), and each forward GEMM induces two backward GEMMs —
the activation gradient (dgrad) and the weight gradient (wgrad) — whose
shapes are transposes of the forward shape.  This module implements
reverse-mode differentiation explicitly (forward functions return a
cache; backward functions consume it), so that:

- the backward matmul shapes can be *traced* and diffed against the
  analytic training mapping in :func:`repro.core.gemms.training_gemms`,
- gradients can be verified against finite differences (tests do).

Scope: the classic GPT-2 path — learned/none positions, classic MLP,
sequential blocks, tied embeddings, tensor-parallel degree 1.  That is
exactly the architecture the paper's formulas describe; the variants
(SwiGLU/rotary/parallel-layers) share the same backward GEMM structure.

Backward of ``y = x @ W`` with ``x: (M, K)``, ``W: (K, N)``::

    dx = dy @ W^T      — GEMM (M, N) x (N, K)   [dgrad]
    dW = x^T @ dy      — GEMM (K, M) x (M, N)   [wgrad]

so training executes ~3x the forward FLOPs, the standard rule the
training-step model relies on.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.transformer import functional as F
from repro.transformer.model import DecoderModel
from repro.transformer.trace import OpTrace

Cache = Dict[str, np.ndarray]
Grads = Dict[str, np.ndarray]


# -- primitive backward rules ---------------------------------------------------


def linear_forward(
    module: str, x: np.ndarray, w: np.ndarray, b: Optional[np.ndarray], trace: OpTrace
) -> Tuple[np.ndarray, Cache]:
    """Traced ``x @ w + b`` with a backward cache."""
    y = trace.matmul(module, x, w)
    if b is not None:
        y = y + b
    return y, {"x": x, "w": w}


def linear_backward(
    module: str, cache: Cache, dy: np.ndarray, trace: OpTrace
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns (dx, dw, db) for a linear layer, tracing both GEMMs."""
    x, w = cache["x"], cache["w"]
    dx = trace.matmul(f"{module}.dgrad", dy, w.T)
    dw = trace.matmul(f"{module}.wgrad", x.T, dy)
    db = dy.sum(axis=0)
    return dx, dw, db


def layer_norm_forward(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> Tuple[np.ndarray, Cache]:
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean) * inv_std
    return x_hat * gamma + beta, {"x_hat": x_hat, "inv_std": inv_std, "gamma": gamma}


def layer_norm_backward(
    cache: Cache, dy: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Standard layer-norm backward over the trailing axis."""
    x_hat, inv_std, gamma = cache["x_hat"], cache["inv_std"], cache["gamma"]
    h = x_hat.shape[-1]
    dgamma = (dy * x_hat).reshape(-1, h).sum(axis=0)
    dbeta = dy.reshape(-1, h).sum(axis=0)
    dx_hat = dy * gamma
    dx = (
        dx_hat
        - dx_hat.mean(axis=-1, keepdims=True)
        - x_hat * (dx_hat * x_hat).mean(axis=-1, keepdims=True)
    ) * inv_std
    return dx, dgamma, dbeta


def gelu_backward(x: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Derivative of the tanh-approximated GELU."""
    c = math.sqrt(2.0 / math.pi)
    inner = c * (x + 0.044715 * x**3)
    tanh = np.tanh(inner)
    sech2 = 1.0 - tanh**2
    d_inner = c * (1.0 + 3 * 0.044715 * x**2)
    return dy * (0.5 * (1.0 + tanh) + 0.5 * x * sech2 * d_inner)


def softmax_backward(probs: np.ndarray, dprobs: np.ndarray) -> np.ndarray:
    """Backward of a row softmax: (dp - sum(dp*p)) * p."""
    inner = (dprobs * probs).sum(axis=-1, keepdims=True)
    return (dprobs - inner) * probs


# -- attention ---------------------------------------------------------------------


def attention_forward(
    model: DecoderModel, layer: int, x: np.ndarray, trace: OpTrace
) -> Tuple[np.ndarray, Cache]:
    """Forward of one attention block with a full backward cache."""
    att = model.blocks[layer].attention
    if att.t != 1:
        raise ConfigError("backward pass supports tensor-parallel degree 1 only")
    s, b, h = x.shape
    a, d = att.a, att.head_dim

    x2 = x.reshape(s * b, h)
    qkv, lin_cache = linear_forward(
        "qkv_transform", x2, att.w_qkv[0], att.b_qkv[0], trace
    )
    qkv4 = qkv.reshape(s, b, 3, a, d)
    to_bmm = lambda t: t.transpose(1, 2, 0, 3).reshape(b * a, s, d)
    q, k, v = (to_bmm(qkv4[:, :, i]) for i in range(3))

    scale = 1.0 / math.sqrt(d)
    scores = trace.bmm("attention_score", q, k.transpose(0, 2, 1)) * scale
    scores = scores + F.causal_mask(s, dtype=x.dtype)[None]
    probs = F.softmax(scores, axis=-1)
    ctx = trace.bmm("attention_over_value", probs, v)

    ctx2 = ctx.reshape(b, a, s, d).transpose(2, 0, 1, 3).reshape(s * b, h)
    out, proj_cache = linear_forward(
        "attention_projection", ctx2, att.w_proj[0], att.b_proj, trace
    )
    cache: Cache = {
        "q": q, "k": k, "v": v, "probs": probs, "ctx2": ctx2,
        **{f"lin_{key}": val for key, val in lin_cache.items()},
        **{f"proj_{key}": val for key, val in proj_cache.items()},
    }
    cache["shape"] = np.array([s, b, h, a, d])
    return out.reshape(s, b, h), cache


def attention_backward(
    cache: Cache, dy: np.ndarray, trace: OpTrace
) -> Tuple[np.ndarray, Grads]:
    """Backward through one attention block; returns (dx, grads)."""
    s, b, h, a, d = (int(v) for v in cache["shape"])
    scale = 1.0 / math.sqrt(d)
    dy2 = dy.reshape(s * b, h)

    dctx2, dw_proj, db_proj = linear_backward(
        "attention_projection",
        {"x": cache["proj_x"], "w": cache["proj_w"]},
        dy2,
        trace,
    )
    dctx = dctx2.reshape(s, b, a, d).transpose(1, 2, 0, 3).reshape(b * a, s, d)

    probs, q, k, v = cache["probs"], cache["q"], cache["k"], cache["v"]
    # ctx = probs @ v
    dprobs = trace.bmm("attention_over_value.dgrad", dctx, v.transpose(0, 2, 1))
    dv = trace.bmm("attention_over_value.wgrad", probs.transpose(0, 2, 1), dctx)
    dscores = softmax_backward(probs, dprobs)
    # masked positions have probs == 0 -> dscores already 0 there.
    dscores = dscores * scale
    dq = trace.bmm("attention_score.dgrad", dscores, k)
    # Compute d(k^T) = q^T @ dscores so the traced shape matches the
    # analytic wgrad orientation exactly, then transpose back.
    dk = trace.bmm(
        "attention_score.wgrad", q.transpose(0, 2, 1), dscores
    ).transpose(0, 2, 1)

    # Reassemble (b*a, s, d) -> (s*b, 3h) through the qkv packing.
    def from_bmm(t: np.ndarray) -> np.ndarray:
        return t.reshape(b, a, s, d).transpose(2, 0, 1, 3)

    dqkv4 = np.stack([from_bmm(dq), from_bmm(dk), from_bmm(dv)], axis=2)
    dqkv = dqkv4.reshape(s * b, 3 * h)
    dx2, dw_qkv, db_qkv = linear_backward(
        "qkv_transform", {"x": cache["lin_x"], "w": cache["lin_w"]}, dqkv, trace
    )
    grads: Grads = {
        "w_qkv": dw_qkv,
        "b_qkv": db_qkv,
        "w_proj": dw_proj,
        "b_proj": db_proj,
    }
    return dx2.reshape(s, b, h), grads


# -- MLP ---------------------------------------------------------------------------


def mlp_forward(
    model: DecoderModel, layer: int, x: np.ndarray, trace: OpTrace
) -> Tuple[np.ndarray, Cache]:
    mlp = model.blocks[layer].mlp
    if getattr(mlp, "t", 1) != 1:
        raise ConfigError("backward pass supports tensor-parallel degree 1 only")
    if mlp.n_matrices != 2 or mlp.activation != "gelu":
        raise ConfigError("backward pass supports the classic GELU MLP only")
    s, b, h = x.shape
    x2 = x.reshape(s * b, h)
    pre, up_cache = linear_forward("mlp_h_to_4h", x2, mlp.w1[0], mlp.b1[0], trace)
    hidden = F.gelu(pre)
    out, down_cache = linear_forward("mlp_4h_to_h", hidden, mlp.w2[0], mlp.b2, trace)
    cache: Cache = {
        "pre": pre,
        **{f"up_{k}": v for k, v in up_cache.items()},
        **{f"down_{k}": v for k, v in down_cache.items()},
    }
    cache["shape"] = np.array([s, b, h])
    return out.reshape(s, b, h), cache


def mlp_backward(
    cache: Cache, dy: np.ndarray, trace: OpTrace
) -> Tuple[np.ndarray, Grads]:
    s, b, h = (int(v) for v in cache["shape"])
    dy2 = dy.reshape(s * b, h)
    dhidden, dw2, db2 = linear_backward(
        "mlp_4h_to_h", {"x": cache["down_x"], "w": cache["down_w"]}, dy2, trace
    )
    dpre = gelu_backward(cache["pre"], dhidden)
    dx2, dw1, db1 = linear_backward(
        "mlp_h_to_4h", {"x": cache["up_x"], "w": cache["up_w"]}, dpre, trace
    )
    return dx2.reshape(s, b, h), {"w1": dw1, "b1": db1, "w2": dw2, "b2": db2}


# -- full model ----------------------------------------------------------------------


def loss_and_gradients(
    model: DecoderModel,
    token_ids: np.ndarray,
    trace: Optional[OpTrace] = None,
) -> Tuple[float, Grads]:
    """Next-token cross-entropy loss and gradients for every weight.

    Returns gradients keyed ``wte``, ``wpe``, ``lnf_gamma``, ``lnf_beta``
    and per layer ``L{i}.{attention,mlp}.{param}`` plus
    ``L{i}.ln{1,2}_{gamma,beta}``.  All matmuls (forward and backward)
    are traced.
    """
    trace = trace if trace is not None else OpTrace()
    if token_ids.ndim != 2:
        raise ShapeError(f"token_ids must be (s, b), got {token_ids.shape}")
    if model.lm_head is not None:
        raise ConfigError("backward pass supports tied embeddings only")
    if model.positional not in ("learned", "none"):
        raise ConfigError("backward pass supports learned/none positions only")
    s, b = token_ids.shape
    v, h = model.v, model.h

    # ---- forward with caches ----
    x = model.embed(token_ids)
    block_caches = []
    for i, block in enumerate(model.blocks):
        ln1_out, ln1_cache = layer_norm_forward(x, block.ln1_gamma, block.ln1_beta)
        attn_out, attn_cache = attention_forward(model, i, ln1_out, trace)
        x_mid = x + attn_out
        ln2_out, ln2_cache = layer_norm_forward(x_mid, block.ln2_gamma, block.ln2_beta)
        mlp_out, mlp_cache = mlp_forward(model, i, ln2_out, trace)
        x = x_mid + mlp_out
        block_caches.append((ln1_cache, attn_cache, ln2_cache, mlp_cache))

    final, lnf_cache = layer_norm_forward(x, model.lnf_gamma, model.lnf_beta)
    final2 = final.reshape(s * b, h)
    logits = trace.matmul("logit", final2, model.wte.T)

    # ---- loss (next-token) ----
    pred = logits.reshape(s, b, v)[:-1].reshape((s - 1) * b, v)
    targets = token_ids[1:].reshape((s - 1) * b)
    shifted = pred - pred.max(axis=-1, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=-1, keepdims=True)
    n = pred.shape[0]
    loss = float(-np.log(probs[np.arange(n), targets]).mean())

    # ---- backward ----
    dpred = probs.copy()
    dpred[np.arange(n), targets] -= 1.0
    dpred /= n
    dlogits = np.zeros((s, b, v))
    dlogits[:-1] = dpred.reshape(s - 1, b, v)
    dlogits2 = dlogits.reshape(s * b, v)

    grads: Grads = {}
    dfinal2 = trace.matmul("logit.dgrad", dlogits2, model.wte)
    # Compute d(wte^T) = final^T @ dlogits so the traced shape matches
    # the analytic wgrad orientation, then transpose back to wte's.
    grads["wte"] = trace.matmul("logit.wgrad", final2.T, dlogits2).T
    dx, dg, dbta = layer_norm_backward(lnf_cache, dfinal2.reshape(s, b, h))
    grads["lnf_gamma"], grads["lnf_beta"] = dg, dbta

    for i in reversed(range(len(model.blocks))):
        ln1_cache, attn_cache, ln2_cache, mlp_cache = block_caches[i]
        dmlp_out = dx
        dln2_out, g_mlp = mlp_backward(mlp_cache, dmlp_out, trace)
        dx_mid, dg2, db2 = layer_norm_backward(ln2_cache, dln2_out)
        dx_mid = dx_mid + dx  # residual
        dattn_out = dx_mid
        dln1_out, g_attn = attention_backward(attn_cache, dattn_out, trace)
        dx_prev, dg1, db1 = layer_norm_backward(ln1_cache, dln1_out)
        dx = dx_prev + dx_mid  # residual
        for key, val in g_attn.items():
            grads[f"L{i}.attention.{key}"] = val
        for key, val in g_mlp.items():
            grads[f"L{i}.mlp.{key}"] = val
        grads[f"L{i}.ln1_gamma"], grads[f"L{i}.ln1_beta"] = dg1, db1
        grads[f"L{i}.ln2_gamma"], grads[f"L{i}.ln2_beta"] = dg2, db2

    # Embedding gradients: scatter-add token grads; position table gets
    # the sum over the batch.
    dembed = dx
    grads["wte"] = grads["wte"] + _scatter_token_grads(
        token_ids, dembed, v
    )
    if model.wpe is not None:
        # Rows beyond the batch's sequence length receive no gradient.
        wpe_grad = np.zeros_like(model.wpe)
        wpe_grad[:s] = dembed.sum(axis=1)
        grads["wpe"] = wpe_grad
    return loss, grads


def _scatter_token_grads(
    token_ids: np.ndarray, dembed: np.ndarray, vocab: int
) -> np.ndarray:
    s, b, h = dembed.shape
    out = np.zeros((vocab, h))
    np.add.at(out, token_ids.reshape(s * b), dembed.reshape(s * b, h))
    return out
