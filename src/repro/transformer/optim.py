"""Minimal optimizers for the NumPy training loop.

Gradient descent and Adam over the gradient dictionaries produced by
:func:`repro.transformer.backward.loss_and_gradients`.  Parameters are
addressed through a name -> array registry built from the model, so the
update is a plain in-place walk.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import ConfigError
from repro.transformer.model import DecoderModel

ParamRegistry = Dict[str, np.ndarray]


def parameter_registry(model: DecoderModel) -> ParamRegistry:
    """Name -> array view of every trainable tensor (t=1, tied, classic).

    Names match the gradient keys of ``loss_and_gradients``.
    """
    params: ParamRegistry = {
        "wte": model.wte,
        "lnf_gamma": model.lnf_gamma,
        "lnf_beta": model.lnf_beta,
    }
    if model.wpe is not None:
        params["wpe"] = model.wpe
    for i, block in enumerate(model.blocks):
        att, mlp = block.attention, block.mlp
        params[f"L{i}.attention.w_qkv"] = att.w_qkv[0]
        params[f"L{i}.attention.b_qkv"] = att.b_qkv[0]
        params[f"L{i}.attention.w_proj"] = att.w_proj[0]
        params[f"L{i}.attention.b_proj"] = att.b_proj
        params[f"L{i}.mlp.w1"] = mlp.w1[0]
        params[f"L{i}.mlp.b1"] = mlp.b1[0]
        params[f"L{i}.mlp.w2"] = mlp.w2[0]
        params[f"L{i}.mlp.b2"] = mlp.b2
        params[f"L{i}.ln1_gamma"] = block.ln1_gamma
        params[f"L{i}.ln1_beta"] = block.ln1_beta
        params[f"L{i}.ln2_gamma"] = block.ln2_gamma
        params[f"L{i}.ln2_beta"] = block.ln2_beta
    return params


class SGD:
    """Plain gradient descent with optional gradient clipping."""

    def __init__(self, params: ParamRegistry, lr: float, clip: float = 0.0) -> None:
        if lr <= 0:
            raise ConfigError("lr must be positive")
        self.params = params
        self.lr = lr
        self.clip = clip

    def step(self, grads: Dict[str, np.ndarray]) -> None:
        scale = _clip_scale(grads, self.clip)
        for name, grad in grads.items():
            if name in self.params:
                self.params[name] -= self.lr * scale * grad


class Adam:
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        params: ParamRegistry,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        clip: float = 0.0,
    ) -> None:
        if lr <= 0 or not (0 <= beta1 < 1) or not (0 <= beta2 < 1):
            raise ConfigError("invalid Adam hyperparameters")
        self.params = params
        self.lr, self.beta1, self.beta2, self.eps, self.clip = lr, beta1, beta2, eps, clip
        self.m = {k: np.zeros_like(v) for k, v in params.items()}
        self.v = {k: np.zeros_like(v) for k, v in params.items()}
        self.t = 0

    def step(self, grads: Dict[str, np.ndarray]) -> None:
        self.t += 1
        scale = _clip_scale(grads, self.clip)
        b1c = 1.0 - self.beta1**self.t
        b2c = 1.0 - self.beta2**self.t
        for name, grad in grads.items():
            if name not in self.params:
                continue
            g = grad * scale
            self.m[name] = self.beta1 * self.m[name] + (1 - self.beta1) * g
            self.v[name] = self.beta2 * self.v[name] + (1 - self.beta2) * g * g
            m_hat = self.m[name] / b1c
            v_hat = self.v[name] / b2c
            self.params[name] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def _clip_scale(grads: Dict[str, np.ndarray], clip: float) -> float:
    if clip <= 0:
        return 1.0
    norm = float(np.sqrt(sum(float((g * g).sum()) for g in grads.values())))
    return min(1.0, clip / (norm + 1e-12))


def train(
    model: DecoderModel,
    batches,
    optimizer: "SGD | Adam",
    on_step: "Callable[[int, float], None] | None" = None,
) -> float:
    """Run the full loop over ``batches``; returns the final loss."""
    from repro.transformer.backward import loss_and_gradients

    loss = float("nan")
    for step, ids in enumerate(batches):
        loss, grads = loss_and_gradients(model, ids)
        optimizer.step(grads)
        if on_step is not None:
            on_step(step, loss)
    return loss
