"""Pointwise / normalization primitives for the NumPy transformer.

Everything here is the non-GEMM remainder of a transformer layer: these
ops are memory-bound and account for the latency slice the paper's
Fig 2 labels "other" (layer norms, softmax, activations, residual
adds).  All functions are pure, vectorized, and operate on float32/64
arrays of layout ``(s, b, h)`` unless stated otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def layer_norm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """LayerNorm over the trailing (hidden) dimension."""
    if gamma.shape != x.shape[-1:] or beta.shape != x.shape[-1:]:
        raise ShapeError(
            f"layer_norm params {gamma.shape}/{beta.shape} do not match "
            f"hidden dim {x.shape[-1:]}"
        )
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * gamma + beta


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU activation (tanh approximation, as used by GPT-2/NeoX)."""
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation, the gate nonlinearity of SwiGLU."""
    return x / (1.0 + np.exp(-x))


def relu(x: np.ndarray) -> np.ndarray:
    """ReLU activation."""
    return np.maximum(x, 0.0)


ACTIVATIONS = {"gelu": gelu, "silu": silu, "relu": relu}


def causal_mask(s: int, dtype=np.float64, window: "int | None" = None) -> np.ndarray:
    """Additive causal mask of shape (s, s): 0 on/below diag, -inf above.

    ``window`` additionally blocks positions more than ``window - 1``
    tokens in the past (sliding-window attention, as in Mistral): row i
    may attend to columns ``max(0, i - window + 1) .. i``.
    """
    if s <= 0:
        raise ShapeError(f"sequence length must be positive, got {s}")
    if window is not None and window <= 0:
        raise ShapeError(f"window must be positive, got {window}")
    blocked = np.triu(np.ones((s, s), dtype=bool), k=1)
    if window is not None:
        rows = np.arange(s)[:, None]
        cols = np.arange(s)[None, :]
        blocked |= rows - cols >= window
    out = np.zeros((s, s), dtype=dtype)
    out[blocked] = -np.inf
    return out


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean token-level cross-entropy.

    ``logits``: (tokens, vocab); ``targets``: (tokens,) int class ids.
    """
    if logits.ndim != 2 or targets.ndim != 1 or logits.shape[0] != targets.shape[0]:
        raise ShapeError(
            f"cross_entropy shapes disagree: {logits.shape} vs {targets.shape}"
        )
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1))
    picked = shifted[np.arange(len(targets)), targets]
    return float((log_z - picked).mean())


def embedding_lookup(table: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Row gather from an embedding table with bounds checking."""
    if ids.min() < 0 or ids.max() >= table.shape[0]:
        raise ShapeError(
            f"token id out of range [0, {table.shape[0]}): "
            f"[{ids.min()}, {ids.max()}]"
        )
    return table[ids]
