"""Transformer MLP blocks (Table II operators 5, and Sec VI-C4 SwiGLU).

The classic block expands ``h -> 4h -> h`` with two GEMMs; the SwiGLU
variant holds *three* matrices (gate, up, down) and therefore shrinks
the intermediate width — nominally to ``8h/3`` — to preserve parameter
count, which is exactly the alignment hazard the paper's Sec VII-B case
study is about.  Both are tensor-parallel along the intermediate
dimension (Megatron column-then-row split).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.transformer import functional as F
from repro.transformer.trace import OpTrace


def _check_mlp_dims(h: int, d_ff: int, t: int) -> None:
    if h <= 0 or d_ff <= 0:
        raise ConfigError(f"MLP dims must be positive: h={h}, d_ff={d_ff}")
    if t <= 0 or d_ff % t:
        raise ConfigError(
            f"intermediate size {d_ff} not divisible by tp_degree {t}"
        )


class MLP:
    """Two-matrix MLP: ``x -> act(x W1) W2`` with W1: (h, d_ff)."""

    n_matrices = 2

    def __init__(
        self,
        hidden_size: int,
        rng: np.random.Generator,
        intermediate_size: "int | None" = None,
        tp_degree: int = 1,
        activation: str = "gelu",
        dtype=np.float64,
    ) -> None:
        d_ff = 4 * hidden_size if intermediate_size is None else intermediate_size
        _check_mlp_dims(hidden_size, d_ff, tp_degree)
        if activation not in F.ACTIVATIONS:
            raise ConfigError(
                f"unknown activation {activation!r}; choose from {sorted(F.ACTIVATIONS)}"
            )
        self.h = hidden_size
        self.d_ff = d_ff
        self.t = tp_degree
        self.activation = activation
        shard = d_ff // tp_degree
        scale = 0.02
        self.w1: List[np.ndarray] = [
            rng.normal(0.0, scale, size=(hidden_size, shard)).astype(dtype)
            for _ in range(tp_degree)
        ]
        self.b1 = [np.zeros(shard, dtype=dtype) for _ in range(tp_degree)]
        self.w2: List[np.ndarray] = [
            rng.normal(0.0, scale, size=(shard, hidden_size)).astype(dtype)
            for _ in range(tp_degree)
        ]
        self.b2 = np.zeros(hidden_size, dtype=dtype)

    def param_count(self) -> int:
        """Learned scalars: 2*h*d_ff weights + d_ff + h biases."""
        total = sum(w.size for w in self.w1) + sum(b.size for b in self.b1)
        total += sum(w.size for w in self.w2) + self.b2.size
        return total

    def forward(self, x: np.ndarray, trace: OpTrace) -> np.ndarray:
        """Forward over (s, b, h) activations."""
        if x.ndim != 3 or x.shape[2] != self.h:
            raise ShapeError(f"expected (s, b, {self.h}) input, got {x.shape}")
        s, b, h = x.shape
        act = F.ACTIVATIONS[self.activation]
        x2 = x.reshape(s * b, h)
        out = np.zeros_like(x2)
        for shard in range(self.t):
            hidden = trace.matmul("mlp_h_to_4h", x2, self.w1[shard])
            hidden = act(hidden + self.b1[shard])
            out += trace.matmul("mlp_4h_to_h", hidden, self.w2[shard])
        out += self.b2
        return out.reshape(s, b, h)


class SwiGLUMLP:
    """Three-matrix SwiGLU MLP: ``(silu(x Wg) * (x Wu)) Wd``.

    ``intermediate_size`` defaults to the paper-discussed nominal
    ``round(8h/3)``; real models round it to alignment-friendly values
    (Llama-2-7B uses 11008 for h=4096), which
    :mod:`repro.autotune.swiglu` searches for.
    """

    n_matrices = 3

    def __init__(
        self,
        hidden_size: int,
        rng: np.random.Generator,
        intermediate_size: "int | None" = None,
        tp_degree: int = 1,
        dtype=np.float64,
    ) -> None:
        d_ff = (
            int(round(8 * hidden_size / 3))
            if intermediate_size is None
            else intermediate_size
        )
        _check_mlp_dims(hidden_size, d_ff, tp_degree)
        self.h = hidden_size
        self.d_ff = d_ff
        self.t = tp_degree
        shard = d_ff // tp_degree
        scale = 0.02
        mk = lambda rows, cols: rng.normal(0.0, scale, size=(rows, cols)).astype(dtype)
        self.w_gate = [mk(hidden_size, shard) for _ in range(tp_degree)]
        self.w_up = [mk(hidden_size, shard) for _ in range(tp_degree)]
        self.w_down = [mk(shard, hidden_size) for _ in range(tp_degree)]

    def param_count(self) -> int:
        """Learned scalars: 3*h*d_ff (SwiGLU is conventionally bias-free)."""
        return sum(
            w.size
            for group in (self.w_gate, self.w_up, self.w_down)
            for w in group
        )

    def forward(self, x: np.ndarray, trace: OpTrace) -> np.ndarray:
        """Forward over (s, b, h) activations."""
        if x.ndim != 3 or x.shape[2] != self.h:
            raise ShapeError(f"expected (s, b, {self.h}) input, got {x.shape}")
        s, b, h = x.shape
        x2 = x.reshape(s * b, h)
        out = np.zeros_like(x2)
        for shard in range(self.t):
            gate = trace.matmul("mlp_gate", x2, self.w_gate[shard])
            up = trace.matmul("mlp_up", x2, self.w_up[shard])
            hidden = F.silu(gate) * up
            out += trace.matmul("mlp_down", hidden, self.w_down[shard])
        return out.reshape(s, b, h)
