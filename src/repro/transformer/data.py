"""Synthetic token corpora for end-to-end training demonstrations.

The paper's accuracy claims rest on real pretraining corpora we cannot
ship; these generators provide *structured* synthetic substitutes with
known statistics, so the training loop (forward + the explicit backward
pass) can be exercised end-to-end and its learning verified against an
analytic target:

- :class:`MarkovCorpus` — a first-order Markov chain over the
  vocabulary with controllable entropy; a model that learns it perfectly
  reaches exactly the chain's conditional entropy, so "how close to the
  floor" is a measurable training outcome.
- :class:`CopyCorpus` — the classic copy task (pattern, delimiter,
  pattern): the second half is deterministic given the first, which only
  an attention mechanism can exploit.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import ConfigError


class MarkovCorpus:
    """First-order Markov chain token stream.

    ``concentration`` controls the row sparsity of the transition
    matrix: small values make rows peaky (low conditional entropy, easy
    to learn), large values approach uniform.
    """

    def __init__(
        self,
        vocab_size: int,
        concentration: float = 0.1,
        seed: int = 0,
    ) -> None:
        if vocab_size < 2:
            raise ConfigError("vocab_size must be >= 2")
        if concentration <= 0:
            raise ConfigError("concentration must be positive")
        self.vocab_size = vocab_size
        rng = np.random.default_rng(seed)
        self.transitions = rng.dirichlet(
            np.full(vocab_size, concentration), size=vocab_size
        )
        self._rng = np.random.default_rng(seed + 1)

    def conditional_entropy(self) -> float:
        """Exact H(next | current) in nats — the achievable loss floor.

        Weighted by the chain's stationary distribution.
        """
        pi = self.stationary_distribution()
        p = self.transitions
        logp = np.zeros_like(p)
        mask = p > 0
        logp[mask] = np.log(p[mask])
        row_entropy = -(p * logp).sum(axis=1)
        return float((pi * row_entropy).sum())

    def stationary_distribution(self) -> np.ndarray:
        """Left eigenvector of the transition matrix for eigenvalue 1."""
        vals, vecs = np.linalg.eig(self.transitions.T)
        idx = int(np.argmin(np.abs(vals - 1.0)))
        pi = np.real(vecs[:, idx])
        pi = np.abs(pi)
        return pi / pi.sum()

    def sample(self, seq_len: int, batch: int) -> np.ndarray:
        """(seq_len, batch) int tokens from independent chain runs."""
        if seq_len <= 0 or batch <= 0:
            raise ConfigError("seq_len and batch must be positive")
        out = np.empty((seq_len, batch), dtype=np.int64)
        state = self._rng.integers(0, self.vocab_size, size=batch)
        out[0] = state
        for t in range(1, seq_len):
            u = self._rng.random(batch)
            cdf = np.cumsum(self.transitions[state], axis=1)
            state = (u[:, None] < cdf).argmax(axis=1)
            out[t] = state
        return out

    def batches(
        self, seq_len: int, batch: int, steps: int
    ) -> Iterator[np.ndarray]:
        for _ in range(steps):
            yield self.sample(seq_len, batch)


class CopyCorpus:
    """Copy task: ``[pattern] [delimiter] [pattern]``.

    The delimiter is the reserved id ``vocab_size - 1``; patterns use
    ids ``0 .. vocab_size - 2``.  Sequence length is ``2 * pattern_len
    + 1``.  The second occurrence of the pattern is fully determined,
    so per-token loss on that half can reach ~0.
    """

    def __init__(self, vocab_size: int, pattern_len: int, seed: int = 0) -> None:
        if vocab_size < 3:
            raise ConfigError("vocab_size must be >= 3")
        if pattern_len <= 0:
            raise ConfigError("pattern_len must be positive")
        self.vocab_size = vocab_size
        self.pattern_len = pattern_len
        self.delimiter = vocab_size - 1
        self._rng = np.random.default_rng(seed)

    @property
    def seq_len(self) -> int:
        return 2 * self.pattern_len + 1

    def sample(self, batch: int) -> np.ndarray:
        """(seq_len, batch) copy-task sequences."""
        if batch <= 0:
            raise ConfigError("batch must be positive")
        pattern = self._rng.integers(
            0, self.vocab_size - 1, size=(self.pattern_len, batch)
        )
        delim = np.full((1, batch), self.delimiter, dtype=np.int64)
        return np.concatenate([pattern, delim, pattern], axis=0)

    def copy_positions(self) -> Tuple[int, int]:
        """[start, end) rows of the *predictable* second pattern."""
        return self.pattern_len + 1, self.seq_len
