"""FlashAttention-style tiled attention (paper Sec VI-C3, Fig 12).

Two parts:

1. :func:`flash_attention` — an executable NumPy implementation of the
   FlashAttention algorithm (block-tiled K/V loop with online softmax
   renormalization).  It never materializes the (s, s) score matrix and
   is numerically equal to naive attention, which tests verify against
   :class:`~repro.transformer.attention.MultiHeadAttention`'s inner
   computation.

2. :class:`FlashAttentionModel` — the performance model.  FlashAttention
   fuses both attention BMMs into one kernel whose DRAM traffic is just
   Q, K, V in and O out (scores live in SRAM), so it "follows a roofline
   model" (paper): throughput is min(math peak x sustained fraction,
   intensity x bandwidth), *without* the pow-2(h/a) fragility of the
   unfused BMMs — the kernel lays its own tiles out and pads internally.
   This is why the paper's takeaway simplifies to "make h as large as
   possible" once FlashAttention is used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.gpu.specs import GPUSpec, get_gpu
from repro.types import DType, TimeEstimate, teraflops

# Sustained fraction of matrix-engine peak for a well-tuned fused
# attention kernel (forward); FlashAttention-2 reaches ~60-70% on A100.
_FLASH_PEAK_FRACTION = 0.65
_BW_EFFICIENCY = 0.82


def flash_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    causal: bool = True,
    block_q: int = 128,
    block_k: int = 128,
) -> np.ndarray:
    """Tiled online-softmax attention over (batch, s, d) inputs.

    Implements the FlashAttention recurrence: for each query block,
    stream over key/value blocks keeping a running max ``m``, running
    normalizer ``l`` and unnormalized accumulator ``o``; rescale when the
    running max increases.  Scores are scaled by 1/sqrt(d).
    """
    if q.ndim != 3 or q.shape != k.shape or k.shape != v.shape:
        raise ShapeError(
            f"q/k/v must share (batch, s, d) shape: {q.shape}, {k.shape}, {v.shape}"
        )
    if block_q <= 0 or block_k <= 0:
        raise ShapeError("block sizes must be positive")
    batch, s, d = q.shape
    scale = 1.0 / math.sqrt(d)
    out = np.empty_like(q)

    for qi in range(0, s, block_q):
        q_blk = q[:, qi : qi + block_q]  # (batch, bq, d)
        bq = q_blk.shape[1]
        m = np.full((batch, bq), -np.inf)
        l = np.zeros((batch, bq))
        o = np.zeros((batch, bq, d))
        k_end = min(qi + bq, s) if causal else s
        for ki in range(0, k_end, block_k):
            k_blk = k[:, ki : ki + block_k]
            v_blk = v[:, ki : ki + block_k]
            scores = np.matmul(q_blk, k_blk.transpose(0, 2, 1)) * scale
            if causal:
                rows = qi + np.arange(bq)[:, None]
                cols = ki + np.arange(k_blk.shape[1])[None, :]
                scores = np.where(cols > rows, -np.inf, scores)
            m_new = np.maximum(m, scores.max(axis=-1))
            # Rows that are still fully masked keep m == -inf; their
            # exp() terms are all zero and are fixed up by l below.
            correction = np.exp(np.where(np.isinf(m), 0.0, m - m_new))
            p = np.exp(scores - m_new[..., None])
            p = np.where(np.isneginf(scores), 0.0, p)
            l = l * correction + p.sum(axis=-1)
            o = o * correction[..., None] + np.matmul(p, v_blk)
            m = m_new
        out[:, qi : qi + bq] = o / l[..., None]
    return out


def sum_attended_pairs(s: int, w: int) -> int:
    """(query, key) pairs under a causal window: sum_i min(w, i+1).

    ``w >= s`` recovers the full causal count s(s+1)/2.
    """
    if s <= 0 or w <= 0:
        raise ShapeError(f"s and w must be positive: {(s, w)}")
    w = min(w, s)
    return w * (w + 1) // 2 + (s - w) * w


@dataclass(frozen=True)
class FlashPerf:
    """Performance report for one fused attention kernel invocation."""

    batch: int
    s: int
    head_dim: int
    causal: bool
    flops: int
    dram_bytes: int
    time: TimeEstimate
    gpu: str

    @property
    def latency_s(self) -> float:
        return self.time.total_s

    @property
    def tflops(self) -> float:
        return teraflops(self.flops, self.time.total_s)

    @property
    def bound(self) -> str:
        return self.time.bound


class FlashAttentionModel:
    """Roofline performance model of a fused FlashAttention-2 kernel."""

    def __init__(
        self,
        gpu: "str | GPUSpec",
        dtype: "str | DType" = DType.FP16,
        peak_fraction: float = _FLASH_PEAK_FRACTION,
        bw_efficiency: float = _BW_EFFICIENCY,
    ) -> None:
        self.spec = get_gpu(gpu)
        self.dtype = DType.parse(dtype)
        self.peak_fraction = peak_fraction
        self.bw_efficiency = bw_efficiency

    def evaluate(
        self,
        batch: int,
        s: int,
        head_dim: int,
        causal: bool = True,
        window: "int | None" = None,
    ) -> FlashPerf:
        """Estimate one fused attention forward over (batch, s, d) heads.

        FLOPs: both matmuls, 4*s^2*d per head (halved for causal);
        ``window`` caps the attended span per query (sliding-window
        attention), so the pair count becomes ``w*s - w^2/2`` instead of
        ``s^2/2`` — the fused kernel actually skips the masked tiles.
        Traffic: Q, K, V read once, O written once; the score matrix
        never touches DRAM.  Alignment sensitivity is intentionally
        absent: the hand-written kernel pads head dims internally
        (a mild penalty applies only below the 8-element MMA grain).
        """
        if min(batch, s, head_dim) <= 0:
            raise ShapeError(
                f"flash dims must be positive: {(batch, s, head_dim)}"
            )
        if window is not None and window <= 0:
            raise ShapeError(f"window must be positive, got {window}")
        if causal:
            w = min(window, s) if window is not None else s
            pairs = sum_attended_pairs(s, w)
        else:
            pairs = s * s
        flops = 4 * batch * pairs * head_dim
        dram = 4 * batch * s * head_dim * self.dtype.bytes

        if self.spec.supports_matrix(self.dtype):
            peak = self.spec.matrix_peak_tflops(self.dtype)
        else:
            peak = self.spec.vector_peak_tflops(self.dtype)
        eff = self.peak_fraction
        # Small head dims cannot fill the MMA fragment pipeline: the
        # kernel's k-loop over d issues partial tiles below ~64
        # elements, so sustained throughput ramps with d and saturates
        # — the rising-then-flat roofline of Fig 12.
        full = self.spec.tc_align_elems(self.dtype)
        eff *= (min(head_dim, full) / full) ** 0.6
        if head_dim % max(1, self.spec.tc_min_elems(self.dtype)):
            eff *= 0.8  # internal padding of a sub-grain head dim
        compute_s = flops / (peak * 1e12 * eff)
        memory_s = dram / (self.spec.mem_bw_bytes_per_s() * self.bw_efficiency)
        overhead = self.spec.kernel_overhead_s
        total = max(compute_s, memory_s) + overhead
        return FlashPerf(
            batch=batch,
            s=s,
            head_dim=head_dim,
            causal=causal,
            flops=flops,
            dram_bytes=dram,
            time=TimeEstimate(total, compute_s, memory_s, overhead),
            gpu=self.spec.name,
        )

    def latency(self, batch: int, s: int, head_dim: int, causal: bool = True) -> float:
        return self.evaluate(batch, s, head_dim, causal).latency_s

    def tflops(self, batch: int, s: int, head_dim: int, causal: bool = True) -> float:
        return self.evaluate(batch, s, head_dim, causal).tflops
