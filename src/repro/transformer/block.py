"""Transformer block: sequential (GPT-2) and parallel (GPT-J) layouts.

Sequential (paper Sec III-C)::

    y = x + MLP(Norm2(x + Attn(Norm1(x))))

Parallel layers (paper Sec VI-C1, Wang & Komatsuzaki)::

    y = x + MLP(Norm(x)) + Attn(Norm(x))

The parallel form shares one input norm and admits kernel fusion on real
hardware; the paper notes it "does not impact our analysis at all" —
and indeed the traced GEMM shapes are identical, which tests verify.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.transformer import functional as F
from repro.transformer.attention import MultiHeadAttention
from repro.transformer.mlp import MLP, SwiGLUMLP
from repro.transformer.moe import MoEMLP
from repro.transformer.trace import OpTrace


class TransformerBlock:
    """One decoder layer over (s, b, h) activations."""

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        rng: np.random.Generator,
        tp_degree: int = 1,
        parallel_layers: bool = False,
        mlp_kind: str = "classic",
        intermediate_size: "int | None" = None,
        positional: str = "learned",
        num_kv_heads: "int | None" = None,
        attention_window: "int | None" = None,
        num_experts: "int | None" = None,
        moe_top_k: int = 2,
        dtype=np.float64,
    ) -> None:
        self.h = hidden_size
        self.parallel_layers = parallel_layers
        self.dtype = dtype
        self.attention = MultiHeadAttention(
            hidden_size,
            num_heads,
            rng,
            tp_degree=tp_degree,
            positional=positional,
            num_kv_heads=num_kv_heads,
            attention_window=attention_window,
            dtype=dtype,
        )
        if num_experts is not None:
            self.mlp: "MLP | SwiGLUMLP | MoEMLP" = MoEMLP(
                hidden_size,
                rng,
                num_experts=num_experts,
                top_k=moe_top_k,
                intermediate_size=intermediate_size,
                expert_kind=mlp_kind if mlp_kind in ("classic", "swiglu") else "swiglu",
                dtype=dtype,
            )
        elif mlp_kind == "classic":
            self.mlp = MLP(
                hidden_size,
                rng,
                intermediate_size=intermediate_size,
                tp_degree=tp_degree,
                dtype=dtype,
            )
        elif mlp_kind == "swiglu":
            self.mlp = SwiGLUMLP(
                hidden_size,
                rng,
                intermediate_size=intermediate_size,
                tp_degree=tp_degree,
                dtype=dtype,
            )
        else:
            raise ConfigError(f"unknown mlp_kind {mlp_kind!r} (classic|swiglu)")

        ones = np.ones(hidden_size, dtype=dtype)
        zeros = np.zeros(hidden_size, dtype=dtype)
        self.ln1_gamma, self.ln1_beta = ones.copy(), zeros.copy()
        self.ln2_gamma, self.ln2_beta = ones.copy(), zeros.copy()

    def param_count(self) -> int:
        """Learned scalars in this block (both norms counted, as the
        paper's 13hL low-order term does)."""
        norms = (
            self.ln1_gamma.size
            + self.ln1_beta.size
            + self.ln2_gamma.size
            + self.ln2_beta.size
        )
        return self.attention.param_count() + self.mlp.param_count() + norms

    def forward(
        self,
        x: np.ndarray,
        trace: OpTrace,
        positions: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Forward one block; input/output shape (s, b, h) (Sec III-C)."""
        if x.ndim != 3 or x.shape[2] != self.h:
            raise ShapeError(f"expected (s, b, {self.h}) input, got {x.shape}")
        if self.parallel_layers:
            normed = F.layer_norm(x, self.ln1_gamma, self.ln1_beta)
            return (
                x
                + self.attention.forward(normed, trace, positions)
                + self.mlp.forward(normed, trace)
            )
        attn_out = self.attention.forward(
            F.layer_norm(x, self.ln1_gamma, self.ln1_beta), trace, positions
        )
        x = x + attn_out
        mlp_out = self.mlp.forward(
            F.layer_norm(x, self.ln2_gamma, self.ln2_beta), trace
        )
        return x + mlp_out
