"""Autoregressive generation for the NumPy decoder model.

Greedy and temperature sampling over :class:`DecoderModel`.  The model
has no KV cache (it is a correctness substrate, not a serving engine),
so each step re-runs the prefix — which is exactly the naive decode the
inference latency model's GEMV analysis describes.

Used by tests to close the loop on the copy task: a model trained on
:class:`~repro.transformer.data.CopyCorpus` must reproduce the pattern
after the delimiter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.transformer.model import DecoderModel
from repro.transformer.trace import NullTrace


def generate(
    model: DecoderModel,
    prompt: np.ndarray,
    new_tokens: int,
    temperature: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Extend a ``(s, b)`` prompt by ``new_tokens`` autoregressive steps.

    ``temperature == 0`` is greedy argmax; otherwise logits are divided
    by the temperature and sampled.  Generation stops early only when
    the total length would exceed the model's positional table.

    Returns the full ``(s + generated, b)`` token array.
    """
    if prompt.ndim != 2:
        raise ShapeError(f"prompt must be (s, b), got {prompt.shape}")
    if new_tokens <= 0:
        raise ConfigError("new_tokens must be positive")
    if temperature < 0:
        raise ConfigError("temperature must be non-negative")
    if temperature > 0 and rng is None:
        rng = np.random.default_rng(0)

    tokens = prompt.astype(np.int64).copy()
    trace = NullTrace()
    for _ in range(new_tokens):
        if tokens.shape[0] >= model.s_max:
            break
        logits = model.forward(tokens, trace)[-1]  # (b, v)
        if temperature == 0.0:
            nxt = logits.argmax(axis=-1)
        else:
            scaled = logits / temperature
            scaled -= scaled.max(axis=-1, keepdims=True)
            probs = np.exp(scaled)
            probs /= probs.sum(axis=-1, keepdims=True)
            nxt = np.array(
                [rng.choice(model.v, p=probs[b]) for b in range(probs.shape[0])]
            )
        tokens = np.concatenate([tokens, nxt[None, :]], axis=0)
    return tokens


def perplexity(model: DecoderModel, token_ids: np.ndarray) -> float:
    """exp(next-token cross-entropy) over a (s, b) batch."""
    return float(np.exp(model.loss(token_ids)))
