"""Mixture-of-Experts MLP (Mixtral-style top-k routing).

MoE replaces the dense MLP with ``E`` expert MLPs and a learned router;
each token is processed by its top-k experts and the outputs are
combined with the (renormalized) router weights.  From the paper's
GEMM-shape perspective this changes one thing fundamentally: the MLP
GEMMs' *row* count is no longer the fixed ``b*s`` but the per-expert
token count — a quantity set by routing, typically ``b*s*k/E`` on
average, and rarely a friendly multiple.  Tile quantization and launch
overhead on E small GEMMs replace one large, well-shaped GEMM, which is
exactly the co-design trade-off this library's models can price.

The NumPy implementation routes *exactly* (true top-k, no capacity
dropping), so traced expert GEMMs have data-dependent row counts whose
total is always ``b*s*k`` — tests pin that conservation law.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.transformer import functional as F
from repro.transformer.mlp import MLP, SwiGLUMLP
from repro.transformer.trace import OpTrace


class _PrefixTrace:
    """Proxy that prefixes module labels before delegating to a trace.

    Lets the dense expert MLPs record under ``moe_``-prefixed names
    (``moe_mlp_gate`` etc.) so MoE and dense layers stay distinguishable
    in profiles and mapping tests.
    """

    def __init__(self, inner: OpTrace, prefix: str) -> None:
        self._inner = inner
        self._prefix = prefix

    def matmul(self, module: str, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        return self._inner.matmul(self._prefix + module, x, w)

    def bmm(self, module: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._inner.bmm(self._prefix + module, a, b)


class MoEMLP:
    """Top-k routed mixture of expert MLPs over (s, b, h) activations.

    Parameters
    ----------
    num_experts, top_k:
        ``E`` experts; each token visits its ``k`` highest-scoring ones
        (Mixtral: E=8, k=2).
    expert_kind:
        ``"swiglu"`` (Mixtral's choice, default) or ``"classic"``.
    """

    def __init__(
        self,
        hidden_size: int,
        rng: np.random.Generator,
        num_experts: int,
        top_k: int = 2,
        intermediate_size: "int | None" = None,
        expert_kind: str = "swiglu",
        dtype=np.float64,
    ) -> None:
        if num_experts < 2:
            raise ConfigError(f"num_experts must be >= 2, got {num_experts}")
        if not (1 <= top_k <= num_experts):
            raise ConfigError(
                f"top_k must be in [1, num_experts], got {top_k}/{num_experts}"
            )
        self.h = hidden_size
        self.num_experts = num_experts
        self.top_k = top_k
        self.expert_kind = expert_kind
        self.router = rng.normal(0.0, 0.02, size=(hidden_size, num_experts)).astype(
            dtype
        )
        if expert_kind == "swiglu":
            self.experts: List = [
                SwiGLUMLP(hidden_size, rng, intermediate_size=intermediate_size, dtype=dtype)
                for _ in range(num_experts)
            ]
        elif expert_kind == "classic":
            self.experts = [
                MLP(hidden_size, rng, intermediate_size=intermediate_size, dtype=dtype)
                for _ in range(num_experts)
            ]
        else:
            raise ConfigError(f"unknown expert_kind {expert_kind!r}")
        self.d_ff = self.experts[0].d_ff

    @property
    def n_matrices(self) -> int:
        return self.experts[0].n_matrices

    def param_count(self) -> int:
        """Router weights plus every expert's parameters."""
        return self.router.size + sum(e.param_count() for e in self.experts)

    def forward(self, x: np.ndarray, trace: OpTrace) -> np.ndarray:
        """Route, run experts on their token subsets, combine.

        The router scores are a traced GEMM ``(s*b, h) x (h, E)``; each
        expert processes only its routed tokens, so its traced matmuls
        have data-dependent row counts summing to ``s*b*top_k``.
        """
        if x.ndim != 3 or x.shape[2] != self.h:
            raise ShapeError(f"expected (s, b, {self.h}) input, got {x.shape}")
        s, b, h = x.shape
        x2 = x.reshape(s * b, h)

        logits = trace.matmul("moe_router", x2, self.router)  # (tokens, E)
        probs = F.softmax(logits, axis=-1)
        # Top-k selection with renormalized weights (Mixtral recipe).
        top_idx = np.argsort(-probs, axis=-1)[:, : self.top_k]  # (tokens, k)
        rows = np.arange(x2.shape[0])[:, None]
        top_w = probs[rows, top_idx]
        top_w = top_w / top_w.sum(axis=-1, keepdims=True)

        out = np.zeros_like(x2)
        for e, expert in enumerate(self.experts):
            mask = (top_idx == e).any(axis=-1)
            token_rows = np.nonzero(mask)[0]
            if token_rows.size == 0:
                continue
            weights = np.where(top_idx[token_rows] == e, top_w[token_rows], 0.0).sum(
                axis=-1
            )
            routed = x2[token_rows]
            # Experts see (n_e, 1, h) "sequences"; reuse the dense MLPs
            # under moe_-prefixed trace labels.
            expert_out = expert.forward(
                routed[:, None, :], _PrefixTrace(trace, "moe_")
            ).reshape(token_rows.size, h)
            out[token_rows] += weights[:, None] * expert_out
        return out.reshape(s, b, h)
