"""NumPy decoder-only transformer substrate.

A complete, executable implementation of the GPT-2-style architecture
the paper studies (Sec III-C, Fig 4), including the architectural
variants of Sec VI-C (parallel layers, rotary/ALiBi embeddings, SwiGLU
MLPs, FlashAttention-style tiled attention).

Its role in the reproduction is ground truth: every matrix
multiplication executed by the real computation is recorded by
:class:`repro.transformer.trace.OpTrace`, and tests assert the recorded
shapes equal the paper's Table II mapping as implemented analytically in
:mod:`repro.core.gemms`.  Parameter-count and FLOP formulas are likewise
validated against the actual weight arrays and traced operations.
"""

from repro.transformer.trace import OpTrace, MatmulRecord
from repro.transformer.attention import MultiHeadAttention
from repro.transformer.mlp import MLP, SwiGLUMLP
from repro.transformer.block import TransformerBlock
from repro.transformer.model import DecoderModel
from repro.transformer.flash import flash_attention, FlashAttentionModel

__all__ = [
    "OpTrace",
    "MatmulRecord",
    "MultiHeadAttention",
    "MLP",
    "SwiGLUMLP",
    "TransformerBlock",
    "DecoderModel",
    "flash_attention",
    "FlashAttentionModel",
]
