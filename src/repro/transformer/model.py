"""Full decoder-only language model (paper Fig 4).

Input tokens -> word embedding (v x h) -> (+ positional) -> L transformer
blocks -> final norm -> logit projection back to the vocabulary.

The model exposes :meth:`param_count`, which tests check against the
paper's formula ``P = 12h^2 L + 13hL + (v+s)h`` (Sec III-C), and a fully
traced :meth:`forward`, whose recorded matmul shapes tests check against
the analytical Table II mapping in :mod:`repro.core.gemms`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.transformer import functional as F
from repro.transformer import positional as pos
from repro.transformer.block import TransformerBlock
from repro.transformer.trace import OpTrace


class DecoderModel:
    """GPT-2-style decoder LM over integer token ids.

    Parameters mirror the paper's Table I variables: ``hidden_size`` =
    h, ``num_heads`` = a, ``num_layers`` = L, ``max_seq`` = s (the
    positional table extent), ``vocab_size`` = v, ``tp_degree`` = t.
    """

    def __init__(
        self,
        vocab_size: int,
        max_seq: int,
        hidden_size: int,
        num_heads: int,
        num_layers: int,
        rng: Optional[np.random.Generator] = None,
        tp_degree: int = 1,
        parallel_layers: bool = False,
        mlp_kind: str = "classic",
        intermediate_size: "int | None" = None,
        positional: str = "learned",
        tie_embeddings: bool = True,
        num_kv_heads: "int | None" = None,
        attention_window: "int | None" = None,
        num_experts: "int | None" = None,
        moe_top_k: int = 2,
        dtype=np.float64,
    ) -> None:
        if min(vocab_size, max_seq, hidden_size, num_heads, num_layers) <= 0:
            raise ConfigError("all model dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        self.v = vocab_size
        self.s_max = max_seq
        self.h = hidden_size
        self.a = num_heads
        self.L = num_layers
        self.positional = pos.validate_kind(positional)
        self.tie_embeddings = tie_embeddings
        self.dtype = dtype

        self.wte = rng.normal(0.0, 0.02, size=(vocab_size, hidden_size)).astype(dtype)
        self.wpe = (
            pos.learned_positions(max_seq, hidden_size, rng).astype(dtype)
            if self.positional == "learned"
            else None
        )
        self.blocks = [
            TransformerBlock(
                hidden_size,
                num_heads,
                rng,
                tp_degree=tp_degree,
                parallel_layers=parallel_layers,
                mlp_kind=mlp_kind,
                intermediate_size=intermediate_size,
                positional=self.positional,
                num_kv_heads=num_kv_heads,
                attention_window=attention_window,
                num_experts=num_experts,
                moe_top_k=moe_top_k,
                dtype=dtype,
            )
            for _ in range(num_layers)
        ]
        self.lnf_gamma = np.ones(hidden_size, dtype=dtype)
        self.lnf_beta = np.zeros(hidden_size, dtype=dtype)
        self.lm_head = (
            None
            if tie_embeddings
            else rng.normal(0.0, 0.02, size=(hidden_size, vocab_size)).astype(dtype)
        )

    # -- accounting -------------------------------------------------------------

    def param_count(self, include_final_norm: bool = True) -> int:
        """Number of learned scalars in the model.

        With tied embeddings, learned positions and ``include_final_norm
        =False`` this equals the paper's ``12h^2 L + 13hL + (v+s)h``
        exactly (the final layer norm's 2h is the only term the formula
        omits).
        """
        total = self.wte.size
        if self.wpe is not None:
            total += self.wpe.size
        total += sum(block.param_count() for block in self.blocks)
        if include_final_norm:
            total += self.lnf_gamma.size + self.lnf_beta.size
        if self.lm_head is not None:
            total += self.lm_head.size
        return total

    # -- forward ----------------------------------------------------------------

    def embed(self, token_ids: np.ndarray) -> np.ndarray:
        """Token + position embedding: (s, b) ids -> (s, b, h)."""
        if token_ids.ndim != 2:
            raise ShapeError(f"token_ids must be (s, b), got {token_ids.shape}")
        s, _b = token_ids.shape
        if s > self.s_max:
            raise ShapeError(f"sequence {s} exceeds positional table {self.s_max}")
        x = F.embedding_lookup(self.wte, token_ids)
        if self.wpe is not None:
            x = x + self.wpe[:s][:, None, :]
        return x

    def forward(
        self, token_ids: np.ndarray, trace: Optional[OpTrace] = None
    ) -> np.ndarray:
        """Full forward: (s, b) token ids -> (s, b, v) logits."""
        trace = trace if trace is not None else OpTrace()
        if token_ids.ndim != 2:
            raise ShapeError(f"token_ids must be (s, b), got {token_ids.shape}")
        s, b = token_ids.shape
        positions = np.arange(s)
        x = self.embed(token_ids)
        for block in self.blocks:
            x = block.forward(x, trace, positions)
        x = F.layer_norm(x, self.lnf_gamma, self.lnf_beta)
        head = self.wte.T if self.lm_head is None else self.lm_head
        # The logit GEMM of Table II / Fig 20: (b*s, h) x (h, v).  The
        # paper's table writes the transposed orientation; the (m,n,k)
        # multiset — hence the performance analysis — is identical.
        logits = trace.matmul("logit", x.reshape(s * b, self.h), head)
        return logits.reshape(s, b, self.v)

    def loss(self, token_ids: np.ndarray, trace: Optional[OpTrace] = None) -> float:
        """Next-token cross-entropy over a (s, b) batch."""
        s, b = token_ids.shape
        if s < 2:
            raise ShapeError("need at least 2 tokens for next-token loss")
        logits = self.forward(token_ids, trace)
        pred = logits[:-1].reshape((s - 1) * b, self.v)
        target = token_ids[1:].reshape((s - 1) * b)
        return F.cross_entropy(pred, target)
