"""Multi-head self-attention (paper Sec III-C, operators 1-4 of Table II).

Executes the four attention matmuls with exactly the shapes the paper
maps them to, per tensor-parallel shard:

1. fused QKV transform      — GEMM ``(b*s, h) x (h, 3h/t)``
2. attention score (KQ^T)   — BMM  ``b*a/t x (s, h/a) x (h/a, s)``
3. attention over value     — BMM  ``b*a/t x (s, s) x (s, h/a)``
4. output projection        — GEMM ``(b*s, h/t) x (h/t, h)``

Tensor parallelism follows the Megatron column/row split: shards hold
``a/t`` heads; their projections are partial sums that would be
all-reduced across GPUs (here summed locally, which is numerically
identical).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.transformer import functional as F
from repro.transformer import positional as pos
from repro.transformer.trace import OpTrace


class MultiHeadAttention:
    """Causal multi-head self-attention over ``(s, b, h)`` activations.

    Parameters
    ----------
    hidden_size, num_heads:
        ``h`` and ``a``; ``h`` must be divisible by ``a``.
    tp_degree:
        Tensor-parallel degree ``t``.  Shards are executed sequentially
        (this is a single-process library), recording the *per-GPU* GEMM
        shapes of Table II.
    positional:
        ``"learned"``/``"none"`` (no-op here), ``"rotary"`` or
        ``"alibi"``.
    rng:
        Source of weight initialization.
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        rng: np.random.Generator,
        tp_degree: int = 1,
        positional: str = "learned",
        num_kv_heads: "int | None" = None,
        attention_window: "int | None" = None,
        dtype=np.float64,
    ) -> None:
        if hidden_size <= 0 or num_heads <= 0:
            raise ConfigError(
                f"hidden_size and num_heads must be positive: {hidden_size}, {num_heads}"
            )
        if hidden_size % num_heads:
            raise ConfigError(
                f"hidden_size {hidden_size} not divisible by num_heads {num_heads}"
            )
        if tp_degree <= 0 or num_heads % tp_degree:
            raise ConfigError(
                f"num_heads {num_heads} not divisible by tp_degree {tp_degree}"
            )
        kv = num_kv_heads if num_kv_heads is not None else num_heads
        if kv <= 0 or num_heads % kv:
            raise ConfigError(
                f"num_heads {num_heads} not divisible by num_kv_heads {kv}"
            )
        if kv % tp_degree:
            raise ConfigError(
                f"num_kv_heads {kv} not divisible by tp_degree {tp_degree}"
            )
        if attention_window is not None and attention_window <= 0:
            raise ConfigError(
                f"attention_window must be positive, got {attention_window}"
            )
        self.h = hidden_size
        self.a = num_heads
        self.kv = kv
        self.window = attention_window
        self.t = tp_degree
        self.head_dim = hidden_size // num_heads
        self.positional = pos.validate_kind(positional)
        if self.positional == "rotary" and self.head_dim % 2:
            raise ConfigError(
                f"rotary embeddings need an even head dim, got {self.head_dim}"
            )

        scale = 0.02
        h = hidden_size
        # Fused QKV weight laid out per shard: shard i's columns are
        # [Q_i | K_i | V_i] with Q a/t*d wide and K/V kv/t*d wide each
        # (grouped-query attention shares K/V heads between query
        # groups; kv == a recovers classic MHA).
        self.kv_dim = kv * self.head_dim
        qkv_cols = (h + 2 * self.kv_dim) // self.t
        self.w_qkv = [
            rng.normal(0.0, scale, size=(h, qkv_cols)).astype(dtype)
            for _ in range(self.t)
        ]
        self.b_qkv = [np.zeros(qkv_cols, dtype=dtype) for _ in range(self.t)]
        # Row-parallel output projection: shard i holds h/t rows.
        self.w_proj = [
            rng.normal(0.0, scale / math.sqrt(2.0), size=(h // self.t, h)).astype(dtype)
            for _ in range(self.t)
        ]
        self.b_proj = np.zeros(h, dtype=dtype)

    # -- helpers ---------------------------------------------------------------

    def param_count(self) -> int:
        """Learned scalars: QKV (h*(h+2*kv_dim) weights + biases) plus
        the h^2+h output projection; 4h^2+4h for classic MHA."""
        total = sum(w.size for w in self.w_qkv) + sum(b.size for b in self.b_qkv)
        total += sum(w.size for w in self.w_proj) + self.b_proj.size
        return total

    def _shard_heads(self) -> int:
        return self.a // self.t

    # -- forward ---------------------------------------------------------------

    def forward(
        self,
        x: np.ndarray,
        trace: OpTrace,
        positions: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Causal attention forward pass.

        ``x``: activations of shape (s, b, h).  Returns the same shape.
        """
        if x.ndim != 3 or x.shape[2] != self.h:
            raise ShapeError(f"expected (s, b, {self.h}) input, got {x.shape}")
        s, b, h = x.shape
        d = self.head_dim
        a_shard = self._shard_heads()
        if positions is None:
            positions = np.arange(s)

        x2 = x.reshape(s * b, h)
        mask = F.causal_mask(s, dtype=x.dtype, window=self.window)
        alibi = (
            pos.alibi_bias(self.a, s) if self.positional == "alibi" else None
        )
        kv_shard = self.kv // self.t
        group = a_shard // kv_shard

        out = np.zeros((s * b, h), dtype=x.dtype)
        for shard in range(self.t):
            qkv = trace.matmul("qkv_transform", x2, self.w_qkv[shard])
            qkv = qkv + self.b_qkv[shard]
            # (s*b, (a/t + 2*kv/t)*d) -> q: (s, b, a/t, d) and
            # k, v: (s, b, kv/t, d).
            q_cols = a_shard * d
            kv_cols = kv_shard * d
            q = qkv[:, :q_cols].reshape(s, b, a_shard, d)
            k = qkv[:, q_cols : q_cols + kv_cols].reshape(s, b, kv_shard, d)
            v = qkv[:, q_cols + kv_cols :].reshape(s, b, kv_shard, d)

            # (s, b, heads, d) -> (b*heads, s, d)
            def to_bmm(tensor: np.ndarray) -> np.ndarray:
                heads = tensor.shape[2]
                return tensor.transpose(1, 2, 0, 3).reshape(b * heads, s, d)

            q, k, v = to_bmm(q), to_bmm(k), to_bmm(v)
            if group > 1:
                # Expand shared K/V heads to one copy per query head —
                # the BMM then has the classic b*a/t batch, matching the
                # Table II analysis (GQA changes projection width and
                # KV-cache size, not the attention math).
                k = np.repeat(k.reshape(b, kv_shard, s, d), group, axis=1).reshape(
                    b * a_shard, s, d
                )
                v = np.repeat(v.reshape(b, kv_shard, s, d), group, axis=1).reshape(
                    b * a_shard, s, d
                )
            if self.positional == "rotary":
                q = pos.apply_rotary(q, positions)
                k = pos.apply_rotary(k, positions)

            scores = trace.bmm("attention_score", q, k.transpose(0, 2, 1))
            scores = scores / math.sqrt(d)
            scores = scores + mask[None, :, :]
            if alibi is not None:
                head_lo = shard * a_shard
                shard_bias = alibi[head_lo : head_lo + a_shard]
                scores = scores + np.tile(shard_bias, (b, 1, 1))
            probs = F.softmax(scores, axis=-1)

            ctx = trace.bmm("attention_over_value", probs, v)
            # (b*a/t, s, d) -> (s*b, h/t)
            ctx = ctx.reshape(b, a_shard, s, d).transpose(2, 0, 1, 3)
            ctx = ctx.reshape(s * b, a_shard * d)

            out += trace.matmul("attention_projection", ctx, self.w_proj[shard])
        out += self.b_proj
        return out.reshape(s, b, h)
