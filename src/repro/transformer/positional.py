"""Positional embedding variants (paper Sec VI-C2).

Implements the three approaches the paper discusses:

- **learned** absolute position embeddings (the GPT-2 default): a
  pointwise table add,
- **rotary** (RoFormer): pairwise rotation of query/key channels,
- **ALiBi**: additive linear biases on the attention scores.

The paper's conclusion is that the choice "does not impact our analysis"
— rotary and ALiBi touch only the memory-bound score path — and tests
here verify exactly that: the traced GEMM shapes are identical across
all three variants.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError

POSITIONAL_KINDS = ("learned", "rotary", "alibi", "none")


def learned_positions(s: int, h: int, rng: np.random.Generator) -> np.ndarray:
    """A learned position table of shape (s, h), N(0, 0.02) init."""
    if s <= 0 or h <= 0:
        raise ShapeError(f"positions require positive dims, got s={s}, h={h}")
    return rng.normal(0.0, 0.02, size=(s, h))


def rotary_frequencies(dim: int, base: float = 10000.0) -> np.ndarray:
    """Inverse frequencies for rotary embeddings over a head dim."""
    if dim <= 0 or dim % 2:
        raise ShapeError(f"rotary head dim must be positive and even, got {dim}")
    return 1.0 / base ** (np.arange(0, dim, 2) / dim)


def apply_rotary(x: np.ndarray, positions: np.ndarray, base: float = 10000.0) -> np.ndarray:
    """Rotate (…, s, d) channel pairs by position-dependent angles.

    ``x``: array whose last two axes are (sequence, head_dim);
    ``positions``: (s,) integer positions.
    """
    d = x.shape[-1]
    s = x.shape[-2]
    if positions.shape != (s,):
        raise ShapeError(f"positions shape {positions.shape} != ({s},)")
    freqs = rotary_frequencies(d, base)
    angles = positions[:, None] * freqs[None, :]  # (s, d/2)
    cos, sin = np.cos(angles), np.sin(angles)
    x1, x2 = x[..., 0::2], x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x1 * cos - x2 * sin
    out[..., 1::2] = x1 * sin + x2 * cos
    return out


def alibi_slopes(num_heads: int) -> np.ndarray:
    """Per-head ALiBi slopes: geometric sequence from 2^(-8/a).

    Follows Press et al.: for head counts that are not powers of two the
    sequence is extended with interleaved slopes from the next power.
    """
    if num_heads <= 0:
        raise ShapeError(f"num_heads must be positive, got {num_heads}")

    def pow2_slopes(n: int) -> np.ndarray:
        start = 2.0 ** (-(2.0 ** -(np.log2(n) - 3)))
        return start ** np.arange(1, n + 1)

    log2 = int(np.log2(num_heads))
    if 2**log2 == num_heads:
        return pow2_slopes(num_heads)
    base = pow2_slopes(2**log2)
    extra = pow2_slopes(2 ** (log2 + 1))[0::2][: num_heads - 2**log2]
    return np.concatenate([base, extra])


def alibi_bias(num_heads: int, s: int) -> np.ndarray:
    """Additive (a, s, s) bias matrix: -slope * distance, causal lower tri."""
    if s <= 0:
        raise ShapeError(f"sequence length must be positive, got {s}")
    slopes = alibi_slopes(num_heads)
    dist = np.arange(s)[None, :] - np.arange(s)[:, None]  # j - i
    dist = np.minimum(dist, 0)  # only past positions get bias
    return slopes[:, None, None] * dist[None, :, :]


def validate_kind(kind: str) -> str:
    """Check and normalize a positional-embedding kind name."""
    k = kind.strip().lower()
    if k not in POSITIONAL_KINDS:
        raise ConfigError(
            f"unknown positional embedding {kind!r}; choose from {POSITIONAL_KINDS}"
        )
    return k
