"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base class.  Each subclass
corresponds to a distinct failure domain (configuration, GPU modeling,
parallelism planning, harness execution) to make programmatic handling
possible without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A transformer or hardware configuration is invalid or inconsistent.

    Raised when e.g. the hidden size is not divisible by the number of
    attention heads, a dimension is non-positive, or a named preset is
    unknown.
    """


class ShapeError(ReproError):
    """A GEMM/BMM shape is malformed (non-positive dimension, bad batch)."""


class GPUModelError(ReproError):
    """The GPU performance model was given parameters it cannot evaluate.

    Examples: unknown GPU name, a tile configuration that does not fit in
    shared memory, or a dtype the target architecture does not support on
    its matrix units.
    """


class ParallelismError(ReproError):
    """A parallel decomposition is infeasible.

    Raised when tensor-parallel sharding does not divide the relevant
    dimensions, or when a pipeline stage assignment is impossible for the
    requested number of stages.
    """


class ExperimentError(ReproError):
    """A harness experiment is unknown or failed to produce results."""


class CalibrationError(ReproError):
    """Calibration failed to fit model constants to the provided samples."""
