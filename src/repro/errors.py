"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base class.  Each subclass
corresponds to a distinct failure domain, so programmatic handling never
needs string matching::

    ReproError
    +-- ConfigError          bad model/hardware configuration
    +-- ShapeError           malformed GEMM/BMM shape
    +-- GPUModelError        GPU performance model cannot evaluate
    +-- ParallelismError     infeasible parallel decomposition
    |   +-- CapacityError        a plan's peak memory exceeds the GPU
    +-- ExperimentError      unknown/failed harness experiment
    +-- CalibrationError     constant fitting failed
    +-- CacheError           disk-cache entry unreadable/unwritable
    +-- TaskTimeoutError     a resilient task exceeded its deadline
    +-- FaultInjectionError  a deterministically injected fault fired
    +-- CheckpointError      a sweep journal is unusable for resume
    +-- ServeError           advisory service failed to answer a request
        +-- QueueFullError         admission control rejected the request
        +-- DeadlineExceededError  request expired before dispatch
        +-- ServerClosedError      request submitted to a closed server
        +-- LoadShedError          cluster shed a low-priority request
        +-- ClusterError           multi-process serve tier failed
            +-- WorkerDiedError        a worker process died mid-request

The resilience four back the :mod:`repro.resilience` execution layer: a
:class:`~repro.resilience.execute.TaskOutcome` carries the exception
*type name* of whatever its task raised, so sweeps can distinguish an
injected chaos fault (:class:`FaultInjectionError`) from a genuine
model error without parsing messages.  The :class:`ServeError` family
backs :mod:`repro.serve` the same way: a rejected or failed advisory
carries the subclass name, so load generators and clients classify
backpressure vs deadline vs engine failures without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A transformer or hardware configuration is invalid or inconsistent.

    Raised when e.g. the hidden size is not divisible by the number of
    attention heads, a dimension is non-positive, or a named preset is
    unknown.
    """


class ShapeError(ReproError):
    """A GEMM/BMM shape is malformed (non-positive dimension, bad batch)."""


class GPUModelError(ReproError):
    """The GPU performance model was given parameters it cannot evaluate.

    Examples: unknown GPU name, a tile configuration that does not fit in
    shared memory, or a dtype the target architecture does not support on
    its matrix units.
    """


class ParallelismError(ReproError):
    """A parallel decomposition is infeasible.

    Raised when tensor-parallel sharding does not divide the relevant
    dimensions, or when a pipeline stage assignment is impossible for the
    requested number of stages.
    """


class CapacityError(ParallelismError):
    """A (t, p) plan does not fit the per-GPU memory budget.

    Raised by the planner's capacity checks when the training-step
    memory estimator (:mod:`repro.trainstep.memory`) says the plan's
    peak phase overflows the GPU.  Carries the overflowing phase and
    the modelled sizes so callers can handle it without parsing the
    message.
    """

    def __init__(
        self,
        message: str,
        *,
        phase: str = "",
        required_bytes: float = 0.0,
        budget_bytes: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.phase = phase
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes


class ExperimentError(ReproError):
    """A harness experiment is unknown or failed to produce results."""


class CalibrationError(ReproError):
    """Calibration failed to fit model constants to the provided samples."""


class CacheError(ReproError):
    """A disk-cache entry could not be read or written.

    Corrupt entries are *quarantined* (renamed aside) rather than raised
    on the read path; this error surfaces write-side failures (disk
    full, permissions) so callers can degrade to memory-only caching.
    """


class TaskTimeoutError(ReproError):
    """A task under :func:`repro.resilience.execute.execute_tasks`
    exceeded its per-attempt deadline."""


class FaultInjectionError(ReproError):
    """Default exception raised by a fired fault-injection site.

    Only ever raised when a :class:`repro.resilience.faults.FaultPlan`
    is installed (chaos runs and tests); production code paths never
    construct it themselves.
    """


class CheckpointError(ReproError):
    """A sweep journal cannot be used (wrong sweep id, unwritable path)."""


class KernelTableError(ReproError):
    """A kernel-parameter table artifact is unusable: malformed JSON,
    a failed checksum, a schema the reader does not speak, or a stale
    model version.  Serving falls back to the analytical search; table
    producers (``repro tune-kernels``) surface it as an error."""


class ServeError(ReproError):
    """The shape-advisory service could not answer a request.

    Base class for every serving failure; raised directly when the
    batched engine evaluation behind a request exhausted its retries.
    """


class QueueFullError(ServeError):
    """Admission control rejected a request: the shard queue is at its
    depth cap.  Backpressure, not a bug — callers retry or shed load."""


class DeadlineExceededError(ServeError):
    """A request's deadline elapsed while it waited in the queue, so the
    dispatcher dropped it instead of spending a batch slot on it."""


class ServerClosedError(ServeError):
    """A request was submitted to a server that has been closed."""


class LoadShedError(ServeError):
    """The cluster front-end shed a low-priority request under sustained
    backpressure.  Deliberate overload protection, not a bug — the
    advisory carries ``retryable=True`` so clients back off and retry."""


class ClusterError(ServeError):
    """The multi-process serve tier failed to complete an operation
    (spawn, handshake, or protocol violation on a worker pipe)."""


class WorkerDiedError(ClusterError):
    """A worker process died (crash, SIGKILL, or torn pipe) while a
    request was in flight on it.  The supervisor's dispatcher retries
    the request on a live worker; this surfaces only when every retry
    lane is exhausted."""
