"""In-process async shape-advisory service with dynamic batching.

``repro.serve`` turns the vectorized :mod:`repro.engine` into a
concurrent advisory service: many callers submit
:class:`~repro.serve.protocol.ShapeQuery` requests (evaluate / latency
/ tflops / lint) and a pool of worker shards answers them by
*coalescing* concurrently-waiting requests — identical shapes are
deduplicated, distinct ones merged — into single vectorized
:meth:`~repro.engine.core.ShapeEngine.evaluate` calls.  Admission
control (bounded queues -> :class:`~repro.errors.QueueFullError`),
per-request deadlines, retry/timeout via :mod:`repro.resilience`, a
TTL'd response cache, and full :mod:`repro.observability` spans and
metrics come along.  Answers are bit-identical to direct engine calls;
the deterministic load generator (:func:`run_load`) proves it on every
benchmark run.
"""

from repro.serve.batcher import EngineCall, PendingRequest, RequestQueue, plan_batch
from repro.serve.client import AdvisoryClient
from repro.serve.config import ServeConfig
from repro.serve.loadgen import (
    LoadReport,
    generate_queries,
    render_load,
    run_load,
    verify_against_engine,
    write_load,
)
from repro.serve.protocol import QUERY_KINDS, SHAPE_KINDS, Advisory, ShapeQuery
from repro.serve.server import AdvisoryServer, ServerStats, shard_for

__all__ = [
    "QUERY_KINDS",
    "SHAPE_KINDS",
    "Advisory",
    "AdvisoryClient",
    "AdvisoryServer",
    "EngineCall",
    "LoadReport",
    "PendingRequest",
    "RequestQueue",
    "ServeConfig",
    "ServerStats",
    "ShapeQuery",
    "generate_queries",
    "plan_batch",
    "render_load",
    "run_load",
    "shard_for",
    "verify_against_engine",
    "write_load",
]
