"""In-process async shape-advisory service with dynamic batching.

``repro.serve`` turns the vectorized :mod:`repro.engine` into a
concurrent advisory service: many callers submit
:class:`~repro.serve.protocol.ShapeQuery` requests (evaluate / latency
/ tflops / lint) and a pool of worker shards answers them by
*coalescing* concurrently-waiting requests — identical shapes are
deduplicated, distinct ones merged — into single vectorized
:meth:`~repro.engine.core.ShapeEngine.evaluate` calls.  Admission
control (bounded queues -> :class:`~repro.errors.QueueFullError`),
per-request deadlines, retry/timeout via :mod:`repro.resilience`, a
TTL'd response cache, and full :mod:`repro.observability` spans and
metrics come along.  Answers are bit-identical to direct engine calls;
the deterministic load generator (:func:`run_load`) proves it on every
benchmark run.

The same service also runs as a **multi-process cluster**: a
:class:`~repro.serve.supervisor.Supervisor` owns N worker *processes*
(each an :class:`AdvisoryServer` shard behind a JSONL pipe, sharing
the mmap warm cache) with heartbeat health checks, crash restart under
an exponential-backoff budget, priority load-shedding, and an
in-process degraded fallback; :class:`~repro.serve.cluster.
ClusterServer` fronts it over TCP and :class:`~repro.serve.netclient.
SocketTransport` is the reconnecting client.  Every flavour satisfies
the one :class:`~repro.serve.dispatch.Transport` protocol, so the
client facade and the differential load wall are shared verbatim.
"""

from repro.serve.batcher import EngineCall, PendingRequest, RequestQueue, plan_batch
from repro.serve.client import AdvisoryClient
from repro.serve.cluster import ClusterServer
from repro.serve.config import ServeConfig
from repro.serve.dispatch import (
    RETRYABLE_ERRORS,
    Transport,
    error_to_advisory,
    is_retryable,
    unwrap_advisory,
)
from repro.serve.loadgen import (
    LoadReport,
    generate_queries,
    render_load,
    run_load,
    run_load_processes,
    verify_against_engine,
    write_load,
)
from repro.serve.netclient import SocketTransport
from repro.serve.protocol import QUERY_KINDS, SHAPE_KINDS, Advisory, ShapeQuery
from repro.serve.server import AdvisoryServer, ServerStats, shard_for
from repro.serve.supervisor import Supervisor, WorkerHandle

__all__ = [
    "QUERY_KINDS",
    "RETRYABLE_ERRORS",
    "SHAPE_KINDS",
    "Advisory",
    "AdvisoryClient",
    "AdvisoryServer",
    "ClusterServer",
    "EngineCall",
    "LoadReport",
    "PendingRequest",
    "RequestQueue",
    "ServeConfig",
    "ServerStats",
    "ShapeQuery",
    "SocketTransport",
    "Supervisor",
    "Transport",
    "WorkerHandle",
    "error_to_advisory",
    "generate_queries",
    "is_retryable",
    "plan_batch",
    "render_load",
    "run_load",
    "run_load_processes",
    "shard_for",
    "unwrap_advisory",
    "verify_against_engine",
    "write_load",
]
