"""Deterministic seeded load generator for the advisory service.

``repro loadgen`` (and the load-test wall) needs reproducible traffic:
:func:`generate_queries` derives every request from a single seed — the
shape pool, the kind mix, the GPU mix, and the duplication pattern are
identical across runs and machines, so a load run is a *benchmark*
(``BENCH_serve.json``), not an anecdote.  Timing of course varies with
the machine; the request stream never does.

The pool is intentionally much smaller than the request count
(``unique`` vs ``requests``) so traffic is heavily duplicated — the
regime dynamic batching exists for: concurrent duplicate shapes fold
onto one engine row, distinct ones merge into one vectorized call, and
the report's ``coalesce_ratio`` (requests dispatched per engine call)
measures the win.

:func:`run_load` drives the queries through a server from ``clients``
threads, then (optionally but by default) **verifies** every distinct
ok answer bit-for-bit against a fresh, private
:class:`~repro.engine.core.ShapeEngine` — the served numbers must be
exactly what a direct engine call returns, proving batching, dedup,
sharding, and the TTL cache change *how* answers are computed, never
*what* they are.
"""

from __future__ import annotations

import json
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, QueueFullError
from repro.serve.protocol import Advisory, ShapeQuery
from repro.serve.server import AdvisoryServer

__all__ = [
    "LoadReport",
    "generate_queries",
    "render_load",
    "run_load",
    "verify_against_engine",
    "write_load",
]

#: Dimension candidates for generated shapes: spans tiny decode GEMVs
#: through large training GEMMs, aligned and misaligned.
_DIM_POOL = (
    64, 96, 128, 160, 256, 384, 512, 768, 1024, 1536, 2048, 2560,
    3072, 4096, 5120, 6144, 8192, 1000, 1111, 2000, 2049, 4095, 50257,
)

_KINDS = ("latency", "tflops", "evaluate")


def generate_queries(
    requests: int,
    seed: int = 0,
    unique: int = 48,
    gpus: Sequence[str] = ("A100",),
    batch_max: int = 8,
) -> List[ShapeQuery]:
    """Build a reproducible, heavily-duplicated request stream.

    ``unique`` bounds the distinct shape pool the ``requests`` draws
    come from; with ``requests >> unique`` most requests duplicate an
    earlier shape, which is what exercises the dedup path.
    """
    if requests < 1:
        raise ConfigError(f"requests must be >= 1, got {requests}")
    if unique < 1:
        raise ConfigError(f"unique must be >= 1, got {unique}")
    if not gpus:
        raise ConfigError("gpus must be non-empty")
    rng = random.Random(seed)
    pool: List[Tuple[int, int, int, int]] = []
    seen = set()
    while len(pool) < unique:
        shape = (
            rng.choice((1, 1, 1, 2, 4, rng.randint(1, batch_max))),
            rng.choice(_DIM_POOL),
            rng.choice(_DIM_POOL),
            rng.choice(_DIM_POOL),
        )
        if shape not in seen:
            seen.add(shape)
            pool.append(shape)
    queries = []
    for _ in range(requests):
        batch, m, n, k = rng.choice(pool)
        queries.append(
            ShapeQuery(
                kind=rng.choice(_KINDS),
                m=m, n=n, k=k, batch=batch,
                gpu=rng.choice(tuple(gpus)),
            )
        )
    return queries


@dataclass
class LoadReport:
    """Outcome of one load run: counts, latency percentiles, coalescing.

    Latencies (``p50_s``/``p95_s``/``p99_s``/``max_s``) are client-side
    request round-trip seconds; ``wall_s`` is the whole run;
    ``throughput_rps`` is completed requests per second of wall time.
    ``coalesce_ratio`` is dispatched shape requests per vectorized
    engine call (dimensionless; > 1 means dynamic batching won).
    ``verified_rows`` / ``verify_mismatches`` report the bit-identical
    check against a fresh engine (``-1`` rows = verification skipped).
    """

    requests: int = 0
    ok: int = 0
    failed: int = 0
    rejected_queue_full: int = 0
    rejected_deadline: int = 0
    cache_hits: int = 0
    wall_s: float = 0.0
    throughput_rps: float = 0.0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    max_s: float = 0.0
    engine_calls: int = 0
    coalesce_ratio: float = 0.0
    verified_rows: int = -1
    verify_mismatches: int = 0
    seed: int = 0
    clients: int = 0
    server: Dict[str, Any] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """Every request answered ok and verification (if run) clean."""
        return (
            self.ok == self.requests
            and self.verify_mismatches == 0
        )

    def to_dict(self) -> Dict[str, Any]:
        out = {
            k: getattr(self, k)
            for k in (
                "requests", "ok", "failed", "rejected_queue_full",
                "rejected_deadline", "cache_hits", "engine_calls",
                "coalesce_ratio", "verified_rows", "verify_mismatches",
                "seed", "clients", "server", "config",
            )
        }
        out.update(
            wall_s=round(self.wall_s, 4),
            throughput_rps=round(self.throughput_rps, 1),
            p50_ms=round(self.p50_s * 1e3, 3),
            p95_ms=round(self.p95_s * 1e3, 3),
            p99_ms=round(self.p99_s * 1e3, 3),
            max_ms=round(self.max_s * 1e3, 3),
            passed=self.passed,
        )
        return out


def _percentile(sorted_vals: List[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * (len(sorted_vals) - 1) + 0.5))
    return sorted_vals[idx]


def verify_against_engine(
    pairs: Sequence[Tuple[ShapeQuery, Advisory]],
) -> Tuple[int, int]:
    """Bit-identical check of served answers vs a fresh private engine.

    Deduplicates the ok shape advisories per ``(kind, shape, gpu,
    dtype)``, evaluates each distinct shape once per ``(gpu, dtype)``
    through a brand-new :class:`~repro.engine.core.ShapeEngine`
    (memory-only, no shared state with the server), and compares the
    served floats for exact equality.  Returns ``(rows_checked,
    mismatches)``.
    """
    from repro.engine.core import ShapeEngine

    distinct: Dict[Tuple[Any, ...], Tuple[ShapeQuery, Advisory]] = {}
    for query, advisory in pairs:
        if advisory.ok and query.is_shape_query:
            distinct.setdefault(query.cache_key(), (query, advisory))
    by_target: Dict[Tuple[str, str], List[Tuple[ShapeQuery, Advisory]]] = {}
    for query, advisory in distinct.values():
        by_target.setdefault((query.gpu, query.dtype), []).append(
            (query, advisory)
        )

    engine = ShapeEngine()
    checked = 0
    mismatches = 0
    for (gpu, dtype), items in by_target.items():
        shapes = np.asarray(
            [q.shape_tuple() for q, _ in items], dtype=np.int64
        )
        # One batched evaluation per (gpu, dtype) target group — the
        # loop is over targets, not shapes.
        result = engine.evaluate(shapes, gpu, dtype)  # lint: allow(engine-eval-in-loop)
        for row, (query, advisory) in enumerate(items):
            checked += 1
            expect_latency = float(result.latency_s[row])
            expect_tflops = float(result.tflops[row])
            payload = advisory.payload
            bad = False
            if "latency_s" in payload:
                bad |= payload["latency_s"] != expect_latency
            if "tflops" in payload:
                bad |= payload["tflops"] != expect_tflops
            if query.kind == "evaluate":
                bad |= payload.get("tile") != result.tile(row).name
                bad |= payload.get("bound") != str(result.bound[row])
            if bad:
                mismatches += 1
    return checked, mismatches


def run_load(
    server: AdvisoryServer,
    queries: Sequence[ShapeQuery],
    clients: int = 8,
    seed: int = 0,
    verify: bool = True,
    timeout_s: Optional[float] = 60.0,
) -> LoadReport:
    """Drive ``queries`` through ``server`` from ``clients`` threads.

    The server must be started.  Returns the :class:`LoadReport`;
    never raises for per-request failures (they are counted), only for
    setup errors.
    """
    if clients < 1:
        raise ConfigError(f"clients must be >= 1, got {clients}")
    outcomes: List[Tuple[ShapeQuery, Optional[Advisory], float]] = []

    def drive(query: ShapeQuery) -> Tuple[ShapeQuery, Optional[Advisory], float]:
        t0 = time.perf_counter()
        try:
            advisory = server.request(query, timeout_s=timeout_s)
        except QueueFullError:
            return query, None, time.perf_counter() - t0
        return query, advisory, time.perf_counter() - t0

    t_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients, thread_name_prefix="loadgen") as pool:
        outcomes = list(pool.map(drive, queries))
    wall_s = time.perf_counter() - t_start

    report = LoadReport(
        requests=len(queries), seed=seed, clients=clients,
        wall_s=wall_s,
        throughput_rps=len(queries) / wall_s if wall_s > 0 else 0.0,
        config=server.config.to_dict(),
    )
    latencies: List[float] = []
    ok_pairs: List[Tuple[ShapeQuery, Advisory]] = []
    for query, advisory, elapsed in outcomes:
        if advisory is None:
            report.rejected_queue_full += 1
            continue
        latencies.append(elapsed)
        if advisory.ok:
            report.ok += 1
            ok_pairs.append((query, advisory))
            if advisory.source == "cache":
                report.cache_hits += 1
        elif advisory.error_type == "DeadlineExceededError":
            report.rejected_deadline += 1
        else:
            report.failed += 1
    latencies.sort()
    report.p50_s = _percentile(latencies, 0.50)
    report.p95_s = _percentile(latencies, 0.95)
    report.p99_s = _percentile(latencies, 0.99)
    report.max_s = latencies[-1] if latencies else 0.0

    stats = server.stats()
    report.server = stats.to_dict()
    report.engine_calls = stats.engine_calls
    report.coalesce_ratio = stats.coalesce_ratio

    if verify:
        report.verified_rows, report.verify_mismatches = (
            verify_against_engine(ok_pairs)
        )
    return report


def render_load(report: LoadReport) -> str:
    """Human summary of one load run."""
    lines = [
        f"load: {report.requests} requests from {report.clients} client(s), "
        f"seed {report.seed}",
        f"outcome: {report.ok} ok, {report.failed} failed, "
        f"{report.rejected_queue_full} queue-full, "
        f"{report.rejected_deadline} deadline-expired "
        f"({report.cache_hits} cache hits)",
        f"wall: {report.wall_s * 1e3:.0f} ms   "
        f"throughput: {report.throughput_rps:.0f} req/s",
        f"latency: p50 {report.p50_s * 1e3:.2f} ms   "
        f"p95 {report.p95_s * 1e3:.2f} ms   "
        f"p99 {report.p99_s * 1e3:.2f} ms   "
        f"max {report.max_s * 1e3:.2f} ms",
        f"coalescing: {report.engine_calls} engine call(s) for "
        f"{report.server.get('shape_dispatched', 0)} dispatched shape "
        f"request(s) -> ratio {report.coalesce_ratio:.2f} "
        f"({report.server.get('coalesced_duplicates', 0)} duplicates folded)",
    ]
    if report.verified_rows >= 0:
        lines.append(
            f"verify: {report.verified_rows} distinct answer(s) vs fresh "
            f"engine, {report.verify_mismatches} mismatch(es)"
        )
    lines.append("load: " + ("PASS" if report.passed else "FAIL"))
    return "\n".join(lines)


def write_load(report: LoadReport, path: str) -> None:
    """Write the benchmark record (``BENCH_serve.json``)."""
    record = {"benchmark": "repro loadgen", **report.to_dict()}
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
