"""Deterministic seeded load generator for the advisory service.

``repro loadgen`` (and the load-test wall) needs reproducible traffic:
:func:`generate_queries` derives every request from a single seed — the
shape pool, the kind mix, the GPU mix, and the duplication pattern are
identical across runs and machines, so a load run is a *benchmark*
(``BENCH_serve.json``), not an anecdote.  Timing of course varies with
the machine; the request stream never does.

The pool is intentionally much smaller than the request count
(``unique`` vs ``requests``) so traffic is heavily duplicated — the
regime dynamic batching exists for: concurrent duplicate shapes fold
onto one engine row, distinct ones merge into one vectorized call, and
the report's ``coalesce_ratio`` (requests dispatched per engine call)
measures the win.

:func:`run_load` drives the queries through any
:class:`~repro.serve.dispatch.Transport` — the in-process server, the
multi-process supervisor, or a remote cluster via
:class:`~repro.serve.netclient.SocketTransport` — from ``clients``
threads, then (optionally but by default) **verifies** every distinct
ok answer bit-for-bit against a fresh, private
:class:`~repro.engine.core.ShapeEngine` — the served numbers must be
exactly what a direct engine call returns, proving batching, dedup,
sharding, the TTL cache, worker processes, and crash failover change
*how* answers are computed, never *what* they are.

:func:`run_load_processes` scales the same wall across OS boundaries:
it spawns ``procs`` genuinely separate client *processes* (each one
``python -m repro.serve.loadgen --connect``), gives each a disjoint
slice of the same seeded stream, and verifies the union of their
answers centrally — the cluster equivalent of the single-process wall.
"""

from __future__ import annotations

import argparse
import json
import random
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ClusterError, ConfigError, ReproError
from repro.serve.dispatch import Transport, error_to_advisory
from repro.serve.protocol import Advisory, ShapeQuery

__all__ = [
    "LoadReport",
    "generate_queries",
    "main",
    "render_load",
    "run_load",
    "run_load_processes",
    "verify_against_engine",
    "write_load",
]

#: Dimension candidates for generated shapes: spans tiny decode GEMVs
#: through large training GEMMs, aligned and misaligned.
_DIM_POOL = (
    64, 96, 128, 160, 256, 384, 512, 768, 1024, 1536, 2048, 2560,
    3072, 4096, 5120, 6144, 8192, 1000, 1111, 2000, 2049, 4095, 50257,
)

_KINDS = ("latency", "tflops", "evaluate")

#: Default fraction of generated requests asking for kernel parameters
#: (the tuned-table path) instead of a shape advisory.
_KERNEL_SHARE = 0.25


def generate_queries(
    requests: int,
    seed: int = 0,
    unique: int = 48,
    gpus: Sequence[str] = ("A100",),
    batch_max: int = 8,
    kernel_share: float = _KERNEL_SHARE,
) -> List[ShapeQuery]:
    """Build a reproducible, heavily-duplicated request stream.

    ``unique`` bounds the distinct shape pool the ``requests`` draws
    come from; with ``requests >> unique`` most requests duplicate an
    earlier shape, which is what exercises the dedup path.  A
    ``kernel_share`` fraction of requests asks ``kernel_params`` for
    its shape instead of a shape advisory, so one stream exercises both
    the batched engine path and the tuned-table passthrough.
    """
    if requests < 1:
        raise ConfigError(f"requests must be >= 1, got {requests}")
    if unique < 1:
        raise ConfigError(f"unique must be >= 1, got {unique}")
    if not gpus:
        raise ConfigError("gpus must be non-empty")
    if not 0.0 <= kernel_share <= 1.0:
        raise ConfigError(
            f"kernel_share must be in [0, 1], got {kernel_share}"
        )
    rng = random.Random(seed)
    pool: List[Tuple[int, int, int, int]] = []
    seen = set()
    while len(pool) < unique:
        shape = (
            rng.choice((1, 1, 1, 2, 4, rng.randint(1, batch_max))),
            rng.choice(_DIM_POOL),
            rng.choice(_DIM_POOL),
            rng.choice(_DIM_POOL),
        )
        if shape not in seen:
            seen.add(shape)
            pool.append(shape)
    queries = []
    for _ in range(requests):
        batch, m, n, k = rng.choice(pool)
        kind = (
            "kernel_params"
            if rng.random() < kernel_share
            else rng.choice(_KINDS)
        )
        queries.append(
            ShapeQuery(
                kind=kind,
                m=m, n=n, k=k, batch=batch,
                gpu=rng.choice(tuple(gpus)),
            )
        )
    return queries


@dataclass
class LoadReport:
    """Outcome of one load run: counts, latency percentiles, coalescing.

    Latencies (``p50_s``/``p95_s``/``p99_s``/``max_s``) are client-side
    request round-trip seconds; ``wall_s`` is the whole run;
    ``throughput_rps`` is completed requests per second of wall time.
    ``coalesce_ratio`` is dispatched shape requests per vectorized
    engine call (dimensionless; > 1 means dynamic batching won).
    ``verified_rows`` / ``verify_mismatches`` report the bit-identical
    check against a fresh engine (``-1`` rows = verification skipped).
    """

    requests: int = 0
    ok: int = 0
    failed: int = 0
    rejected_queue_full: int = 0
    rejected_deadline: int = 0
    shed: int = 0
    degraded: int = 0
    reconnects: int = 0
    cache_hits: int = 0
    wall_s: float = 0.0
    throughput_rps: float = 0.0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    max_s: float = 0.0
    engine_calls: int = 0
    coalesce_ratio: float = 0.0
    verified_rows: int = -1
    verify_mismatches: int = 0
    seed: int = 0
    clients: int = 0
    server: Dict[str, Any] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)
    #: The (query, advisory) pairs behind the ok count — kept so a
    #: parent process can re-verify a child's answers centrally; never
    #: serialized by :meth:`to_dict`.
    ok_pairs: List[Tuple[ShapeQuery, Advisory]] = field(
        default_factory=list, repr=False
    )
    #: Client-side round-trip seconds, one per answered request (for
    #: exact percentile merging across processes); not serialized.
    latencies: List[float] = field(default_factory=list, repr=False)

    @property
    def passed(self) -> bool:
        """Every request answered ok and verification (if run) clean."""
        return (
            self.ok == self.requests
            and self.verify_mismatches == 0
        )

    def to_dict(self) -> Dict[str, Any]:
        out = {
            k: getattr(self, k)
            for k in (
                "requests", "ok", "failed", "rejected_queue_full",
                "rejected_deadline", "shed", "degraded", "reconnects",
                "cache_hits", "engine_calls",
                "coalesce_ratio", "verified_rows", "verify_mismatches",
                "seed", "clients", "server", "config",
            )
        }
        out.update(
            wall_s=round(self.wall_s, 4),
            throughput_rps=round(self.throughput_rps, 1),
            p50_ms=round(self.p50_s * 1e3, 3),
            p95_ms=round(self.p95_s * 1e3, 3),
            p99_ms=round(self.p99_s * 1e3, 3),
            max_ms=round(self.max_s * 1e3, 3),
            passed=self.passed,
        )
        return out


def _percentile(sorted_vals: List[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * (len(sorted_vals) - 1) + 0.5))
    return sorted_vals[idx]


def verify_against_engine(
    pairs: Sequence[Tuple[ShapeQuery, Advisory]],
) -> Tuple[int, int]:
    """Bit-identical check of served answers vs a fresh private engine.

    Deduplicates the ok shape advisories per ``(kind, shape, gpu,
    dtype)``, evaluates each distinct shape once per ``(gpu, dtype)``
    through a brand-new :class:`~repro.engine.core.ShapeEngine`
    (memory-only, no shared state with the server), and compares the
    served floats for exact equality.  ``kernel_params`` advisories are
    re-resolved through a fresh
    :class:`~repro.kernels.registry.KernelParamResolver` built from the
    same environment and compared payload-for-payload.  Returns
    ``(rows_checked, mismatches)``.
    """
    from repro.engine.core import ShapeEngine

    distinct: Dict[Tuple[Any, ...], Tuple[ShapeQuery, Advisory]] = {}
    kernel_pairs: Dict[Tuple[Any, ...], Tuple[ShapeQuery, Advisory]] = {}
    for query, advisory in pairs:
        if advisory.ok and query.is_shape_query:
            distinct.setdefault(query.cache_key(), (query, advisory))
        elif advisory.ok and query.is_kernel_query:
            kernel_pairs.setdefault(query.cache_key(), (query, advisory))
    by_target: Dict[Tuple[str, str], List[Tuple[ShapeQuery, Advisory]]] = {}
    for query, advisory in distinct.values():
        by_target.setdefault((query.gpu, query.dtype), []).append(
            (query, advisory)
        )

    engine = ShapeEngine()
    checked = 0
    mismatches = 0
    for (gpu, dtype), items in by_target.items():
        shapes = np.asarray(
            [q.shape_tuple() for q, _ in items], dtype=np.int64
        )
        # One batched evaluation per (gpu, dtype) target group — the
        # loop is over targets, not shapes.
        result = engine.evaluate(shapes, gpu, dtype)  # lint: allow(engine-eval-in-loop)
        for row, (query, advisory) in enumerate(items):
            checked += 1
            expect_latency = float(result.latency_s[row])
            expect_tflops = float(result.tflops[row])
            payload = advisory.payload
            bad = False
            if "latency_s" in payload:
                bad |= payload["latency_s"] != expect_latency
            if "tflops" in payload:
                bad |= payload["tflops"] != expect_tflops
            if query.kind == "evaluate":
                bad |= payload.get("tile") != result.tile(row).name
                bad |= payload.get("bound") != str(result.bound[row])
            if bad:
                mismatches += 1

    if kernel_pairs:
        from repro.kernels.registry import KernelParamResolver

        resolver = KernelParamResolver.from_env(engine=engine)
        for query, advisory in kernel_pairs.values():
            checked += 1
            expect = resolver.resolve(
                query.batch, query.m, query.n, query.k,
                query.gpu, query.dtype,
            )
            if advisory.payload != expect:
                mismatches += 1
    return checked, mismatches


def _transport_stats(server: Transport) -> Dict[str, Any]:
    """Best-effort serving counters for any transport flavour.

    The in-process server exposes ``stats()`` (a ServerStats), the
    supervisor ``worker_stats()``/``cluster_stats()``, and the socket
    transport ``server_stats()`` (the front-end's aggregate); plain
    transports expose nothing and that is fine — the report's server
    section is observability, not correctness.
    """
    stats_fn = getattr(server, "stats", None)
    if callable(stats_fn):
        return dict(stats_fn().to_dict())
    remote_fn = getattr(server, "server_stats", None)
    if callable(remote_fn):
        try:
            remote = remote_fn()
        except (ReproError, OSError):
            return {}
        merged = dict(remote.get("workers", {}))
        merged["cluster"] = remote.get("cluster", {})
        return merged
    worker_fn = getattr(server, "worker_stats", None)
    if callable(worker_fn):
        merged = dict(worker_fn())
        merged["cluster"] = server.cluster_stats()  # type: ignore[attr-defined]
        return merged
    return {}


def run_load(
    server: Transport,
    queries: Sequence[ShapeQuery],
    clients: int = 8,
    seed: int = 0,
    verify: bool = True,
    timeout_s: Optional[float] = 60.0,
) -> LoadReport:
    """Drive ``queries`` through any transport from ``clients`` threads.

    The transport must be ready to answer (server started / cluster
    listening).  Returns the :class:`LoadReport`; never raises for
    per-request failures — a raising transport call is folded into a
    typed error advisory and counted like one that crossed the wire.
    """
    if clients < 1:
        raise ConfigError(f"clients must be >= 1, got {clients}")
    outcomes: List[Tuple[ShapeQuery, Advisory, float]] = []

    def drive(query: ShapeQuery) -> Tuple[ShapeQuery, Advisory, float]:
        t0 = time.perf_counter()
        try:
            advisory = server.request(query, timeout_s=timeout_s)
        except ReproError as exc:
            advisory = error_to_advisory(query, exc)
        return query, advisory, time.perf_counter() - t0

    t_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients, thread_name_prefix="loadgen") as pool:
        outcomes = list(pool.map(drive, queries))
    wall_s = time.perf_counter() - t_start

    config_obj = getattr(server, "config", None)
    report = LoadReport(
        requests=len(queries), seed=seed, clients=clients,
        wall_s=wall_s,
        throughput_rps=len(queries) / wall_s if wall_s > 0 else 0.0,
        config=config_obj.to_dict() if config_obj is not None else {},
    )
    for query, advisory, elapsed in outcomes:
        if advisory.error_type == "QueueFullError":
            report.rejected_queue_full += 1
            continue
        report.latencies.append(elapsed)
        if advisory.ok:
            report.ok += 1
            report.ok_pairs.append((query, advisory))
            if advisory.source == "cache":
                report.cache_hits += 1
            if advisory.source == "degraded":
                report.degraded += 1
        elif advisory.error_type == "DeadlineExceededError":
            report.rejected_deadline += 1
        elif advisory.error_type == "LoadShedError":
            report.shed += 1
        else:
            report.failed += 1
    report.latencies.sort()
    report.p50_s = _percentile(report.latencies, 0.50)
    report.p95_s = _percentile(report.latencies, 0.95)
    report.p99_s = _percentile(report.latencies, 0.99)
    report.max_s = report.latencies[-1] if report.latencies else 0.0
    report.reconnects = int(getattr(server, "reconnects", 0))

    report.server = _transport_stats(server)
    report.engine_calls = int(report.server.get("engine_calls", 0))
    coalesce = report.server.get("coalesce_ratio")
    if coalesce is None and report.engine_calls:
        coalesce = (
            report.server.get("shape_dispatched", 0) / report.engine_calls
        )
    report.coalesce_ratio = float(coalesce or 0.0)

    if verify:
        report.verified_rows, report.verify_mismatches = (
            verify_against_engine(report.ok_pairs)
        )
    return report


def _parse_address(address: str) -> Tuple[str, int]:
    """Split ``host:port`` (raising :class:`ConfigError` on junk)."""
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"address must be host:port, got {address!r}"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ConfigError(f"bad port in address {address!r}") from exc
    return host, port


def _pairs_to_wire(
    pairs: Sequence[Tuple[ShapeQuery, Advisory]],
) -> List[List[Dict[str, Any]]]:
    return [[q.to_dict(), a.to_dict()] for q, a in pairs]


def _pairs_from_wire(
    raw: Sequence[Sequence[Dict[str, Any]]],
) -> List[Tuple[ShapeQuery, Advisory]]:
    return [
        (ShapeQuery.from_dict(q), Advisory.from_dict(a)) for q, a in raw
    ]


def run_load_processes(
    address: str,
    requests: int,
    procs: int = 2,
    clients: int = 4,
    seed: int = 0,
    unique: int = 48,
    gpus: Sequence[str] = ("A100",),
    verify: bool = True,
    timeout_s: Optional[float] = 60.0,
    proc_timeout_s: float = 600.0,
    kernel_share: float = _KERNEL_SHARE,
) -> LoadReport:
    """The multi-process wall: OS-process clients against one cluster.

    Spawns ``procs`` independent ``python -m repro.serve.loadgen``
    client processes, each connecting its own sockets to ``address``
    and driving a *disjoint slice* of the same seeded stream (process
    ``i`` takes ``queries[i::procs]``, so the union is exactly the
    single-process stream).  Child answers are merged and verified
    centrally against one fresh engine — bit-identical across process
    boundaries, crashes, and failover, or the report fails.
    """
    if procs < 1:
        raise ConfigError(f"procs must be >= 1, got {procs}")
    _parse_address(address)  # fail fast before spawning anything
    from repro.serve.supervisor import _worker_env

    common = [
        sys.executable, "-m", "repro.serve.loadgen",
        "--connect", address,
        "--requests", str(requests),
        "--seed", str(seed),
        "--unique", str(unique),
        "--clients", str(clients),
        "--gpus", ",".join(gpus),
        "--procs", str(procs),
        "--kernel-share", str(kernel_share),
    ]
    if timeout_s is not None:
        common += ["--timeout-s", str(timeout_s)]
    env = _worker_env()
    children = [
        subprocess.Popen(  # noqa: S603 - fixed argv, no shell
            common + ["--proc-index", str(index)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        for index in range(procs)
    ]
    outputs: List[Dict[str, Any]] = []
    for index, child in enumerate(children):
        try:
            stdout, stderr = child.communicate(timeout=proc_timeout_s)
        except subprocess.TimeoutExpired:
            for straggler in children:
                if straggler.poll() is None:
                    straggler.kill()
            raise ClusterError(
                f"loadgen client {index} did not finish within "
                f"{proc_timeout_s:g}s"
            ) from None
        if child.returncode != 0:
            raise ClusterError(
                f"loadgen client {index} exited {child.returncode}: "
                f"{stderr.strip()[-500:]}"
            )
        try:
            outputs.append(json.loads(stdout))
        except ValueError as exc:
            raise ClusterError(
                f"loadgen client {index} wrote malformed output: {exc}"
            ) from exc

    merged = LoadReport(seed=seed, clients=procs * clients)
    for output in outputs:
        child_report = output.get("report", {})
        for key in (
            "requests", "ok", "failed", "rejected_queue_full",
            "rejected_deadline", "shed", "degraded", "reconnects",
            "cache_hits",
        ):
            setattr(
                merged, key,
                getattr(merged, key) + int(child_report.get(key, 0)),
            )
        merged.wall_s = max(merged.wall_s, float(child_report.get("wall_s", 0.0)))
        merged.latencies.extend(
            float(v) for v in output.get("latencies", [])
        )
        merged.ok_pairs.extend(_pairs_from_wire(output.get("pairs", [])))
    merged.throughput_rps = (
        merged.requests / merged.wall_s if merged.wall_s > 0 else 0.0
    )
    merged.latencies.sort()
    merged.p50_s = _percentile(merged.latencies, 0.50)
    merged.p95_s = _percentile(merged.latencies, 0.95)
    merged.p99_s = _percentile(merged.latencies, 0.99)
    merged.max_s = merged.latencies[-1] if merged.latencies else 0.0

    from repro.serve.netclient import SocketTransport

    host, port = _parse_address(address)
    try:
        with SocketTransport(host=host, port=port) as probe:
            merged.server = _transport_stats(probe)
    except (ReproError, OSError):
        merged.server = {}  # cluster already gone; counts still stand
    merged.engine_calls = int(merged.server.get("engine_calls", 0))
    if merged.engine_calls:
        merged.coalesce_ratio = (
            merged.server.get("shape_dispatched", 0) / merged.engine_calls
        )

    if verify:
        merged.verified_rows, merged.verify_mismatches = (
            verify_against_engine(merged.ok_pairs)
        )
    return merged


def main(argv: Optional[Sequence[str]] = None) -> int:
    """One client process of the multi-process wall (JSON to stdout)."""
    parser = argparse.ArgumentParser(
        prog="repro.serve.loadgen",
        description="cluster loadgen client (spawned by run_load_processes)",
    )
    parser.add_argument("--connect", required=True, help="host:port")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--unique", type=int, default=48)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--gpus", default="A100")
    parser.add_argument("--kernel-share", type=float, default=_KERNEL_SHARE)
    parser.add_argument("--timeout-s", type=float, default=None)
    parser.add_argument("--procs", type=int, default=1)
    parser.add_argument("--proc-index", type=int, default=0)
    args = parser.parse_args(argv)
    if not 0 <= args.proc_index < args.procs:
        raise ConfigError(
            f"proc-index {args.proc_index} outside [0, {args.procs})"
        )
    host, port = _parse_address(args.connect)
    stream = generate_queries(
        args.requests, seed=args.seed, unique=args.unique,
        gpus=tuple(g for g in args.gpus.split(",") if g),
        kernel_share=args.kernel_share,
    )
    mine = stream[args.proc_index::args.procs]

    from repro.serve.netclient import SocketTransport

    with SocketTransport(host=host, port=port) as transport:
        report = run_load(
            transport, mine, clients=args.clients, seed=args.seed,
            verify=False, timeout_s=args.timeout_s,
        )
    json.dump(
        {
            "report": report.to_dict(),
            "latencies": report.latencies,
            "pairs": _pairs_to_wire(report.ok_pairs),
        },
        sys.stdout,
    )
    sys.stdout.write("\n")
    return 0


def render_load(report: LoadReport) -> str:
    """Human summary of one load run."""
    lines = [
        f"load: {report.requests} requests from {report.clients} client(s), "
        f"seed {report.seed}",
        f"outcome: {report.ok} ok, {report.failed} failed, "
        f"{report.rejected_queue_full} queue-full, "
        f"{report.rejected_deadline} deadline-expired, "
        f"{report.shed} shed "
        f"({report.cache_hits} cache hits, {report.degraded} degraded, "
        f"{report.reconnects} reconnects)",
        f"wall: {report.wall_s * 1e3:.0f} ms   "
        f"throughput: {report.throughput_rps:.0f} req/s",
        f"latency: p50 {report.p50_s * 1e3:.2f} ms   "
        f"p95 {report.p95_s * 1e3:.2f} ms   "
        f"p99 {report.p99_s * 1e3:.2f} ms   "
        f"max {report.max_s * 1e3:.2f} ms",
        f"coalescing: {report.engine_calls} engine call(s) for "
        f"{report.server.get('shape_dispatched', 0)} dispatched shape "
        f"request(s) -> ratio {report.coalesce_ratio:.2f} "
        f"({report.server.get('coalesced_duplicates', 0)} duplicates folded)",
    ]
    if report.verified_rows >= 0:
        lines.append(
            f"verify: {report.verified_rows} distinct answer(s) vs fresh "
            f"engine, {report.verify_mismatches} mismatch(es)"
        )
    lines.append("load: " + ("PASS" if report.passed else "FAIL"))
    return "\n".join(lines)


def write_load(report: LoadReport, path: str) -> None:
    """Write the benchmark record (``BENCH_serve.json``)."""
    record = {"benchmark": "repro loadgen", **report.to_dict()}
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
