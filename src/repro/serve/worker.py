"""Worker process entrypoint: one engine shard behind a JSONL pipe.

``python -m repro.serve.worker --index N --config '{...}'`` is what the
cluster supervisor spawns, one OS process per shard.  Each worker owns
a private :class:`~repro.serve.server.AdvisoryServer` (collapsed to a
single in-process dispatch shard via
:meth:`~repro.serve.config.ServeConfig.worker_config`) and speaks the
:mod:`repro.serve.wire` protocol over stdin/stdout:

- ``ready`` handshake (with pid) once the embedded server is up,
- ``query`` -> ``advisory`` with the same ``id`` (answers may be out of
  submission order — the server batches concurrent queries),
- ``ping`` -> ``pong`` (the supervisor's heartbeat; carries the
  in-flight count),
- ``stats`` -> ``stats`` (serving counters snapshot),
- ``shutdown`` / stdin EOF -> drain in-flight requests, answer them,
  emit ``bye``, exit.

Workers inherit the parent environment, so the PR-6 mmap warm cache
(``REPRO_ENGINE_CACHE_DIR``) is shared across the whole cluster: the
first worker to evaluate a shape warms every later one.  The tuned
kernel tables (``REPRO_KERNEL_TABLES``, :mod:`repro.kernels`) ride the
same mechanism: every worker loads the same artifacts, so a
``kernel_params`` answer does not depend on which worker served it.

Fault sites: ``cluster.worker`` fires before each query is admitted
(a ``kill`` spec here is a crash mid-request) and ``cluster.heartbeat``
before each pong (a ``delay`` spec is a stalled heartbeat).  Plans
arrive via ``--fault-plan`` so chaos scenarios reach into the child
process, which does not inherit the parent's in-memory plan.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
import threading
from typing import IO, Any, Dict, Iterable, Optional, Sequence

from repro.errors import ConfigError, ReproError
from repro.resilience import faults
from repro.serve import wire
from repro.serve.config import ServeConfig
from repro.serve.dispatch import error_to_advisory
from repro.serve.protocol import Advisory, ShapeQuery
from repro.serve.server import AdvisoryServer

__all__ = ["WorkerLoop", "main"]


class WorkerLoop:
    """The worker's read-dispatch-respond loop, pipe-agnostic.

    Takes any line iterable and any writable text stream so tests can
    drive it fully in-process; ``__main__`` wires it to stdin/stdout.
    A single lock serializes output lines (advisories resolve on the
    embedded server's dispatch threads, concurrently with pongs from
    the main thread) and guards the in-flight counter.
    """

    def __init__(
        self,
        index: int,
        config: Optional[ServeConfig] = None,
        out: Optional[IO[str]] = None,
    ) -> None:
        self.index = index
        self.config = config or ServeConfig()
        self._server = AdvisoryServer(config=self.config.worker_config())
        self._out: IO[str] = out if out is not None else sys.stdout
        self._lock = threading.Lock()
        self._inflight = 0
        self._broken = False

    # -- output -------------------------------------------------------------

    def _emit(self, op: str, **fields: Any) -> None:
        line = wire.encode_message(op, **fields)
        with self._lock:
            if self._broken:
                return
            try:
                self._out.write(line)
                self._out.flush()
            except (OSError, ValueError):
                # Parent is gone (torn pipe / closed stream): stop
                # writing; the read loop will see EOF and exit.
                self._broken = True

    # -- per-op handlers ----------------------------------------------------

    def _handle_query(self, message: Dict[str, Any]) -> None:
        request_id = message.get("id")
        raw: Optional[Dict[str, Any]] = None
        query: Optional[ShapeQuery] = None
        try:
            raw = wire.request_payload(message)
            query = ShapeQuery.from_dict(raw)
            faults.fault_site(
                "cluster.worker", kind=query.kind, gpu=query.gpu,
                worker=self.index,
            )
            future = self._server.submit(query)
        except ReproError as exc:
            advisory = error_to_advisory(
                query, exc, raw_query=raw, shard=self.index
            )
            self._emit("advisory", id=request_id, advisory=advisory.to_dict())
            return
        with self._lock:
            self._inflight += 1
        future.add_done_callback(
            functools.partial(self._finish, request_id, query)
        )

    def _finish(
        self, request_id: Any, query: ShapeQuery, fut: "Any"
    ) -> None:
        """Done-callback: emit the advisory, settle the in-flight count."""
        try:
            advisory: Advisory = fut.result()
        except ReproError as exc:  # defensive: futures resolve, not raise
            advisory = error_to_advisory(query, exc, shard=self.index)
        # The embedded server is single-shard; report the cluster
        # worker index so observability shows who answered.
        advisory.shard = self.index
        self._emit("advisory", id=request_id, advisory=advisory.to_dict())
        with self._lock:
            self._inflight -= 1

    def _handle_ping(self, message: Dict[str, Any]) -> None:
        faults.fault_site("cluster.heartbeat", worker=self.index)
        with self._lock:
            inflight = self._inflight
        self._emit(
            "pong", id=message.get("id"), pid=os.getpid(),
            worker=self.index, inflight=inflight,
        )

    def _handle_stats(self, message: Dict[str, Any]) -> None:
        self._emit(
            "stats", id=message.get("id"),
            stats=self._server.stats().to_dict(),
        )

    # -- main loop ----------------------------------------------------------

    def run(self, lines: Iterable[str]) -> int:
        """Serve until ``shutdown`` or EOF; returns the exit status."""
        self._server.start()
        self._emit("ready", pid=os.getpid(), worker=self.index)
        try:
            for line in lines:
                if not line.strip():
                    continue
                try:
                    message = wire.decode_line(line)
                except ConfigError as exc:
                    advisory = error_to_advisory(None, exc, shard=self.index)
                    self._emit(
                        "advisory", id=None, advisory=advisory.to_dict()
                    )
                    continue
                op = message["op"]
                if op == "query":
                    self._handle_query(message)
                elif op == "ping":
                    self._handle_ping(message)
                elif op == "stats":
                    self._handle_stats(message)
                elif op == "shutdown":
                    break
                # Other ops (advisory/pong/...) are responses the
                # supervisor sends us by mistake; ignore them.
        finally:
            # Drain: close() joins the dispatch threads, so every
            # in-flight advisory is emitted before the goodbye.
            self._server.close()
            self._emit("bye", pid=os.getpid(), worker=self.index)
        return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.worker",
        description="cluster worker process (spawned by the supervisor)",
    )
    parser.add_argument("--index", type=int, default=0,
                        help="worker shard index")
    parser.add_argument("--config", default=None,
                        help="ServeConfig as a JSON object string")
    parser.add_argument("--fault-plan", default=None,
                        help="fault plan JSON file (chaos testing)")
    args = parser.parse_args(argv)
    config = (
        ServeConfig.from_json(args.config) if args.config else ServeConfig()
    )
    if args.fault_plan:
        faults.install_plan(faults.FaultPlan.load(args.fault_plan))
    loop = WorkerLoop(index=args.index, config=config)
    return loop.run(sys.stdin)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
