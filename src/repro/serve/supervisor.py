"""Worker-process supervision: spawn, heartbeat, restart, shed, degrade.

The supervision tree has three layers.  :class:`WorkerHandle` owns one
OS process — spawn with ready-handshake, a reader thread demultiplexing
id-correlated responses, heartbeat bookkeeping, and a kill switch.
:class:`Supervisor` owns N handles plus the cluster-wide policies the
issue's robustness story is about:

- **health checks** — a monitor thread pings every worker each
  ``heartbeat_s``; a worker whose pong is slower than
  ``heartbeat_timeout_s`` for ``heartbeat_misses`` consecutive beats is
  declared hung and killed (then restarted like any crash).
- **crash recovery** — worker death (crash, SIGKILL, torn pipe) fails
  its in-flight requests with :class:`~repro.errors.WorkerDiedError`;
  the dispatcher retries them on a live sibling (queries are
  idempotent), while a restart thread respawns the dead worker after
  :class:`~repro.resilience.execute.RetryPolicy` exponential backoff.
  A worker that dies ``restart_budget`` times within
  ``restart_window_s`` is a crash loop and stays down.
- **load shedding** — when cluster-wide in-flight depth exceeds
  ``shed_depth`` for ``shed_after`` consecutive admissions (sustained
  backpressure, not a blip), queries with ``priority <=
  shed_priority`` are rejected with
  :class:`~repro.errors.LoadShedError` before touching a worker.
- **degraded mode** — with every worker down and ``degrade_local``
  on, the supervisor answers from a lazily-built in-process
  :class:`~repro.serve.server.AdvisoryServer` and stamps the advisory
  ``source="degraded"`` (payloads stay bit-identical — same engine).

The third layer, the asyncio socket front-end, lives in
:mod:`repro.serve.cluster` and treats the supervisor as a plain
blocking :class:`~repro.serve.dispatch.Transport`.
"""

from __future__ import annotations

import collections
import os
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Deque, Dict, List, Optional

from repro.errors import (
    ClusterError,
    ConfigError,
    DeadlineExceededError,
    LoadShedError,
    ReproError,
    ServerClosedError,
    WorkerDiedError,
)
from repro.observability import event as _event
from repro.observability import metrics as _metrics
from repro.observability import span as _span
from repro.resilience.execute import RetryPolicy
from repro.serve import wire
from repro.serve.config import ServeConfig
from repro.serve.protocol import Advisory, ShapeQuery
from repro.serve.server import AdvisoryServer, shard_for

__all__ = ["Supervisor", "WorkerHandle"]

#: How long a spawned worker may take to emit its ready handshake
#: (covers interpreter start + imports on a cold, loaded machine).
_SPAWN_TIMEOUT_S = 60.0


def _worker_env() -> Dict[str, str]:
    """Child environment: inherit everything, guarantee importability.

    The parent may run from a source checkout (``PYTHONPATH=src``); the
    child must find the same ``repro`` package regardless of how the
    parent was launched, so the package root is prepended explicitly.
    Inheriting the rest keeps ``REPRO_ENGINE_CACHE_DIR`` — the PR-6
    mmap warm cache — shared by every worker in the cluster.
    """
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if pkg_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            pkg_root + os.pathsep + existing if existing else pkg_root
        )
    return env


class WorkerHandle:
    """One worker process: pipe protocol, heartbeats, pending futures.

    All mutable state is guarded by one lock; response routing runs on
    a dedicated reader thread so requests from many threads multiplex
    onto the single stdin pipe with id correlation.
    """

    def __init__(
        self,
        index: int,
        config: ServeConfig,
        fault_plan_path: Optional[str] = None,
    ) -> None:
        self.index = index
        self.config = config
        self.fault_plan_path = fault_plan_path
        self._lock = threading.Lock()
        self._proc: Optional["subprocess.Popen[str]"] = None
        self._alive = False
        self._pid: Optional[int] = None
        self._next_id = 0
        self._pending: Dict[int, "Future[Any]"] = {}
        self._await_pong_id: Optional[int] = None
        self._ping_sent_s = 0.0
        self._miss_count = 0
        self._on_death: Optional[Any] = None
        self._ready = threading.Event()
        self._saw_bye = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    def spawn(self, on_death: Optional[Any] = None) -> "WorkerHandle":
        """Start the process and block for its ready handshake."""
        cmd = [
            sys.executable, "-m", "repro.serve.worker",
            "--index", str(self.index),
            "--config", self.config.to_json(),
        ]
        if self.fault_plan_path:
            cmd += ["--fault-plan", self.fault_plan_path]
        proc = subprocess.Popen(  # noqa: S603 - fixed argv, no shell
            cmd,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # inherit: worker tracebacks stay visible
            text=True,
            bufsize=1,
            env=_worker_env(),
        )
        with self._lock:
            self._proc = proc
            self._alive = True
            self._on_death = on_death
        reader = threading.Thread(
            target=self._reader_loop, name=f"repro-cluster-read-{self.index}",
            daemon=True,
        )
        reader.start()
        if not self._ready.wait(_SPAWN_TIMEOUT_S):
            self.kill()
            raise ClusterError(
                f"worker {self.index} did not complete the ready "
                f"handshake within {_SPAWN_TIMEOUT_S:g}s"
            )
        return self

    @property
    def alive(self) -> bool:
        with self._lock:
            return self._alive

    @property
    def pid(self) -> Optional[int]:
        with self._lock:
            return self._pid

    def kill(self) -> None:
        """SIGKILL the process (hung-worker remediation and tests)."""
        with self._lock:
            proc = self._proc
        if proc is not None and proc.poll() is None:
            proc.kill()
        self._mark_dead("killed")

    def shutdown(self, drain_s: float) -> None:
        """Graceful stop: send ``shutdown``, wait for drain, then kill."""
        try:
            self._send(wire.encode_message("shutdown"))
        except WorkerDiedError:
            return
        with self._lock:
            proc = self._proc
        if proc is not None:
            try:
                proc.wait(timeout=drain_s)
            except subprocess.TimeoutExpired:
                proc.kill()
        self._mark_dead("shutdown")

    # -- request path -------------------------------------------------------

    def submit(self, query: ShapeQuery) -> "Future[Advisory]":
        """Send one query down the pipe; the future resolves off-thread."""
        future: "Future[Advisory]" = Future()
        with self._lock:
            if not self._alive:
                raise WorkerDiedError(f"worker {self.index} is down")
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = future
        self._send(wire.query_message(query.to_dict(), request_id))
        return future

    def request(
        self, query: ShapeQuery, timeout_s: Optional[float] = None
    ) -> Advisory:
        """Blocking round-trip for one query."""
        future = self.submit(query)
        try:
            return future.result(timeout=timeout_s)
        except FutureTimeoutError:
            raise DeadlineExceededError(
                f"worker {self.index} gave no advisory within {timeout_s}s"
            ) from None

    def stats(self, timeout_s: float = 5.0) -> Dict[str, Any]:
        """The worker's embedded-server counters snapshot."""
        future: "Future[Dict[str, Any]]" = Future()
        with self._lock:
            if not self._alive:
                raise WorkerDiedError(f"worker {self.index} is down")
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = future
        self._send(wire.encode_message("stats", id=request_id))
        try:
            return future.result(timeout=timeout_s)
        except FutureTimeoutError:
            raise WorkerDiedError(
                f"worker {self.index} did not answer stats"
            ) from None

    # -- heartbeat ----------------------------------------------------------

    def ping(self, timeout_s: float) -> int:
        """Heartbeat step; returns the consecutive-miss count.

        A *miss* is the outstanding ping still unanswered after
        ``timeout_s``.  While one ping is outstanding no new one is
        sent and its timestamp is only re-stamped when a miss is
        counted — re-stamping every beat would reset the aging clock
        each ``heartbeat_s`` and a hang could never exceed a timeout
        longer than the beat interval.  Misses reset as soon as any
        pong lands.
        """
        now = time.monotonic()
        ping_id: Optional[int] = None
        with self._lock:
            if not self._alive:
                return self._miss_count
            if self._await_pong_id is not None:
                if now - self._ping_sent_s > timeout_s:
                    self._miss_count += 1
                    self._ping_sent_s = now  # age toward the next miss
            else:
                ping_id = self._next_id
                self._next_id += 1
                self._await_pong_id = ping_id
                self._ping_sent_s = now
            misses = self._miss_count
        if ping_id is not None:
            try:
                self._send(wire.encode_message("ping", id=ping_id))
            except WorkerDiedError:
                pass
        return misses

    # -- internals ----------------------------------------------------------

    def _send(self, line: str) -> None:
        with self._lock:
            proc = self._proc if self._alive else None
        if proc is None or proc.stdin is None:
            raise WorkerDiedError(f"worker {self.index} is down")
        try:
            with self._lock:
                proc.stdin.write(line)
                proc.stdin.flush()
        except (OSError, ValueError) as exc:
            self._mark_dead(f"torn pipe: {exc}")
            raise WorkerDiedError(
                f"worker {self.index} pipe is torn: {exc}"
            ) from exc

    def _reader_loop(self) -> None:
        with self._lock:
            proc = self._proc
        if proc is None or proc.stdout is None:  # pragma: no cover
            return
        for line in proc.stdout:
            if not line.strip():
                continue
            try:
                message = wire.decode_line(line)
            except ConfigError:
                continue  # stray non-protocol output; never fatal
            self._route(message)
        self._mark_dead("stdout EOF")

    def _route(self, message: Dict[str, Any]) -> None:
        op = message["op"]
        if op == "ready":
            with self._lock:
                self._pid = message.get("pid")
            self._ready.set()
            return
        if op == "bye":
            self._saw_bye.set()
            return
        if op == "pong":
            with self._lock:
                if message.get("id") == self._await_pong_id:
                    self._await_pong_id = None
                    self._miss_count = 0
            return
        if op in ("advisory", "stats"):
            with self._lock:
                future = self._pending.pop(message.get("id"), None)  # type: ignore[arg-type]
            if future is None:
                return
            try:
                if op == "advisory":
                    future.set_result(
                        Advisory.from_dict(message.get("advisory") or {})
                    )
                else:
                    future.set_result(dict(message.get("stats") or {}))
            except ConfigError as exc:
                future.set_exception(
                    ClusterError(f"worker {self.index} sent a bad {op}: {exc}")
                )

    def _mark_dead(self, reason: str) -> None:
        with self._lock:
            if not self._alive:
                return
            self._alive = False
            pending = list(self._pending.values())
            self._pending.clear()
            on_death = self._on_death
        self._ready.set()  # unblock a spawn() waiting on a stillborn child
        for future in pending:
            if not future.done():
                future.set_exception(
                    WorkerDiedError(
                        f"worker {self.index} died mid-request ({reason})"
                    )
                )
        if pending:
            _metrics().counter("cluster.orphaned_requests").inc(len(pending))
        _event("cluster.worker_down", worker=self.index, reason=reason)
        _metrics().counter("cluster.worker_deaths").inc()
        if on_death is not None:
            on_death(self.index)


class Supervisor:
    """N supervised worker processes behind one blocking Transport.

    Satisfies :class:`~repro.serve.dispatch.Transport` — ``request()``
    routes to the query's GPU shard, falls over to live siblings on
    worker death, sheds under sustained backpressure, and degrades to
    an in-process engine when the whole fleet is down.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        fault_plan_path: Optional[str] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.fault_plan_path = fault_plan_path
        n = self.config.workers
        self._lock = threading.Lock()
        self._handles: List[Optional[WorkerHandle]] = [None] * n
        self._down: List[bool] = [False] * n
        self._restarting: List[bool] = [False] * n
        self._restart_log: List[Deque[float]] = [
            collections.deque() for _ in range(n)
        ]
        self._policy = RetryPolicy(
            retries=self.config.restart_budget,
            backoff_s=self.config.restart_backoff_s or 0.001,
        )
        self._closed = False
        self._started = False
        self._inflight = 0
        self._over_streak = 0
        self._restart_total = 0
        self._shed_total = 0
        self._degraded_total = 0
        self._local: Optional[AdvisoryServer] = None
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Supervisor":
        """Spawn the fleet and the heartbeat monitor (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServerClosedError("cannot start a closed supervisor")
            if self._started:
                return self
            self._started = True
        with _span("cluster.spawn", workers=self.config.workers):
            for index in range(self.config.workers):
                handle = WorkerHandle(
                    index, self.config, self.fault_plan_path
                )
                handle.spawn(on_death=self._note_death)
                with self._lock:
                    self._handles[index] = handle
        monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor",
            daemon=True,
        )
        with self._lock:
            self._monitor = monitor
        monitor.start()
        _event("cluster.started", workers=self.config.workers)
        return self

    def close(self) -> None:
        """Drain every worker, stop the monitor, shut the fallback."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
            local = self._local
            monitor = self._monitor
        self._stop.set()
        if monitor is not None:
            monitor.join(timeout=5.0)
        with _span("cluster.drain", workers=len(handles)):
            for handle in handles:
                if handle is not None and handle.alive:
                    handle.shutdown(self.config.drain_s)
        if local is not None:
            local.close()
        _event("cluster.stopped")

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # -- config hot-reload --------------------------------------------------

    def reload(self, new_config: ServeConfig) -> None:
        """Adopt a new config for policies and future restarts.

        The worker *count* is fixed for the supervisor's lifetime (the
        shard function depends on it); every other knob takes effect
        immediately for shedding/heartbeat/restart policy and at the
        next restart for in-worker batching.
        """
        import dataclasses

        pinned = dataclasses.replace(new_config, workers=self.config.workers)
        with self._lock:
            self.config = pinned
        _event("cluster.reloaded", config=pinned.describe())
        _metrics().counter("cluster.reloads").inc()

    def reload_from_json(self, text: str) -> bool:
        """SIGHUP path: parse-and-adopt; an invalid config changes nothing."""
        try:
            new_config = ServeConfig.from_json(text)
        except ConfigError as exc:
            _event("cluster.reload_rejected", error=str(exc))
            _metrics().counter("cluster.reload_rejected").inc()
            return False
        self.reload(new_config)
        return True

    # -- death / restart ----------------------------------------------------

    def _note_death(self, index: int) -> None:
        """Reader/monitor callback: schedule one restart attempt."""
        with self._lock:
            if self._closed or self._down[index] or self._restarting[index]:
                return
            self._restarting[index] = True
        thread = threading.Thread(
            target=self._restart_worker, args=(index,),
            name=f"repro-cluster-restart-{index}", daemon=True,
        )
        thread.start()

    def _restart_worker(self, index: int) -> None:
        now = time.monotonic()
        with self._lock:
            window = self._restart_log[index]
            while window and now - window[0] > self.config.restart_window_s:
                window.popleft()
            attempt = len(window)
            exhausted = attempt >= self.config.restart_budget
            if exhausted:
                self._down[index] = True
                self._restarting[index] = False
                live = sum(
                    1 for h in self._handles if h is not None and h.alive
                )
                degraded = self.config.degrade_local and live == 0
                window_s = self.config.restart_window_s
            else:
                window.append(now)
        if exhausted:
            _event(
                "cluster.crash_loop", worker=index,
                restarts=attempt, window_s=window_s,
            )
            _metrics().counter("cluster.crash_loops").inc()
            if degraded:
                _event("cluster.degraded", reason="all workers down")
            return
        delay = self._policy.delay_s(f"cluster-worker-{index}", attempt)
        time.sleep(delay)
        with self._lock:
            if self._closed:
                self._restarting[index] = False
                return
            config = self.config
        handle = WorkerHandle(index, config, self.fault_plan_path)
        try:
            handle.spawn(on_death=self._note_death)
        except ClusterError:
            with self._lock:
                self._restarting[index] = False
            self._note_death(index)  # retry; the budget bounds the loop
            return
        with self._lock:
            self._handles[index] = handle
            self._restarting[index] = False
            self._restart_total += 1
        _event("cluster.worker_restarted", worker=index, attempt=attempt)
        _metrics().counter("cluster.restarts").inc()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.config.heartbeat_s):
            with self._lock:
                handles = list(self._handles)
                timeout_s = self.config.heartbeat_timeout_s
                max_misses = self.config.heartbeat_misses
            for index, handle in enumerate(handles):
                if handle is None:
                    continue
                if not handle.alive:
                    self._note_death(index)
                    continue
                misses = handle.ping(timeout_s)
                if misses >= max_misses:
                    _event(
                        "cluster.worker_hung", worker=index, misses=misses,
                    )
                    _metrics().counter("cluster.hung_workers").inc()
                    handle.kill()  # _mark_dead fires _note_death

    # -- dispatch -----------------------------------------------------------

    def request(
        self, query: ShapeQuery, timeout_s: Optional[float] = None
    ) -> Advisory:
        """Answer one query: shed, route, fail over, or degrade."""
        self._admit(query)
        try:
            with _span("cluster.request", kind=query.kind, gpu=query.gpu):
                return self._dispatch(query, timeout_s)
        finally:
            with self._lock:
                self._inflight -= 1

    def _admit(self, query: ShapeQuery) -> None:
        with self._lock:
            if self._closed:
                raise ServerClosedError("cluster is closed")
            if self._inflight >= self.config.shed_depth:
                self._over_streak += 1
            else:
                self._over_streak = 0
            shed = (
                self._over_streak >= self.config.shed_after
                and query.priority <= self.config.shed_priority
            )
            if shed:
                self._shed_total += 1
                depth = self._inflight
            else:
                self._inflight += 1
        if shed:
            _metrics().counter("cluster.shed").inc()
            _event(
                "cluster.shed", priority=query.priority, inflight=depth,
            )
            raise LoadShedError(
                f"cluster shed priority-{query.priority} query under "
                f"sustained backpressure (in-flight {depth} >= "
                f"{self.config.shed_depth})"
            )
        _metrics().counter("cluster.requests").inc()

    def _candidates(self, query: ShapeQuery) -> List[WorkerHandle]:
        """Live workers in routing order: home shard first, then siblings."""
        try:
            from repro.gpu.specs import get_gpu

            home = shard_for(get_gpu(query.gpu).name, self.config.workers)
        except ReproError:
            home = 0  # unknown GPU: any worker returns the same failure
        with self._lock:
            handles = list(self._handles)
        order = [home] + [i for i in range(len(handles)) if i != home]
        live: List[WorkerHandle] = []
        for i in order:
            handle = handles[i]
            if handle is not None and handle.alive:
                live.append(handle)
        return live

    def _dispatch(
        self, query: ShapeQuery, timeout_s: Optional[float]
    ) -> Advisory:
        last_death: Optional[WorkerDiedError] = None
        for handle in self._candidates(query):
            try:
                return handle.request(query, timeout_s=timeout_s)
            except WorkerDiedError as exc:
                last_death = exc
                continue  # idempotent: replay on the next live sibling
        # Whole fleet is down (or died while we were failing over).
        with self._lock:
            degrade = self.config.degrade_local
        if degrade:
            local = self._local_server()
            advisory = local.request(query, timeout_s=timeout_s)
            advisory.source = "degraded"
            with self._lock:
                self._degraded_total += 1
            _metrics().counter("cluster.degraded_requests").inc()
            return advisory
        raise last_death or ClusterError("no live workers")

    def _local_server(self) -> AdvisoryServer:
        with self._lock:
            if self._local is None:
                self._local = AdvisoryServer(
                    config=self.config.worker_config()
                ).start()
            return self._local

    # -- introspection ------------------------------------------------------

    def live_workers(self) -> int:
        with self._lock:
            return sum(
                1 for h in self._handles if h is not None and h.alive
            )

    def worker_pids(self) -> List[Optional[int]]:
        with self._lock:
            handles = list(self._handles)
        return [h.pid if h is not None and h.alive else None for h in handles]

    def cluster_stats(self) -> Dict[str, Any]:
        """Cluster-level counters (the worker-internal ones aggregate
        separately via :meth:`worker_stats`)."""
        with self._lock:
            return {
                "workers": self.config.workers,
                "live": sum(
                    1 for h in self._handles if h is not None and h.alive
                ),
                "down": [i for i, d in enumerate(self._down) if d],
                "inflight": self._inflight,
                "restarts": self._restart_total,
                "shed": self._shed_total,
                "degraded": self._degraded_total,
            }

    def worker_stats(self) -> Dict[str, Any]:
        """Aggregated embedded-server counters across live workers."""
        totals: Dict[str, Any] = {}
        with self._lock:
            handles = [h for h in self._handles if h is not None]
        for handle in handles:
            if not handle.alive:
                continue
            try:
                snapshot = handle.stats()
            except (WorkerDiedError, ClusterError):
                continue
            for key, value in snapshot.items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        return totals
