"""Asyncio socket front-end for the supervised worker fleet.

:class:`ClusterServer` is the network face of the multi-process serve
tier: a stdlib-``asyncio`` TCP server speaking the same newline-JSON
protocol as the worker pipes (:mod:`repro.serve.wire`), fronting a
:class:`~repro.serve.supervisor.Supervisor` that owns the worker
processes.  The event loop never blocks on an engine: each query is
handed to a bounded thread pool that calls the supervisor's blocking
``request()`` (which routes, fails over, sheds, or degrades), and each
connection serializes its replies through a writer task fed by a
queue, so concurrent answers for one client interleave safely and may
legally arrive out of submission order (``id`` correlates them).

Lifecycle: ``serve_forever()`` runs in the calling thread (the CLI
path, with SIGTERM -> drain and SIGHUP -> config hot-reload when
``install_signals``); ``start_background()`` runs the same loop on a
daemon thread and returns once the socket is bound (the test path).
On stop the listener closes first, live connections get ``drain_s``
seconds to finish in-flight requests, and only then does the
supervisor drain its workers — so an accepted request is answered or
typed-failed, never silently dropped.

Fault site ``cluster.conn`` fires per accepted line; a ``raise`` spec
there tears the connection mid-stream, which is how the chaos wall
exercises client reconnect logic.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set

from repro.errors import ClusterError, ConfigError, ReproError
from repro.observability import event as _event
from repro.observability import metrics as _metrics
from repro.resilience import faults
from repro.serve import wire
from repro.serve.config import ServeConfig
from repro.serve.dispatch import error_to_advisory
from repro.serve.protocol import ShapeQuery
from repro.serve.supervisor import Supervisor

__all__ = ["ClusterServer"]

#: Upper bound on concurrent engine calls the front-end will hold in
#: flight; beyond this, requests queue in the pool (and the
#: supervisor's shed policy sees the sustained depth).
_FRONTEND_POOL_SIZE = 32

#: How long ``start_background`` waits for the socket to bind.
_BIND_TIMEOUT_S = 60.0


class ClusterServer:
    """TCP front-end over a supervised multi-process advisory cluster."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        config_path: Optional[str] = None,
        fault_plan_path: Optional[str] = None,
        request_timeout_s: Optional[float] = 120.0,
        supervisor: Optional[Supervisor] = None,
        on_bound: Optional[Any] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.host = host
        self.port = port
        #: Where SIGHUP rereads the config from (``None`` = reload
        #: requests are rejected).
        self.config_path = config_path
        self.request_timeout_s = request_timeout_s
        self.supervisor = supervisor or Supervisor(
            self.config, fault_plan_path
        )
        self._own_supervisor = supervisor is None
        #: Called with the bound port once listening (CLI announce).
        self._on_bound = on_bound
        self._pool = ThreadPoolExecutor(
            max_workers=_FRONTEND_POOL_SIZE,
            thread_name_prefix="repro-cluster-fe",
        )
        #: The bound port (resolves ``port=0`` ephemeral binds); set
        #: once the listener is up.
        self.bound_port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._client_tasks: "Set[asyncio.Task[None]]" = set()
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def serve_forever(self, install_signals: bool = False) -> None:
        """Run the cluster in the calling thread until stopped.

        With ``install_signals``, SIGTERM/SIGINT trigger a graceful
        drain and SIGHUP rereads ``config_path`` (an invalid file is
        rejected and the old config stays in force).
        """
        self.supervisor.start()
        try:
            asyncio.run(self._serve_async(install_signals))
        finally:
            if self._own_supervisor:
                self.supervisor.close()
            self._pool.shutdown(wait=False)
            self._ready.set()  # never leave start_background hanging

    def start_background(self) -> "ClusterServer":
        """Serve on a daemon thread; returns once the socket is bound."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-cluster-frontend",
            daemon=True,
        )
        self._thread = thread
        thread.start()
        if not self._ready.wait(_BIND_TIMEOUT_S):
            raise ClusterError(
                f"cluster front-end did not bind within {_BIND_TIMEOUT_S:g}s"
            )
        if self.bound_port is None:
            raise ClusterError("cluster front-end failed to start")
        return self

    def stop(self) -> None:
        """Request a graceful drain-and-stop (thread-safe)."""
        loop = self._loop
        stop = self._stop_async
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        thread = self._thread
        if thread is not None:
            thread.join(timeout=_BIND_TIMEOUT_S)

    def __enter__(self) -> "ClusterServer":
        return self.start_background()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.bound_port if self.bound_port else self.port}"

    # -- event loop ---------------------------------------------------------

    async def _serve_async(self, install_signals: bool) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop_async = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        if install_signals:
            loop.add_signal_handler(signal.SIGTERM, self._stop_async.set)
            loop.add_signal_handler(signal.SIGINT, self._stop_async.set)
            loop.add_signal_handler(
                signal.SIGHUP,
                lambda: loop.create_task(self._reload_async()),
            )
        _event("cluster.listening", host=self.host, port=self.bound_port)
        if self._on_bound is not None:
            self._on_bound(self.bound_port)
        self._ready.set()
        try:
            async with server:
                await self._stop_async.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self._drain_clients()
            _event("cluster.drained", connections=len(self._client_tasks))

    async def _drain_clients(self) -> None:
        """Give live connections ``drain_s`` to finish, then cut them."""
        tasks = set(self._client_tasks)
        if not tasks:
            return
        _, pending = await asyncio.wait(
            tasks, timeout=self.supervisor.config.drain_s
        )
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        _metrics().counter("cluster.connections").inc()
        out_q: "asyncio.Queue[Optional[str]]" = asyncio.Queue()
        writer_task = asyncio.ensure_future(self._writer_loop(writer, out_q))
        answer_tasks: "Set[asyncio.Task[None]]" = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    # A 'raise' fault here simulates a torn socket:
                    # the connection drops and the client reconnects.
                    faults.fault_site("cluster.conn")
                    message = wire.decode_line(line)
                except ConfigError as exc:
                    advisory = error_to_advisory(None, exc)
                    out_q.put_nowait(
                        wire.encode_message(
                            "advisory", id=None, advisory=advisory.to_dict()
                        )
                    )
                    continue
                except ReproError:
                    break  # injected torn socket
                op = message["op"]
                if op == "query":
                    answer = asyncio.ensure_future(
                        self._answer(message, out_q)
                    )
                    answer_tasks.add(answer)
                    answer.add_done_callback(answer_tasks.discard)
                elif op == "ping":
                    out_q.put_nowait(
                        wire.encode_message(
                            "pong", id=message.get("id"),
                            live=self.supervisor.live_workers(),
                        )
                    )
                elif op == "stats":
                    answer = asyncio.ensure_future(
                        self._answer_stats(message, out_q)
                    )
                    answer_tasks.add(answer)
                    answer.add_done_callback(answer_tasks.discard)
                elif op == "shutdown":
                    break
                # Response ops from a confused peer are ignored.
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-line; in-flight answers finish below
        finally:
            if answer_tasks:
                # Answer everything already accepted before goodbye.
                await asyncio.gather(*answer_tasks, return_exceptions=True)
            out_q.put_nowait(None)
            await writer_task
            if task is not None:
                self._client_tasks.discard(task)

    async def _answer(
        self, message: Dict[str, Any], out_q: "asyncio.Queue[Optional[str]]"
    ) -> None:
        loop = asyncio.get_running_loop()
        raw: Optional[Dict[str, Any]] = None
        query: Optional[ShapeQuery] = None
        try:
            raw = wire.request_payload(message)
            query = ShapeQuery.from_dict(raw)
            advisory = await loop.run_in_executor(
                self._pool, self._blocking_request, query
            )
        except ReproError as exc:
            advisory = error_to_advisory(query, exc, raw_query=raw)
        out_q.put_nowait(
            wire.encode_message(
                "advisory", id=message.get("id"), advisory=advisory.to_dict()
            )
        )

    def _blocking_request(self, query: ShapeQuery) -> Any:
        return self.supervisor.request(
            query, timeout_s=self.request_timeout_s
        )

    async def _answer_stats(
        self, message: Dict[str, Any], out_q: "asyncio.Queue[Optional[str]]"
    ) -> None:
        loop = asyncio.get_running_loop()
        stats = await loop.run_in_executor(self._pool, self._stats_payload)
        out_q.put_nowait(
            wire.encode_message("stats", id=message.get("id"), stats=stats)
        )

    def _stats_payload(self) -> Dict[str, Any]:
        return {
            "cluster": self.supervisor.cluster_stats(),
            "workers": self.supervisor.worker_stats(),
        }

    async def _writer_loop(
        self,
        writer: asyncio.StreamWriter,
        out_q: "asyncio.Queue[Optional[str]]",
    ) -> None:
        try:
            while True:
                line = await out_q.get()
                if line is None:
                    break
                writer.write(line.encode("utf-8"))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer vanished; nothing left to tell it
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _reload_async(self) -> None:
        """SIGHUP: reread ``config_path``; keep the old config on error."""
        if self.config_path is None:
            _event("cluster.reload_rejected", error="no config path")
            return
        loop = asyncio.get_running_loop()
        try:
            text = await loop.run_in_executor(None, self._read_config_file)
        except OSError as exc:
            _event("cluster.reload_rejected", error=str(exc))
            _metrics().counter("cluster.reload_rejected").inc()
            return
        if self.supervisor.reload_from_json(text):
            self.config = self.supervisor.config

    def _read_config_file(self) -> str:
        with open(self.config_path or "", encoding="utf-8") as fh:
            return fh.read()
