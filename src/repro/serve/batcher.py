"""Dynamic batching: the bounded request queue and the coalescing plan.

Two pieces, both deliberately free of engine/server dependencies so
they unit-test in isolation:

- :class:`RequestQueue` — a condition-variable-guarded bounded deque.
  ``put`` applies admission control (depth cap ->
  :class:`~repro.errors.QueueFullError`); ``take_batch`` blocks for the
  first waiting request, then lingers up to the batching window to let
  concurrent callers pile on, returning at most ``max_batch`` requests.
- :func:`plan_batch` — given one batch of pending shape requests, build
  the minimal set of engine calls: requests are bucketed per
  ``(gpu, dtype)`` (one vectorized
  :meth:`~repro.engine.core.ShapeEngine.evaluate` per bucket) and
  *deduplicated* within the bucket (identical shapes share one row).
  The returned :class:`EngineCall` records, for every pending request,
  which row of the merged shape array answers it — the scatter step.

The coalescing win is measured, not assumed: the server counts
requests dispatched vs engine calls issued, and the load tests assert
the ratio strictly exceeds 1.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import QueueFullError
from repro.serve.protocol import ShapeQuery

__all__ = ["EngineCall", "PendingRequest", "RequestQueue", "plan_batch"]


@dataclass
class PendingRequest:
    """One queued request: the query plus its completion plumbing.

    ``enqueued_at_s`` / ``deadline_at_s`` are ``time.monotonic``
    seconds; ``deadline_at_s`` is ``None`` when the server has no
    per-request deadline configured.
    """

    query: ShapeQuery
    future: Any  # concurrent.futures.Future[Advisory]
    enqueued_at_s: float = field(default_factory=time.monotonic)
    deadline_at_s: Optional[float] = None

    def expired(self, now_s: Optional[float] = None) -> bool:
        if self.deadline_at_s is None:
            return False
        return (time.monotonic() if now_s is None else now_s) >= self.deadline_at_s


class RequestQueue:
    """Bounded FIFO of :class:`PendingRequest` with batch-drain semantics.

    ``maxsize`` is the admission cap — ``put`` never blocks; a full
    queue is a typed rejection, because a configuration-time advisory
    service should shed load visibly rather than buffer unboundedly.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._items: Deque[PendingRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def put(self, item: PendingRequest) -> None:
        """Enqueue or reject; wakes one waiting dispatcher."""
        with self._cond:
            if len(self._items) >= self.maxsize:
                raise QueueFullError(
                    f"queue at depth cap ({self.maxsize}); request rejected"
                )
            self._items.append(item)
            self._cond.notify()

    def close(self) -> None:
        """Wake every waiting dispatcher; subsequent takes drain then stop."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def take_batch(
        self, max_batch: int, linger_s: float
    ) -> List[PendingRequest]:
        """Take up to ``max_batch`` requests, lingering to coalesce.

        Blocks until at least one request is available (or the queue is
        closed — then returns whatever is left, possibly ``[]``).  Once
        the first request is seen, waits up to ``linger_s`` for the
        batch to fill; returns early when ``max_batch`` is reached.
        """
        with self._cond:
            while not self._items and not self._closed:
                self._cond.wait()
            if linger_s > 0 and len(self._items) < max_batch and not self._closed:
                deadline = time.monotonic() + linger_s
                while len(self._items) < max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        break
            batch: List[PendingRequest] = []
            while self._items and len(batch) < max_batch:
                batch.append(self._items.popleft())
            return batch


@dataclass
class EngineCall:
    """One vectorized engine evaluation answering many requests.

    ``shapes`` is the merged, deduplicated ``(rows, 4)`` int64 array of
    ``(batch, m, n, k)`` rows for one ``(gpu, dtype)`` bucket;
    ``assignments`` maps each pending request to the row index that
    answers it.  ``duplicates`` counts requests folded onto an
    already-present row — the dedup half of the coalescing win (the
    merge half is ``len(assignments) - 1`` requests sharing one call).
    """

    gpu: str
    dtype: str
    shapes: np.ndarray
    assignments: List[Tuple[PendingRequest, int]]
    duplicates: int = 0

    @property
    def rows(self) -> int:
        return int(self.shapes.shape[0])


def plan_batch(
    pending: List[PendingRequest],
) -> Tuple[List[EngineCall], List[PendingRequest]]:
    """Coalesce one drained batch into minimal engine work.

    Returns ``(engine_calls, passthrough)``: one :class:`EngineCall`
    per distinct ``(gpu, dtype)`` among the shape queries (rows
    deduplicated, first-seen order), plus the non-shape requests
    (lint) the worker answers individually.
    """
    buckets: Dict[Tuple[str, str], Dict[Tuple[int, int, int, int], int]] = {}
    rows: Dict[Tuple[str, str], List[Tuple[int, int, int, int]]] = {}
    assigns: Dict[Tuple[str, str], List[Tuple[PendingRequest, int]]] = {}
    dupes: Dict[Tuple[str, str], int] = {}
    passthrough: List[PendingRequest] = []

    for item in pending:
        query = item.query
        if not query.is_shape_query:
            passthrough.append(item)
            continue
        bucket = (query.gpu, query.dtype)
        index = buckets.setdefault(bucket, {})
        row_list = rows.setdefault(bucket, [])
        shape = query.shape_tuple()
        row = index.get(shape)
        if row is None:
            row = len(row_list)
            index[shape] = row
            row_list.append(shape)
        else:
            dupes[bucket] = dupes.get(bucket, 0) + 1
        assigns.setdefault(bucket, []).append((item, row))

    calls = [
        EngineCall(
            gpu=gpu,
            dtype=dtype,
            shapes=np.asarray(rows[(gpu, dtype)], dtype=np.int64),
            assignments=assigns[(gpu, dtype)],
            duplicates=dupes.get((gpu, dtype), 0),
        )
        for (gpu, dtype) in rows
    ]
    return calls, passthrough
