"""JSONL wire framing shared by worker pipes and network sockets.

One message per line, one JSON object per message — the same framing
``repro serve --queries`` already reads from files, promoted to the
cluster's two transports: supervisor <-> worker (stdin/stdout pipes)
and client <-> front-end (TCP).  Using a single codec for both means a
message captured off either hop replays on the other.

Message shapes (``op`` defaults to ``"query"`` when absent, so a bare
``{"m": ..., "n": ...}`` query object is also a valid request line):

- request:  ``{"op": "query", "id": 7, "query": {...}}``
- response: ``{"op": "advisory", "id": 7, "advisory": {...}}``
- health:   ``{"op": "ping", "id": 3}`` / ``{"op": "pong", "id": 3, ...}``
- stats:    ``{"op": "stats", "id": 9}`` / ``{"op": "stats", "id": 9,
  "stats": {...}}``
- lifecycle: ``{"op": "ready", "pid": ...}`` (worker handshake),
  ``{"op": "shutdown"}`` (graceful drain), ``{"op": "bye"}`` (worker
  acknowledges drain complete).

``id`` correlates responses with requests: the front-end answers
queries concurrently, so responses on one connection may arrive out of
submission order.

The codec is query-kind agnostic: ``kernel_params`` queries and their
tuned-table advisories ride the same frames as shape and lint queries,
which is what makes kernel answers bit-identical across the pipe and
TCP transports (the payload is one JSON object either way).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigError

__all__ = [
    "OPS",
    "decode_line",
    "encode_message",
    "query_message",
    "request_payload",
]

#: Every operation either side of a wire may send.
OPS = (
    "query", "advisory", "ping", "pong", "stats",
    "ready", "shutdown", "bye", "reload",
)


def encode_message(op: str, **fields: Any) -> str:
    """One wire line (newline-terminated JSON) for ``op`` + fields.

    ``None`` fields are elided: an absent key and a ``null`` value read
    the same on the far side (``message.get``), so the wire stays
    minimal and ``id=None`` (unparseable request) sends no id at all.
    """
    if op not in OPS:
        raise ConfigError(f"unknown wire op {op!r}; expected one of {OPS}")
    record: Dict[str, Any] = {"op": op}
    record.update((k, v) for k, v in fields.items() if v is not None)
    return json.dumps(record, sort_keys=True) + "\n"


def decode_line(line: "str | bytes") -> Dict[str, Any]:
    """Parse one wire line into a message dict, validating the op.

    Raises :class:`~repro.errors.ConfigError` on malformed JSON, a
    non-object line, or an unknown ``op`` — the callers map that to a
    structured error advisory rather than tearing the connection down.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ConfigError(f"wire line is not UTF-8: {exc}") from exc
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise ConfigError(f"malformed wire JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigError(
            f"wire message must be an object, got {type(data).__name__}"
        )
    op = data.setdefault("op", "query")
    if op not in OPS:
        raise ConfigError(f"unknown wire op {op!r}; expected one of {OPS}")
    return data


def query_message(
    query_dict: Mapping[str, Any], request_id: int
) -> str:
    """The request line for one query dict."""
    return encode_message("query", id=request_id, query=dict(query_dict))


def request_payload(message: Mapping[str, Any]) -> Dict[str, Any]:
    """The query object of a request message.

    Accepts both the enveloped form (``{"op": "query", "query":
    {...}}``) and a bare query object (any dict without a recognized
    envelope key), so hand-written ``echo '{"m": 4096, ...}' | nc``
    sessions work against the front-end.
    """
    raw: Optional[Any] = message.get("query")
    if raw is None:
        # Bare query object: strip the envelope keys we injected.
        raw = {k: v for k, v in message.items() if k not in ("op", "id")}
    if not isinstance(raw, dict) or not raw:
        raise ConfigError("request carries no query object")
    return raw
