"""Serving configuration: every knob of the advisory service, JSON-safe.

:class:`ServeConfig` is the single object threaded from the CLI
(``repro serve --workers/--max-batch/--max-queue``) through the
:class:`~repro.serve.server.AdvisoryServer` into each worker shard.
All fields are plain scalars so a config round-trips exactly through
JSON (``to_json`` / ``from_json``) — the property tests fuzz that
round-trip — and validation lives in ``__post_init__`` so an invalid
config is a :class:`~repro.errors.ConfigError` at construction, never a
hang or a silent misbehaviour at serving time.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigError

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of one :class:`~repro.serve.server.AdvisoryServer`.

    Times are seconds (``_s`` suffix).  ``max_queue`` is the per-shard
    admission cap: a shard whose queue holds that many waiting requests
    rejects new ones with :class:`~repro.errors.QueueFullError`.
    ``linger_s`` is the dynamic-batching window — after the first
    request is picked up, the dispatcher waits up to this long for more
    requests to coalesce into the same engine call.  ``deadline_s`` is
    the per-request time budget from enqueue to dispatch (``None`` =
    no deadline); ``cache_ttl_s`` bounds response-cache staleness
    (``0`` disables the cache).  ``retries`` / ``retry_backoff_s`` /
    ``compute_timeout_s`` parameterize the
    :class:`~repro.resilience.execute.RetryPolicy` and per-attempt
    watchdog deadline wrapped around every batched engine evaluation.

    The ``heartbeat_*`` / ``restart_*`` / ``shed_*`` / ``drain_s`` /
    ``degrade_local`` block parameterizes the multi-process cluster
    tier (:mod:`repro.serve.cluster`): the supervisor pings each worker
    every ``heartbeat_s`` seconds and declares it hung after
    ``heartbeat_misses`` consecutive pongs slower than
    ``heartbeat_timeout_s``; crashed/hung workers restart with
    exponential backoff from ``restart_backoff_s``, but a worker that
    crashes ``restart_budget`` times within ``restart_window_s``
    seconds is a crash loop and stays down.  The front-end sheds
    queries with ``priority <= shed_priority`` once cluster-wide
    in-flight depth has exceeded ``shed_depth`` for ``shed_after``
    consecutive admissions (sustained backpressure, not a blip), and
    — when ``degrade_local`` is on — answers from an in-process
    fallback engine if every worker is down.  ``drain_s`` bounds the
    graceful-shutdown wait for in-flight requests on SIGTERM.
    """

    workers: int = 2
    max_batch: int = 64
    max_queue: int = 256
    linger_s: float = 0.002
    deadline_s: Optional[float] = None
    cache_ttl_s: float = 60.0
    cache_entries: int = 4096
    retries: int = 0
    retry_backoff_s: float = 0.01
    compute_timeout_s: Optional[float] = None
    heartbeat_s: float = 0.25
    heartbeat_timeout_s: float = 1.0
    heartbeat_misses: int = 3
    restart_backoff_s: float = 0.1
    restart_budget: int = 5
    restart_window_s: float = 30.0
    shed_depth: int = 512
    shed_priority: int = 0
    shed_after: int = 2
    drain_s: float = 5.0
    degrade_local: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue < 1:
            raise ConfigError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.linger_s < 0:
            raise ConfigError(f"linger_s must be >= 0, got {self.linger_s}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(
                f"deadline_s must be positive or None, got {self.deadline_s}"
            )
        if self.cache_ttl_s < 0:
            raise ConfigError(
                f"cache_ttl_s must be >= 0, got {self.cache_ttl_s}"
            )
        if self.cache_entries < 1:
            raise ConfigError(
                f"cache_entries must be >= 1, got {self.cache_entries}"
            )
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff_s < 0:
            raise ConfigError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.compute_timeout_s is not None and self.compute_timeout_s <= 0:
            raise ConfigError(
                "compute_timeout_s must be positive or None, "
                f"got {self.compute_timeout_s}"
            )
        if self.heartbeat_s <= 0:
            raise ConfigError(
                f"heartbeat_s must be positive, got {self.heartbeat_s}"
            )
        if self.heartbeat_timeout_s <= 0:
            raise ConfigError(
                f"heartbeat_timeout_s must be positive, "
                f"got {self.heartbeat_timeout_s}"
            )
        if self.heartbeat_misses < 1:
            raise ConfigError(
                f"heartbeat_misses must be >= 1, got {self.heartbeat_misses}"
            )
        if self.restart_backoff_s < 0:
            raise ConfigError(
                f"restart_backoff_s must be >= 0, got {self.restart_backoff_s}"
            )
        if self.restart_budget < 1:
            raise ConfigError(
                f"restart_budget must be >= 1, got {self.restart_budget}"
            )
        if self.restart_window_s <= 0:
            raise ConfigError(
                f"restart_window_s must be positive, "
                f"got {self.restart_window_s}"
            )
        if self.shed_depth < 1:
            raise ConfigError(
                f"shed_depth must be >= 1, got {self.shed_depth}"
            )
        if not 0 <= self.shed_priority <= 9:
            raise ConfigError(
                f"shed_priority must be in [0, 9], got {self.shed_priority}"
            )
        if self.shed_after < 1:
            raise ConfigError(
                f"shed_after must be >= 1, got {self.shed_after}"
            )
        if self.drain_s < 0:
            raise ConfigError(f"drain_s must be >= 0, got {self.drain_s}")
        if not isinstance(self.degrade_local, bool):
            raise ConfigError(
                f"degrade_local must be a bool, got {self.degrade_local!r}"
            )

    # -- JSON round-trip ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServeConfig":
        if not isinstance(data, dict):
            raise ConfigError(
                f"serve config must be an object, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown serve config field(s): {', '.join(unknown)} "
                f"(valid: {', '.join(sorted(known))})"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(f"invalid serve config: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServeConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"malformed serve config JSON: {exc}") from exc
        return cls.from_dict(data)

    def worker_config(self) -> "ServeConfig":
        """The in-worker server config: one shard per worker process.

        Cluster-level sharding happens in the front-end (one worker
        *process* per shard); inside each worker the embedded
        :class:`~repro.serve.server.AdvisoryServer` runs a single
        dispatch shard with the same batching/cache/retry knobs.
        """
        return dataclasses.replace(self, workers=1)

    def describe(self) -> str:
        deadline = (
            f"{self.deadline_s:g}s" if self.deadline_s is not None else "none"
        )
        return (
            f"{self.workers} worker(s), batch<={self.max_batch}, "
            f"queue<={self.max_queue}/shard, linger {self.linger_s * 1e3:g}ms, "
            f"deadline {deadline}, cache ttl {self.cache_ttl_s:g}s, "
            f"heartbeat {self.heartbeat_s:g}s, "
            f"restart budget {self.restart_budget}/{self.restart_window_s:g}s, "
            f"shed depth {self.shed_depth} (priority<={self.shed_priority})"
        )
