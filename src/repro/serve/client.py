"""Synchronous client facade over :class:`~repro.serve.server.AdvisoryServer`.

The server's native surface is async (futures); this client is the
ergonomic blocking wrapper callers use from scripts and tests::

    with AdvisoryServer() as server:
        client = AdvisoryClient(server)
        lat = client.latency(4096, 4096, 4096)          # seconds
        tf = client.tflops(2048, 50304, 2560, gpu="H100")
        verdict = client.lint("gpt3-2.7b")              # exit_code, fixits

Failure handling is typed: a rejected advisory re-raises the
:class:`~repro.errors.ServeError` subclass named by its
``error_type`` (queue-full rejections already raise at submission), a
failed one raises :class:`~repro.errors.ServeError`, so callers never
parse message strings.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.errors import DeadlineExceededError, ServeError
from repro.serve.protocol import Advisory, ShapeQuery
from repro.serve.server import AdvisoryServer

__all__ = ["AdvisoryClient"]

_TYPED_ERRORS = {
    "DeadlineExceededError": DeadlineExceededError,
}


def _unwrap(advisory: Advisory) -> Dict[str, Any]:
    if advisory.ok:
        return advisory.payload
    exc_cls = _TYPED_ERRORS.get(advisory.error_type or "", ServeError)
    raise exc_cls(advisory.error or f"advisory {advisory.status}")


class AdvisoryClient:
    """Blocking convenience calls against one in-process server."""

    def __init__(
        self, server: AdvisoryServer, timeout_s: Optional[float] = 30.0
    ) -> None:
        self.server = server
        #: Default per-call wait bound (seconds); ``None`` waits forever.
        self.timeout_s = timeout_s

    def advise(
        self, query: ShapeQuery, timeout_s: Optional[float] = None
    ) -> Advisory:
        """The raw advisory for one query (no unwrapping)."""
        return self.server.request(
            query, timeout_s=timeout_s if timeout_s is not None else self.timeout_s
        )

    # -- shape kinds --------------------------------------------------------

    def evaluate(
        self,
        m: int,
        n: int,
        k: int,
        batch: int = 1,
        gpu: str = "A100",
        dtype: str = "fp16",
    ) -> Dict[str, Any]:
        """Full modeled performance record for one (batched) GEMM."""
        return _unwrap(
            self.advise(
                ShapeQuery(
                    kind="evaluate", m=m, n=n, k=k, batch=batch,
                    gpu=gpu, dtype=dtype,
                )
            )
        )

    def latency(
        self,
        m: int,
        n: int,
        k: int,
        batch: int = 1,
        gpu: str = "A100",
        dtype: str = "fp16",
    ) -> float:
        """Modeled latency in seconds."""
        payload = _unwrap(
            self.advise(
                ShapeQuery(
                    kind="latency", m=m, n=n, k=k, batch=batch,
                    gpu=gpu, dtype=dtype,
                )
            )
        )
        return float(payload["latency_s"])

    def tflops(
        self,
        m: int,
        n: int,
        k: int,
        batch: int = 1,
        gpu: str = "A100",
        dtype: str = "fp16",
    ) -> float:
        """Modeled useful-FLOPs throughput in TFLOP/s."""
        payload = _unwrap(
            self.advise(
                ShapeQuery(
                    kind="tflops", m=m, n=n, k=k, batch=batch,
                    gpu=gpu, dtype=dtype,
                )
            )
        )
        return float(payload["tflops"])

    # -- lint ---------------------------------------------------------------

    def lint(
        self,
        model: "str | Mapping[str, Any]",
        gpu: str = "A100",
        dtype: str = "fp16",
        pipeline_stages: int = 1,
    ) -> Dict[str, Any]:
        """Shape-lint verdict (exit code, findings, quantified fix-its).

        ``model`` is a registered preset name or an inline config
        mapping of :class:`~repro.core.config.TransformerConfig` fields.
        """
        if isinstance(model, str):
            query = ShapeQuery(
                kind="lint", model=model, gpu=gpu, dtype=dtype,
                pipeline_stages=pipeline_stages,
            )
        else:
            query = ShapeQuery(
                kind="lint", config_items=tuple(sorted(model.items())),
                gpu=gpu, dtype=dtype, pipeline_stages=pipeline_stages,
            )
        return _unwrap(self.advise(query))
