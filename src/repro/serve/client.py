"""Synchronous client facade over any advisory transport.

The ergonomic blocking wrapper callers use from scripts and tests —
against the in-process :class:`~repro.serve.server.AdvisoryServer`,
the multi-process :class:`~repro.serve.supervisor.Supervisor`, or a
remote cluster through :class:`~repro.serve.netclient.
SocketTransport`, all interchangeably (anything satisfying
:class:`~repro.serve.dispatch.Transport`)::

    with AdvisoryServer() as server:
        client = AdvisoryClient(server)
        lat = client.latency(4096, 4096, 4096)          # seconds
        tf = client.tflops(2048, 50304, 2560, gpu="H100")
        verdict = client.lint("gpt3-2.7b")              # exit_code, fixits

    client = AdvisoryClient(SocketTransport(port=9037))  # same calls

Failure handling is typed through :func:`~repro.serve.dispatch.
unwrap_advisory`: a non-ok advisory re-raises the
:class:`~repro.errors.ServeError` subclass named by its ``error_type``
(queue-full rejections already raise at submission), so callers never
parse message strings — locally or across the wire.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.serve.dispatch import Transport, unwrap_advisory as _unwrap
from repro.serve.protocol import Advisory, ShapeQuery

__all__ = ["AdvisoryClient"]


class AdvisoryClient:
    """Blocking convenience calls against one advisory transport."""

    def __init__(
        self, transport: Transport, timeout_s: Optional[float] = 30.0
    ) -> None:
        self.transport = transport
        #: Default per-call wait bound (seconds); ``None`` waits forever.
        self.timeout_s = timeout_s

    @property
    def server(self) -> Transport:
        """The underlying transport (historical name)."""
        return self.transport

    def advise(
        self, query: ShapeQuery, timeout_s: Optional[float] = None
    ) -> Advisory:
        """The raw advisory for one query (no unwrapping)."""
        return self.transport.request(
            query, timeout_s=timeout_s if timeout_s is not None else self.timeout_s
        )

    # -- shape kinds --------------------------------------------------------

    def evaluate(
        self,
        m: int,
        n: int,
        k: int,
        batch: int = 1,
        gpu: str = "A100",
        dtype: str = "fp16",
    ) -> Dict[str, Any]:
        """Full modeled performance record for one (batched) GEMM."""
        return _unwrap(
            self.advise(
                ShapeQuery(
                    kind="evaluate", m=m, n=n, k=k, batch=batch,
                    gpu=gpu, dtype=dtype,
                )
            )
        )

    def latency(
        self,
        m: int,
        n: int,
        k: int,
        batch: int = 1,
        gpu: str = "A100",
        dtype: str = "fp16",
    ) -> float:
        """Modeled latency in seconds."""
        payload = _unwrap(
            self.advise(
                ShapeQuery(
                    kind="latency", m=m, n=n, k=k, batch=batch,
                    gpu=gpu, dtype=dtype,
                )
            )
        )
        return float(payload["latency_s"])

    def tflops(
        self,
        m: int,
        n: int,
        k: int,
        batch: int = 1,
        gpu: str = "A100",
        dtype: str = "fp16",
    ) -> float:
        """Modeled useful-FLOPs throughput in TFLOP/s."""
        payload = _unwrap(
            self.advise(
                ShapeQuery(
                    kind="tflops", m=m, n=n, k=k, batch=batch,
                    gpu=gpu, dtype=dtype,
                )
            )
        )
        return float(payload["tflops"])

    # -- kernel params ------------------------------------------------------

    def kernel_params(
        self,
        m: int,
        n: int,
        k: int,
        batch: int = 1,
        gpu: str = "A100",
        dtype: str = "fp16",
    ) -> Dict[str, Any]:
        """Tuned kernel parameters for one GEMM (table or fallback).

        The payload names the tile geometry, wave/block counts,
        predicted latency/throughput, the runner-up with its margin,
        and provenance (``table_hit``, ``table_checksum``,
        ``model_version``) — see
        :meth:`repro.kernels.registry.KernelParamResolver.resolve`.
        """
        return _unwrap(
            self.advise(
                ShapeQuery(
                    kind="kernel_params", m=m, n=n, k=k, batch=batch,
                    gpu=gpu, dtype=dtype,
                )
            )
        )

    # -- lint ---------------------------------------------------------------

    def lint(
        self,
        model: "str | Mapping[str, Any]",
        gpu: str = "A100",
        dtype: str = "fp16",
        pipeline_stages: int = 1,
    ) -> Dict[str, Any]:
        """Shape-lint verdict (exit code, findings, quantified fix-its).

        ``model`` is a registered preset name or an inline config
        mapping of :class:`~repro.core.config.TransformerConfig` fields.
        """
        if isinstance(model, str):
            query = ShapeQuery(
                kind="lint", model=model, gpu=gpu, dtype=dtype,
                pipeline_stages=pipeline_stages,
            )
        else:
            query = ShapeQuery(
                kind="lint", config_items=tuple(sorted(model.items())),
                gpu=gpu, dtype=dtype, pipeline_stages=pipeline_stages,
            )
        return _unwrap(self.advise(query))
