"""Transport-agnostic dispatch: one codepath for every advisory client.

The serve tier has three ways to reach an engine — the in-process
:class:`~repro.serve.server.AdvisoryServer`, a worker process behind
the supervisor, and a TCP socket into the cluster front-end.  They all
speak the same contract, captured here:

- :class:`Transport` — the structural protocol every dispatch target
  satisfies: ``request(query, timeout_s) -> Advisory``.  The in-process
  server implements it natively; :class:`~repro.serve.netclient.
  SocketTransport` implements it over JSONL sockets with
  reconnect-and-backoff.  :class:`~repro.serve.client.AdvisoryClient`
  and :func:`~repro.serve.loadgen.run_load` accept *any* transport, so
  the in-process path and the network path share one client codepath
  and one differential test wall.
- :func:`error_to_advisory` — the single place a server-side exception
  becomes a protocol-level advisory.  Network clients never see a raw
  traceback: every failure crosses the wire as a structured advisory
  whose ``error_type`` names the :class:`~repro.errors.ServeError`
  subclass and whose ``retryable`` flag says whether backing off and
  retrying can ever help (backpressure/shedding/worker churn: yes;
  malformed queries and model errors: no).
- :func:`unwrap_advisory` — the client-side inverse: a non-ok advisory
  re-raises the typed exception named by its ``error_type``, so
  callers branch on exception class, never on message strings.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Protocol, Type, runtime_checkable

from repro.errors import (
    ClusterError,
    DeadlineExceededError,
    LoadShedError,
    QueueFullError,
    ReproError,
    ServeError,
    ServerClosedError,
    TaskTimeoutError,
    WorkerDiedError,
)
from repro.serve.protocol import Advisory, ShapeQuery

__all__ = [
    "RETRYABLE_ERRORS",
    "TYPED_ERRORS",
    "Transport",
    "error_to_advisory",
    "is_retryable",
    "unwrap_advisory",
]


@runtime_checkable
class Transport(Protocol):
    """Anything that can answer one advisory query, blocking.

    :class:`~repro.serve.server.AdvisoryServer` (in-process),
    :class:`~repro.serve.netclient.SocketTransport` (network), and the
    supervisor's degraded local fallback all satisfy this shape, which
    is what lets the client facade and the load generator run
    unchanged against any of them.
    """

    def request(
        self, query: ShapeQuery, timeout_s: Optional[float] = None
    ) -> Advisory:
        """Answer one query, blocking up to ``timeout_s`` seconds."""
        ...  # pragma: no cover - protocol signature only


#: Error types a client may sensibly retry after backoff: transient
#: capacity or churn conditions, not properties of the query itself.
RETRYABLE_ERRORS = frozenset(
    {
        QueueFullError.__name__,
        DeadlineExceededError.__name__,
        LoadShedError.__name__,
        WorkerDiedError.__name__,
        TaskTimeoutError.__name__,
    }
)

#: ``error_type`` name -> exception class, for client-side re-raising.
#: Deliberately only the :class:`~repro.errors.ServeError` family:
#: callers of :func:`unwrap_advisory` catch ``ServeError`` and always
#: get one — config/shape problems fold to the base class (the precise
#: name still rides on the advisory's ``error_type`` for logs).
TYPED_ERRORS: Dict[str, Type[ServeError]] = {
    cls.__name__: cls
    for cls in (
        QueueFullError,
        DeadlineExceededError,
        ServerClosedError,
        LoadShedError,
        ClusterError,
        WorkerDiedError,
    )
}


def is_retryable(exc: BaseException) -> bool:
    """Whether retrying after backoff could ever change the outcome."""
    if isinstance(exc, ReproError):
        return type(exc).__name__ in RETRYABLE_ERRORS
    # Non-repro exceptions (torn pipes, OS errors) are environmental.
    return isinstance(exc, (OSError, EOFError))


def error_to_advisory(
    query: Optional[ShapeQuery],
    exc: BaseException,
    raw_query: Optional[Mapping[str, Any]] = None,
    shard: int = 0,
) -> Advisory:
    """Fold a server-side exception into a structured advisory.

    ``query`` may be ``None`` when the request never parsed into a
    :class:`ShapeQuery` (malformed JSON, bad fields); ``raw_query``
    preserves whatever the client sent so the echo in the advisory
    still identifies the request.  Rejections (admission control,
    shedding, deadlines) keep status ``"rejected"``; everything else is
    ``"failed"``.
    """
    if query is None:
        # A placeholder the wire layer can still echo; the original
        # request is unparseable so the advisory carries a stub query.
        query = ShapeQuery(kind="latency", m=1, n=1, k=1)
        payload_echo = dict(raw_query) if raw_query is not None else None
    else:
        payload_echo = None
    rejected = isinstance(
        exc, (QueueFullError, DeadlineExceededError, LoadShedError,
              ServerClosedError)
    )
    advisory = Advisory(
        query=query,
        status="rejected" if rejected else "failed",
        error=str(exc),
        error_type=type(exc).__name__,
        retryable=is_retryable(exc),
        shard=shard,
    )
    if payload_echo is not None:
        advisory.payload = {"request": payload_echo}
    return advisory


def unwrap_advisory(advisory: Advisory) -> Dict[str, Any]:
    """Return the payload of an ok advisory or raise its typed error.

    The inverse of :func:`error_to_advisory`: a non-ok advisory
    re-raises the :class:`~repro.errors.ServeError` subclass (or
    config/shape error) named by ``error_type``, defaulting to plain
    :class:`~repro.errors.ServeError` for unknown names.
    """
    if advisory.ok:
        return advisory.payload
    exc_cls = TYPED_ERRORS.get(advisory.error_type or "", ServeError)
    raise exc_cls(advisory.error or f"advisory {advisory.status}")
